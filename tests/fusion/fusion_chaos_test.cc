// Determinism and degeneracy contracts for the fusion subsystem under
// the full chaos cocktail (docs/fusion.md §5): fused answers are
// bit-identical at every shard count (groups are pinned, so the
// intra-tick broadcast diffusion never crosses shards); a single-member
// group degenerates bit-exactly to the plain per-source dual-filter
// path; and group membership churn mid-chaos keeps the group serving
// and consistent.

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"
#include "serve/subscription.h"

namespace dkf {
namespace {

constexpr int kNumPlainSources = 6;
constexpr int kGroupA = 0;
constexpr int kGroupB = 5;
constexpr int64_t kChaosTicks = 300;
constexpr int64_t kFaultEnd = 240;

const std::vector<int> kMembersA = {100, 101, 102};
const std::vector<int> kMembersB = {110, 111, 112, 113};

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// The fleet chaos cocktail (dsms/chaos_test.cc): Bernoulli +
/// Gilbert–Elliott loss, delay with reordering, a scheduled outage, ACK
/// loss, and payload corruption, all per-source fault streams.
ChannelOptions ChaosChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.1;
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = kFaultEnd;
  options.fault = fault;
  return options;
}

ProtocolOptions ChaosProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 3;
  protocol.staleness_budget = 5;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  return protocol;
}

/// Deterministic ground truth per group and per-member reading offsets,
/// so every system (at any shard count, with or without churn) feeds on
/// an identical schedule without a shared RNG cursor.
double GroupTruth(int group_id, int64_t tick) {
  return 0.04 * static_cast<double>(tick) +
         2.0 * std::sin(0.08 * static_cast<double>(tick) + group_id);
}

Vector MemberReading(int group_id, int member_id, int64_t tick) {
  return Vector{GroupTruth(group_id, tick) +
                0.03 * std::sin(0.9 * static_cast<double>(tick) +
                                0.7 * member_id)};
}

Vector PlainReading(int source_id, int64_t tick) {
  return Vector{0.1 * static_cast<double>(tick) * (source_id % 3) +
                std::sin(0.05 * static_cast<double>(tick) + source_id)};
}

std::map<int, Vector> FleetReadings(int64_t tick) {
  std::map<int, Vector> readings;
  for (int id = 1; id <= kNumPlainSources; ++id) {
    readings[id] = PlainReading(id, tick);
  }
  for (int id : kMembersA) readings[id] = MemberReading(kGroupA, id, tick);
  for (int id : kMembersB) readings[id] = MemberReading(kGroupB, id, tick);
  return readings;
}

template <typename System>
void InstallFusionWorkload(System& system) {
  for (int id = 1; id <= kNumPlainSources; ++id) {
    ASSERT_TRUE(system.RegisterSource(id, ScalarModel()).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.0 + 0.5 * (id % 3);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
  FusionGroupConfig group_a;
  group_a.group_id = kGroupA;
  group_a.model = ScalarModel(0.04);
  group_a.member_ids = kMembersA;
  group_a.delta = 2.0;
  ASSERT_TRUE(system.RegisterFusionGroup(group_a).ok());
  FusionGroupConfig group_b;
  group_b.group_id = kGroupB;
  group_b.model = ScalarModel(0.06);
  group_b.member_ids = kMembersB;
  group_b.delta = 3.0;
  ASSERT_TRUE(system.RegisterFusionGroup(group_b).ok());

  FusedQuery tight;
  tight.id = 50;
  tight.group_id = kGroupA;
  tight.precision = 0.8;
  ASSERT_TRUE(system.SubmitFusedQuery(tight).ok());
  Subscription fused_sub;
  fused_sub.id = 1;
  fused_sub.kind = SubscriptionKind::kFused;
  fused_sub.group_id = kGroupB;
  ASSERT_TRUE(system.Subscribe(fused_sub).ok());
}

void ExpectFusionStatsEq(const FusionStats& got, const FusionStats& want,
                         const std::string& label) {
  EXPECT_EQ(got.groups, want.groups) << label;
  EXPECT_EQ(got.members, want.members) << label;
  EXPECT_EQ(got.updates_applied, want.updates_applied) << label;
  EXPECT_EQ(got.suppressed, want.suppressed) << label;
  EXPECT_EQ(got.transmissions, want.transmissions) << label;
  EXPECT_EQ(got.broadcasts, want.broadcasts) << label;
  EXPECT_EQ(got.broadcast_bytes, want.broadcast_bytes) << label;
  EXPECT_EQ(got.faults.resyncs_sent, want.faults.resyncs_sent) << label;
  EXPECT_EQ(got.faults.resyncs_applied, want.faults.resyncs_applied)
      << label;
  EXPECT_EQ(got.faults.heartbeats_sent, want.faults.heartbeats_sent)
      << label;
  EXPECT_EQ(got.faults.rejected_stale, want.faults.rejected_stale) << label;
  EXPECT_EQ(got.faults.rejected_corrupt, want.faults.rejected_corrupt)
      << label;
  EXPECT_EQ(got.faults.sequence_gaps, want.faults.sequence_gaps) << label;
  EXPECT_EQ(got.faults.degraded_ticks, want.faults.degraded_ticks) << label;
}

/// The uninterrupted single-process run the sharded runs are measured
/// against: per-tick fused answers, degraded flags, and final
/// accounting.
struct FusionReference {
  std::vector<double> fused_a;          // [tick]
  std::vector<double> fused_b;          // [tick]
  std::vector<bool> degraded_a;         // [tick]
  std::vector<bool> degraded_b;         // [tick]
  FusionStats stats;
  std::vector<NotificationBatch> notifications;
};

const FusionReference& GetFusionReference() {
  static const FusionReference* const reference = [] {
    auto* ref = new FusionReference();
    StreamManagerOptions options;
    options.channel = ChaosChannel();
    options.protocol = ChaosProtocol();
    StreamManager manager(options);
    InstallFusionWorkload(manager);
    for (int64_t t = 0; t < kChaosTicks; ++t) {
      EXPECT_TRUE(manager.ProcessTick(FleetReadings(t)).ok())
          << "tick " << t;
      ref->fused_a.push_back(manager.AnswerFused(kGroupA).value()[0]);
      ref->fused_b.push_back(manager.AnswerFused(kGroupB).value()[0]);
      ref->degraded_a.push_back(manager.fused_degraded(kGroupA).value());
      ref->degraded_b.push_back(manager.fused_degraded(kGroupB).value());
    }
    ref->stats = manager.fusion_stats();
    ref->notifications = manager.DrainNotifications();
    EXPECT_TRUE(manager.VerifyFusedConsistency().ok());
    // The chaos actually bit: resyncs flowed and degraded spans
    // happened, so the invariance below is tested under real damage.
    EXPECT_GT(ref->stats.faults.resyncs_applied, 0);
    EXPECT_GT(ref->stats.faults.degraded_ticks, 0);
    EXPECT_GT(ref->stats.suppressed, 0);
    return ref;
  }();
  return *reference;
}

TEST(FusionChaosTest, FusedAnswersAreShardCountInvariant) {
  const FusionReference& ref = GetFusionReference();
  for (int shards : {1, 2, 4, 8}) {
    const std::string label = "shards=" + std::to_string(shards);
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = ChaosChannel();
    options.protocol = ChaosProtocol();
    ShardedStreamEngine engine(options);
    InstallFusionWorkload(engine);
    ASSERT_EQ(engine.num_fusion_groups(), 2u) << label;
    ASSERT_EQ(engine.num_fusion_members(),
              kMembersA.size() + kMembersB.size())
        << label;
    // Groups are pinned to the shard their id hashes to.
    EXPECT_EQ(engine.fusion_group_shard(kGroupA), kGroupA % shards) << label;
    EXPECT_EQ(engine.fusion_group_shard(kGroupB), kGroupB % shards) << label;

    for (int64_t t = 0; t < kChaosTicks; ++t) {
      ASSERT_TRUE(engine.ProcessTick(FleetReadings(t)).ok())
          << label << " tick " << t;
      ASSERT_EQ(engine.AnswerFused(kGroupA).value()[0],
                ref.fused_a[static_cast<size_t>(t)])
          << label << " tick " << t;
      ASSERT_EQ(engine.AnswerFused(kGroupB).value()[0],
                ref.fused_b[static_cast<size_t>(t)])
          << label << " tick " << t;
      ASSERT_EQ(engine.fused_degraded(kGroupA).value(),
                ref.degraded_a[static_cast<size_t>(t)])
          << label << " tick " << t;
      ASSERT_EQ(engine.fused_degraded(kGroupB).value(),
                ref.degraded_b[static_cast<size_t>(t)])
          << label << " tick " << t;
      if (t % 60 == 0 || t == kChaosTicks - 1) {
        ASSERT_TRUE(engine.VerifyFusedConsistency().ok())
            << label << " tick " << t;
      }
    }
    ExpectFusionStatsEq(engine.fusion_stats(), ref.stats, label);
    EXPECT_TRUE(engine.DrainNotifications() == ref.notifications)
        << label << ": fused notification stream differs";
    EXPECT_TRUE(engine.VerifyMirrorConsistency().ok()) << label;
  }
}

TEST(FusionChaosTest, SingleMemberGroupDegeneratesToPlainSourcePath) {
  // One sensor, one state: the fused trigger "does my reading move the
  // fused posterior by more than delta" collapses to the per-source rule
  // "does my reading deviate from my mirror by more than delta", and the
  // group must answer bit-exactly what a plain dual-filter link answers
  // under the identical per-source fault stream. ACK loss is excluded:
  // ambiguous-ACK bookkeeping differs across the two paths by design
  // (docs/fusion.md §5).
  constexpr int kSharedId = 10;
  constexpr int64_t kTicks = 260;
  ChannelOptions channel = ChaosChannel();
  channel.fault.ack_loss_probability = 0.0;

  std::vector<Vector> walk;
  Rng rng(33);
  double value = 0.0;
  for (int64_t t = 0; t < kTicks; ++t) {
    value += rng.Gaussian(0.0, 0.6);
    walk.push_back(Vector{value});
  }

  StreamManagerOptions plain_options;
  plain_options.channel = channel;
  plain_options.protocol = ChaosProtocol();
  StreamManager plain(plain_options);
  ASSERT_TRUE(plain.RegisterSource(kSharedId, ScalarModel()).ok());
  ContinuousQuery query;
  query.id = 1;
  query.source_id = kSharedId;
  query.precision = 1.0;
  ASSERT_TRUE(plain.SubmitQuery(query).ok());

  StreamManagerOptions fused_options;
  fused_options.channel = channel;
  fused_options.protocol = ChaosProtocol();
  StreamManager fused(fused_options);
  FusionGroupConfig solo;
  solo.group_id = 1;
  solo.model = ScalarModel();
  solo.member_ids = {kSharedId};
  solo.delta = 1.0;
  ASSERT_TRUE(fused.RegisterFusionGroup(solo).ok());

  // The one deliberate semantic difference: the plain path marks the tick
  // a resync lands as degraded (the answer that tick is the imported
  // mirror snapshot, not a delta-tested posterior — server_node.cc), while
  // the fused path is staleness-only (a resync is answered with a re-lock
  // broadcast and the fused answer stays the posterior itself —
  // docs/fusion.md §5). On exactly those ticks the flags may diverge as
  // plain=true / fused=false; everywhere else they must match bit-exactly.
  int64_t coast_only_ticks = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    const int64_t resyncs_before = plain.fault_stats().resyncs_applied;
    std::map<int, Vector> reading{{kSharedId, walk[static_cast<size_t>(t)]}};
    ASSERT_TRUE(plain.ProcessTick(reading).ok()) << "tick " << t;
    ASSERT_TRUE(fused.ProcessTick(reading).ok()) << "tick " << t;
    ASSERT_EQ(fused.AnswerFused(1).value()[0],
              plain.Answer(kSharedId).value()[0])
        << "tick " << t;
    const bool plain_degraded = plain.answer_degraded(kSharedId).value();
    const bool fused_degraded = fused.fused_degraded(1).value();
    if (plain.fault_stats().resyncs_applied > resyncs_before) {
      EXPECT_TRUE(plain_degraded) << "tick " << t;
      EXPECT_FALSE(fused_degraded) << "tick " << t;
      // Degraded service is accounted at the next BeginTick, so the final
      // tick's flag never reaches the counters on either side.
      if (t < kTicks - 1) ++coast_only_ticks;
    } else {
      ASSERT_EQ(fused_degraded, plain_degraded) << "tick " << t;
    }
  }
  // Identical update schedule, not just identical answers: same message
  // count on the wire (fused frames cost 12 bytes more each for the
  // group routing fields, so bytes are deliberately NOT compared), same
  // fault bookkeeping.
  EXPECT_EQ(fused.fusion_stats().transmissions,
            plain.updates_sent(kSharedId).value());
  EXPECT_EQ(fused.uplink_traffic().messages,
            plain.uplink_traffic().messages);
  EXPECT_GT(fused.uplink_traffic().bytes, plain.uplink_traffic().bytes);
  EXPECT_EQ(fused.fusion_stats().faults.resyncs_applied,
            plain.fault_stats().resyncs_applied);
  EXPECT_EQ(fused.fusion_stats().faults.heartbeats_sent,
            plain.fault_stats().heartbeats_sent);
  EXPECT_EQ(fused.fusion_stats().faults.degraded_ticks + coast_only_ticks,
            plain.fault_stats().degraded_ticks);
  // The chaos was live for both runs.
  EXPECT_GT(fused.fusion_stats().faults.resyncs_applied, 0);
  EXPECT_TRUE(fused.VerifyFusedConsistency().ok());
  EXPECT_TRUE(plain.VerifyMirrorConsistency().ok());
}

TEST(FusionChaosTest, MembershipChurnSurvivesChaos) {
  // Members join and leave mid-chaos (one of each, between ticks). The
  // group keeps serving throughout, the churn is shard-count invariant,
  // and after the faults drain the consistency contract holds.
  constexpr int64_t kTicks = 300;
  constexpr int64_t kJoinTick = 150;
  constexpr int64_t kLeaveTick = 200;
  constexpr int kJoiner = 103;
  constexpr int kLeaver = 101;

  auto readings_at = [&](int64_t t) {
    std::map<int, Vector> readings;
    for (int id = 1; id <= kNumPlainSources; ++id) {
      readings[id] = PlainReading(id, t);
    }
    std::vector<int> members = kMembersA;
    if (t >= kJoinTick) members.push_back(kJoiner);
    if (t >= kLeaveTick) std::erase(members, kLeaver);
    for (int id : members) readings[id] = MemberReading(kGroupA, id, t);
    return readings;
  };

  auto run = [&](auto& system) {
    std::vector<double> answers;
    for (int64_t t = 0; t < kTicks; ++t) {
      if (t == kJoinTick) {
        EXPECT_TRUE(system.AddFusionMember(kGroupA, kJoiner).ok());
      }
      if (t == kLeaveTick) {
        EXPECT_TRUE(system.RemoveFusionMember(kGroupA, kLeaver).ok());
      }
      EXPECT_TRUE(system.ProcessTick(readings_at(t)).ok()) << "tick " << t;
      answers.push_back(system.AnswerFused(kGroupA).value()[0]);
    }
    // The group outlived the churn, consistent and healthy.
    EXPECT_TRUE(system.AnswerFused(kGroupA).ok());
    EXPECT_TRUE(system.VerifyFusedConsistency().ok());
    EXPECT_FALSE(system.fused_degraded(kGroupA).value());
    return answers;
  };

  StreamManagerOptions manager_options;
  manager_options.channel = ChaosChannel();
  manager_options.protocol = ChaosProtocol();
  StreamManager manager(manager_options);
  for (int id = 1; id <= kNumPlainSources; ++id) {
    ASSERT_TRUE(manager.RegisterSource(id, ScalarModel()).ok());
  }
  FusionGroupConfig group;
  group.group_id = kGroupA;
  group.model = ScalarModel(0.04);
  group.member_ids = kMembersA;
  group.delta = 2.0;
  ASSERT_TRUE(manager.RegisterFusionGroup(group).ok());
  const std::vector<double> reference = run(manager);
  EXPECT_EQ(manager.fusion().group_members(kGroupA).value(),
            (std::vector<int>{100, 102, kJoiner}));

  for (int shards : {2, 4}) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = ChaosChannel();
    options.protocol = ChaosProtocol();
    ShardedStreamEngine engine(options);
    for (int id = 1; id <= kNumPlainSources; ++id) {
      ASSERT_TRUE(engine.RegisterSource(id, ScalarModel()).ok());
    }
    ASSERT_TRUE(engine.RegisterFusionGroup(group).ok());
    const std::vector<double> sharded = run(engine);
    for (size_t t = 0; t < reference.size(); ++t) {
      ASSERT_EQ(sharded[t], reference[t])
          << "shards=" << shards << " tick " << t;
    }
    EXPECT_EQ(engine.num_fusion_members(), 3u) << shards;
  }
}

}  // namespace
}  // namespace dkf
