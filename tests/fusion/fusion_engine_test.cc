// Unit tests for the multi-sensor fusion subsystem (src/fusion/,
// docs/fusion.md): the information-form kernels' algebraic-equivalence
// contract, group registration validation (including the engine-wide
// member/source id disjointness), the cross-source suppression win on a
// clean channel, fused-query trigger reconfiguration, fused continuous
// subscriptions, and the degrade/heal cycle across a scheduled outage.

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "filter/fusion_kernels.h"
#include "models/model_factory.h"
#include "serve/subscription.h"

namespace dkf {
namespace {

StateModel ScalarModel(double process_variance = 0.05,
                       double measurement_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = measurement_variance;
  return MakeLinearModel(1, 1.0, noise).value();
}

FusionGroupConfig GroupOf(int group_id, std::vector<int> members,
                          double delta = 1.0) {
  FusionGroupConfig config;
  config.group_id = group_id;
  config.model = ScalarModel();
  config.member_ids = std::move(members);
  config.delta = delta;
  return config;
}

// ---- information-form kernels ----------------------------------------

TEST(FusionKernelsTest, MomentInformationRoundTrip) {
  const Vector x{1.5, -0.25};
  Matrix p = Matrix::Identity(2);
  p(0, 0) = 2.0;
  p(0, 1) = 0.5;
  p(1, 0) = 0.5;
  p(1, 1) = 1.25;
  auto info_or = ToInformation(x, p);
  ASSERT_TRUE(info_or.ok()) << info_or.status().message();
  auto back_or = FromInformation(info_or.value());
  ASSERT_TRUE(back_or.ok()) << back_or.status().message();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(back_or.value().state[i], x[i], 1e-12);
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(back_or.value().covariance(i, j), p(i, j), 1e-12);
    }
  }
}

TEST(FusionKernelsTest, SingularCovarianceRejected) {
  const Vector x{1.0};
  Matrix p(1, 1);
  p(0, 0) = 0.0;
  EXPECT_FALSE(ToInformation(x, p).ok());
  InformationState flat;
  flat.info_vector = Vector{0.0};
  flat.info_matrix = p;  // Y = 0: totally uninformative
  EXPECT_FALSE(FromInformation(flat).ok());
}

TEST(FusionKernelsTest, AddObservationMatchesKalmanCorrection) {
  // Scalar prior x=0, P=1; observation z=1 with H=1, R=0.5.
  // Information form: Y = 1 + 2 = 3, y = 0 + 2 = 2 -> x = 2/3, P = 1/3.
  // Covariance-form gain: K = 1/(1+0.5) = 2/3 -> identical posterior.
  auto info_or = ToInformation(Vector{0.0}, Matrix::Identity(1));
  ASSERT_TRUE(info_or.ok());
  InformationState info = info_or.value();
  Matrix h = Matrix::Identity(1);
  Matrix r(1, 1);
  r(0, 0) = 0.5;
  ASSERT_TRUE(AddObservation(&info, h, r, Vector{1.0}).ok());
  auto fused_or = FromInformation(info);
  ASSERT_TRUE(fused_or.ok());
  EXPECT_NEAR(fused_or.value().state[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(fused_or.value().covariance(0, 0), 1.0 / 3.0, 1e-12);
}

TEST(FusionKernelsTest, AdditiveFusionIsOrderFree) {
  // Adding k observations in either order lands on the same information
  // state — the additivity the sequential covariance-form execution of
  // the fused posterior relies on.
  Matrix h = Matrix::Identity(1);
  Matrix r(1, 1);
  r(0, 0) = 0.25;
  const std::vector<double> readings = {0.8, 1.2, 0.9};

  auto forward_or = ToInformation(Vector{0.0}, Matrix::Identity(1));
  auto backward_or = ToInformation(Vector{0.0}, Matrix::Identity(1));
  ASSERT_TRUE(forward_or.ok() && backward_or.ok());
  InformationState forward = forward_or.value();
  InformationState backward = backward_or.value();
  for (size_t i = 0; i < readings.size(); ++i) {
    ASSERT_TRUE(AddObservation(&forward, h, r, Vector{readings[i]}).ok());
    ASSERT_TRUE(
        AddObservation(&backward, h, r,
                       Vector{readings[readings.size() - 1 - i]})
            .ok());
  }
  EXPECT_NEAR(forward.info_vector[0], backward.info_vector[0], 1e-12);
  EXPECT_NEAR(forward.info_matrix(0, 0), backward.info_matrix(0, 0), 1e-12);
}

TEST(FusionKernelsTest, CovarianceIntersection) {
  MomentState a;
  a.state = Vector{1.0};
  a.covariance = Matrix::Identity(1);
  MomentState b;
  b.state = Vector{3.0};
  b.covariance = Matrix::Identity(1);
  b.covariance(0, 0) = 4.0;

  // Fusing an estimate with itself at any omega returns it unchanged.
  auto self_or = CovarianceIntersect(a, a, 0.3);
  ASSERT_TRUE(self_or.ok());
  EXPECT_NEAR(self_or.value().state[0], 1.0, 1e-12);
  EXPECT_NEAR(self_or.value().covariance(0, 0), 1.0, 1e-12);

  // The intersection lies between the inputs and stays consistent
  // (covariance no smaller than the omega-weighted harmonic bound).
  auto mix_or = CovarianceIntersect(a, b, 0.5);
  ASSERT_TRUE(mix_or.ok());
  EXPECT_GT(mix_or.value().state[0], 1.0);
  EXPECT_LT(mix_or.value().state[0], 3.0);
  EXPECT_GT(mix_or.value().covariance(0, 0), 0.0);

  // omega is exclusive on both ends.
  EXPECT_FALSE(CovarianceIntersect(a, b, 0.0).ok());
  EXPECT_FALSE(CovarianceIntersect(a, b, 1.0).ok());
}

// ---- registration validation -----------------------------------------

TEST(FusionEngineTest, RegistrationValidation) {
  StreamManagerOptions options;
  StreamManager manager(options);

  EXPECT_FALSE(
      manager.RegisterFusionGroup(GroupOf(1, /*members=*/{})).ok());
  EXPECT_FALSE(manager.RegisterFusionGroup(GroupOf(1, {10, 10})).ok());
  EXPECT_FALSE(manager.RegisterFusionGroup(GroupOf(-1, {10})).ok());
  EXPECT_FALSE(
      manager.RegisterFusionGroup(GroupOf(kMaxFusionGroupId + 1, {10})).ok());
  FusionGroupConfig bad_delta = GroupOf(1, {10});
  bad_delta.delta = -1.0;
  EXPECT_FALSE(manager.RegisterFusionGroup(bad_delta).ok());

  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(1, {10, 11})).ok());
  // Duplicate group id; member owned by another group.
  EXPECT_FALSE(manager.RegisterFusionGroup(GroupOf(1, {20})).ok());
  EXPECT_FALSE(manager.RegisterFusionGroup(GroupOf(2, {11, 12})).ok());
  EXPECT_TRUE(manager.fusion().has_group(1));
  EXPECT_EQ(manager.fusion().num_members(), 2u);
}

TEST(FusionEngineTest, MemberAndSourceIdNamespacesAreDisjoint) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterSource(1, ScalarModel()).ok());
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(5, {10, 11})).ok());

  // A member id that is already a plain source, both at registration and
  // at later admission.
  EXPECT_EQ(manager.RegisterFusionGroup(GroupOf(6, {1})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.AddFusionMember(5, 1).code(),
            StatusCode::kAlreadyExists);
  // A plain source id that is already a fusion member.
  EXPECT_EQ(manager.RegisterSource(10, ScalarModel()).code(),
            StatusCode::kAlreadyExists);
}

TEST(FusionEngineTest, MembershipChurnRules) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(3, {10, 11})).ok());

  EXPECT_FALSE(manager.AddFusionMember(3, 10).ok());   // already a member
  EXPECT_FALSE(manager.AddFusionMember(99, 12).ok());  // unknown group
  ASSERT_TRUE(manager.AddFusionMember(3, 12).ok());
  EXPECT_EQ(manager.fusion().group_members(3).value(),
            (std::vector<int>{10, 11, 12}));

  ASSERT_TRUE(manager.RemoveFusionMember(3, 11).ok());
  EXPECT_FALSE(manager.RemoveFusionMember(3, 11).ok());  // already gone
  ASSERT_TRUE(manager.RemoveFusionMember(3, 12).ok());
  // The last member cannot be removed — a group always has an observer.
  EXPECT_FALSE(manager.RemoveFusionMember(3, 10).ok());
  EXPECT_EQ(manager.fusion().member_group(10), 3);
  EXPECT_EQ(manager.fusion().member_group(11), -1);
}

// ---- protocol behavior on a clean channel ----------------------------

std::map<int, Vector> RedundantReadings(const std::vector<int>& members,
                                        double value) {
  std::map<int, Vector> readings;
  for (int id : members) readings[id] = Vector{value};
  return readings;
}

TEST(FusionEngineTest, CrossSourceSuppressionOnCleanChannel) {
  // Four redundant sensors on a clean channel: after the first mover's
  // correction is absorbed and re-broadcast intra-tick, the other three
  // test the same reading against the already-updated fused mirror and
  // suppress. Per-tick uplink cost is O(1), not O(members).
  const std::vector<int> members = {10, 11, 12, 13};
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(
      manager.RegisterFusionGroup(GroupOf(1, members, /*delta=*/0.5)).ok());

  const int64_t kTicks = 60;
  for (int64_t t = 0; t < kTicks; ++t) {
    // A drifting truth all four sensors see identically.
    ASSERT_TRUE(
        manager.ProcessTick(RedundantReadings(members, 0.05 * t)).ok());
  }

  const FusionStats stats = manager.fusion_stats();
  EXPECT_EQ(stats.groups, 1);
  EXPECT_EQ(stats.members, 4);
  // Every member step either transmitted or suppressed.
  EXPECT_EQ(stats.transmissions + stats.suppressed,
            static_cast<int64_t>(members.size()) * kTicks);
  // The cross-source win: at most ~one transmission per tick, the rest
  // suppressed against the diffused posterior.
  EXPECT_LE(stats.transmissions, kTicks + 4);
  EXPECT_GE(stats.suppressed, 3 * kTicks - 4);
  EXPECT_EQ(stats.updates_applied, stats.transmissions);
  // Every applied correction re-locked the whole group (one broadcast
  // each), and its downlink bytes were charged.
  EXPECT_EQ(stats.broadcasts, stats.updates_applied);
  EXPECT_GT(stats.broadcast_bytes, 0);

  ASSERT_TRUE(manager.VerifyFusedConsistency().ok());
  EXPECT_FALSE(manager.fused_degraded(1).value());
  // The fused answer tracks the drifting truth within the trigger.
  EXPECT_NEAR(manager.AnswerFused(1).value()[0], 0.05 * (kTicks - 1), 0.5);
}

TEST(FusionEngineTest, PosteriorInformationMatchesMomentAnswer) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(2, {10, 11}, 0.25)).ok());
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(
        manager.ProcessTick(RedundantReadings({10, 11}, 0.2 * t)).ok());
  }
  ASSERT_FALSE(manager.fused_degraded(2).value());

  auto info_or = manager.fusion().PosteriorInformation(2);
  ASSERT_TRUE(info_or.ok()) << info_or.status().message();
  auto moments_or = FromInformation(info_or.value());
  ASSERT_TRUE(moments_or.ok());
  auto answer_or = manager.AnswerFusedWithConfidence(2);
  ASSERT_TRUE(answer_or.ok());
  // Scalar model with H = I: the information-form coordinates invert to
  // exactly the served moments (no degraded inflation on a live group).
  EXPECT_NEAR(moments_or.value().state[0], answer_or.value().value[0],
              1e-9);
  EXPECT_NEAR(moments_or.value().covariance(0, 0),
              answer_or.value().covariance(0, 0), 1e-9);
  EXPECT_FALSE(answer_or.value().degraded);
}

TEST(FusionEngineTest, UnknownGroupAndMemberLookups) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(1, {10})).ok());

  EXPECT_EQ(manager.AnswerFused(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.AnswerFusedWithConfidence(99).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.fused_degraded(99).status().code(),
            StatusCode::kNotFound);
  // A fusion member is not a queryable per-source stream.
  EXPECT_FALSE(manager.Answer(10).ok());
}

// ---- fused queries drive the group trigger ---------------------------

TEST(FusionEngineTest, FusedQueriesTightenAndRelaxGroupDelta) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(
      manager.RegisterFusionGroup(GroupOf(1, {10, 11}, /*delta=*/4.0)).ok());
  EXPECT_EQ(manager.fusion().group_delta(1).value(), 4.0);

  FusedQuery coarse;
  coarse.id = 1;
  coarse.group_id = 1;
  coarse.precision = 2.0;
  ASSERT_TRUE(manager.SubmitFusedQuery(coarse).ok());
  EXPECT_EQ(manager.fusion().group_delta(1).value(), 2.0);

  FusedQuery tight;
  tight.id = 2;
  tight.group_id = 1;
  tight.precision = 0.5;
  ASSERT_TRUE(manager.SubmitFusedQuery(tight).ok());
  EXPECT_EQ(manager.fusion().group_delta(1).value(), 0.5);

  // Removing the tight query relaxes to the survivor; removing the last
  // query reverts to the registration-time trigger.
  ASSERT_TRUE(manager.RemoveFusedQuery(2).ok());
  EXPECT_EQ(manager.fusion().group_delta(1).value(), 2.0);
  ASSERT_TRUE(manager.RemoveFusedQuery(1).ok());
  EXPECT_EQ(manager.fusion().group_delta(1).value(), 4.0);
  EXPECT_EQ(manager.fusion().group_base_delta(1).value(), 4.0);

  // Validation: unknown group, reserved id range, duplicate id, unknown
  // removal.
  FusedQuery orphan;
  orphan.id = 3;
  orphan.group_id = 99;
  orphan.precision = 1.0;
  EXPECT_EQ(manager.SubmitFusedQuery(orphan).code(),
            StatusCode::kNotFound);
  FusedQuery reserved;
  reserved.id = kReservedQueryIdBase;
  reserved.group_id = 1;
  reserved.precision = 1.0;
  EXPECT_EQ(manager.SubmitFusedQuery(reserved).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(manager.SubmitFusedQuery(coarse).ok());
  EXPECT_FALSE(manager.SubmitFusedQuery(coarse).ok());
  EXPECT_FALSE(manager.RemoveFusedQuery(77).ok());
}

TEST(FusionEngineTest, TighterTriggerBuysMoreTransmissions) {
  // The event trigger is live: the same workload under a 10x tighter
  // delta transmits strictly more (precision costs uplink, docs/fusion.md
  // §2 — the fused analogue of the paper's delta/accuracy dial).
  auto run = [](double delta) {
    StreamManagerOptions options;
    StreamManager manager(options);
    EXPECT_TRUE(
        manager.RegisterFusionGroup(GroupOf(1, {10, 11}, delta)).ok());
    Rng rng(17);
    double truth = 0.0;
    for (int64_t t = 0; t < 80; ++t) {
      truth += rng.Gaussian(0.0, 0.4);
      EXPECT_TRUE(
          manager.ProcessTick(RedundantReadings({10, 11}, truth)).ok());
    }
    return manager.fusion_stats().transmissions;
  };
  EXPECT_GT(run(0.2), run(2.0));
}

// ---- fused continuous subscriptions ----------------------------------

TEST(FusionEngineTest, FusedSubscriptionDeliversOnGroupMovement) {
  StreamManagerOptions options;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(4, {10, 11}, 0.5)).ok());

  Subscription fused;
  fused.id = 1;
  fused.kind = SubscriptionKind::kFused;
  fused.group_id = 4;
  ASSERT_TRUE(manager.Subscribe(fused).ok());

  // A subscription against an unregistered group is refused at attach.
  Subscription orphan;
  orphan.id = 2;
  orphan.kind = SubscriptionKind::kFused;
  orphan.group_id = 99;
  EXPECT_FALSE(manager.Subscribe(orphan).ok());

  for (int64_t t = 0; t < 30; ++t) {
    ASSERT_TRUE(
        manager.ProcessTick(RedundantReadings({10, 11}, 0.3 * t)).ok());
  }

  const std::vector<NotificationBatch> batches =
      manager.DrainNotifications();
  ASSERT_FALSE(batches.empty());
  int64_t updates = 0;
  bool saw_initial = false;
  for (const NotificationBatch& batch : batches) {
    for (const Notification& notification : batch.notifications) {
      ASSERT_EQ(notification.subscription_id, 1);
      ASSERT_EQ(notification.source_id, FusedSourceKey(4));
      ASSERT_TRUE(IsFusedSourceKey(notification.source_id));
      if (notification.kind == NotificationKind::kInitial) {
        saw_initial = true;
      } else {
        ASSERT_EQ(notification.kind, NotificationKind::kFusedUpdate);
        ++updates;
      }
    }
  }
  EXPECT_TRUE(saw_initial);
  // The posterior moved on (nearly) every correction of the ramp.
  EXPECT_GT(updates, 10);
  ASSERT_TRUE(manager.Unsubscribe(1).ok());
  EXPECT_EQ(manager.num_subscriptions(), 0u);
}

// ---- degrade / heal --------------------------------------------------

TEST(FusionEngineTest, OutageDegradesFusedAnswerAndHealsOnBroadcast) {
  // A scheduled radio blackout silences the whole group (uplink and the
  // re-lock downlink). Past the staleness budget the fused answer is
  // served degraded with inflated covariance; the first applied
  // correction after the window re-locks every mirror and heals it.
  StreamManagerOptions options;
  options.channel.fault.outages.push_back(
      OutageWindow{/*start=*/20, /*end=*/40});
  options.channel.fault.active_until = 200;
  options.protocol.heartbeat_interval = 3;
  options.protocol.staleness_budget = 5;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterFusionGroup(GroupOf(1, {10, 11}, 0.5)).ok());

  double healthy_uncertainty = 0.0;
  bool degraded_during_outage = false;
  double degraded_uncertainty = 0.0;
  for (int64_t t = 0; t < 80; ++t) {
    ASSERT_TRUE(
        manager.ProcessTick(RedundantReadings({10, 11}, 0.2 * t)).ok());
    const bool degraded = manager.fused_degraded(1).value();
    if (t == 18) {
      ASSERT_FALSE(degraded) << "degraded before the outage";
      healthy_uncertainty =
          manager.AnswerFusedWithConfidence(1).value().covariance(0, 0);
    }
    if (t >= 20 && t < 40 && degraded) {
      degraded_during_outage = true;
      degraded_uncertainty =
          manager.AnswerFusedWithConfidence(1).value().covariance(0, 0);
      EXPECT_TRUE(manager.AnswerFusedWithConfidence(1).value().degraded);
    }
  }
  EXPECT_TRUE(degraded_during_outage);
  // Degraded inflation is multiplicative in the overdue span.
  EXPECT_GT(degraded_uncertainty, healthy_uncertainty);
  // Healed well after the window: corrections flowed, broadcasts
  // re-locked the mirrors, and the consistency contract holds again.
  EXPECT_FALSE(manager.fused_degraded(1).value());
  EXPECT_TRUE(manager.VerifyFusedConsistency().ok());
  EXPECT_GT(manager.fusion_stats().faults.degraded_ticks, 0);
}

}  // namespace
}  // namespace dkf
