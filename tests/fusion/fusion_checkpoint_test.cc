// Checkpoint coverage for the fusion subsystem (snapshot v5,
// docs/checkpoint.md): a snapshot taken mid-outage carries every fused
// posterior, member mirror, protocol cursor, and channel lane, and the
// restored run — into either engine, at any shard count — continues
// bit-identically. Downgraded (v1–v4) encodings drop the fusion section
// and every fused serve artifact, and still load.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/snapshot_io.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"
#include "serve/subscription.h"

namespace dkf {
namespace {

constexpr int kGroupId = 4;
constexpr int kPlainSource = 1;
constexpr int64_t kTicks = 220;
/// Inside the 100..115 outage window, so the checkpoint catches stale
/// fused mirrors, pending resyncs, and staged in-flight fused frames.
constexpr int64_t kSnapTick = 110;
constexpr int64_t kJoinTick = 60;
constexpr int64_t kLeaveTick = 80;
constexpr int kJoiner = 103;
constexpr int kLeaver = 101;

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ChannelOptions ChaosChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.1;
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = 180;
  options.fault = fault;
  return options;
}

ProtocolOptions ChaosProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 3;
  protocol.staleness_budget = 5;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  return protocol;
}

std::vector<int> ActiveMembers(int64_t tick) {
  std::vector<int> members = {100, 101, 102};
  if (tick >= kJoinTick) members.push_back(kJoiner);
  if (tick >= kLeaveTick) std::erase(members, kLeaver);
  return members;
}

std::map<int, Vector> ReadingsAt(int64_t tick) {
  std::map<int, Vector> readings;
  readings[kPlainSource] =
      Vector{std::sin(0.05 * static_cast<double>(tick))};
  const double truth = 0.04 * static_cast<double>(tick) +
                       2.0 * std::sin(0.08 * static_cast<double>(tick));
  for (int id : ActiveMembers(tick)) {
    readings[id] = Vector{
        truth + 0.03 * std::sin(0.9 * static_cast<double>(tick) + id)};
  }
  return readings;
}

template <typename System>
void InstallWorkload(System& system) {
  ASSERT_TRUE(system.RegisterSource(kPlainSource, ScalarModel()).ok());
  ContinuousQuery query;
  query.id = 1;
  query.source_id = kPlainSource;
  query.precision = 1.0;
  ASSERT_TRUE(system.SubmitQuery(query).ok());
  FusionGroupConfig group;
  group.group_id = kGroupId;
  group.model = ScalarModel(0.04);
  group.member_ids = {100, 101, 102};
  group.delta = 3.0;
  ASSERT_TRUE(system.RegisterFusionGroup(group).ok());
  FusedQuery fused_query;
  fused_query.id = 9;
  fused_query.group_id = kGroupId;
  fused_query.precision = 0.8;
  fused_query.description = "fused temperature";
  ASSERT_TRUE(system.SubmitFusedQuery(fused_query).ok());
  Subscription fused_sub;
  fused_sub.id = 2;
  fused_sub.kind = SubscriptionKind::kFused;
  fused_sub.group_id = kGroupId;
  ASSERT_TRUE(system.Subscribe(fused_sub).ok());
  // A plain subscription rides along so the v1-v4 downgrade filter has
  // something it must KEEP while dropping the fused artifacts.
  Subscription point_sub;
  point_sub.id = 3;
  point_sub.kind = SubscriptionKind::kPoint;
  point_sub.source_id = kPlainSource;
  ASSERT_TRUE(system.Subscribe(point_sub).ok());
}

/// Drives `system` over [from, to), churning membership at the fixed
/// ticks (only when they fall inside the window).
template <typename System>
void Drive(System& system, int64_t from, int64_t to) {
  for (int64_t t = from; t < to; ++t) {
    if (t == kJoinTick) {
      ASSERT_TRUE(system.AddFusionMember(kGroupId, kJoiner).ok());
    }
    if (t == kLeaveTick) {
      ASSERT_TRUE(system.RemoveFusionMember(kGroupId, kLeaver).ok());
    }
    ASSERT_TRUE(system.ProcessTick(ReadingsAt(t)).ok()) << "tick " << t;
  }
}

/// The uninterrupted run: per-tick fused answers from the snapshot tick
/// on, the late notification stream, and final accounting — plus the
/// snapshot its interrupted twin saved mid-outage (after the membership
/// churn, so the churned roster rides through the checkpoint).
struct CheckpointReference {
  std::string snapshot_path;
  std::vector<double> fused;     // [t - kSnapTick]
  std::vector<bool> degraded;    // [t - kSnapTick]
  std::vector<double> plain;     // [t - kSnapTick]
  FusionStats stats;
  std::vector<NotificationBatch> late;  // drained at kSnapTick and at end
};

const CheckpointReference& GetCheckpointReference() {
  static const CheckpointReference* const reference = [] {
    auto* ref = new CheckpointReference();
    ref->snapshot_path =
        ::testing::TempDir() + "/fusion_chaos.dkfsnap";
    StreamManagerOptions options;
    options.channel = ChaosChannel();
    options.protocol = ChaosProtocol();

    StreamManager manager(options);
    InstallWorkload(manager);
    Drive(manager, 0, kSnapTick);
    // No drain before the snapshot point: the undrained buffer (which
    // holds fused notifications from before the save) must ride through
    // the checkpoint, so the end-of-run drain covers the whole run for
    // both the reference and every restored system.
    for (int64_t t = kSnapTick; t < kTicks; ++t) {
      EXPECT_TRUE(manager.ProcessTick(ReadingsAt(t)).ok()) << "tick " << t;
      ref->fused.push_back(manager.AnswerFused(kGroupId).value()[0]);
      ref->degraded.push_back(manager.fused_degraded(kGroupId).value());
      ref->plain.push_back(manager.Answer(kPlainSource).value()[0]);
    }
    ref->stats = manager.fusion_stats();
    ref->late = manager.DrainNotifications();
    EXPECT_TRUE(manager.VerifyFusedConsistency().ok());
    EXPECT_GT(ref->stats.faults.resyncs_applied, 0);

    StreamManager twin(options);
    InstallWorkload(twin);
    Drive(twin, 0, kSnapTick);
    EXPECT_TRUE(twin.Save(ref->snapshot_path).ok());
    return ref;
  }();
  return *reference;
}

/// The churned roster came back (joiner present, leaver gone), and the
/// fused query survived: the group still runs the tightened trigger,
/// not its registration-time base.
void ExpectTopologyRestored(const StreamManager& system,
                            const std::string& label) {
  EXPECT_EQ(system.fusion().group_members(kGroupId).value(),
            (std::vector<int>{100, 102, kJoiner}))
      << label;
  EXPECT_EQ(system.fusion().group_delta(kGroupId).value(), 0.8) << label;
}

void ExpectTopologyRestored(const ShardedStreamEngine& system,
                            const std::string& label) {
  EXPECT_EQ(system.num_fusion_groups(), 1u) << label;
  EXPECT_EQ(system.num_fusion_members(), 3u) << label;
}

template <typename System>
void FinishAndExpectIdentical(System& system, const std::string& label) {
  const CheckpointReference& ref = GetCheckpointReference();
  ASSERT_EQ(system.ticks(), kSnapTick) << label;
  ExpectTopologyRestored(system, label);
  EXPECT_EQ(system.num_subscriptions(), 2u) << label;

  for (int64_t t = kSnapTick; t < kTicks; ++t) {
    ASSERT_TRUE(system.ProcessTick(ReadingsAt(t)).ok())
        << label << " tick " << t;
    const size_t i = static_cast<size_t>(t - kSnapTick);
    ASSERT_EQ(system.AnswerFused(kGroupId).value()[0], ref.fused[i])
        << label << " tick " << t;
    ASSERT_EQ(system.fused_degraded(kGroupId).value(), ref.degraded[i])
        << label << " tick " << t;
    ASSERT_EQ(system.Answer(kPlainSource).value()[0], ref.plain[i])
        << label << " tick " << t;
  }
  const FusionStats stats = system.fusion_stats();
  EXPECT_EQ(stats.updates_applied, ref.stats.updates_applied) << label;
  EXPECT_EQ(stats.suppressed, ref.stats.suppressed) << label;
  EXPECT_EQ(stats.transmissions, ref.stats.transmissions) << label;
  EXPECT_EQ(stats.broadcasts, ref.stats.broadcasts) << label;
  EXPECT_EQ(stats.broadcast_bytes, ref.stats.broadcast_bytes) << label;
  EXPECT_EQ(stats.faults.resyncs_applied, ref.stats.faults.resyncs_applied)
      << label;
  EXPECT_EQ(stats.faults.degraded_ticks, ref.stats.faults.degraded_ticks)
      << label;
  EXPECT_TRUE(system.DrainNotifications() == ref.late)
      << label << ": fused notification stream differs";
  EXPECT_TRUE(system.VerifyFusedConsistency().ok()) << label;
  EXPECT_TRUE(system.VerifyMirrorConsistency().ok()) << label;
}

TEST(FusionCheckpointTest, ManagerRestoresFusionBitIdentically) {
  auto restored_or =
      StreamManager::Restore(GetCheckpointReference().snapshot_path);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  FinishAndExpectIdentical(*restored_or.value(), "manager->manager");
}

TEST(FusionCheckpointTest, ShardedRestoreKeepsFusionBitIdentical) {
  for (int shards : {1, 2, 4, 8}) {
    auto restored_or = ShardedStreamEngine::Restore(
        GetCheckpointReference().snapshot_path, shards);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
    ASSERT_EQ(restored_or.value()->num_shards(), shards);
    // The whole group landed on its pinned shard.
    EXPECT_EQ(restored_or.value()->fusion_group_shard(kGroupId),
              kGroupId % shards);
    FinishAndExpectIdentical(*restored_or.value(),
                             "manager->engine(" + std::to_string(shards) +
                                 ")");
  }
}

TEST(FusionCheckpointTest, EngineSnapshotRoundTripsThroughResharding) {
  // Save from a 3-shard engine (a count the restores never reuse) and
  // restore across layouts, including back into a single manager.
  const std::string path =
      ::testing::TempDir() + "/fusion_engine_chaos.dkfsnap";
  {
    ShardedStreamEngineOptions options;
    options.num_shards = 3;
    options.channel = ChaosChannel();
    options.protocol = ChaosProtocol();
    ShardedStreamEngine engine(options);
    InstallWorkload(engine);
    Drive(engine, 0, kSnapTick);
    ASSERT_TRUE(engine.Save(path).ok());
  }
  for (int shards : {1, 4}) {
    auto restored_or = ShardedStreamEngine::Restore(path, shards);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
    FinishAndExpectIdentical(*restored_or.value(),
                             "engine(3)->engine(" + std::to_string(shards) +
                                 ")");
  }
  auto manager_or = StreamManager::Restore(path);
  ASSERT_TRUE(manager_or.ok()) << manager_or.status().message();
  FinishAndExpectIdentical(*manager_or.value(), "engine(3)->manager");
}

TEST(FusionCheckpointTest, RestoredTopologyStaysReconfigurable) {
  auto restored_or =
      StreamManager::Restore(GetCheckpointReference().snapshot_path);
  ASSERT_TRUE(restored_or.ok());
  StreamManager& manager = *restored_or.value();
  // The member/source disjointness maps were rebuilt on restore.
  EXPECT_EQ(manager.AddFusionMember(kGroupId, kPlainSource).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.RegisterSource(100, ScalarModel()).code(),
            StatusCode::kAlreadyExists);
  // Query churn still works: removing the fused query relaxes the group
  // back to its registration-time trigger.
  ASSERT_TRUE(manager.RemoveFusedQuery(9).ok());
  EXPECT_EQ(manager.fusion().group_delta(kGroupId).value(), 3.0);
  ASSERT_TRUE(manager.RemoveFusionMember(kGroupId, 102).ok());
  EXPECT_EQ(manager.fusion().group_members(kGroupId).value(),
            (std::vector<int>{100, kJoiner}));
}

TEST(FusionCheckpointTest, DowngradedEncodingsDropFusionAndStillLoad) {
  // Re-encoding the v5 snapshot at v1–v4 must (a) drop the fusion
  // section, (b) filter the kFused subscription and every fused
  // notification out of the serve section, and (c) produce a file a
  // restore accepts.
  const CheckpointReference& ref = GetCheckpointReference();
  auto snapshot_or = LoadSnapshotFile(ref.snapshot_path);
  ASSERT_TRUE(snapshot_or.ok()) << snapshot_or.status().message();
  const EngineSnapshot& snapshot = snapshot_or.value();
  ASSERT_EQ(snapshot.fusion_groups.size(), 1u);
  ASSERT_EQ(snapshot.fused_queries.size(), 1u);
  ASSERT_EQ(snapshot.fusion_groups[0].group.members.size(), 3u);
  ASSERT_EQ(snapshot.fusion_groups[0].member_channels.size(), 3u);

  bool had_fused_notification = false;
  for (const NotificationBatch& batch : snapshot.serve.pending) {
    for (const Notification& notification : batch.notifications) {
      if (IsFusedSourceKey(notification.source_id)) {
        had_fused_notification = true;
      }
    }
  }
  EXPECT_TRUE(had_fused_notification)
      << "snapshot tick carries no buffered fused notification; the "
         "filtering below would be vacuous";

  for (uint32_t version = 1; version <= 4; ++version) {
    auto encoded_or = EncodeSnapshotForVersion(snapshot, version);
    ASSERT_TRUE(encoded_or.ok())
        << "v" << version << ": " << encoded_or.status().message();
    auto decoded_or = DecodeSnapshot(encoded_or.value());
    ASSERT_TRUE(decoded_or.ok())
        << "v" << version << ": " << decoded_or.status().message();
    const EngineSnapshot& decoded = decoded_or.value();
    EXPECT_TRUE(decoded.fusion_groups.empty()) << version;
    EXPECT_TRUE(decoded.fused_queries.empty()) << version;
    for (const ServeSubscriptionSnapshot& sub :
         decoded.serve.subscriptions) {
      EXPECT_NE(sub.spec.kind, SubscriptionKind::kFused) << version;
    }
    for (const NotificationBatch& batch : decoded.serve.pending) {
      EXPECT_FALSE(batch.notifications.empty()) << version;
      for (const Notification& notification : batch.notifications) {
        EXPECT_FALSE(IsFusedSourceKey(notification.source_id)) << version;
        EXPECT_NE(notification.kind, NotificationKind::kFusedUpdate)
            << version;
      }
    }
    // Everything else is era-appropriate and intact.
    EXPECT_EQ(decoded.ticks, kSnapTick) << version;
    EXPECT_EQ(decoded.sources.size(), 1u) << version;
    if (version >= 2) {
      EXPECT_FALSE(decoded.serve.subscriptions.empty()) << version;
    }

    // The downgraded image loads into a live engine: fusion-free, plain
    // source intact and driveable.
    const std::string path = ::testing::TempDir() + "/fusion_downgrade_v" +
                             std::to_string(version) + ".dkfsnap";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good());
      out.write(encoded_or.value().data(),
                static_cast<std::streamsize>(encoded_or.value().size()));
    }
    auto manager_or = StreamManager::Restore(path);
    ASSERT_TRUE(manager_or.ok())
        << "v" << version << ": " << manager_or.status().message();
    StreamManager& manager = *manager_or.value();
    EXPECT_EQ(manager.fusion().num_groups(), 0u) << version;
    EXPECT_EQ(manager.AnswerFused(kGroupId).status().code(),
              StatusCode::kNotFound)
        << version;
    std::map<int, Vector> reading{{kPlainSource, Vector{0.5}}};
    EXPECT_TRUE(manager.ProcessTick(reading).ok()) << version;
  }
}

}  // namespace
}  // namespace dkf
