#include "linalg/kernels.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/decompose.h"
#include "linalg/matrix.h"

namespace dkf {
namespace {

// The kernels advertise bit-identical results to the operator expressions
// they replace (see linalg/kernels.h). Every comparison in this file is
// exact `==` — a 1-ulp difference is a contract violation, because the
// dual-filter mirror protocol depends on both ends computing identical
// bits.

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      // Sprinkle exact zeros so the zero-skip branch in the multiply
      // kernels is exercised alongside the dense path.
      m(r, c) = rng.Bernoulli(0.2) ? 0.0 : rng.Gaussian(0.0, 10.0);
    }
  }
  return m;
}

Vector RandomVector(Rng& rng, size_t n) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng.Bernoulli(0.2) ? 0.0 : rng.Gaussian(0.0, 10.0);
  }
  return v;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c)) << "at (" << r << "," << c << ")";
    }
  }
}

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
}

// Dimensions under test: every inline size 1..6 plus a heap-fallback size
// (9 > kVectorInlineCapacity, 81 > kMatrixInlineCapacity).
const size_t kDims[] = {1, 2, 3, 4, 5, 6, 9};

TEST(KernelGoldenTest, MultiplyMatrixMatrix) {
  Rng rng(1);
  for (size_t n : kDims) {
    for (size_t m : kDims) {
      for (int rep = 0; rep < 5; ++rep) {
        const Matrix a = RandomMatrix(rng, n, m);
        const Matrix b = RandomMatrix(rng, m, n);
        Matrix out;
        MultiplyInto(a, b, &out);
        ExpectBitIdentical(out, a * b);
      }
    }
  }
}

TEST(KernelGoldenTest, MultiplyMatrixVector) {
  Rng rng(2);
  for (size_t n : kDims) {
    for (size_t m : kDims) {
      for (int rep = 0; rep < 5; ++rep) {
        const Matrix a = RandomMatrix(rng, n, m);
        const Vector v = RandomVector(rng, m);
        Vector out;
        MultiplyInto(a, v, &out);
        ExpectBitIdentical(out, a * v);
      }
    }
  }
}

TEST(KernelGoldenTest, MultiplyTransposed) {
  Rng rng(3);
  for (size_t n : kDims) {
    for (size_t m : kDims) {
      for (int rep = 0; rep < 5; ++rep) {
        const Matrix a = RandomMatrix(rng, n, m);
        const Matrix b = RandomMatrix(rng, n, m);  // b^T is m x n
        Matrix out;
        MultiplyTransposedInto(a, b, &out);
        ExpectBitIdentical(out, a * b.Transpose());
      }
    }
  }
}

TEST(KernelGoldenTest, AddScaledMatchesOperators) {
  Rng rng(4);
  for (size_t n : kDims) {
    const Matrix a = RandomMatrix(rng, n, n);
    const Matrix b = RandomMatrix(rng, n, n);
    Matrix out;
    AddScaledInto(a, b, 1.0, &out);
    ExpectBitIdentical(out, a + b);
    AddScaledInto(a, b, -1.0, &out);
    ExpectBitIdentical(out, a - b);
    AddScaledInto(a, b, 0.5, &out);
    ExpectBitIdentical(out, a + b * 0.5);

    const Vector va = RandomVector(rng, n);
    const Vector vb = RandomVector(rng, n);
    Vector vout;
    AddScaledInto(va, vb, -1.0, &vout);
    ExpectBitIdentical(vout, va - vb);
  }
}

TEST(KernelGoldenTest, AddScaledAllowsAliasing) {
  Rng rng(5);
  const Matrix a = RandomMatrix(rng, 4, 4);
  const Matrix b = RandomMatrix(rng, 4, 4);
  Matrix out = a;
  AddScaledInto(out, b, -1.0, &out);  // out aliases the first operand
  ExpectBitIdentical(out, a - b);
  out = b;
  AddScaledInto(a, out, 2.0, &out);  // out aliases the second operand
  ExpectBitIdentical(out, a + b * 2.0);
}

TEST(KernelGoldenTest, SymmetrizeMatchesMemberFunction) {
  Rng rng(6);
  for (size_t n : kDims) {
    const Matrix a = RandomMatrix(rng, n, n);
    Matrix expected = a;
    expected.Symmetrize();
    Matrix out;
    SymmetrizeInto(a, &out);
    ExpectBitIdentical(out, expected);
    // Aliased form.
    Matrix aliased = a;
    SymmetrizeInto(aliased, &aliased);
    ExpectBitIdentical(aliased, expected);
  }
}

TEST(KernelGoldenTest, LuFactorAndSolveMatchDecomposition) {
  Rng rng(7);
  for (size_t n : kDims) {
    for (int rep = 0; rep < 5; ++rep) {
      // Diagonally-dominated matrices are safely invertible.
      Matrix a = RandomMatrix(rng, n, n);
      for (size_t i = 0; i < n; ++i) a(i, i) += 50.0;
      const Vector b = RandomVector(rng, n);

      auto lu_or = LuDecomposition::Compute(a);
      ASSERT_TRUE(lu_or.ok());
      auto x_ref_or = lu_or.value().Solve(b);
      ASSERT_TRUE(x_ref_or.ok());

      Matrix factored = a;
      std::vector<size_t> pivots;
      ASSERT_TRUE(LuFactorInPlace(&factored, &pivots).ok());
      Vector x;
      ASSERT_TRUE(LuSolveInto(factored, pivots, b, &x).ok());

      ExpectBitIdentical(x, x_ref_or.value());
    }
  }
}

TEST(KernelGoldenTest, ScratchReuseAcrossShapes) {
  // Recycling one scratch object through different shapes (the filter
  // workspace pattern) must produce the same bits as fresh outputs.
  Rng rng(8);
  Matrix scratch;
  Vector vscratch;
  for (size_t n : kDims) {
    const Matrix a = RandomMatrix(rng, n, n);
    const Matrix b = RandomMatrix(rng, n, n);
    MultiplyInto(a, b, &scratch);
    ExpectBitIdentical(scratch, a * b);
    const Vector v = RandomVector(rng, n);
    MultiplyInto(a, v, &vscratch);
    ExpectBitIdentical(vscratch, a * v);
  }
  // Shrink back down after the heap-fallback size: capacity is retained
  // but the visible shape and contents must be exact.
  const Matrix small = RandomMatrix(rng, 2, 2);
  MultiplyInto(small, small, &scratch);
  ExpectBitIdentical(scratch, small * small);
}

TEST(InlineStorageTest, CopyAndMovePreserveValues) {
  Rng rng(9);
  for (size_t n : {size_t{3}, size_t{6}, size_t{9}}) {  // inline and heap
    const Vector v = RandomVector(rng, n);
    Vector copy = v;
    ExpectBitIdentical(copy, v);
    Vector moved = std::move(copy);
    ExpectBitIdentical(moved, v);
    copy = moved;  // copy-assign back over moved-from object
    ExpectBitIdentical(copy, v);

    const Matrix m = RandomMatrix(rng, n, n);
    Matrix mcopy = m;
    ExpectBitIdentical(mcopy, m);
    Matrix mmoved = std::move(mcopy);
    ExpectBitIdentical(mmoved, m);
    mcopy = mmoved;
    ExpectBitIdentical(mcopy, m);
  }
}

TEST(InlineStorageTest, GrowAcrossInlineBoundary) {
  // A vector that grows from inline into heap storage (and a matrix
  // likewise) must carry no stale values: AssignZero gives all-zeros at
  // the new shape.
  Vector v(3);
  for (size_t i = 0; i < 3; ++i) v[i] = 1.0 + i;
  v.AssignZero(10);
  ASSERT_EQ(v.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(v[i], 0.0);

  Matrix m = Matrix::Identity(4);
  m.AssignZero(10, 10);
  ASSERT_EQ(m.rows(), 10u);
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 10; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(InlineStorageTest, ToStdVectorRoundTrip) {
  Rng rng(10);
  const Vector v = RandomVector(rng, 5);
  const std::vector<double> out = v.ToStdVector();
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], v[i]);
  const Vector back(out);
  ExpectBitIdentical(back, v);
}

}  // namespace
}  // namespace dkf
