#include "linalg/decompose.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  auto lu_or = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu_or.ok());
  auto x_or = lu_or.value().Solve(Vector{3.0, 5.0});
  ASSERT_TRUE(x_or.ok());
  // Solution of 2x + y = 3, x + 3y = 5 is x = 4/5, y = 7/5.
  EXPECT_NEAR(x_or.value()[0], 0.8, 1e-12);
  EXPECT_NEAR(x_or.value()[1], 1.4, 1e-12);
}

TEST(LuTest, PivotsWhenDiagonalIsZero) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto lu_or = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu_or.ok());
  auto x_or = lu_or.value().Solve(Vector{2.0, 3.0});
  ASSERT_TRUE(x_or.ok());
  EXPECT_NEAR(x_or.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x_or.value()[1], 2.0, 1e-12);
}

TEST(LuTest, DetectsSingularMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_EQ(LuDecomposition::Compute(a).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LuTest, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_EQ(LuDecomposition::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  auto lu_or = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu_or.ok());
  auto inv_or = lu_or.value().Inverse();
  ASSERT_TRUE(inv_or.ok());
  const Matrix prod = a * inv_or.value();
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(2)), 1e-12);
}

TEST(LuTest, DeterminantWithPivotSign) {
  // det = 4*6 - 7*2 = 10.
  auto lu_or = LuDecomposition::Compute(Matrix{{4.0, 7.0}, {2.0, 6.0}});
  ASSERT_TRUE(lu_or.ok());
  EXPECT_NEAR(lu_or.value().Determinant(), 10.0, 1e-12);

  // Swapped rows: det flips sign.
  auto lu2_or = LuDecomposition::Compute(Matrix{{2.0, 6.0}, {4.0, 7.0}});
  ASSERT_TRUE(lu2_or.ok());
  EXPECT_NEAR(lu2_or.value().Determinant(), -10.0, 1e-12);
}

TEST(LuTest, MatrixRhsSolve) {
  const Matrix a{{3.0, 0.0}, {0.0, 2.0}};
  auto lu_or = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu_or.ok());
  auto x_or = lu_or.value().Solve(Matrix{{3.0, 6.0}, {2.0, 4.0}});
  ASSERT_TRUE(x_or.ok());
  EXPECT_NEAR(x_or.value()(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x_or.value()(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x_or.value()(1, 1), 2.0, 1e-12);
}

TEST(LuTest, RhsSizeChecked) {
  auto lu_or = LuDecomposition::Compute(Matrix::Identity(2));
  ASSERT_TRUE(lu_or.ok());
  EXPECT_FALSE(lu_or.value().Solve(Vector{1.0, 2.0, 3.0}).ok());
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto chol_or = CholeskyDecomposition::Compute(a);
  ASSERT_TRUE(chol_or.ok());
  const Matrix& l = chol_or.value().L();
  const Matrix reconstructed = l * l.Transpose();
  EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-12);
}

TEST(CholeskyTest, SolveMatchesLu) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Vector b{1.0, 2.0};
  auto chol_or = CholeskyDecomposition::Compute(a);
  ASSERT_TRUE(chol_or.ok());
  auto x_chol_or = chol_or.value().Solve(b);
  ASSERT_TRUE(x_chol_or.ok());
  auto x_lu_or = SolveLinear(a, b);
  ASSERT_TRUE(x_lu_or.ok());
  EXPECT_NEAR(x_chol_or.value()[0], x_lu_or.value()[0], 1e-12);
  EXPECT_NEAR(x_chol_or.value()[1], x_lu_or.value()[1], 1e-12);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_EQ(CholeskyDecomposition::Compute(a).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_EQ(CholeskyDecomposition::Compute(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, InverseOfSpd) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  auto chol_or = CholeskyDecomposition::Compute(a);
  ASSERT_TRUE(chol_or.ok());
  auto inv_or = chol_or.value().Inverse();
  ASSERT_TRUE(inv_or.ok());
  EXPECT_NEAR(inv_or.value()(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(inv_or.value()(1, 1), 0.25, 1e-12);
}

TEST(CholeskyTest, LogDeterminant) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  auto chol_or = CholeskyDecomposition::Compute(a);
  ASSERT_TRUE(chol_or.ok());
  EXPECT_NEAR(chol_or.value().LogDeterminant(), std::log(8.0), 1e-12);
}

TEST(LeastSquaresTest, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 2x + 1 at x = 0, 1, 2.
  const Matrix a{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  const Vector b{1.0, 3.0, 5.0};
  auto x_or = SolveLeastSquares(a, b);
  ASSERT_TRUE(x_or.ok());
  EXPECT_NEAR(x_or.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x_or.value()[1], 1.0, 1e-12);
}

TEST(LeastSquaresTest, MinimizesResidualOfNoisyFit) {
  // Classic line fit with one perturbed point: the normal-equation
  // solution is known in closed form; verify against it.
  const Matrix a{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}};
  const Vector b{0.0, 1.2, 1.9, 3.1};
  auto x_or = SolveLeastSquares(a, b);
  ASSERT_TRUE(x_or.ok());
  // Normal equations: A^T A x = A^T b.
  const Matrix ata = a.Transpose() * a;
  const Vector atb = a.Transpose() * b;
  auto expected_or = SolveLinear(ata, atb);
  ASSERT_TRUE(expected_or.ok());
  EXPECT_NEAR(x_or.value()[0], expected_or.value()[0], 1e-10);
  EXPECT_NEAR(x_or.value()[1], expected_or.value()[1], 1e-10);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  EXPECT_EQ(SolveLeastSquares(Matrix(1, 2), Vector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LeastSquaresTest, RejectsRankDeficient) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(SolveLeastSquares(a, Vector{1.0, 1.0, 1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConvenienceTest, InverseAndSolve) {
  const Matrix a{{2.0, 0.0}, {0.0, 5.0}};
  auto inv_or = Inverse(a);
  ASSERT_TRUE(inv_or.ok());
  EXPECT_NEAR(inv_or.value()(1, 1), 0.2, 1e-12);
  auto x_or = SolveLinear(a, Vector{4.0, 10.0});
  ASSERT_TRUE(x_or.ok());
  EXPECT_NEAR(x_or.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x_or.value()[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace dkf
