#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/decompose.h"
#include "linalg/matrix.h"

namespace dkf {
namespace {

Matrix RandomMatrix(Rng* rng, size_t n) {
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

/// Random SPD matrix: A A^T + n * I is symmetric positive definite.
Matrix RandomSpd(Rng* rng, size_t n) {
  const Matrix a = RandomMatrix(rng, n);
  Matrix spd = a * a.Transpose();
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

Vector RandomVector(Rng* rng, size_t n) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-5.0, 5.0);
  return v;
}

class LinalgPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LinalgPropertyTest, LuSolveResidualIsTiny) {
  const size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    // Random well-conditioned-ish matrix: diagonal dominance added.
    Matrix a = RandomMatrix(&rng, n);
    for (size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    const Vector b = RandomVector(&rng, n);
    auto lu_or = LuDecomposition::Compute(a);
    ASSERT_TRUE(lu_or.ok());
    auto x_or = lu_or.value().Solve(b);
    ASSERT_TRUE(x_or.ok());
    const Vector residual = a * x_or.value() - b;
    EXPECT_LT(residual.MaxAbs(), 1e-9);
  }
}

TEST_P(LinalgPropertyTest, LuInverseRoundTrips) {
  const size_t n = GetParam();
  Rng rng(2000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(&rng, n);
    for (size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    auto inv_or = Inverse(a);
    ASSERT_TRUE(inv_or.ok());
    EXPECT_LT((a * inv_or.value()).MaxAbsDiff(Matrix::Identity(n)), 1e-9);
    EXPECT_LT((inv_or.value() * a).MaxAbsDiff(Matrix::Identity(n)), 1e-9);
  }
}

TEST_P(LinalgPropertyTest, CholeskyAgreesWithLuOnSpd) {
  const size_t n = GetParam();
  Rng rng(3000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix spd = RandomSpd(&rng, n);
    const Vector b = RandomVector(&rng, n);
    auto chol_or = CholeskyDecomposition::Compute(spd);
    ASSERT_TRUE(chol_or.ok());
    auto x_chol_or = chol_or.value().Solve(b);
    ASSERT_TRUE(x_chol_or.ok());
    auto x_lu_or = SolveLinear(spd, b);
    ASSERT_TRUE(x_lu_or.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_chol_or.value()[i], x_lu_or.value()[i], 1e-8);
    }
  }
}

TEST_P(LinalgPropertyTest, CholeskyFactorReconstructs) {
  const size_t n = GetParam();
  Rng rng(4000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix spd = RandomSpd(&rng, n);
    auto chol_or = CholeskyDecomposition::Compute(spd);
    ASSERT_TRUE(chol_or.ok());
    const Matrix& l = chol_or.value().L();
    EXPECT_LT((l * l.Transpose()).MaxAbsDiff(spd), 1e-9);
  }
}

TEST_P(LinalgPropertyTest, DeterminantMatchesLogDetOnSpd) {
  const size_t n = GetParam();
  Rng rng(5000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix spd = RandomSpd(&rng, n);
    auto lu_or = LuDecomposition::Compute(spd);
    auto chol_or = CholeskyDecomposition::Compute(spd);
    ASSERT_TRUE(lu_or.ok());
    ASSERT_TRUE(chol_or.ok());
    const double det = lu_or.value().Determinant();
    ASSERT_GT(det, 0.0);
    EXPECT_NEAR(std::log(det), chol_or.value().LogDeterminant(),
                1e-8 * std::fabs(chol_or.value().LogDeterminant()) + 1e-8);
  }
}

TEST_P(LinalgPropertyTest, TransposeIsInvolution) {
  const size_t n = GetParam();
  Rng rng(6000 + n);
  const Matrix a = RandomMatrix(&rng, n);
  EXPECT_LT(a.Transpose().Transpose().MaxAbsDiff(a), 0.0 + 1e-15);
}

TEST_P(LinalgPropertyTest, MatrixProductAssociativity) {
  const size_t n = GetParam();
  Rng rng(7000 + n);
  const Matrix a = RandomMatrix(&rng, n);
  const Matrix b = RandomMatrix(&rng, n);
  const Matrix c = RandomMatrix(&rng, n);
  EXPECT_LT(((a * b) * c).MaxAbsDiff(a * (b * c)), 1e-10);
}

TEST_P(LinalgPropertyTest, LeastSquaresSolvesSquareSystemExactly) {
  const size_t n = GetParam();
  Rng rng(8000 + n);
  Matrix a = RandomMatrix(&rng, n);
  for (size_t i = 0; i < n; ++i) a(i, i) += 4.0;
  const Vector b = RandomVector(&rng, n);
  auto qr_or = SolveLeastSquares(a, b);
  auto lu_or = SolveLinear(a, b);
  ASSERT_TRUE(qr_or.ok());
  ASSERT_TRUE(lu_or.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(qr_or.value()[i], lu_or.value()[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinalgPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace dkf
