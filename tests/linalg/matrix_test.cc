#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(VectorTest, ZeroInitialized) {
  Vector v(4);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(VectorTest, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, -1.0};
  const Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  const Vector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  const Vector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
  const Vector scaled2 = 3.0 * a;
  EXPECT_DOUBLE_EQ(scaled2[0], 3.0);
}

TEST(VectorTest, CompoundAssignment) {
  Vector a{1.0, 1.0};
  a += Vector{2.0, 3.0};
  EXPECT_DOUBLE_EQ(a[1], 4.0);
  a -= Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(a[0], 2.0);
}

TEST(VectorTest, DotAndNorm) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(VectorTest, Outer) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 4.0, 5.0};
  const Matrix outer = a.Outer(b);
  EXPECT_EQ(outer.rows(), 2u);
  EXPECT_EQ(outer.cols(), 3u);
  EXPECT_DOUBLE_EQ(outer(1, 2), 10.0);
}

TEST(VectorTest, IsFiniteDetectsNan) {
  Vector v{1.0, std::nan("")};
  EXPECT_FALSE(v.IsFinite());
  EXPECT_TRUE((Vector{1.0, 2.0}).IsFinite());
}

TEST(VectorTest, ToString) {
  EXPECT_EQ((Vector{1.0, 2.5}).ToString(), "[1, 2.5]");
}

TEST(MatrixTest, ConstructionFromLists) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, FactoryMatrices) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);

  const Matrix scaled = Matrix::ScaledIdentity(2, 0.05);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.05);

  const Matrix diag = Matrix::Diagonal(Vector{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(diag(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(diag(0, 2), 0.0);
}

TEST(MatrixTest, AdditionSubtraction) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
}

TEST(MatrixTest, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 3.0);
}

TEST(MatrixTest, RectangularProduct) {
  const Matrix a{{1.0, 2.0, 3.0}};           // 1x3
  const Matrix b{{1.0}, {2.0}, {3.0}};       // 3x1
  const Matrix ab = a * b;                   // 1x1
  EXPECT_EQ(ab.rows(), 1u);
  EXPECT_EQ(ab.cols(), 1u);
  EXPECT_DOUBLE_EQ(ab(0, 0), 14.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix m{{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  const Vector v{3.0, 4.0};
  const Vector mv = m * v;
  EXPECT_EQ(mv.size(), 3u);
  EXPECT_DOUBLE_EQ(mv[0], 3.0);
  EXPECT_DOUBLE_EQ(mv[1], 8.0);
  EXPECT_DOUBLE_EQ(mv[2], 7.0);
}

TEST(MatrixTest, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.Row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(m.Col(1)[0], 2.0);
}

TEST(MatrixTest, TraceAndMaxAbs) {
  const Matrix m{{1.0, -9.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(m.Trace(), 4.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 9.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 2.5}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, SymmetrizeAverages) {
  Matrix m{{1.0, 2.0}, {4.0, 1.0}};
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(MatrixTest, IsFiniteDetectsInf) {
  Matrix m{{1.0, INFINITY}};
  EXPECT_FALSE(m.IsFinite());
}

TEST(MatrixTest, ScalarProductCommutes) {
  const Matrix m{{2.0}};
  EXPECT_DOUBLE_EQ((m * 3.0)(0, 0), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * m)(0, 0), 6.0);
}

TEST(MatrixTest, ToString) {
  EXPECT_EQ((Matrix{{1.0, 2.0}, {3.0, 4.0}}).ToString(),
            "[[1, 2], [3, 4]]");
}

}  // namespace
}  // namespace dkf
