#include "dsms/stream_manager.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel LinearModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ContinuousQuery MakeQuery(int id, int source, double precision) {
  ContinuousQuery query;
  query.id = id;
  query.source_id = source;
  query.precision = precision;
  return query;
}

TEST(StreamManagerTest, SourceRegistrationLifecycle) {
  StreamManager manager{StreamManagerOptions{}};
  EXPECT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  EXPECT_EQ(manager.RegisterSource(1, LinearModel()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(manager.Answer(1).ok());
  EXPECT_EQ(manager.Answer(2).status().code(), StatusCode::kNotFound);
}

TEST(StreamManagerTest, QueryRequiresRegisteredSource) {
  StreamManager manager{StreamManagerOptions{}};
  EXPECT_EQ(manager.SubmitQuery(MakeQuery(1, 9, 2.0)).code(),
            StatusCode::kNotFound);
}

TEST(StreamManagerTest, ReservedQueryIdsRejected) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  EXPECT_EQ(manager.SubmitQuery(MakeQuery(1 << 24, 1, 2.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.RemoveQuery(1 << 24).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamManagerTest, QueryInstallsEffectiveDelta) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  EXPECT_GT(manager.source_delta(1).value(), 1e5);  // default, loose
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 4.0)).ok());
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 4.0);
  // Tighter query wins.
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 1.5)).ok());
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 1.5);
  // Removing it relaxes back.
  ASSERT_TRUE(manager.RemoveQuery(2).ok());
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 4.0);
  EXPECT_EQ(manager.control_messages(), 3);
}

TEST(StreamManagerTest, ProcessTickValidatesReadings) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.RegisterSource(2, LinearModel()).ok());
  EXPECT_FALSE(manager.ProcessTick({{1, Vector{1.0}}}).ok());
  EXPECT_FALSE(
      manager.ProcessTick({{1, Vector{1.0}}, {3, Vector{1.0}}}).ok());
  EXPECT_TRUE(
      manager.ProcessTick({{1, Vector{1.0}}, {2, Vector{2.0}}}).ok());
  EXPECT_EQ(manager.ticks(), 1);
}

TEST(StreamManagerTest, AnswersRespectPrecisionOnSuppressedTicks) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 3.0)).ok());
  Rng rng(1);
  double value = 0.0;
  double slope = 1.0;
  for (int i = 0; i < 1500; ++i) {
    if (i % 300 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope;
    const int64_t before = manager.updates_sent(1).value();
    ASSERT_TRUE(manager.ProcessTick({{1, Vector{value}}}).ok());
    const bool sent = manager.updates_sent(1).value() > before;
    if (!sent) {
      EXPECT_LE(std::fabs(manager.Answer(1).value()[0] - value),
                3.0 + 1e-9)
          << "tick " << i;
    }
  }
}

TEST(StreamManagerTest, MirrorConsistencyAcrossReconfiguration) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 5.0)).ok());
  Rng rng(2);
  double value = 0.0;
  for (int i = 0; i < 1200; ++i) {
    value += rng.Gaussian(0.4, 1.0);
    ASSERT_TRUE(manager.ProcessTick({{1, Vector{value}}}).ok());
    ASSERT_TRUE(manager.VerifyMirrorConsistency().ok()) << "tick " << i;
    // Query churn mid-stream: tighten, loosen, tighten again.
    if (i == 300) {
      ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 1.0)).ok());
    }
    if (i == 600) {
      ASSERT_TRUE(manager.RemoveQuery(2).ok());
    }
    if (i == 900) {
      ASSERT_TRUE(manager.SubmitQuery(MakeQuery(3, 1, 0.5)).ok());
    }
  }
}

TEST(StreamManagerTest, TighterQueryIncreasesUpdateRate) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 8.0)).ok());
  Rng rng(3);
  double value = 0.0;
  auto run_phase = [&](int ticks) {
    const int64_t before = manager.updates_sent(1).value();
    for (int i = 0; i < ticks; ++i) {
      value += rng.Gaussian(0.0, 1.5);  // drifting random walk
      EXPECT_TRUE(manager.ProcessTick({{1, Vector{value}}}).ok());
    }
    return manager.updates_sent(1).value() - before;
  };
  const int64_t loose_updates = run_phase(1500);
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 1.0)).ok());
  const int64_t tight_updates = run_phase(1500);
  EXPECT_GT(tight_updates, 2 * loose_updates);
}

TEST(StreamManagerTest, SmoothingQueryInstallsKfc) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ContinuousQuery query = MakeQuery(1, 1, 5.0);
  query.smoothing_factor = 1e-7;
  ASSERT_TRUE(manager.SubmitQuery(query).ok());

  // Extremely noisy but stationary stream: with KF_c installed the
  // protocol stream is nearly constant -> almost no updates.
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(manager
                    .ProcessTick(
                        {{1, Vector{50.0 + rng.Gaussian(0.0, 10.0)}}})
                    .ok());
  }
  EXPECT_LT(manager.updates_sent(1).value(), 50);
}

TEST(StreamManagerTest, ConfidenceAnswerAvailable) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.ProcessTick({{1, Vector{10.0}}}).ok());
  auto answer_or = manager.AnswerWithConfidence(1);
  ASSERT_TRUE(answer_or.ok());
  EXPECT_TRUE(answer_or.value().covariance.has_value());
}

TEST(StreamManagerTest, AggregateQueryLifecycle) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.RegisterSource(2, LinearModel()).ok());

  AggregateQuery aggregate;
  aggregate.id = 10;
  aggregate.source_ids = {1, 2};
  aggregate.precision = 6.0;

  // Unknown source fails cleanly.
  AggregateQuery bad = aggregate;
  bad.source_ids = {1, 9};
  EXPECT_EQ(manager.SubmitAggregateQuery(bad).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(manager.SubmitAggregateQuery(aggregate).ok());
  EXPECT_EQ(manager.SubmitAggregateQuery(aggregate).code(),
            StatusCode::kAlreadyExists);
  // Uniform split: each source runs at delta = 3.
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 3.0);
  EXPECT_DOUBLE_EQ(manager.source_delta(2).value(), 3.0);
  EXPECT_TRUE(manager.AnswerAggregate(10).ok());
  EXPECT_EQ(manager.AnswerAggregate(11).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(manager.RemoveAggregateQuery(10).ok());
  EXPECT_EQ(manager.RemoveAggregateQuery(10).code(), StatusCode::kNotFound);
  // Sources relaxed back to the default.
  EXPECT_GT(manager.source_delta(1).value(), 1e5);
}

TEST(StreamManagerTest, AggregateAnswerWithinPrecision) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.RegisterSource(2, LinearModel()).ok());
  ASSERT_TRUE(manager.RegisterSource(3, LinearModel()).ok());

  AggregateQuery aggregate;
  aggregate.id = 1;
  aggregate.source_ids = {1, 2, 3};
  aggregate.precision = 9.0;
  ASSERT_TRUE(manager.SubmitAggregateQuery(aggregate).ok());

  Rng rng(9);
  double a = 0.0;
  double b = 100.0;
  double c = -50.0;
  int violations = 0;
  for (int i = 0; i < 2000; ++i) {
    a += rng.Gaussian(0.3, 0.8);
    b += rng.Gaussian(-0.2, 0.8);
    c += rng.Gaussian(0.1, 0.8);
    ASSERT_TRUE(manager
                    .ProcessTick({{1, Vector{a}}, {2, Vector{b}},
                                  {3, Vector{c}}})
                    .ok());
    const double answered = manager.AnswerAggregate(1).value();
    // Update ticks correct toward (not exactly onto) the reading, so a
    // small overshoot is possible there; count strict violations of the
    // suppressed-tick bound with a tolerance for that.
    if (std::fabs(answered - (a + b + c)) > 9.0 + 0.5) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST(StreamManagerTest, WeightedAggregateSplit) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.RegisterSource(2, LinearModel()).ok());
  AggregateQuery aggregate;
  aggregate.id = 2;
  aggregate.source_ids = {1, 2};
  aggregate.precision = 9.0;
  ASSERT_TRUE(manager.SubmitAggregateQuery(aggregate, {2.0, 1.0}).ok());
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 6.0);
  EXPECT_DOUBLE_EQ(manager.source_delta(2).value(), 3.0);
}

TEST(StreamManagerTest, ReconfigurationUnderLossyChannel) {
  // Mid-stream set_delta / set_smoothing with a legacy lossy (but
  // reliable-ACK) uplink: reconfiguration rides the out-of-band
  // downlink, so strict mirror consistency must survive every change.
  StreamManagerOptions options;
  options.channel.drop_probability = 0.35;
  options.channel.seed = 21;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 6.0)).ok());

  Rng rng(17);
  double value = 0.0;
  for (int i = 0; i < 900; ++i) {
    // A calm phase makes tick 300's tightening land inside a
    // suppression run (no update in flight for many ticks).
    value += (i < 300) ? 0.001 : rng.Gaussian(0.3, 1.0);
    ASSERT_TRUE(manager.ProcessTick({{1, Vector{value}}}).ok());
    ASSERT_TRUE(manager.VerifyMirrorConsistency().ok()) << "tick " << i;
    if (i == 300) {
      ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 0.8)).ok());
      EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 0.8);
    }
    if (i == 500) {
      ContinuousQuery smoothing = MakeQuery(3, 1, 0.8);
      smoothing.smoothing_factor = 1e-3;
      ASSERT_TRUE(manager.SubmitQuery(smoothing).ok());
    }
    if (i == 700) {
      ASSERT_TRUE(manager.RemoveQuery(3).ok());
    }
  }
  // Loss must actually have occurred, and updates kept flowing after
  // every reconfiguration.
  EXPECT_GT(manager.uplink_traffic().dropped, 0);
  EXPECT_GT(manager.updates_sent(1).value(), 0);
}

TEST(StreamManagerTest, ReconfigurationDuringPendingResyncEpisode) {
  // ACK loss on every delivery until tick 60: the first transmission
  // starts a divergence episode that cannot heal while the fault is
  // active. Reconfiguring in the middle of that episode must neither
  // crash nor corrupt the link once it heals.
  StreamManagerOptions options;
  options.channel.seed = 5;
  options.channel.fault.ack_loss_probability = 1.0;
  options.channel.fault.active_until = 60;
  options.protocol.resync_burst_retries = 4;
  options.protocol.resync_retry_backoff = 6;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 3.0)).ok());

  Rng rng(23);
  double value = 0.0;
  bool reconfigured_while_pending = false;
  for (int i = 0; i < 200; ++i) {
    value += rng.Gaussian(0.5, 1.0);
    ASSERT_TRUE(manager.ProcessTick({{1, Vector{value}}}).ok());
    ASSERT_TRUE(manager.VerifyLinkConsistency().ok()) << "tick " << i;
    if (!reconfigured_while_pending && manager.resync_pending(1).value()) {
      // Mid-episode: tighten the delta AND install smoothing. Both only
      // touch pre-protocol state, so the frozen episode is unaffected.
      ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 0.5)).ok());
      ContinuousQuery smoothing = MakeQuery(3, 1, 0.5);
      smoothing.smoothing_factor = 1e-4;
      ASSERT_TRUE(manager.SubmitQuery(smoothing).ok());
      EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 0.5);
      reconfigured_while_pending = true;
    }
    if (i >= 80) {
      // Fault window + retry backoff long past: healed for good.
      ASSERT_FALSE(manager.resync_pending(1).value()) << "tick " << i;
      ASSERT_TRUE(manager.VerifyMirrorConsistency().ok()) << "tick " << i;
    }
  }
  ASSERT_TRUE(reconfigured_while_pending);
  EXPECT_GT(manager.fault_stats().divergence_events, 0);
  EXPECT_GT(manager.fault_stats().resyncs_applied, 0);
  // The tightened delta drives updates after the link heals.
  EXPECT_DOUBLE_EQ(manager.source_delta(1).value(), 0.5);
  EXPECT_GT(manager.updates_sent(1).value(), 0);
}

TEST(StreamManagerTest, RedundantQueryCausesNoControlMessage) {
  StreamManager manager{StreamManagerOptions{}};
  ASSERT_TRUE(manager.RegisterSource(1, LinearModel()).ok());
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(1, 1, 2.0)).ok());
  const int64_t after_first = manager.control_messages();
  // A looser query on the same source changes nothing at the source.
  ASSERT_TRUE(manager.SubmitQuery(MakeQuery(2, 1, 9.0)).ok());
  EXPECT_EQ(manager.control_messages(), after_first);
}

}  // namespace
}  // namespace dkf
