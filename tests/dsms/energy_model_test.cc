#include "dsms/energy_model.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(EnergyAccountTest, StartsAtZero) {
  EnergyAccount account{EnergyModelOptions{}};
  EXPECT_DOUBLE_EQ(account.total(), 0.0);
}

TEST(EnergyAccountTest, TransmissionChargedPerBit) {
  EnergyModelOptions options;
  options.instructions_per_bit = 100.0;
  EnergyAccount account(options);
  account.ChargeTransmission(10);  // 80 bits
  EXPECT_DOUBLE_EQ(account.transmission(), 8000.0);
  EXPECT_DOUBLE_EQ(account.total(), 8000.0);
}

TEST(EnergyAccountTest, ComputeAndSensingCharged) {
  EnergyModelOptions options;
  options.instructions_per_filter_step = 400.0;
  options.instructions_per_reading = 50.0;
  EnergyAccount account(options);
  account.ChargeFilterStep();
  account.ChargeFilterStep();
  account.ChargeReading();
  EXPECT_DOUBLE_EQ(account.compute(), 800.0);
  EXPECT_DOUBLE_EQ(account.sensing(), 50.0);
  EXPECT_DOUBLE_EQ(account.total(), 850.0);
}

TEST(EnergyAccountTest, PaperRatioMakesFilteringWorthwhile) {
  // §1: one transmitted bit costs 220-2900 instructions. Even at the
  // cheapest ratio, skipping a ~21-byte measurement message pays for many
  // filter steps.
  EnergyModelOptions options;
  options.instructions_per_bit = 220.0;  // the paper's most pessimistic
  options.instructions_per_filter_step = 400.0;
  EnergyAccount transmit(options);
  transmit.ChargeTransmission(21);
  EnergyAccount filter(options);
  filter.ChargeFilterStep();
  EXPECT_GT(transmit.total(), 50.0 * filter.total());
}

}  // namespace
}  // namespace dkf
