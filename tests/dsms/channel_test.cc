#include "dsms/channel.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

Message MakeMeasurement(int source_id, size_t payload_width) {
  Message message;
  message.type = MessageType::kMeasurement;
  message.source_id = source_id;
  message.tick = 5;
  message.payload = Vector(payload_width);
  return message;
}

TEST(MessageTest, MeasurementSizeBytes) {
  // Header 13 bytes + 8 per payload double.
  EXPECT_EQ(MakeMeasurement(0, 1).SizeBytes(), 13u + 8u);
  EXPECT_EQ(MakeMeasurement(0, 2).SizeBytes(), 13u + 16u);
}

TEST(MessageTest, ModelSwitchCarriesIndex) {
  Message message = MakeMeasurement(0, 1);
  message.type = MessageType::kModelSwitch;
  EXPECT_EQ(message.SizeBytes(), 13u + 8u + 4u);
}

TEST(ChannelTest, CountsMessagesAndBytes) {
  Channel channel(nullptr);
  ASSERT_TRUE(channel.Send(MakeMeasurement(1, 2)).ok());
  ASSERT_TRUE(channel.Send(MakeMeasurement(1, 2)).ok());
  ASSERT_TRUE(channel.Send(MakeMeasurement(2, 1)).ok());
  EXPECT_EQ(channel.total().messages, 3);
  EXPECT_EQ(channel.total().bytes,
            static_cast<int64_t>(2 * (13 + 16) + (13 + 8)));
  EXPECT_EQ(channel.for_source(1).messages, 2);
  EXPECT_EQ(channel.for_source(2).messages, 1);
  EXPECT_EQ(channel.for_source(3).messages, 0);
  EXPECT_EQ(channel.total().dropped, 0);
}

TEST(ChannelTest, DeliversToSink) {
  int delivered = 0;
  Channel channel([&delivered](const Message& message) {
    ++delivered;
    EXPECT_EQ(message.source_id, 7);
    return Status::OK();
  });
  auto sent_or = channel.Send(MakeMeasurement(7, 1));
  ASSERT_TRUE(sent_or.ok());
  EXPECT_TRUE(sent_or.value());
  EXPECT_EQ(delivered, 1);
}

TEST(ChannelTest, SinkErrorPropagates) {
  Channel channel(
      [](const Message&) { return Status::Internal("server down"); });
  EXPECT_EQ(channel.Send(MakeMeasurement(1, 1)).status().code(),
            StatusCode::kInternal);
  // Traffic is still accounted (the bits were spent on air regardless).
  EXPECT_EQ(channel.total().messages, 1);
}

TEST(ChannelTest, DropsAtConfiguredRate) {
  int delivered = 0;
  ChannelOptions options;
  options.drop_probability = 0.3;
  Channel channel(
      [&delivered](const Message&) {
        ++delivered;
        return Status::OK();
      },
      options);
  int reported_delivered = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    if (sent_or.value()) ++reported_delivered;
  }
  // The sender's view and the sink's view must agree exactly.
  EXPECT_EQ(reported_delivered, delivered);
  EXPECT_EQ(channel.total().dropped, n - delivered);
  EXPECT_NEAR(static_cast<double>(channel.total().dropped) / n, 0.3, 0.02);
  // All attempted traffic is accounted.
  EXPECT_EQ(channel.total().messages, n);
}

TEST(ChannelTest, ZeroDropNeverDrops) {
  Channel channel([](const Message&) { return Status::OK(); });
  for (int i = 0; i < 100; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    EXPECT_TRUE(sent_or.value());
  }
}

}  // namespace
}  // namespace dkf
