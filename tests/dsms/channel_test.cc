#include "dsms/channel.h"

#include <gtest/gtest.h>

#include <vector>

namespace dkf {
namespace {

Message MakeMeasurement(int source_id, size_t payload_width) {
  Message message;
  message.type = MessageType::kMeasurement;
  message.source_id = source_id;
  message.tick = 5;
  message.payload = Vector(payload_width);
  return message;
}

Message MakeSequenced(int source_id, int64_t tick, uint32_t sequence) {
  Message message = MakeMeasurement(source_id, 1);
  message.tick = tick;
  message.sequence = sequence;
  return message;
}

// --- Wire-format pins (the header is 21 bytes: 1 type + 4 source +
// --- 8 tick + 4 sequence + 4 checksum).

TEST(MessageTest, MeasurementSizeBytes) {
  EXPECT_EQ(MakeMeasurement(0, 1).SizeBytes(), 21u + 8u);
  EXPECT_EQ(MakeMeasurement(0, 2).SizeBytes(), 21u + 16u);
}

TEST(MessageTest, ModelSwitchCarriesIndex) {
  Message message = MakeMeasurement(0, 1);
  message.type = MessageType::kModelSwitch;
  EXPECT_EQ(message.SizeBytes(), 21u + 8u + 4u);
}

TEST(MessageTest, ResyncCarriesFullState) {
  Message message;
  message.type = MessageType::kResync;
  message.source_id = 1;
  message.resync_state = Vector(2);
  message.resync_covariance = Matrix(2, 2);
  message.resync_step = 40;
  // Header + state (2 doubles) + covariance (4 doubles) + step counter.
  EXPECT_EQ(message.SizeBytes(), 21u + 2u * 8u + 4u * 8u + 8u);
}

TEST(MessageTest, HeartbeatIsHeaderOnly) {
  Message message;
  message.type = MessageType::kHeartbeat;
  EXPECT_EQ(message.SizeBytes(), 21u);
}

TEST(MessageTest, ChecksumCoversPayloadAndSequence) {
  Message message = MakeMeasurement(1, 2);
  message.sequence = 7;
  const uint32_t base = message.ComputeChecksum();
  // The checksum field itself is excluded.
  message.checksum = 0xDEADBEEFu;
  EXPECT_EQ(message.ComputeChecksum(), base);
  // Every covered field perturbs it.
  message.payload[0] = 1.0;
  EXPECT_NE(message.ComputeChecksum(), base);
  message = MakeMeasurement(1, 2);
  message.sequence = 8;
  EXPECT_NE(message.ComputeChecksum(), base);
}

// --- Legacy reliable-link behavior (must be unchanged).

TEST(ChannelTest, CountsMessagesAndBytes) {
  Channel channel(nullptr);
  ASSERT_TRUE(channel.Send(MakeMeasurement(1, 2)).ok());
  ASSERT_TRUE(channel.Send(MakeMeasurement(1, 2)).ok());
  ASSERT_TRUE(channel.Send(MakeMeasurement(2, 1)).ok());
  EXPECT_EQ(channel.total().messages, 3);
  EXPECT_EQ(channel.total().bytes,
            static_cast<int64_t>(2 * (21 + 16) + (21 + 8)));
  EXPECT_EQ(channel.for_source(1).messages, 2);
  EXPECT_EQ(channel.for_source(2).messages, 1);
  EXPECT_EQ(channel.for_source(3).messages, 0);
  EXPECT_EQ(channel.total().dropped, 0);
}

TEST(ChannelTest, ForSourceIsConstAndNeverInserts) {
  Channel channel(nullptr);
  ASSERT_TRUE(channel.Send(MakeMeasurement(1, 1)).ok());
  // Callable through a const reference, and probing unknown ids
  // observes zeros without creating per-source entries.
  const Channel& read_only = channel;
  for (int id = 100; id < 110; ++id) {
    EXPECT_EQ(read_only.for_source(id).messages, 0);
    EXPECT_EQ(read_only.for_source(id).bytes, 0);
  }
  EXPECT_EQ(read_only.for_source(1).messages, 1);
}

TEST(ChannelTest, DeliversToSinkWithStampedChecksum) {
  int delivered = 0;
  Channel channel([&delivered](const Message& message) {
    ++delivered;
    EXPECT_EQ(message.source_id, 7);
    // The channel frames outgoing messages: the stamped checksum must
    // verify on arrival.
    EXPECT_EQ(message.checksum, message.ComputeChecksum());
    return Status::OK();
  });
  auto sent_or = channel.Send(MakeMeasurement(7, 1));
  ASSERT_TRUE(sent_or.ok());
  EXPECT_EQ(sent_or.value(), SendAck::kAcked);
  EXPECT_EQ(delivered, 1);
}

TEST(ChannelTest, SinkErrorPropagates) {
  Channel channel(
      [](const Message&) { return Status::Internal("server down"); });
  EXPECT_EQ(channel.Send(MakeMeasurement(1, 1)).status().code(),
            StatusCode::kInternal);
  // Traffic is still accounted (the bits were spent on air regardless).
  EXPECT_EQ(channel.total().messages, 1);
}

TEST(ChannelTest, DropsAtConfiguredRate) {
  int delivered = 0;
  ChannelOptions options;
  options.drop_probability = 0.3;
  Channel channel(
      [&delivered](const Message&) {
        ++delivered;
        return Status::OK();
      },
      options);
  int reported_delivered = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    // Without a fault model the ACK is reliable: never ambiguous.
    EXPECT_NE(sent_or.value(), SendAck::kNoAck);
    if (sent_or.value() == SendAck::kAcked) ++reported_delivered;
  }
  // The sender's view and the sink's view must agree exactly.
  EXPECT_EQ(reported_delivered, delivered);
  EXPECT_EQ(channel.total().dropped, n - delivered);
  EXPECT_NEAR(static_cast<double>(channel.total().dropped) / n, 0.3, 0.02);
  // All attempted traffic is accounted.
  EXPECT_EQ(channel.total().messages, n);
}

TEST(ChannelTest, ZeroDropNeverDrops) {
  Channel channel([](const Message&) { return Status::OK(); });
  for (int i = 0; i < 100; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    EXPECT_EQ(sent_or.value(), SendAck::kAcked);
  }
}

// --- Fault model: Gilbert–Elliott bursty loss.

TEST(ChannelFaultTest, GilbertElliottAllBadDropsEverything) {
  ChannelOptions options;
  options.fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/1.0, /*p_bad_to_good=*/0.0,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  int delivered = 0;
  Channel channel(
      [&delivered](const Message&) {
        ++delivered;
        return Status::OK();
      },
      options);
  for (int i = 0; i < 50; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    // GE loss keeps the reliable link-layer ACK unless ACK loss is also
    // configured: the sender knows the message is gone.
    EXPECT_EQ(sent_or.value(), SendAck::kDropped);
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.total().dropped, 50);
}

TEST(ChannelFaultTest, GilbertElliottStationaryLossRate) {
  ChannelOptions options;
  options.fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.1, /*p_bad_to_good=*/0.4,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  Channel channel([](const Message&) { return Status::OK(); }, options);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMeasurement(1, 1)).ok());
  }
  // Stationary bad-state probability = p_gb / (p_gb + p_bg) = 0.2.
  EXPECT_NEAR(static_cast<double>(channel.total().dropped) / n, 0.2, 0.03);
}

// --- Fault model: delivery delay, the in-flight queue, and deferred
// --- ACKs.

TEST(ChannelFaultTest, DelayedMessageDeliversOnDrainTick) {
  ChannelOptions options;
  options.fault.delay = DelayModel{/*min_ticks=*/2, /*max_ticks=*/2};
  std::vector<int64_t> delivered_ticks;
  Channel channel(
      [&delivered_ticks](const Message& message) {
        delivered_ticks.push_back(message.tick);
        return Status::OK();
      },
      options);
  auto sent_or = channel.Send(MakeSequenced(1, /*tick=*/5, /*sequence=*/9));
  ASSERT_TRUE(sent_or.ok());
  // In flight: the sender cannot know when (or whether) it lands.
  EXPECT_EQ(sent_or.value(), SendAck::kNoAck);
  EXPECT_EQ(channel.in_flight(), 1u);
  EXPECT_EQ(channel.total().delayed, 1);

  ASSERT_TRUE(channel.BeginTick(6).ok());
  EXPECT_TRUE(delivered_ticks.empty());
  EXPECT_FALSE(channel.has_deferred_acks());

  ASSERT_TRUE(channel.BeginTick(7).ok());
  ASSERT_EQ(delivered_ticks.size(), 1u);
  EXPECT_EQ(delivered_ticks[0], 5);
  EXPECT_EQ(channel.in_flight(), 0u);
  // The delayed delivery's ACK surfaces through TakeAcks.
  ASSERT_TRUE(channel.has_deferred_acks());
  EXPECT_EQ(channel.TakeAcks(1), std::vector<uint32_t>{9u});
  EXPECT_FALSE(channel.has_deferred_acks());
  EXPECT_TRUE(channel.TakeAcks(1).empty());
}

TEST(ChannelFaultTest, MixedDelaysReorderDeliveries) {
  ChannelOptions options;
  options.fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/3};
  std::vector<uint32_t> arrival_order;
  Channel channel(
      [&arrival_order](const Message& message) {
        arrival_order.push_back(message.sequence);
        return Status::OK();
      },
      options);
  for (int tick = 0; tick < 40; ++tick) {
    ASSERT_TRUE(channel.BeginTick(tick).ok());
    ASSERT_TRUE(
        channel.Send(MakeSequenced(1, tick, static_cast<uint32_t>(tick + 1)))
            .ok());
  }
  ASSERT_TRUE(channel.BeginTick(43).ok());
  ASSERT_EQ(arrival_order.size(), 40u);
  // Per-message uniform delays must have inverted at least one pair.
  bool reordered = false;
  for (size_t i = 1; i < arrival_order.size(); ++i) {
    if (arrival_order[i] < arrival_order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

// --- Fault model: scheduled outage windows.

TEST(ChannelFaultTest, OutageWindowSwallowsMessagesSilently) {
  ChannelOptions options;
  options.fault.outages.push_back(OutageWindow{/*start=*/10, /*end=*/12});
  int delivered = 0;
  Channel channel(
      [&delivered](const Message&) {
        ++delivered;
        return Status::OK();
      },
      options);
  auto send_at = [&channel](int64_t tick) {
    Message message = MakeMeasurement(1, 1);
    message.tick = tick;
    return channel.Send(message);
  };
  EXPECT_EQ(send_at(9).value(), SendAck::kAcked);
  EXPECT_EQ(send_at(10).value(), SendAck::kNoAck);
  EXPECT_EQ(send_at(11).value(), SendAck::kNoAck);
  EXPECT_EQ(send_at(12).value(), SendAck::kAcked);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(channel.total().outage_dropped, 2);
  EXPECT_EQ(channel.total().dropped, 2);
}

// --- Fault model: ACK loss and corruption (the divergence inducers).

TEST(ChannelFaultTest, LostAckDeliversButReportsAmbiguous) {
  ChannelOptions options;
  options.fault.ack_loss_probability = 1.0;
  int delivered = 0;
  Channel channel(
      [&delivered](const Message&) {
        ++delivered;
        return Status::OK();
      },
      options);
  auto sent_or = channel.Send(MakeMeasurement(1, 1));
  ASSERT_TRUE(sent_or.ok());
  EXPECT_EQ(sent_or.value(), SendAck::kNoAck);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.total().ack_lost, 1);
  EXPECT_EQ(channel.total().dropped, 0);
}

TEST(ChannelFaultTest, CorruptionBreaksChecksumAndAck) {
  ChannelOptions options;
  options.fault.corruption_probability = 1.0;
  int mismatches = 0;
  Channel channel(
      [&mismatches](const Message& message) {
        if (message.checksum != message.ComputeChecksum()) ++mismatches;
        return Status::OK();
      },
      options);
  for (int i = 0; i < 10; ++i) {
    auto sent_or = channel.Send(MakeMeasurement(1, 1));
    ASSERT_TRUE(sent_or.ok());
    EXPECT_EQ(sent_or.value(), SendAck::kNoAck);
  }
  // Every corrupted frame arrives, and every one fails verification.
  EXPECT_EQ(mismatches, 10);
  EXPECT_EQ(channel.total().corrupted, 10);
}

// --- Fault model: the active_until clean tail.

TEST(ChannelFaultTest, FaultsStopAtActiveUntil) {
  ChannelOptions options;
  options.fault.outages.push_back(OutageWindow{/*start=*/0, /*end=*/100});
  options.fault.active_until = 50;
  Channel channel([](const Message&) { return Status::OK(); }, options);
  Message message = MakeMeasurement(1, 1);
  message.tick = 49;
  EXPECT_EQ(channel.Send(message).value(), SendAck::kNoAck);
  message.tick = 50;
  // Past active_until the link is clean even inside the outage window.
  EXPECT_EQ(channel.Send(message).value(), SendAck::kAcked);
}

}  // namespace
}  // namespace dkf
