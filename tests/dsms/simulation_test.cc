#include "dsms/simulation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel LinearModel() {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  return model_or.value();
}

TimeSeries Ramp(size_t n, double slope) {
  TimeSeries series(1);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        series.Append(static_cast<double>(i), slope * static_cast<double>(i))
            .ok());
  }
  return series;
}

SimulationSourceConfig RampSource(int id, size_t n, double slope,
                                  double delta) {
  SimulationSourceConfig config;
  config.id = id;
  config.data = Ramp(n, slope);
  config.model = LinearModel();
  config.delta = delta;
  return config;
}

TEST(SimulationTest, CreateValidates) {
  EXPECT_FALSE(DsmsSimulation::Create({}).ok());

  // Duplicate ids.
  std::vector<SimulationSourceConfig> dup = {RampSource(1, 10, 1.0, 1.0),
                                             RampSource(1, 10, 1.0, 1.0)};
  EXPECT_FALSE(DsmsSimulation::Create(dup).ok());

  // Width mismatch.
  SimulationSourceConfig bad = RampSource(1, 10, 1.0, 1.0);
  auto wide_or = MakeLinearModel(2, 1.0, ModelNoise{});
  ASSERT_TRUE(wide_or.ok());
  bad.model = wide_or.value();
  EXPECT_FALSE(DsmsSimulation::Create({bad}).ok());

  // Empty data.
  SimulationSourceConfig empty = RampSource(1, 10, 1.0, 1.0);
  empty.data = TimeSeries(1);
  EXPECT_FALSE(DsmsSimulation::Create({empty}).ok());
}

TEST(SimulationTest, RunOnlyOnce) {
  auto sim_or = DsmsSimulation::Create({RampSource(1, 50, 1.0, 2.0)});
  ASSERT_TRUE(sim_or.ok());
  DsmsSimulation sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(sim.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimulationTest, RampSourceSuppressesAlmostEverything) {
  auto sim_or = DsmsSimulation::Create({RampSource(1, 1000, 2.0, 2.0)});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  ASSERT_EQ(reports_or.value().size(), 1u);
  const SourceReport& report = reports_or.value()[0];
  EXPECT_EQ(report.readings, 1000);
  EXPECT_LT(report.update_percentage, 2.0);
  EXPECT_LE(report.avg_error, 2.0);
  EXPECT_GT(report.bytes_sent, 0);
}

TEST(SimulationTest, MultipleSourcesIndependentDeltas) {
  // Same data, different precision widths: the tighter source must send
  // at least as many updates.
  Rng rng(41);
  TimeSeries noisy(1);
  double value = 0.0;
  for (size_t i = 0; i < 1500; ++i) {
    value += rng.Gaussian(0.2, 1.0);
    ASSERT_TRUE(noisy.Append(static_cast<double>(i), value).ok());
  }
  SimulationSourceConfig tight;
  tight.id = 1;
  tight.data = noisy;
  tight.model = LinearModel();
  tight.delta = 1.0;
  SimulationSourceConfig loose = tight;
  loose.id = 2;
  loose.delta = 8.0;

  auto sim_or = DsmsSimulation::Create({tight, loose});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  const auto& reports = reports_or.value();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GT(reports[0].updates_sent, reports[1].updates_sent);
  EXPECT_LT(reports[0].avg_error, reports[1].avg_error + 1.0);
}

TEST(SimulationTest, EnergySavingsAgainstSendAll) {
  auto sim_or = DsmsSimulation::Create({RampSource(1, 2000, 2.0, 2.0)});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  const SourceReport& report = reports_or.value()[0];
  // On a predictable stream the DKF node spends far less than a
  // send-everything node: the paper's energy argument (§1).
  EXPECT_LT(report.energy_spent, 0.1 * report.energy_send_all);
}

TEST(SimulationTest, SmoothingReducesUpdatesOnNoisyStream) {
  Rng rng(43);
  TimeSeries noisy(1);
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(noisy.Append(static_cast<double>(i),
                             50.0 + rng.Gaussian(0.0, 5.0))
                    .ok());
  }
  SimulationSourceConfig raw;
  raw.id = 1;
  raw.data = noisy;
  raw.model = LinearModel();
  raw.delta = 3.0;
  SimulationSourceConfig smoothed = raw;
  smoothed.id = 2;
  smoothed.smoothing_factor = 1e-7;

  auto sim_or = DsmsSimulation::Create({raw, smoothed});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  const auto& reports = reports_or.value();
  EXPECT_LT(reports[1].updates_sent, reports[0].updates_sent / 2);
}

TEST(SimulationTest, UnequalLengthSources) {
  auto sim_or = DsmsSimulation::Create(
      {RampSource(1, 100, 1.0, 2.0), RampSource(2, 500, 1.0, 2.0)});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  EXPECT_EQ(reports_or.value()[0].readings, 100);
  EXPECT_EQ(reports_or.value()[1].readings, 500);
}

}  // namespace
}  // namespace dkf
