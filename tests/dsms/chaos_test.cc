// Deterministic chaos harness for the self-healing dual-link protocol
// (docs/protocol.md §6): seeded Gilbert–Elliott bursty loss, delivery
// delay with reordering, scheduled outages, ACK loss, and payload
// corruption, all active at once. The harness asserts the three
// robustness contracts:
//
//   1. Re-convergence: after every healed resync episode the mirror and
//      server filters are bit-identical (the link-consistency
//      invariant), and once the fault window closes every link heals
//      and stays bit-exact.
//   2. Graceful degradation: whenever an answer is NOT flagged
//      degraded, the delta-precision guarantee holds on suppressed
//      ticks exactly as on a fault-free link.
//   3. Shard invariance: the sharded runtime produces bit-identical
//      answers and fault counters at 1/2/4/8 shards, matching the
//      sequential StreamManager.

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "dsms/stream_manager.h"
#include "metrics/fault_stats.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// The full fault cocktail used by the direct-protocol test. Faults
/// stop at `active_until`, giving the clean tail the recovery
/// assertions need.
FaultModel ChaosCocktail(int64_t active_until) {
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.08, /*p_bad_to_good=*/0.35,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/2};
  fault.outages.push_back(OutageWindow{/*start=*/60, /*end=*/70});
  fault.outages.push_back(OutageWindow{/*start=*/150, /*end=*/160});
  fault.ack_loss_probability = 0.08;
  fault.corruption_probability = 0.04;
  fault.active_until = active_until;
  return fault;
}

// --- 1 + 2. Direct protocol drive: one dual link under the cocktail.

TEST(ChaosTest, LinkRelocksAndDeltaHoldsWheneverNotDegraded) {
  constexpr int64_t kFaultEnd = 240;
  constexpr int64_t kTicks = 300;
  constexpr double kDelta = 2.0;

  // heartbeat_interval = 1 and staleness_budget = 1 give the strict
  // contract: on every tick the server either heard something valid or
  // flags the answer degraded — so a non-degraded suppressed answer is
  // always backed by a same-tick delta test at the source.
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 1;
  protocol.staleness_budget = 1;
  protocol.resync_burst_retries = 6;
  protocol.resync_retry_backoff = 4;

  ServerNode server(protocol);
  ASSERT_TRUE(server.RegisterSource(1, ScalarModel()).ok());

  ChannelOptions channel_options;
  channel_options.seed = 1234;
  channel_options.fault = ChaosCocktail(kFaultEnd);
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); },
      channel_options);

  SourceNodeOptions node_options;
  node_options.source_id = 1;
  node_options.model = ScalarModel();
  node_options.delta = kDelta;
  node_options.protocol = protocol;
  auto node_or = SourceNode::Create(node_options);
  ASSERT_TRUE(node_or.ok());
  SourceNode source = std::move(node_or).value();

  Rng rng(7);
  double value = 0.0;
  int64_t resyncs_applied_before = 0;
  int relock_checks = 0;
  int precision_checks = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(channel.BeginTick(t).ok());
    value += rng.Gaussian(0.05, 0.5);
    auto step_or = source.ProcessReading(t, Vector{value}, &channel);
    ASSERT_TRUE(step_or.ok()) << "tick " << t;

    // Contract 1: whenever the source is not pending resync, the pair
    // is bit-identical — including the tick a resync episode heals.
    if (!source.resync_pending()) {
      ASSERT_TRUE(
          source.mirror().StateEquals(*server.predictor(1).value()))
          << "link-consistency violated at tick " << t;
      if (server.fault_stats().resyncs_applied > resyncs_applied_before) {
        ++relock_checks;  // a healed episode was verified bit-exact
      }
    }
    resyncs_applied_before = server.fault_stats().resyncs_applied;

    // Contract 2: a non-degraded answer on a suppressed tick obeys the
    // delta guarantee against the value that entered the protocol.
    auto confident_or = server.AnswerWithConfidence(1);
    ASSERT_TRUE(confident_or.ok());
    const bool update_tick = server.last_update_tick(1).value() == t;
    if (!confident_or.value().degraded && !update_tick) {
      EXPECT_LE(std::fabs(confident_or.value().value[0] - value), kDelta)
          << "delta violated on non-degraded tick " << t;
      ++precision_checks;
    }
    EXPECT_EQ(confident_or.value().degraded, server.degraded(1).value());

    // Past the fault window plus the retry budget, the link must have
    // healed for good.
    if (t >= kFaultEnd + 20) {
      EXPECT_FALSE(source.resync_pending()) << "still pending at tick " << t;
      EXPECT_FALSE(server.degraded(1).value()) << "still degraded at " << t;
    }
  }

  // The cocktail must actually have exercised every fault path, and the
  // bit-exact re-lock must have been observed on real healed episodes.
  const ProtocolFaultStats& source_faults = source.fault_stats();
  const ProtocolFaultStats& server_faults = server.fault_stats();
  EXPECT_GT(source_faults.divergence_events, 0);
  EXPECT_GT(source_faults.ambiguous_acks, 0);
  EXPECT_GT(source_faults.resyncs_sent, 0);
  EXPECT_GT(source_faults.ticks_diverged, 0);
  EXPECT_GE(source_faults.max_recovery_ticks, 1);
  EXPECT_GT(source_faults.heartbeats_sent, 0);
  EXPECT_GT(server_faults.resyncs_applied, 0);
  EXPECT_GT(server_faults.heartbeats_received, 0);
  EXPECT_GT(server_faults.rejected_corrupt, 0);
  EXPECT_GT(server_faults.rejected_stale, 0);
  EXPECT_GT(server_faults.sequence_gaps, 0);
  EXPECT_GT(server_faults.degraded_ticks, 0);
  EXPECT_GT(relock_checks, 0);
  EXPECT_GT(precision_checks, 0);
  EXPECT_GT(channel.total().outage_dropped, 0);
  EXPECT_GT(channel.total().corrupted, 0);
  EXPECT_GT(channel.total().ack_lost, 0);
  EXPECT_GT(channel.total().delayed, 0);
  EXPECT_GT(source_faults.MeanRecoveryTicks(), 0.0);
}

// --- 3. Shard invariance: manager and engine at 1/2/4/8 shards.

constexpr int kNumSources = 10;
constexpr int kAggregateId = 7;
constexpr int64_t kFleetFaultEnd = 280;
constexpr int64_t kFleetTicks = 420;

ChannelOptions FleetChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.1;  // legacy Bernoulli loss in the mix
  // per_source_rng so the manager draws the same per-source fault
  // schedule as every sharded layout.
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = kFleetFaultEnd;
  options.fault = fault;
  return options;
}

ProtocolOptions FleetProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 3;
  protocol.staleness_budget = 5;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  return protocol;
}

template <typename System>
void InstallChaosWorkload(System& system) {
  // Tracing on from the start: the shard-invariance contract must cover
  // the observability stream too.
  ASSERT_TRUE(system.EnableTracing().ok());
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        system.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.0 + 0.5 * (id % 3);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
  AggregateQuery aggregate;
  aggregate.id = kAggregateId;
  aggregate.source_ids = {2, 5, 8, 9};  // spans shards for any count > 1
  aggregate.precision = 8.0;
  ASSERT_TRUE(system.SubmitAggregateQuery(aggregate).ok());
}

std::map<int, Vector> FleetReadings(Rng& rng, std::vector<double>& values) {
  std::map<int, Vector> readings;
  for (int id = 1; id <= kNumSources; ++id) {
    values[static_cast<size_t>(id)] += rng.Gaussian(0.05 * (id % 3), 0.7);
    readings[id] = Vector{values[static_cast<size_t>(id)]};
  }
  return readings;
}

void ExpectFaultStatsEqual(const ProtocolFaultStats& a,
                           const ProtocolFaultStats& b, int shards) {
  EXPECT_EQ(a.divergence_events, b.divergence_events) << "shards=" << shards;
  EXPECT_EQ(a.resyncs_sent, b.resyncs_sent) << "shards=" << shards;
  EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent) << "shards=" << shards;
  EXPECT_EQ(a.ambiguous_acks, b.ambiguous_acks) << "shards=" << shards;
  EXPECT_EQ(a.ticks_diverged, b.ticks_diverged) << "shards=" << shards;
  EXPECT_EQ(a.max_recovery_ticks, b.max_recovery_ticks)
      << "shards=" << shards;
  EXPECT_EQ(a.resyncs_applied, b.resyncs_applied) << "shards=" << shards;
  EXPECT_EQ(a.heartbeats_received, b.heartbeats_received)
      << "shards=" << shards;
  EXPECT_EQ(a.rejected_stale, b.rejected_stale) << "shards=" << shards;
  EXPECT_EQ(a.rejected_corrupt, b.rejected_corrupt) << "shards=" << shards;
  EXPECT_EQ(a.sequence_gaps, b.sequence_gaps) << "shards=" << shards;
  EXPECT_EQ(a.degraded_ticks, b.degraded_ticks) << "shards=" << shards;
}

TEST(ChaosTest, ShardCountInvarianceUnderFullFaultCocktail) {
  StreamManagerOptions manager_options;
  manager_options.channel = FleetChannel();
  manager_options.protocol = FleetProtocol();
  StreamManager manager(manager_options);
  InstallChaosWorkload(manager);

  std::vector<std::unique_ptr<ShardedStreamEngine>> engines;
  for (int shards : {1, 2, 4, 8}) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();
    engines.push_back(std::make_unique<ShardedStreamEngine>(options));
    InstallChaosWorkload(*engines.back());
  }

  Rng rng(91);
  std::vector<double> values(kNumSources + 1, 0.0);
  for (int64_t t = 0; t < kFleetTicks; ++t) {
    const std::map<int, Vector> readings = FleetReadings(rng, values);
    ASSERT_TRUE(manager.ProcessTick(readings).ok()) << "tick " << t;
    for (auto& engine : engines) {
      ASSERT_TRUE(engine->ProcessTick(readings).ok())
          << "tick " << t << " shards=" << engine->num_shards();
    }

    // The relaxed invariant holds on every system at every tick.
    if (t % 25 == 0 || t == kFleetTicks - 1) {
      ASSERT_TRUE(manager.VerifyLinkConsistency().ok()) << "tick " << t;
      for (auto& engine : engines) {
        ASSERT_TRUE(engine->VerifyLinkConsistency().ok())
            << "tick " << t << " shards=" << engine->num_shards();
      }
    }

    // Every engine answers bit-identically to the sequential manager —
    // fault schedules included.
    if (t % 40 == 0 || t == kFleetTicks - 1) {
      for (auto& engine : engines) {
        for (int id = 1; id <= kNumSources; ++id) {
          ASSERT_EQ(manager.Answer(id).value()[0],
                    engine->Answer(id).value()[0])
              << "tick " << t << " shards=" << engine->num_shards()
              << " source=" << id;
          ASSERT_EQ(manager.answer_degraded(id).value(),
                    engine->answer_degraded(id).value())
              << "tick " << t << " shards=" << engine->num_shards()
              << " source=" << id;
          ASSERT_EQ(manager.resync_pending(id).value(),
                    engine->resync_pending(id).value())
              << "tick " << t << " shards=" << engine->num_shards()
              << " source=" << id;
        }
        auto seq_agg = manager.AnswerAggregateWithStatus(kAggregateId);
        auto par_agg = engine->AnswerAggregateWithStatus(kAggregateId);
        ASSERT_TRUE(seq_agg.ok() && par_agg.ok());
        ASSERT_NEAR(seq_agg.value().value, par_agg.value().value, 1e-9);
        ASSERT_EQ(seq_agg.value().degraded_members,
                  par_agg.value().degraded_members);
      }
    }

    // Deep inside the outage window, every member link is overdue: the
    // aggregate must advertise that its guarantee is void.
    if (t == 110) {
      auto aggregate_or = manager.AnswerAggregateWithStatus(kAggregateId);
      ASSERT_TRUE(aggregate_or.ok());
      EXPECT_TRUE(aggregate_or.value().degraded());
      EXPECT_EQ(aggregate_or.value().degraded_members, 4);
      for (int id = 1; id <= kNumSources; ++id) {
        EXPECT_TRUE(manager.answer_degraded(id).value()) << "source " << id;
      }
    }
  }

  // Chaos actually happened...
  const ProtocolFaultStats manager_faults = manager.fault_stats();
  EXPECT_GT(manager_faults.divergence_events, 0);
  EXPECT_GT(manager_faults.resyncs_applied, 0);
  EXPECT_GT(manager_faults.rejected_corrupt, 0);
  EXPECT_GT(manager_faults.rejected_stale, 0);
  EXPECT_GT(manager_faults.degraded_ticks, 0);
  EXPECT_GT(manager.uplink_traffic().outage_dropped, 0);

  // ...and after the clean tail every system healed completely: no
  // pending episodes, full (strict) mirror consistency everywhere.
  for (int id = 1; id <= kNumSources; ++id) {
    EXPECT_FALSE(manager.resync_pending(id).value()) << "source " << id;
  }
  EXPECT_TRUE(manager.VerifyMirrorConsistency().ok());
  for (auto& engine : engines) {
    for (int id = 1; id <= kNumSources; ++id) {
      EXPECT_FALSE(engine->resync_pending(id).value())
          << "shards=" << engine->num_shards() << " source=" << id;
    }
    EXPECT_TRUE(engine->VerifyMirrorConsistency().ok())
        << "shards=" << engine->num_shards();

    // Identical per-source trajectories imply identical accounting.
    ExpectFaultStatsEqual(manager_faults, engine->fault_stats(),
                          engine->num_shards());
    const ChannelStats merged = engine->uplink_traffic();
    EXPECT_EQ(manager.uplink_traffic().messages, merged.messages);
    EXPECT_EQ(manager.uplink_traffic().bytes, merged.bytes);
    EXPECT_EQ(manager.uplink_traffic().dropped, merged.dropped);
    EXPECT_EQ(manager.uplink_traffic().corrupted, merged.corrupted);
    EXPECT_EQ(manager.uplink_traffic().delayed, merged.delayed);
    EXPECT_EQ(manager.uplink_traffic().ack_lost, merged.ack_lost);
    EXPECT_EQ(manager.uplink_traffic().outage_dropped,
              merged.outage_dropped);
    for (int id = 1; id <= kNumSources; ++id) {
      EXPECT_EQ(manager.updates_sent(id).value(),
                engine->updates_sent(id).value())
          << "shards=" << engine->num_shards() << " source=" << id;
    }
    // The merged runtime stats surface the fault counters too.
    EXPECT_EQ(engine->stats().faults.resyncs_applied,
              manager_faults.resyncs_applied);
  }

  // The observability stream obeys the same invariance: the merged
  // trace and the metrics snapshot are bit-identical across the
  // sequential manager and every shard count, under the full cocktail.
  const std::vector<TraceEvent> reference_trace =
      MergeTraces({manager.Trace()});
  const MetricsRegistry reference_metrics = manager.MetricsSnapshot();
  ASSERT_EQ(manager.trace_sink()->dropped_events(), 0)
      << "ring too small for an exact trace comparison";
#if DKF_OBS_ENABLED
  // Every protocol path left its mark in the trace.
  ASSERT_FALSE(reference_trace.empty());
  EXPECT_GT(reference_metrics.counter("trace.divergence"), 0);
  EXPECT_GT(reference_metrics.counter("trace.resync_sent"), 0);
  EXPECT_GT(reference_metrics.counter("trace.resync_applied"), 0);
  EXPECT_GT(reference_metrics.counter("trace.heal"), 0);
  EXPECT_GT(reference_metrics.counter("trace.corrupt_reject"), 0);
  EXPECT_GT(reference_metrics.counter("trace.stale_reject"), 0);
  EXPECT_GT(reference_metrics.counter("trace.degraded_tick"), 0);
  EXPECT_GT(reference_metrics.counter("trace.channel_outage"), 0);
  EXPECT_GT(reference_metrics.counter("trace.channel_corrupt"), 0);
  EXPECT_GT(reference_metrics.counter("trace.channel_delay"), 0);
  EXPECT_GT(reference_metrics.counter("trace.channel_ack_loss"), 0);
#endif
  for (auto& engine : engines) {
    EXPECT_TRUE(engine->MergedTrace() == reference_trace)
        << "merged trace differs, shards=" << engine->num_shards();
    EXPECT_TRUE(engine->MetricsSnapshot() == reference_metrics)
        << "metrics snapshot differs, shards=" << engine->num_shards();
  }
}

// --- Degraded answers inflate confidence monotonically with overdue
// --- time.

TEST(ChaosTest, DegradedAnswersInflateCovariance) {
  ProtocolOptions protocol;
  protocol.staleness_budget = 3;
  protocol.degraded_inflation = 0.25;
  ServerNode server(protocol);
  ASSERT_TRUE(server.RegisterSource(1, ScalarModel()).ok());

  uint32_t sequence = 1;
  auto heartbeat_at = [&](int64_t tick) {
    Message beacon;
    beacon.type = MessageType::kHeartbeat;
    beacon.source_id = 1;
    beacon.tick = tick;
    beacon.sequence = sequence++;
    return server.OnMessage(beacon);
  };

  // Ticks 0..4: fresh heartbeats keep the link live and non-degraded.
  for (int64_t t = 0; t < 5; ++t) {
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(heartbeat_at(t).ok());
    EXPECT_FALSE(server.degraded(1).value()) << "tick " << t;
  }

  // Then the link goes silent. Degradation starts once the staleness
  // budget is exhausted, and the covariance inflation grows with every
  // further overdue tick.
  double previous_inflated = 0.0;
  for (int64_t t = 5; t < 12; ++t) {
    ASSERT_TRUE(server.TickAll().ok());
    auto confident_or = server.AnswerWithConfidence(1);
    ASSERT_TRUE(confident_or.ok());
    const auto& answer = confident_or.value();
    const Matrix raw =
        server.predictor(1).value()->PredictedCovariance().value();
    if (t - 4 < protocol.staleness_budget) {
      EXPECT_FALSE(answer.degraded) << "tick " << t;
      EXPECT_DOUBLE_EQ((*answer.covariance)(0, 0), raw(0, 0));
    } else {
      EXPECT_TRUE(answer.degraded) << "tick " << t;
      const int64_t overdue = (t - 4) - protocol.staleness_budget + 1;
      const double expected_scale = 1.0 + 0.25 * static_cast<double>(overdue);
      EXPECT_DOUBLE_EQ((*answer.covariance)(0, 0),
                       raw(0, 0) * expected_scale);
      EXPECT_GT((*answer.covariance)(0, 0), previous_inflated);
      previous_inflated = (*answer.covariance)(0, 0);
    }
  }

  // A fresh heartbeat clears the flag on the next tick.
  ASSERT_TRUE(server.TickAll().ok());
  ASSERT_TRUE(heartbeat_at(12).ok());
  EXPECT_FALSE(server.degraded(1).value());
  // Silent degradation counts source-ticks.
  EXPECT_GT(server.fault_stats().degraded_ticks, 0);
}

// --- Fault-counter merge arithmetic (metrics/fault_stats).

TEST(ChaosTest, FaultStatsMergeSumsAndMaxes) {
  ProtocolFaultStats a;
  a.divergence_events = 2;
  a.resyncs_sent = 5;
  a.ticks_diverged = 9;
  a.max_recovery_ticks = 4;
  a.rejected_corrupt = 1;
  ProtocolFaultStats b;
  b.divergence_events = 1;
  b.resyncs_sent = 2;
  b.ticks_diverged = 3;
  b.max_recovery_ticks = 7;
  b.sequence_gaps = 5;
  a.MergeFrom(b);
  EXPECT_EQ(a.divergence_events, 3);
  EXPECT_EQ(a.resyncs_sent, 7);
  EXPECT_EQ(a.ticks_diverged, 12);
  EXPECT_EQ(a.max_recovery_ticks, 7);  // max, not sum
  EXPECT_EQ(a.rejected_corrupt, 1);
  EXPECT_EQ(a.sequence_gaps, 5);
  EXPECT_DOUBLE_EQ(a.MeanRecoveryTicks(), 4.0);
  EXPECT_DOUBLE_EQ(ProtocolFaultStats().MeanRecoveryTicks(), 0.0);
}

}  // namespace
}  // namespace dkf
