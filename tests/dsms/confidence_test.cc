#include <cmath>

#include <gtest/gtest.h>

#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel LinearModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

TEST(ConfidenceTest, UnknownSourceErrors) {
  ServerNode server;
  EXPECT_EQ(server.AnswerWithConfidence(5).status().code(),
            StatusCode::kNotFound);
}

TEST(ConfidenceTest, KalmanAnswerCarriesCovariance) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  auto answer_or = server.AnswerWithConfidence(1);
  ASSERT_TRUE(answer_or.ok());
  ASSERT_TRUE(answer_or.value().covariance.has_value());
  EXPECT_EQ(answer_or.value().covariance->rows(), 1u);
}

TEST(ConfidenceTest, UncertaintyGrowsDuringSuppressionRuns) {
  // The longer the source is silent, the wider the server's confidence
  // band must get — that is what makes the answer honest.
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); });
  SourceNodeOptions options;
  options.source_id = 1;
  options.model = LinearModel();
  options.delta = 5.0;
  auto node = SourceNode::Create(options).value();

  // Converge on a ramp (updates flowing), then note the variance...
  double variance_after_update = -1.0;
  double variance_after_coast = -1.0;
  int64_t tick = 0;
  for (; tick < 50; ++tick) {
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(node.ProcessReading(tick, Vector{100.0 * tick}, &channel)
                    .ok());  // slope 100 >> delta: update every tick
  }
  variance_after_update =
      (*server.AnswerWithConfidence(1).value().covariance)(0, 0);

  // ...then feed a perfectly predictable ramp so the source goes silent.
  double value = 100.0 * (tick - 1);
  for (int i = 0; i < 100; ++i, ++tick) {
    value += 1.0;  // gentle slope the filter predicts within delta
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(node.ProcessReading(tick, Vector{value}, &channel).ok());
  }
  variance_after_coast =
      (*server.AnswerWithConfidence(1).value().covariance)(0, 0);

  EXPECT_GT(variance_after_coast, variance_after_update);
}

TEST(ConfidenceTest, UncertaintyCollapsesOnUpdate) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  // Coast the server filter for a while: variance inflates with Q.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(server.TickAll().ok());
  }
  const double inflated =
      (*server.AnswerWithConfidence(1).value().covariance)(0, 0);
  Message message;
  message.source_id = 1;
  message.payload = Vector{3.0};
  ASSERT_TRUE(server.OnMessage(message).ok());
  const double collapsed =
      (*server.AnswerWithConfidence(1).value().covariance)(0, 0);
  EXPECT_LT(collapsed, inflated);
}

TEST(ConfidenceTest, CachedPredictorHasNoCovariance) {
  auto caching = CachedValuePredictor::Create(1).value();
  EXPECT_FALSE(caching.PredictedCovariance().has_value());
}

}  // namespace
}  // namespace dkf
