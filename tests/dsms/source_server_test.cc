#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel LinearModel() {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  return model_or.value();
}

SourceNodeOptions DefaultSourceOptions(int id = 1, double delta = 2.0) {
  SourceNodeOptions options;
  options.source_id = id;
  options.model = LinearModel();
  options.delta = delta;
  return options;
}

TEST(SourceNodeTest, CreateValidates) {
  SourceNodeOptions options = DefaultSourceOptions();
  options.delta = 0.0;
  EXPECT_FALSE(SourceNode::Create(options).ok());

  options = DefaultSourceOptions();
  options.smoothing_factor = 1e-7;
  // Linear 1-axis model has measurement width 1 -> smoothing allowed.
  EXPECT_TRUE(SourceNode::Create(options).ok());

  auto wide_or = MakeLinearModel(2, 1.0, ModelNoise{});
  ASSERT_TRUE(wide_or.ok());
  options.model = wide_or.value();
  EXPECT_FALSE(SourceNode::Create(options).ok());  // smoothing needs width 1
}

TEST(ServerNodeTest, RegistrationLifecycle) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  EXPECT_EQ(server.RegisterSource(1, LinearModel()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server.num_sources(), 1u);
  EXPECT_TRUE(server.Answer(1).ok());
  EXPECT_EQ(server.Answer(2).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(server.UnregisterSource(1).ok());
  EXPECT_EQ(server.UnregisterSource(1).code(), StatusCode::kNotFound);
}

TEST(ServerNodeTest, MessageForUnknownSourceRejected) {
  ServerNode server;
  Message message;
  message.source_id = 99;
  message.payload = Vector{1.0};
  EXPECT_EQ(server.OnMessage(message).code(), StatusCode::kNotFound);
}

TEST(ServerNodeTest, ModelSwitchMessageUnimplemented) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Message message;
  message.type = MessageType::kModelSwitch;
  message.source_id = 1;
  EXPECT_EQ(server.OnMessage(message).code(), StatusCode::kUnimplemented);
}

TEST(SourceServerTest, MirrorStateMatchesServerAfterEveryTick) {
  // The distributed version of the mirror-consistency invariant: run the
  // full node/channel/server pipeline and compare KF_m with KF_s each
  // tick.
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); });
  auto node_or = SourceNode::Create(DefaultSourceOptions());
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();

  Rng rng(31);
  double value = 0.0;
  for (int64_t tick = 0; tick < 2000; ++tick) {
    value += rng.Gaussian(0.5, 1.0);
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(node.ProcessReading(tick, Vector{value}, &channel).ok());
    auto server_predictor_or = server.predictor(1);
    ASSERT_TRUE(server_predictor_or.ok());
    ASSERT_TRUE(node.mirror().StateEquals(*server_predictor_or.value()))
        << "tick " << tick;
  }
}

TEST(SourceServerTest, SuppressedTicksSendNothing) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); });
  auto node_or = SourceNode::Create(DefaultSourceOptions(1, 5.0));
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();

  for (int64_t tick = 0; tick < 300; ++tick) {
    ASSERT_TRUE(server.TickAll().ok());
    ASSERT_TRUE(
        node.ProcessReading(tick, Vector{2.0 * static_cast<double>(tick)},
                            &channel)
            .ok());
  }
  // A clean ramp: only the first few readings cross the wire.
  EXPECT_LT(channel.total().messages, 10);
  EXPECT_EQ(channel.total().messages, node.updates_sent());
  EXPECT_EQ(node.readings(), 300);
}

TEST(SourceServerTest, ServerAnswerWithinDeltaOnSuppressedTicks) {
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); });
  auto node_or = SourceNode::Create(DefaultSourceOptions(1, 3.0));
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();

  Rng rng(32);
  double value = 0.0;
  double slope = 1.0;
  for (int64_t tick = 0; tick < 2000; ++tick) {
    if (tick % 250 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope;
    ASSERT_TRUE(server.TickAll().ok());
    auto step_or = node.ProcessReading(tick, Vector{value}, &channel);
    ASSERT_TRUE(step_or.ok());
    if (!step_or.value().sent) {
      auto answer_or = server.Answer(1);
      ASSERT_TRUE(answer_or.ok());
      EXPECT_LE(std::fabs(answer_or.value()[0] - value), 3.0 + 1e-9)
          << "tick " << tick;
    }
  }
}

TEST(SourceServerTest, MirrorConsistentUnderMessageLoss) {
  // The load-bearing property of the ACK-based loss handling: even on a
  // badly lossy uplink KF_m never diverges from KF_s, because the mirror
  // is corrected only on confirmed deliveries.
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  ChannelOptions lossy;
  lossy.drop_probability = 0.4;
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); },
      lossy);
  auto node_or = SourceNode::Create(DefaultSourceOptions());
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();

  Rng rng(34);
  double value = 0.0;
  int64_t drops_seen = 0;
  for (int64_t tick = 0; tick < 3000; ++tick) {
    value += rng.Gaussian(0.5, 1.0);
    ASSERT_TRUE(server.TickAll().ok());
    auto step_or = node.ProcessReading(tick, Vector{value}, &channel);
    ASSERT_TRUE(step_or.ok());
    if (step_or.value().sent && !step_or.value().delivered) ++drops_seen;
    auto server_predictor_or = server.predictor(1);
    ASSERT_TRUE(server_predictor_or.ok());
    ASSERT_TRUE(node.mirror().StateEquals(*server_predictor_or.value()))
        << "tick " << tick;
  }
  // The channel really was lossy.
  EXPECT_GT(drops_seen, 100);
  EXPECT_EQ(channel.total().dropped, drops_seen);
}

TEST(SourceServerTest, LossInflatesTransmissionsNotErrorBound) {
  // Drops force retries (more transmissions), but on suppressed ticks the
  // precision guarantee is untouched — the mirror knows exactly what the
  // server missed.
  auto run = [](double drop_probability) {
    ServerNode server;
    EXPECT_TRUE(server.RegisterSource(1, LinearModel()).ok());
    ChannelOptions options;
    options.drop_probability = drop_probability;
    Channel channel(
        [&server](const Message& message) {
          return server.OnMessage(message);
        },
        options);
    auto node = SourceNode::Create(DefaultSourceOptions(1, 3.0)).value();
    Rng rng(35);
    double value = 0.0;
    double slope = 1.0;
    for (int64_t tick = 0; tick < 2000; ++tick) {
      if (tick % 250 == 0) slope = rng.Uniform(-2.0, 2.0);
      value += slope;
      EXPECT_TRUE(server.TickAll().ok());
      auto step = node.ProcessReading(tick, Vector{value}, &channel).value();
      if (!step.sent) {
        EXPECT_LE(std::fabs(server.Answer(1).value()[0] - value),
                  3.0 + 1e-9);
      }
    }
    return node.updates_sent();
  };
  const int64_t clean = run(0.0);
  const int64_t lossy = run(0.3);
  EXPECT_GT(lossy, clean);
}

TEST(SourceServerTest, SmoothingFilterChangesProtocolValue) {
  SourceNodeOptions options = DefaultSourceOptions();
  options.smoothing_factor = 1e-9;
  auto node_or = SourceNode::Create(options);
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();
  Rng rng(33);
  // Heavy smoothing: the protocol value must be much less noisy than the
  // raw reading.
  double raw_dev = 0.0;
  double smooth_dev = 0.0;
  int count = 0;
  for (int64_t tick = 0; tick < 1000; ++tick) {
    const double raw = 10.0 + rng.Gaussian(0.0, 2.0);
    auto step_or = node.ProcessReading(tick, Vector{raw}, nullptr);
    ASSERT_TRUE(step_or.ok());
    if (tick > 200) {
      raw_dev += std::fabs(raw - 10.0);
      smooth_dev += std::fabs(step_or.value().protocol_value[0] - 10.0);
      ++count;
    }
  }
  EXPECT_LT(smooth_dev / count, 0.2 * raw_dev / count);
}

TEST(SourceServerTest, ComponentDeltasValidatedAndApplied) {
  auto wide_or = MakeLinearModel(2, 1.0, ModelNoise{});
  ASSERT_TRUE(wide_or.ok());

  SourceNodeOptions options;
  options.source_id = 1;
  options.model = wide_or.value();
  options.component_deltas = {1.0};  // wrong arity
  EXPECT_FALSE(SourceNode::Create(options).ok());
  options.component_deltas = {1.0, -2.0};
  EXPECT_FALSE(SourceNode::Create(options).ok());

  options.component_deltas = {1.0, 1000.0};
  auto node_or = SourceNode::Create(options);
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();

  // Sync once, then drift only the loose attribute: no transmissions.
  ASSERT_TRUE(node.ProcessReading(0, Vector{0.0, 0.0}, nullptr).ok());
  int sent = 0;
  for (int64_t tick = 1; tick <= 30; ++tick) {
    auto step_or = node.ProcessReading(
        tick, Vector{0.0, 30.0 * static_cast<double>(tick)}, nullptr);
    ASSERT_TRUE(step_or.ok());
    if (step_or.value().sent) ++sent;
  }
  // The linear model learns the Y slope after the first couple of
  // violations of the loose width... which never happen (30/tick is far
  // below 1000). Only the initial sync transmissions occur.
  EXPECT_LE(sent, 2);
  // A tight-attribute excursion transmits immediately.
  auto jump_or = node.ProcessReading(31, Vector{50.0, 30.0 * 31}, nullptr);
  ASSERT_TRUE(jump_or.ok());
  EXPECT_TRUE(jump_or.value().sent);
}

TEST(SourceServerTest, EnergyAccountingTracksActivity) {
  auto node_or = SourceNode::Create(DefaultSourceOptions());
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();
  ASSERT_TRUE(node.ProcessReading(0, Vector{100.0}, nullptr).ok());
  // One reading, one filter step, and (deviant first value) a transmission.
  EXPECT_GT(node.energy().sensing(), 0.0);
  EXPECT_GT(node.energy().compute(), 0.0);
  EXPECT_GT(node.energy().transmission(), 0.0);
}

TEST(SourceServerTest, ReadingWidthValidated) {
  auto node_or = SourceNode::Create(DefaultSourceOptions());
  ASSERT_TRUE(node_or.ok());
  SourceNode node = std::move(node_or).value();
  EXPECT_FALSE(node.ProcessReading(0, Vector{1.0, 2.0}, nullptr).ok());
}

}  // namespace
}  // namespace dkf
