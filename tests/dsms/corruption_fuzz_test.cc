// Randomized bit-flip fuzz over serialized Message payloads: no framed
// (checksummed) message that was corrupted in flight may ever be
// accepted by the server. Every flip of a checksum-covered field must
// bounce off the FNV-1a gate — counted, traced as exactly one
// corrupt_reject event, and leaving the predictor state untouched.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/message.h"
#include "dsms/server_node.h"
#include "filter/adaptive_noise.h"
#include "filter/kalman_filter.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace dkf {
namespace {

StateModel ScalarModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  // Constant model: a 1-element state vector, so hand-built kResync
  // snapshots are dimensionally valid.
  return MakeConstantModel(1, noise).value();
}

/// Flips one random bit in one random checksum-covered field (never the
/// checksum itself: zeroing it would turn the message into a legacy
/// "unframed" one that legitimately skips verification, and never
/// source_id: routing corruption surfaces as a NotFound error at the
/// lookup, before the checksum gate). Returns false when the draw does
/// not apply to this message (e.g. no payload to corrupt).
bool FlipRandomBit(Rng& rng, Message& message) {
  auto flip = [&rng](void* data, size_t size) {
    const size_t bit = static_cast<size_t>(rng.Uniform() * 8.0 * size);
    static_cast<unsigned char*>(data)[bit / 8] ^=
        static_cast<unsigned char>(1u << (bit % 8));
  };
  switch (static_cast<int>(rng.Uniform() * 7.0)) {
    case 0: {  // message type tag
      unsigned char type_byte = static_cast<unsigned char>(message.type);
      flip(&type_byte, 1);
      message.type = static_cast<MessageType>(type_byte);
      return true;
    }
    case 1:
      flip(&message.tick, sizeof(message.tick));
      return true;
    case 2:
      flip(&message.sequence, sizeof(message.sequence));
      return true;
    case 3: {
      if (message.payload.size() == 0) return false;
      const size_t i =
          static_cast<size_t>(rng.Uniform() * message.payload.size());
      flip(&message.payload[i], sizeof(double));
      return true;
    }
    case 4: {
      if (message.resync_state.size() == 0) return false;
      const size_t i =
          static_cast<size_t>(rng.Uniform() * message.resync_state.size());
      flip(&message.resync_state[i], sizeof(double));
      return true;
    }
    case 5: {
      // The v4 adapter payload is checksum-covered like every other
      // resync field: a flipped noise-servo double must bounce too.
      if (message.resync_adapt.size() == 0) return false;
      const size_t i =
          static_cast<size_t>(rng.Uniform() * message.resync_adapt.size());
      flip(&message.resync_adapt[i], sizeof(double));
      return true;
    }
    default:
      if (message.type != MessageType::kResync) return false;
      flip(&message.resync_step, sizeof(message.resync_step));
      return true;
  }
}

TEST(CorruptionFuzzTest, FlippedBitsNeverReachTheFilter) {
  constexpr int kRounds = 2000;

  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, ScalarModel()).ok());
  TraceSink sink;
  server.set_trace_sink(&sink);
  ASSERT_TRUE(server.TickAll().ok());

  // Prime the predictor with one clean update so there is nontrivial
  // state for corruption to (fail to) disturb.
  Message clean;
  clean.type = MessageType::kMeasurement;
  clean.source_id = 1;
  clean.tick = 0;
  clean.payload = Vector{3.5};
  clean.sequence = 1;
  clean.checksum = clean.ComputeChecksum();
  ASSERT_TRUE(server.OnMessage(clean).ok());

  Rng rng(4242);
  uint32_t sequence = 2;
  int64_t injected = 0;
  int64_t collisions = 0;
  for (int round = 0; round < kRounds; ++round) {
    // A fresh, valid, framed message of a random protocol type.
    Message message;
    message.source_id = 1;
    message.tick = 0;
    message.sequence = sequence++;
    const double type_draw = rng.Uniform();
    if (type_draw < 0.4) {
      message.type = MessageType::kMeasurement;
      message.payload = Vector{rng.Gaussian(0.0, 10.0)};
    } else if (type_draw < 0.7) {
      message.type = MessageType::kHeartbeat;
    } else {
      message.type = MessageType::kResync;
      message.resync_state = Vector{rng.Gaussian(0.0, 5.0)};
      message.resync_covariance = Matrix::Identity(1);
      message.resync_step = 1;
      // Adapter payload rides along even on this non-adaptive link (the
      // server ignores it after the checksum gate), so its bytes are
      // part of the fuzzed surface.
      message.resync_adapt = Vector{rng.Uniform(), rng.Uniform()};
    }
    message.checksum = message.ComputeChecksum();
    ASSERT_EQ(server.OnMessage(message).ok(), true);  // sanity: valid

    Message corrupted = message;
    corrupted.sequence = sequence++;  // fresh sequence, same content
    corrupted.checksum = corrupted.ComputeChecksum();
    if (!FlipRandomBit(rng, corrupted)) continue;
    if (corrupted.ComputeChecksum() == corrupted.checksum) {
      // An FNV-1a collision (never observed at this seed; tolerated so
      // the test documents the gate's actual contract).
      ++collisions;
      continue;
    }

    const Vector before = server.Answer(1).value();
    const auto faults_before = server.fault_stats().rejected_corrupt;
#if DKF_OBS_ENABLED
    const int64_t events_before = sink.count(TraceEventKind::kCorruptReject);
#endif

    // Rejection is a protocol event, not an error.
    ASSERT_TRUE(server.OnMessage(corrupted).ok()) << "round " << round;
    ++injected;

    EXPECT_EQ(server.fault_stats().rejected_corrupt, faults_before + 1)
        << "round " << round;
    const Vector after = server.Answer(1).value();
    ASSERT_EQ(after.size(), before.size());
    EXPECT_EQ(after[0], before[0])
        << "corrupted message disturbed filter state, round " << round;
#if DKF_OBS_ENABLED
    EXPECT_EQ(sink.count(TraceEventKind::kCorruptReject), events_before + 1)
        << "round " << round;
#endif
  }

  EXPECT_GT(injected, kRounds / 2);
  EXPECT_EQ(collisions, 0);
  EXPECT_EQ(server.fault_stats().rejected_corrupt, injected);
#if DKF_OBS_ENABLED
  // Exactly one corrupt_reject event per rejection, all attributed to
  // the server actor.
  EXPECT_EQ(sink.count(TraceEventKind::kCorruptReject), injected);
  int64_t corrupt_events = 0;
  for (const TraceEvent& event : sink.Events()) {
    if (event.kind != TraceEventKind::kCorruptReject) continue;
    ++corrupt_events;
    EXPECT_EQ(event.actor, TraceActor::kServer);
    EXPECT_EQ(event.source_id, 1);
  }
  EXPECT_EQ(corrupt_events, injected);
#endif
}

// Focused fuzz for the v4 resync_adapt payload on a link whose noise
// servo is actually on: no flipped adapter bit may ever reach the
// server's servo, so the effective R/Q it would install can never be
// silently skewed by the wire.
TEST(CorruptionFuzzTest, AdapterPayloadCorruptionNeverSkewsNoise) {
  constexpr int kRounds = 600;
  ProtocolOptions protocol;
  protocol.adaptive.enabled = true;
  protocol.adaptive.warmup_corrections = 4;
  ServerNode server(protocol);
  const StateModel model = ScalarModel();
  ASSERT_TRUE(server.RegisterSource(1, model).ok());
  ASSERT_TRUE(server.TickAll().ok());

  // A mirror-side servo with nontrivial state to ship in resyncs.
  auto adapter_or = NoiseAdapter::Create(protocol.adaptive, model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter mirror_servo = std::move(adapter_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter mirror = std::move(filter_or).value();
  Rng rng(9099);
  for (int64_t t = 0; t < 32; ++t) {
    ASSERT_TRUE(mirror.Predict().ok());
    const Vector z{rng.Gaussian(0.0, 2.0)};
    ASSERT_TRUE(mirror_servo.OnCorrection(mirror, z, t).ok());
    ASSERT_TRUE(mirror.Correct(z).ok());
    ASSERT_TRUE(mirror_servo.InstallInto(&mirror).ok());
  }
  ASSERT_NE(mirror_servo.r_scale(), 1.0);

  // One clean resync proves the payload is really consumed: the server
  // servo re-locks to the mirror's exported state.
  uint32_t sequence = 1;
  auto make_resync = [&](int64_t tick) {
    Message message;
    message.type = MessageType::kResync;
    message.source_id = 1;
    message.tick = tick;
    message.sequence = sequence++;
    message.resync_state = Vector{rng.Gaussian(0.0, 5.0)};
    message.resync_covariance = Matrix::Identity(1);
    message.resync_step = 1;
    message.resync_adapt = mirror_servo.ExportState();
    message.checksum = message.ComputeChecksum();
    return message;
  };
  ASSERT_TRUE(server.OnMessage(make_resync(0)).ok());
  auto server_servo_or = server.noise_adapter(1);
  ASSERT_TRUE(server_servo_or.ok());
  ASSERT_TRUE(server_servo_or.value()->StateBitEqual(mirror_servo));

  int64_t injected = 0;
  for (int round = 0; round < kRounds; ++round) {
    Message corrupted = make_resync(0);
    const size_t i = static_cast<size_t>(
        rng.Uniform() * static_cast<double>(corrupted.resync_adapt.size()));
    const size_t bit = static_cast<size_t>(rng.Uniform() * 64.0);
    uint64_t bits;
    std::memcpy(&bits, &corrupted.resync_adapt[i], sizeof(bits));
    bits ^= (1ULL << bit);
    std::memcpy(&corrupted.resync_adapt[i], &bits, sizeof(bits));
    if (corrupted.ComputeChecksum() == corrupted.checksum) continue;

    const auto faults_before = server.fault_stats().rejected_corrupt;
    const Vector servo_before = server.noise_adapter(1).value()->ExportState();
    ASSERT_TRUE(server.OnMessage(corrupted).ok()) << "round " << round;
    ++injected;
    EXPECT_EQ(server.fault_stats().rejected_corrupt, faults_before + 1)
        << "round " << round;
    // The servo state — and with it every future effective Q/R — is
    // untouched by the rejected frame.
    const Vector servo_after = server.noise_adapter(1).value()->ExportState();
    ASSERT_EQ(servo_after.size(), servo_before.size());
    for (size_t j = 0; j < servo_after.size(); ++j) {
      ASSERT_EQ(servo_after[j], servo_before[j])
          << "servo slot " << j << " skewed, round " << round;
    }
  }
  EXPECT_GT(injected, kRounds / 2);
  EXPECT_TRUE(server.noise_adapter(1).value()->StateBitEqual(mirror_servo));
}

}  // namespace
}  // namespace dkf
