#include "filter/noise_estimation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dkf {
namespace {

KalmanFilterOptions ScalarConstantOptions(double q, double r) {
  KalmanFilterOptions options;
  options.transition = Matrix::Identity(1);
  options.measurement = Matrix::Identity(1);
  options.process_noise = Matrix{{q}};
  options.measurement_noise = Matrix{{r}};
  options.initial_state = Vector(1);
  options.initial_covariance = Matrix{{10.0}};
  return options;
}

TEST(AdaptiveNoiseTest, CreateValidatesOptions) {
  AdaptiveNoiseOptions options;
  options.window = 0;
  EXPECT_FALSE(AdaptiveNoiseEstimator::Create(options).ok());
  options.window = 8;
  options.min_samples = 0;
  EXPECT_FALSE(AdaptiveNoiseEstimator::Create(options).ok());
  options.min_samples = 9;
  EXPECT_FALSE(AdaptiveNoiseEstimator::Create(options).ok());
  options.min_samples = 4;
  options.floor = 0.0;
  EXPECT_FALSE(AdaptiveNoiseEstimator::Create(options).ok());
  options.floor = 1e-9;
  EXPECT_TRUE(AdaptiveNoiseEstimator::Create(options).ok());
}

TEST(AdaptiveNoiseTest, RefusesEstimateBeforeMinSamples) {
  AdaptiveNoiseOptions options;
  options.min_samples = 4;
  auto est_or = AdaptiveNoiseEstimator::Create(options);
  ASSERT_TRUE(est_or.ok());
  AdaptiveNoiseEstimator estimator = std::move(est_or).value();
  estimator.Observe(Vector{1.0}, Matrix{{0.1}});
  EXPECT_EQ(estimator.EstimateMeasurementNoise().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptiveNoiseTest, WindowEvictsOldInnovations) {
  AdaptiveNoiseOptions options;
  options.window = 4;
  options.min_samples = 2;
  auto est_or = AdaptiveNoiseEstimator::Create(options);
  ASSERT_TRUE(est_or.ok());
  AdaptiveNoiseEstimator estimator = std::move(est_or).value();
  for (int i = 0; i < 10; ++i) {
    estimator.Observe(Vector{1.0}, Matrix{{0.0}});
  }
  EXPECT_EQ(estimator.samples(), 4u);
}

TEST(AdaptiveNoiseTest, RecoversTrueMeasurementVariance) {
  // Run a filter whose assumed R (0.01) is badly wrong for the true noise
  // (variance 4.0); the estimator should recover ~4.0 from the
  // innovations.
  const double true_r = 4.0;
  auto filter_or = KalmanFilter::Create(ScalarConstantOptions(1e-4, 0.01));
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  AdaptiveNoiseOptions options;
  options.window = 512;
  options.min_samples = 64;
  auto est_or = AdaptiveNoiseEstimator::Create(options);
  ASSERT_TRUE(est_or.ok());
  AdaptiveNoiseEstimator estimator = std::move(est_or).value();

  Rng rng(17);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    const Matrix hph =
        filter.InnovationCovariance() - filter.measurement_noise();
    const Vector z{7.0 + rng.Gaussian(0.0, std::sqrt(true_r))};
    const Vector innovation = z - filter.PredictedMeasurement();
    estimator.Observe(innovation, hph);
    ASSERT_TRUE(filter.Correct(z).ok());
  }
  auto r_or = estimator.EstimateMeasurementNoise();
  ASSERT_TRUE(r_or.ok());
  EXPECT_NEAR(r_or.value()(0, 0), true_r, 1.0);
}

TEST(AdaptiveNoiseTest, ApplyInstallsEstimateIntoFilter) {
  auto filter_or = KalmanFilter::Create(ScalarConstantOptions(1e-4, 0.01));
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  AdaptiveNoiseOptions options;
  options.window = 64;
  options.min_samples = 16;
  auto est_or = AdaptiveNoiseEstimator::Create(options);
  ASSERT_TRUE(est_or.ok());
  AdaptiveNoiseEstimator estimator = std::move(est_or).value();

  Rng rng(18);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    const Matrix hph =
        filter.InnovationCovariance() - filter.measurement_noise();
    const Vector z{rng.Gaussian(0.0, 2.0)};
    estimator.Observe(z - filter.PredictedMeasurement(), hph);
    ASSERT_TRUE(filter.Correct(z).ok());
  }
  const double before = filter.measurement_noise()(0, 0);
  ASSERT_TRUE(estimator.Apply(&filter).ok());
  EXPECT_NE(filter.measurement_noise()(0, 0), before);
  EXPECT_GT(filter.measurement_noise()(0, 0), 1.0);
}

TEST(AdaptiveNoiseTest, FloorClampsNonPositiveEstimates) {
  AdaptiveNoiseOptions options;
  options.min_samples = 2;
  options.floor = 1e-6;
  auto est_or = AdaptiveNoiseEstimator::Create(options);
  ASSERT_TRUE(est_or.ok());
  AdaptiveNoiseEstimator estimator = std::move(est_or).value();
  // Tiny innovations but large projected covariance -> raw estimate would
  // be negative.
  for (int i = 0; i < 8; ++i) {
    estimator.Observe(Vector{1e-6}, Matrix{{5.0}});
  }
  auto r_or = estimator.EstimateMeasurementNoise();
  ASSERT_TRUE(r_or.ok());
  EXPECT_GE(r_or.value()(0, 0), 1e-6);
}

TEST(AdaptiveNoiseTest, AdaptationImprovesSuppressionQuality) {
  // End-to-end motivation: a filter with a wildly wrong R either trusts
  // noise too much or lags; after adaptation its steady-state estimation
  // error should drop.
  Rng rng(19);
  const double true_r = 1.0;

  auto run = [&](bool adapt) {
    auto filter_or =
        KalmanFilter::Create(ScalarConstantOptions(1e-4, 1e-4));
    EXPECT_TRUE(filter_or.ok());
    KalmanFilter filter = std::move(filter_or).value();
    AdaptiveNoiseOptions options;
    options.window = 128;
    options.min_samples = 64;
    auto est_or = AdaptiveNoiseEstimator::Create(options);
    EXPECT_TRUE(est_or.ok());
    AdaptiveNoiseEstimator estimator = std::move(est_or).value();

    Rng local(20);
    double err = 0.0;
    int count = 0;
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(filter.Predict().ok());
      const Matrix hph =
          filter.InnovationCovariance() - filter.measurement_noise();
      const Vector z{3.0 + local.Gaussian(0.0, std::sqrt(true_r))};
      estimator.Observe(z - filter.PredictedMeasurement(), hph);
      EXPECT_TRUE(filter.Correct(z).ok());
      if (adapt && i % 64 == 63 && estimator.samples() >= 64) {
        EXPECT_TRUE(estimator.Apply(&filter).ok());
      }
      if (i > 1000) {
        err += std::fabs(filter.state()[0] - 3.0);
        ++count;
      }
    }
    return err / count;
  };

  const double err_fixed = run(false);
  const double err_adapted = run(true);
  EXPECT_LT(err_adapted, err_fixed);
}

}  // namespace
}  // namespace dkf
