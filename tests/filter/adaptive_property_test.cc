// Property battery for the mirror-consistent adaptive noise servo
// (filter/adaptive_noise.h, docs/adaptive.md). The load-bearing claim:
// adaptation is driven ONLY by transmitted information, so across any
// randomized fault cocktail the two ends' servos — and therefore the
// effective noise matrices installed in KF_m and KF_s — are bit-
// identical whenever the link is healthy, and bit-reconverge at the
// tick a resync heals a broken one.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "filter/adaptive_noise.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel ScalarModel(double measurement_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = measurement_variance;
  return MakeLinearModel(1, 1.0, noise).value();
}

AdaptiveNoiseConfig FastAdaptation() {
  AdaptiveNoiseConfig config;
  config.enabled = true;
  config.warmup_corrections = 4;
  config.widen_rate = 0.15;
  config.shrink_rate = 0.05;
  return config;
}

bool MatrixBitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const size_t n = a.rows() * a.cols();
  return n == 0 ||
         std::memcmp(a.RowData(0), b.RowData(0), n * sizeof(double)) == 0;
}

// --- Servo unit properties -------------------------------------------

TEST(NoiseAdapterTest, DefaultConstructedIsDisabledNoOp) {
  NoiseAdapter adapter;
  EXPECT_FALSE(adapter.enabled());
  EXPECT_EQ(adapter.ExportState().size(), 0u);
  EXPECT_TRUE(adapter.ImportState(Vector()).ok());
  EXPECT_EQ(adapter.r_scale(), 1.0);
  EXPECT_EQ(adapter.q_scale(), 1.0);
}

TEST(NoiseAdapterTest, CreateRejectsBadConfig) {
  const StateModel model = ScalarModel();
  AdaptiveNoiseConfig config = FastAdaptation();
  config.ratio_alpha = 1.5;
  EXPECT_FALSE(NoiseAdapter::Create(config, model).ok());
  config = FastAdaptation();
  config.widen_threshold = 0.4;  // below shrink_threshold
  EXPECT_FALSE(NoiseAdapter::Create(config, model).ok());
  config = FastAdaptation();
  config.r_scale_floor = 2.0;
  config.r_scale_ceiling = 1.0;
  EXPECT_FALSE(NoiseAdapter::Create(config, model).ok());
  EXPECT_TRUE(NoiseAdapter::Create(FastAdaptation(), model).ok());
}

// A filter whose configured R is far too small must widen its effective
// R once real innovations arrive; the servo must stay inside its
// clamps; and Q must stay nominal when innovations are uncorrelated.
TEST(NoiseAdapterTest, WidensUnderstatedMeasurementNoise) {
  const StateModel model = ScalarModel(/*measurement_variance=*/0.01);
  auto adapter_or = NoiseAdapter::Create(FastAdaptation(), model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter adapter = std::move(adapter_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  Rng rng(11);
  double truth = 0.0;
  for (int64_t t = 0; t < 400; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    truth += rng.Gaussian(0.0, 0.05);
    // True measurement noise stddev 1.0 vs configured sqrt(0.01) = 0.1.
    const Vector z{truth + rng.Gaussian(0.0, 1.0)};
    auto decision_or = adapter.OnCorrection(filter, z, t);
    ASSERT_TRUE(decision_or.ok());
    ASSERT_TRUE(filter.Correct(z).ok());
    ASSERT_TRUE(adapter.InstallInto(&filter).ok());
  }
  EXPECT_GT(adapter.r_scale(), 5.0);
  EXPECT_LE(adapter.r_scale(), FastAdaptation().r_scale_ceiling);
  EXPECT_GT(filter.measurement_noise()(0, 0),
            model.options.measurement_noise(0, 0));
}

TEST(NoiseAdapterTest, ShrinksOverstatedMeasurementNoiseToFloor) {
  const StateModel model = ScalarModel(/*measurement_variance=*/4.0);
  auto adapter_or = NoiseAdapter::Create(FastAdaptation(), model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter adapter = std::move(adapter_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  Rng rng(13);
  double truth = 0.0;
  for (int64_t t = 0; t < 1200; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    truth += rng.Gaussian(0.0, 0.05);
    const Vector z{truth + rng.Gaussian(0.0, 0.02)};
    ASSERT_TRUE(adapter.OnCorrection(filter, z, t).ok());
    ASSERT_TRUE(filter.Correct(z).ok());
    ASSERT_TRUE(adapter.InstallInto(&filter).ok());
  }
  EXPECT_LT(adapter.r_scale(), 1.0);
  EXPECT_GE(adapter.r_scale(), FastAdaptation().r_scale_floor);
}

// Quantized readings put a hard floor under effective R: step^2 / 12.
TEST(NoiseAdapterTest, QuantizationFloorBoundsEffectiveR) {
  const StateModel model = ScalarModel(/*measurement_variance=*/4.0);
  auto adapter_or = NoiseAdapter::Create(FastAdaptation(), model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter adapter = std::move(adapter_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  const double step = 0.5;
  Rng rng(17);
  double truth = 0.0;
  for (int64_t t = 0; t < 1500; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    truth += rng.Gaussian(0.0, 0.03);
    const Vector z{std::round(truth / step) * step};
    ASSERT_TRUE(adapter.OnCorrection(filter, z, t).ok());
    ASSERT_TRUE(filter.Correct(z).ok());
    ASSERT_TRUE(adapter.InstallInto(&filter).ok());
  }
  // However hard the shrink servo pushes, the installed diagonal never
  // goes below the quantization-error variance of the observed step.
  EXPECT_GE(filter.measurement_noise()(0, 0), step * step / 12.0 - 1e-12);
}

TEST(NoiseAdapterTest, HoldoverGapFreezesAdaptation) {
  const StateModel model = ScalarModel(0.01);
  AdaptiveNoiseConfig config = FastAdaptation();
  config.holdover_gap = 8;
  auto adapter_or = NoiseAdapter::Create(config, model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter adapter = std::move(adapter_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  Rng rng(19);
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    const Vector z{rng.Gaussian(0.0, 1.0)};
    ASSERT_TRUE(adapter.OnCorrection(filter, z, t).ok());
    ASSERT_TRUE(filter.Correct(z).ok());
    ASSERT_TRUE(adapter.InstallInto(&filter).ok());
  }
  const double scale_before = adapter.r_scale();
  // One correction far past the holdover gap: the stale statistics must
  // not move the scales, and the decision must report the freeze.
  for (int64_t skip = 0; skip < 3; ++skip) ASSERT_TRUE(filter.Predict().ok());
  auto decision_or =
      adapter.OnCorrection(filter, Vector{5.0}, /*tick=*/40 + 200);
  ASSERT_TRUE(decision_or.ok());
  EXPECT_TRUE(decision_or.value().frozen);
  EXPECT_FALSE(decision_or.value().adapted);
  EXPECT_EQ(adapter.r_scale(), scale_before);
}

TEST(NoiseAdapterTest, ExportImportRoundTripIsBitExact) {
  const StateModel model = ScalarModel(0.01);
  auto a_or = NoiseAdapter::Create(FastAdaptation(), model);
  auto b_or = NoiseAdapter::Create(FastAdaptation(), model);
  ASSERT_TRUE(a_or.ok() && b_or.ok());
  NoiseAdapter a = std::move(a_or).value();
  NoiseAdapter b = std::move(b_or).value();
  auto filter_or = KalmanFilter::Create(model.options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  Rng rng(23);
  for (int64_t t = 0; t < 100; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    const Vector z{rng.Gaussian(0.0, 0.7)};
    ASSERT_TRUE(a.OnCorrection(filter, z, t).ok());
    ASSERT_TRUE(filter.Correct(z).ok());
    ASSERT_TRUE(a.InstallInto(&filter).ok());
  }
  ASSERT_FALSE(a.StateBitEqual(b));
  ASSERT_TRUE(b.ImportState(a.ExportState()).ok());
  EXPECT_TRUE(a.StateBitEqual(b));
  EXPECT_TRUE(MatrixBitEqual(a.EffectiveMeasurementNoise(),
                             b.EffectiveMeasurementNoise()));
  EXPECT_TRUE(
      MatrixBitEqual(a.EffectiveProcessNoise(), b.EffectiveProcessNoise()));
}

TEST(NoiseAdapterTest, ImportRejectsMalformedState) {
  const StateModel model = ScalarModel();
  auto adapter_or = NoiseAdapter::Create(FastAdaptation(), model);
  ASSERT_TRUE(adapter_or.ok());
  NoiseAdapter adapter = std::move(adapter_or).value();

  Vector good = adapter.ExportState();
  ASSERT_GT(good.size(), 0u);

  Vector short_state(good.size() - 1);
  EXPECT_FALSE(adapter.ImportState(short_state).ok());

  Vector nan_state = good;
  nan_state[1] = std::nan("");
  EXPECT_FALSE(adapter.ImportState(nan_state).ok());

  Vector negative_scale = good;
  negative_scale[5] = -2.0;  // r_scale slot
  EXPECT_FALSE(adapter.ImportState(negative_scale).ok());

  // The adapter must be untouched by every rejected import.
  EXPECT_TRUE(adapter.ImportState(good).ok());
}

// --- Mirror-consistency property under chaos -------------------------

struct ChaosOutcome {
  int healthy_checks = 0;
  int heal_checks = 0;
  int64_t corrections = 0;
  double final_r_scale = 1.0;
};

/// Drives one adaptive dual link through a randomized fault cocktail and
/// asserts the two servos (and installed noise matrices) are
/// bit-identical on every tick the source is not mid-resync.
ChaosOutcome RunAdaptiveChaos(uint64_t seed, double true_noise_stddev) {
  ChaosOutcome outcome;

  ProtocolOptions protocol;
  protocol.heartbeat_interval = 1;
  protocol.staleness_budget = 2;
  protocol.resync_burst_retries = 6;
  protocol.resync_retry_backoff = 4;
  protocol.adaptive = FastAdaptation();

  // Configured R understates the true measurement noise, so the servo
  // has real work to do while the link is being shredded.
  const StateModel model = ScalarModel(/*measurement_variance=*/0.01);

  ServerNode server(protocol);
  EXPECT_TRUE(server.RegisterSource(1, model).ok());

  Rng fault_rng(seed);
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.06 + 0.04 * fault_rng.Uniform(),
      /*p_bad_to_good=*/0.3, /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{0, 2};
  const int64_t outage_start = fault_rng.UniformInt(50, 120);
  fault.outages.push_back(OutageWindow{outage_start, outage_start + 12});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.05;
  fault.active_until = 260;

  ChannelOptions channel_options;
  channel_options.seed = seed;
  channel_options.fault = fault;
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); },
      channel_options);

  SourceNodeOptions node_options;
  node_options.source_id = 1;
  node_options.model = model;
  node_options.delta = 1.0;
  node_options.protocol = protocol;
  auto node_or = SourceNode::Create(node_options);
  EXPECT_TRUE(node_or.ok());
  SourceNode source = std::move(node_or).value();

  Rng rng(seed ^ 0x5DEECE66DULL);
  double truth = 0.0;
  bool was_pending = false;
  for (int64_t t = 0; t < 340; ++t) {
    EXPECT_TRUE(server.TickAll().ok());
    EXPECT_TRUE(channel.BeginTick(t).ok());
    truth += rng.Gaussian(0.0, 0.1);
    const double reading = truth + rng.Gaussian(0.0, true_noise_stddev);
    EXPECT_TRUE(source.ProcessReading(t, Vector{reading}, &channel).ok())
        << "tick " << t;

    const bool pending = source.resync_pending();
    if (!pending) {
      auto server_adapter_or = server.noise_adapter(1);
      EXPECT_TRUE(server_adapter_or.ok());
      const NoiseAdapter& mirror_servo = source.noise_adapter();
      const NoiseAdapter& server_servo = *server_adapter_or.value();
      // The tentpole invariant: transmitted-information-only adaptation
      // keeps the two servo states bit-identical on every healthy tick.
      EXPECT_TRUE(mirror_servo.StateBitEqual(server_servo))
          << "servo states diverged at tick " << t << " seed " << seed;
      // And the *installed* noise matrices match bitwise end to end.
      auto mirror_full = source.mirror().ExportFullState();
      auto server_full = server.predictor(1).value()->ExportFullState();
      EXPECT_TRUE(mirror_full.ok() && server_full.ok());
      EXPECT_TRUE(MatrixBitEqual(mirror_full.value().measurement_noise,
                                 server_full.value().measurement_noise))
          << "effective R diverged at tick " << t << " seed " << seed;
      EXPECT_TRUE(MatrixBitEqual(mirror_full.value().process_noise,
                                 server_full.value().process_noise))
          << "effective Q diverged at tick " << t << " seed " << seed;
      ++outcome.healthy_checks;
      if (was_pending) ++outcome.heal_checks;  // re-lock tick verified
    }
    was_pending = pending;
  }

  // Clean tail: the link healed and the final states agree bitwise.
  EXPECT_FALSE(source.resync_pending()) << "seed " << seed;
  EXPECT_TRUE(
      source.mirror().StateEquals(*server.predictor(1).value()))
      << "seed " << seed;
  outcome.corrections = source.noise_adapter().corrections();
  outcome.final_r_scale = source.noise_adapter().r_scale();
  return outcome;
}

TEST(AdaptivePropertyTest, ServosStayBitIdenticalAcrossChaosCocktails) {
  int total_heal_checks = 0;
  bool adaptation_moved = false;
  for (uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    ChaosOutcome outcome = RunAdaptiveChaos(seed, /*true_noise_stddev=*/0.6);
    EXPECT_GT(outcome.healthy_checks, 50) << "seed " << seed;
    EXPECT_GT(outcome.corrections, 0) << "seed " << seed;
    total_heal_checks += outcome.heal_checks;
    if (outcome.final_r_scale != 1.0) adaptation_moved = true;
  }
  // The property is non-vacuous: healed resyncs were verified bit-exact
  // and the servo actually retuned R somewhere in the batch.
  EXPECT_GT(total_heal_checks, 0);
  EXPECT_TRUE(adaptation_moved);
}

// With adaptation disabled (the default), the adapter payload stays
// empty and the wire format is bit-identical to the pre-adaptive
// protocol: resync messages carry no adapter doubles.
TEST(AdaptivePropertyTest, DisabledAdaptationKeepsWireFormatUnchanged) {
  Message resync;
  resync.type = MessageType::kResync;
  resync.source_id = 1;
  resync.resync_state = Vector{1.0, 2.0};
  resync.resync_covariance = Matrix::Identity(2);
  const size_t base_bytes = resync.SizeBytes();
  const uint32_t base_checksum = resync.ComputeChecksum();

  resync.resync_adapt = Vector{3.0, 4.0};
  EXPECT_GT(resync.SizeBytes(), base_bytes);
  EXPECT_NE(resync.ComputeChecksum(), base_checksum);

  resync.resync_adapt = Vector();
  EXPECT_EQ(resync.SizeBytes(), base_bytes);
  EXPECT_EQ(resync.ComputeChecksum(), base_checksum);
}

}  // namespace
}  // namespace dkf
