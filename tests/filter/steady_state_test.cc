#include "filter/steady_state.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/decompose.h"

namespace dkf {
namespace {

KalmanFilterOptions CvOptions() {
  KalmanFilterOptions options;
  options.transition = Matrix{{1.0, 1.0}, {0.0, 1.0}};
  options.measurement = Matrix{{1.0, 0.0}};
  options.process_noise = Matrix::ScaledIdentity(2, 0.01);
  options.measurement_noise = Matrix{{0.5}};
  options.initial_state = Vector(2);
  options.initial_covariance = Matrix::ScaledIdentity(2, 100.0);
  return options;
}

TEST(RiccatiTest, ConvergesToFixedPoint) {
  const KalmanFilterOptions options = CvOptions();
  auto solution_or =
      SolveRiccati(options.transition, options.measurement,
                   options.process_noise, options.measurement_noise);
  ASSERT_TRUE(solution_or.ok());
  const SteadyStateSolution& solution = solution_or.value();
  EXPECT_GT(solution.iterations, 1);

  // Verify the fixed point: one more Riccati step must not move P.
  const Matrix& p = solution.covariance;
  const Matrix h = options.measurement;
  const Matrix s = h * p * h.Transpose() + options.measurement_noise;
  auto s_inv_or = Inverse(s);
  ASSERT_TRUE(s_inv_or.ok());
  const Matrix gain = p * h.Transpose() * s_inv_or.value();
  Matrix next = options.transition * (p - gain * h * p) *
                    options.transition.Transpose() +
                options.process_noise;
  next.Symmetrize();
  EXPECT_LT(next.MaxAbsDiff(p), 1e-9);
}

TEST(RiccatiTest, GainMatchesOnlineFilterAfterConvergence) {
  // The online covariance recursion of a stationary filter converges to
  // the Riccati solution (§3.2 case 5): compare gains.
  const KalmanFilterOptions options = CvOptions();
  auto solution_or =
      SolveRiccati(options.transition, options.measurement,
                   options.process_noise, options.measurement_noise);
  ASSERT_TRUE(solution_or.ok());

  auto filter_or = KalmanFilter::Create(options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    // The a-priori covariance right after Predict is what Riccati solves
    // for; compare at the last iteration.
    if (i == 499) {
      EXPECT_LT(filter.covariance().MaxAbsDiff(solution_or.value().covariance),
                1e-6);
    }
    ASSERT_TRUE(filter.Correct(Vector{1.0}).ok());
  }
}

TEST(RiccatiTest, RejectsBadShapes) {
  EXPECT_FALSE(SolveRiccati(Matrix(2, 3), Matrix(1, 2), Matrix(2, 2),
                            Matrix(1, 1))
                   .ok());
  EXPECT_FALSE(SolveRiccati(Matrix::Identity(2), Matrix(1, 3),
                            Matrix::Identity(2), Matrix::Identity(1))
                   .ok());
}

TEST(SteadyStateFilterTest, RejectsTimeVaryingTransition) {
  KalmanFilterOptions options = CvOptions();
  options.transition_fn = [](int64_t) { return Matrix::Identity(2); };
  EXPECT_FALSE(SteadyStateKalmanFilter::Create(options).ok());
}

TEST(SteadyStateFilterTest, TracksLikeFullFilter) {
  const KalmanFilterOptions options = CvOptions();
  auto ss_or = SteadyStateKalmanFilter::Create(options);
  auto full_or = KalmanFilter::Create(options);
  ASSERT_TRUE(ss_or.ok());
  ASSERT_TRUE(full_or.ok());
  SteadyStateKalmanFilter ss = std::move(ss_or).value();
  KalmanFilter full = std::move(full_or).value();

  Rng rng(3);
  double pos = 0.0;
  double ss_err = 0.0;
  double full_err = 0.0;
  int count = 0;
  for (int i = 0; i < 1000; ++i) {
    pos += 0.8;
    const Vector z{pos + rng.Gaussian(0.0, 0.7)};
    ss.Predict();
    ASSERT_TRUE(full.Predict().ok());
    ASSERT_TRUE(ss.Correct(z).ok());
    ASSERT_TRUE(full.Correct(z).ok());
    if (i > 200) {
      ss_err += std::fabs(ss.state()[0] - pos);
      full_err += std::fabs(full.state()[0] - pos);
      ++count;
    }
  }
  // After burn-in, the steady-state filter should be nearly as accurate as
  // the full filter (the full filter has converged to the same gain).
  EXPECT_LT(ss_err / count, 1.1 * full_err / count + 0.02);
}

TEST(SteadyStateFilterTest, CorrectValidatesMeasurementSize) {
  auto ss_or = SteadyStateKalmanFilter::Create(CvOptions());
  ASSERT_TRUE(ss_or.ok());
  SteadyStateKalmanFilter ss = std::move(ss_or).value();
  EXPECT_FALSE(ss.Correct(Vector{1.0, 2.0}).ok());
}

TEST(SteadyStateFilterTest, StepCounterAdvances) {
  auto ss_or = SteadyStateKalmanFilter::Create(CvOptions());
  ASSERT_TRUE(ss_or.ok());
  SteadyStateKalmanFilter ss = std::move(ss_or).value();
  ss.Predict();
  ss.Predict();
  EXPECT_EQ(ss.step(), 2);
}

}  // namespace
}  // namespace dkf
