#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "filter/kalman_filter.h"
#include "linalg/matrix.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

// Tests for the steady-state fast path: once the post-Correct covariance
// settles into an exact repeating cycle, the filter freezes the gain and
// covariance and skips the Riccati/Joseph arithmetic. The contract is that
// with the default exact tolerance the armed filter is *bit-identical* to
// one that never arms — StateEquals (exact ==) must hold tick for tick.

Vector MeasurementAt(size_t dim, int t) {
  Vector z(dim);
  for (size_t i = 0; i < dim; ++i) {
    z[i] = 20.0 * std::sin(0.1 * t + static_cast<double>(i));
  }
  return z;
}

std::pair<KalmanFilter, KalmanFilter> MakeFastAndSlow(
    const KalmanFilterOptions& options) {
  auto fast_or = KalmanFilter::Create(options);
  KalmanFilterOptions disabled = options;
  disabled.steady_state_fast_path = false;
  auto slow_or = KalmanFilter::Create(disabled);
  EXPECT_TRUE(fast_or.ok() && slow_or.ok());
  return {std::move(fast_or).value(), std::move(slow_or).value()};
}

TEST(FastPathTest, ArmsOnConstantModelAndStaysBitExact) {
  ModelNoise noise;
  auto model = MakeConstantModel(1, noise).value();
  auto [fast, slow] = MakeFastAndSlow(model.options);
  int armed_at = -1;
  for (int t = 0; t < 500; ++t) {
    ASSERT_TRUE(fast.Predict().ok());
    ASSERT_TRUE(slow.Predict().ok());
    const Vector z = MeasurementAt(model.measurement_dim, t);
    ASSERT_TRUE(fast.Correct(z).ok());
    ASSERT_TRUE(slow.Correct(z).ok());
    if (armed_at < 0 && fast.steady_state_armed()) armed_at = t;
    ASSERT_TRUE(fast.StateEquals(slow)) << "diverged at tick " << t;
  }
  // The arming must actually happen for this test to mean anything.
  EXPECT_GE(armed_at, 0);
  EXPECT_TRUE(fast.steady_state_armed());
  EXPECT_FALSE(slow.steady_state_armed());
}

TEST(FastPathTest, ArmsOnPeriodTwoCovarianceCycle) {
  // Multi-axis linear models settle into an exact period-2 covariance
  // limit cycle (P(t) == P(t-2) bitwise, != P(t-1)) rather than a fixed
  // point; the fast path must detect and freeze the two-phase cycle.
  ModelNoise noise;
  auto model = MakeLinearModel(2, 1.0, noise).value();  // 4-state model
  auto [fast, slow] = MakeFastAndSlow(model.options);
  int armed_at = -1;
  for (int t = 0; t < 500; ++t) {
    ASSERT_TRUE(fast.Predict().ok());
    ASSERT_TRUE(slow.Predict().ok());
    const Vector z = MeasurementAt(model.measurement_dim, t);
    ASSERT_TRUE(fast.Correct(z).ok());
    ASSERT_TRUE(slow.Correct(z).ok());
    if (armed_at < 0 && fast.steady_state_armed()) armed_at = t;
    ASSERT_TRUE(fast.StateEquals(slow)) << "diverged at tick " << t;
  }
  EXPECT_GE(armed_at, 0);
  EXPECT_TRUE(fast.steady_state_armed());
}

TEST(FastPathTest, CoastingDisarmsAndStaysBitExact) {
  // Suppressed updates (the DKF protocol's whole point) show up as
  // Predict-only ticks. They move the covariance off the frozen cycle, so
  // the fast path must disarm — and the coasting filter must still match
  // a never-armed twin bit for bit.
  ModelNoise noise;
  auto model = MakeConstantModel(2, noise).value();
  auto [fast, slow] = MakeFastAndSlow(model.options);
  bool was_armed = false;
  for (int t = 0; t < 400; ++t) {
    ASSERT_TRUE(fast.Predict().ok());
    ASSERT_TRUE(slow.Predict().ok());
    if (fast.steady_state_armed()) was_armed = true;
    // Suppress every fourth measurement once past the warmup.
    if (t > 100 && t % 4 == 0) continue;
    const Vector z = MeasurementAt(model.measurement_dim, t);
    ASSERT_TRUE(fast.Correct(z).ok());
    ASSERT_TRUE(slow.Correct(z).ok());
    ASSERT_TRUE(fast.StateEquals(slow)) << "diverged at tick " << t;
  }
  EXPECT_TRUE(was_armed);
}

TEST(FastPathTest, NoiseReconfigurationDisarmsThenRearms) {
  ModelNoise noise;
  auto model = MakeConstantModel(1, noise).value();
  auto [fast, slow] = MakeFastAndSlow(model.options);
  auto run = [&](int from, int to) {
    for (int t = from; t < to; ++t) {
      ASSERT_TRUE(fast.Predict().ok());
      ASSERT_TRUE(slow.Predict().ok());
      const Vector z = MeasurementAt(model.measurement_dim, t);
      ASSERT_TRUE(fast.Correct(z).ok());
      ASSERT_TRUE(slow.Correct(z).ok());
      ASSERT_TRUE(fast.StateEquals(slow)) << "diverged at tick " << t;
    }
  };
  run(0, 200);
  ASSERT_TRUE(fast.steady_state_armed());
  // The adaptive noise estimator path: replacing Q moves the Riccati
  // fixed point, so the frozen gain is stale and must be dropped.
  Matrix q = fast.process_noise();
  q(0, 0) *= 2.0;
  ASSERT_TRUE(fast.set_process_noise(q).ok());
  ASSERT_TRUE(slow.set_process_noise(q).ok());
  EXPECT_FALSE(fast.steady_state_armed());
  run(200, 400);
  // Re-converged on the new fixed point.
  EXPECT_TRUE(fast.steady_state_armed());
}

TEST(FastPathTest, ResetDisarms) {
  ModelNoise noise;
  auto model = MakeConstantModel(1, noise).value();
  auto fast = KalmanFilter::Create(model.options).value();
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(fast.Predict().ok());
    ASSERT_TRUE(fast.Correct(MeasurementAt(1, t)).ok());
  }
  ASSERT_TRUE(fast.steady_state_armed());
  fast.Reset();
  EXPECT_FALSE(fast.steady_state_armed());
  EXPECT_EQ(fast.step(), 0);
}

TEST(FastPathTest, NeverArmsWithTimeVaryingTransition) {
  ModelNoise noise;
  auto model = MakeSinusoidalModel(0.3, 0.0, 1.0, noise).value();
  ASSERT_TRUE(model.options.transition_fn != nullptr);
  auto fast = KalmanFilter::Create(model.options).value();
  for (int t = 0; t < 300; ++t) {
    ASSERT_TRUE(fast.Predict().ok());
    ASSERT_TRUE(fast.Correct(MeasurementAt(model.measurement_dim, t)).ok());
    ASSERT_FALSE(fast.steady_state_armed());
  }
}

TEST(FastPathTest, DualLinkLockStepAcrossReconfiguration) {
  // The mirror-consistency contract of the DKF protocol: KF_s (server) and
  // KF_m (source) run identical code on identical inputs and must stay
  // bit-identical — including while the fast path arms, runs armed, and is
  // disarmed by a mid-run reconfiguration on both ends.
  ModelNoise noise;
  auto model = MakeLinearModel(1, 1.0, noise).value();
  auto server = KalmanFilter::Create(model.options).value();
  auto mirror = KalmanFilter::Create(model.options).value();
  bool armed_before_reconfig = false;
  bool armed_after_reconfig = false;
  for (int t = 0; t < 600; ++t) {
    ASSERT_TRUE(server.Predict().ok());
    ASSERT_TRUE(mirror.Predict().ok());
    const Vector z = MeasurementAt(model.measurement_dim, t);
    ASSERT_TRUE(server.Correct(z).ok());
    ASSERT_TRUE(mirror.Correct(z).ok());
    ASSERT_TRUE(server.StateEquals(mirror)) << "mirror broke at tick " << t;
    if (t < 300 && server.steady_state_armed()) armed_before_reconfig = true;
    if (t > 300 && server.steady_state_armed()) armed_after_reconfig = true;
    if (t == 300) {
      Matrix q = server.process_noise();
      q(0, 0) *= 4.0;
      ASSERT_TRUE(server.set_process_noise(q).ok());
      ASSERT_TRUE(mirror.set_process_noise(q).ok());
    }
  }
  EXPECT_TRUE(armed_before_reconfig);
  EXPECT_TRUE(armed_after_reconfig);
}

TEST(FastPathTest, NegativeToleranceDisablesTracking) {
  ModelNoise noise;
  auto model = MakeConstantModel(1, noise).value();
  KalmanFilterOptions options = model.options;
  options.steady_state_tolerance = -1.0;
  auto filter = KalmanFilter::Create(options).value();
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(MeasurementAt(1, t)).ok());
  }
  EXPECT_FALSE(filter.steady_state_armed());
}

}  // namespace
}  // namespace dkf
