#include "filter/extended_kalman_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/nonlinear_models.h"

namespace dkf {
namespace {

/// A trivially linear system expressed through the EKF interface: the EKF
/// must then behave exactly like a linear KF.
ExtendedKalmanFilterOptions LinearAsEkf() {
  ExtendedKalmanFilterOptions options;
  options.transition = [](const Vector& x, int64_t) {
    return Vector{x[0] + x[1], x[1]};
  };
  options.transition_jacobian = [](const Vector&, int64_t) {
    return Matrix{{1.0, 1.0}, {0.0, 1.0}};
  };
  options.measurement = [](const Vector& x) { return Vector{x[0]}; };
  options.measurement_jacobian = [](const Vector&) {
    return Matrix{{1.0, 0.0}};
  };
  options.process_noise = Matrix::ScaledIdentity(2, 0.01);
  options.measurement_noise = Matrix{{0.1}};
  options.initial_state = Vector(2);
  options.initial_covariance = Matrix::ScaledIdentity(2, 100.0);
  return options;
}

TEST(EkfTest, CreateRequiresAllCallbacks) {
  ExtendedKalmanFilterOptions options = LinearAsEkf();
  options.transition = nullptr;
  EXPECT_FALSE(ExtendedKalmanFilter::Create(options).ok());
  options = LinearAsEkf();
  options.measurement_jacobian = nullptr;
  EXPECT_FALSE(ExtendedKalmanFilter::Create(options).ok());
}

TEST(EkfTest, CreateValidatesShapes) {
  ExtendedKalmanFilterOptions options = LinearAsEkf();
  options.process_noise = Matrix::Identity(3);
  EXPECT_FALSE(ExtendedKalmanFilter::Create(options).ok());
  options = LinearAsEkf();
  options.initial_state = Vector();
  EXPECT_FALSE(ExtendedKalmanFilter::Create(options).ok());
}

TEST(EkfTest, TracksLinearTrend) {
  auto ekf_or = ExtendedKalmanFilter::Create(LinearAsEkf());
  ASSERT_TRUE(ekf_or.ok());
  ExtendedKalmanFilter ekf = std::move(ekf_or).value();
  double pos = 0.0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(ekf.Predict().ok());
    ASSERT_TRUE(ekf.Correct(Vector{pos}).ok());
    pos += 1.5;
  }
  EXPECT_NEAR(ekf.state()[1], 1.5, 0.05);
}

TEST(EkfTest, CoordinatedTurnTracksCircularMotion) {
  auto options_or = MakeCoordinatedTurnModel(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  auto ekf_or = ExtendedKalmanFilter::Create(options_or.value());
  ASSERT_TRUE(ekf_or.ok());
  ExtendedKalmanFilter ekf = std::move(ekf_or).value();

  // Ground truth: speed 10, turn rate 0.5 rad/s, dt 0.1.
  const double dt = 0.1;
  const double speed = 10.0;
  const double turn_rate = 0.5;
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  Rng rng(5);
  double last_err = 1e9;
  for (int i = 0; i < 400; ++i) {
    x += speed * std::cos(heading) * dt;
    y += speed * std::sin(heading) * dt;
    heading += turn_rate * dt;
    ASSERT_TRUE(ekf.Predict().ok());
    const Vector z{x + rng.Gaussian(0.0, 0.05),
                   y + rng.Gaussian(0.0, 0.05)};
    ASSERT_TRUE(ekf.Correct(z).ok());
    if (i == 399) {
      const Vector est = ekf.PredictedMeasurement();
      last_err = std::hypot(est[0] - x, est[1] - y);
    }
  }
  EXPECT_LT(last_err, 0.5);
  // The EKF should have recovered the turn rate, not just the positions.
  EXPECT_NEAR(ekf.state()[4], turn_rate, 0.1);
  EXPECT_NEAR(ekf.state()[2], speed, 1.0);
}

TEST(EkfTest, CoordinatedTurnCoastPredictsAlongArc) {
  auto options_or = MakeCoordinatedTurnModel(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  auto ekf_or = ExtendedKalmanFilter::Create(options_or.value());
  ASSERT_TRUE(ekf_or.ok());
  ExtendedKalmanFilter ekf = std::move(ekf_or).value();

  const double dt = 0.1;
  const double speed = 5.0;
  const double turn_rate = 0.3;
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  for (int i = 0; i < 300; ++i) {
    x += speed * std::cos(heading) * dt;
    y += speed * std::sin(heading) * dt;
    heading += turn_rate * dt;
    ASSERT_TRUE(ekf.Predict().ok());
    ASSERT_TRUE(ekf.Correct(Vector{x, y}).ok());
  }
  // Coast 10 steps; the truth keeps turning. A linear extrapolation would
  // leave the arc; the EKF should stay close.
  for (int i = 0; i < 10; ++i) {
    x += speed * std::cos(heading) * dt;
    y += speed * std::sin(heading) * dt;
    heading += turn_rate * dt;
    ASSERT_TRUE(ekf.Predict().ok());
  }
  const Vector est = ekf.PredictedMeasurement();
  EXPECT_LT(std::hypot(est[0] - x, est[1] - y), 0.5);
}

TEST(EkfTest, CorrectRejectsWrongMeasurementSize) {
  auto ekf_or = ExtendedKalmanFilter::Create(LinearAsEkf());
  ASSERT_TRUE(ekf_or.ok());
  ExtendedKalmanFilter ekf = std::move(ekf_or).value();
  ASSERT_TRUE(ekf.Predict().ok());
  EXPECT_FALSE(ekf.Correct(Vector{1.0, 2.0}).ok());
}

TEST(EkfTest, ResetRestoresInitialState) {
  auto ekf_or = ExtendedKalmanFilter::Create(LinearAsEkf());
  ASSERT_TRUE(ekf_or.ok());
  ExtendedKalmanFilter ekf = std::move(ekf_or).value();
  ASSERT_TRUE(ekf.Predict().ok());
  ASSERT_TRUE(ekf.Correct(Vector{5.0}).ok());
  ekf.Reset();
  EXPECT_EQ(ekf.step(), 0);
  EXPECT_DOUBLE_EQ(ekf.state()[0], 0.0);
}

}  // namespace
}  // namespace dkf
