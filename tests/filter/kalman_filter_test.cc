#include "filter/kalman_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dkf {
namespace {

/// A 1-D constant-velocity filter used across the tests.
KalmanFilterOptions CvOptions(double dt = 1.0, double q = 0.01,
                              double r = 0.1) {
  KalmanFilterOptions options;
  options.transition = Matrix{{1.0, dt}, {0.0, 1.0}};
  options.measurement = Matrix{{1.0, 0.0}};
  options.process_noise = Matrix::ScaledIdentity(2, q);
  options.measurement_noise = Matrix{{r}};
  options.initial_state = Vector(2);
  options.initial_covariance = Matrix::ScaledIdentity(2, 100.0);
  return options;
}

TEST(KalmanFilterTest, CreateValidatesDimensions) {
  KalmanFilterOptions options = CvOptions();
  options.measurement = Matrix{{1.0, 0.0, 0.0}};  // wrong cols
  EXPECT_FALSE(KalmanFilter::Create(options).ok());

  options = CvOptions();
  options.process_noise = Matrix::Identity(3);
  EXPECT_FALSE(KalmanFilter::Create(options).ok());

  options = CvOptions();
  options.measurement_noise = Matrix::Identity(2);
  EXPECT_FALSE(KalmanFilter::Create(options).ok());

  options = CvOptions();
  options.initial_state = Vector();
  EXPECT_FALSE(KalmanFilter::Create(options).ok());

  options = CvOptions();
  options.initial_covariance = Matrix::Identity(3);
  EXPECT_FALSE(KalmanFilter::Create(options).ok());

  EXPECT_TRUE(KalmanFilter::Create(CvOptions()).ok());
}

TEST(KalmanFilterTest, CreateRejectsNonFiniteInit) {
  KalmanFilterOptions options = CvOptions();
  options.initial_state = Vector{std::nan(""), 0.0};
  EXPECT_FALSE(KalmanFilter::Create(options).ok());
}

TEST(KalmanFilterTest, PredictPropagatesState) {
  auto filter_or = KalmanFilter::Create(CvOptions(0.5));
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  ASSERT_TRUE(filter.Correct(Vector{0.0}).ok());

  // Force a known state and check phi x.
  ASSERT_TRUE(filter.Predict().ok());
  EXPECT_EQ(filter.step(), 1);
}

TEST(KalmanFilterTest, ConvergesToConstantSignal) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{5.0}).ok());
  }
  EXPECT_NEAR(filter.state()[0], 5.0, 1e-3);
  EXPECT_NEAR(filter.state()[1], 0.0, 1e-3);
}

TEST(KalmanFilterTest, LearnsLinearTrendVelocity) {
  // Positions 0, 2, 4, ...: the filter should learn velocity 2 and then
  // predict ahead correctly.
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  double pos = 0.0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{pos}).ok());
    pos += 2.0;
  }
  EXPECT_NEAR(filter.state()[1], 2.0, 0.05);
  // Coast three steps: prediction should track the line within the noise.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(filter.Predict().ok());
  EXPECT_NEAR(filter.PredictedMeasurement()[0], pos + 2.0 * 2.0, 0.5);
}

TEST(KalmanFilterTest, CovarianceShrinksWithMeasurements) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  const double initial_var = filter.covariance()(0, 0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{1.0}).ok());
  }
  EXPECT_LT(filter.covariance()(0, 0), initial_var / 100.0);
}

TEST(KalmanFilterTest, CovarianceGrowsWhileCoasting) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{1.0}).ok());
  }
  const double settled = filter.covariance()(0, 0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(filter.Predict().ok());
  EXPECT_GT(filter.covariance()(0, 0), settled);
}

TEST(KalmanFilterTest, UnbiasedOnNoisyConstant) {
  // Statistical property 1 (§1.1): the estimate is unbiased. Average the
  // final estimate over many independent noisy runs.
  Rng rng(42);
  double sum = 0.0;
  const int runs = 200;
  for (int run = 0; run < runs; ++run) {
    auto filter_or = KalmanFilter::Create(CvOptions());
    ASSERT_TRUE(filter_or.ok());
    KalmanFilter filter = std::move(filter_or).value();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(filter.Predict().ok());
      ASSERT_TRUE(filter.Correct(Vector{3.0 + rng.Gaussian(0.0, 0.3)}).ok());
    }
    sum += filter.state()[0];
  }
  EXPECT_NEAR(sum / runs, 3.0, 0.02);
}

TEST(KalmanFilterTest, FilterVarianceBelowRawMeasurementVariance) {
  // Statistical property 2 (§1.1): the filtered estimate has lower error
  // variance than the raw measurement.
  Rng rng(43);
  double raw_sq = 0.0;
  double filt_sq = 0.0;
  int count = 0;
  auto filter_or = KalmanFilter::Create(CvOptions(1.0, 1e-6, 1.0));
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    const double z = 10.0 + rng.Gaussian(0.0, 1.0);
    ASSERT_TRUE(filter.Correct(Vector{z}).ok());
    if (i > 100) {  // after convergence
      raw_sq += (z - 10.0) * (z - 10.0);
      const double e = filter.state()[0] - 10.0;
      filt_sq += e * e;
      ++count;
    }
  }
  EXPECT_LT(filt_sq / count, 0.2 * raw_sq / count);
}

TEST(KalmanFilterTest, TimeVaryingTransitionFnIsUsed) {
  KalmanFilterOptions options;
  // x_{k+1} = (k even ? x : -x): alternating sign flip.
  options.transition_fn = [](int64_t k) {
    return Matrix{{k % 2 == 0 ? 1.0 : -1.0}};
  };
  options.measurement = Matrix{{1.0}};
  options.process_noise = Matrix{{0.0}};
  options.measurement_noise = Matrix{{1.0}};
  options.initial_state = Vector{2.0};
  options.initial_covariance = Matrix{{1.0}};
  auto filter_or = KalmanFilter::Create(options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  ASSERT_TRUE(filter.Predict().ok());  // step 0: +1
  EXPECT_DOUBLE_EQ(filter.state()[0], 2.0);
  ASSERT_TRUE(filter.Predict().ok());  // step 1: -1
  EXPECT_DOUBLE_EQ(filter.state()[0], -2.0);
}

TEST(KalmanFilterTest, TransitionFnShapeChecked) {
  KalmanFilterOptions options;
  options.transition_fn = [](int64_t) { return Matrix::Identity(3); };
  options.measurement = Matrix{{1.0}};
  options.process_noise = Matrix{{0.0}};
  options.measurement_noise = Matrix{{1.0}};
  options.initial_state = Vector{0.0};
  options.initial_covariance = Matrix{{1.0}};
  auto filter_or = KalmanFilter::Create(options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  EXPECT_EQ(filter.Predict().code(), StatusCode::kInternal);
}

TEST(KalmanFilterTest, CorrectRejectsWrongMeasurementSize) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  EXPECT_FALSE(filter.Correct(Vector{1.0, 2.0}).ok());
}

TEST(KalmanFilterTest, InnovationTracked) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  EXPECT_EQ(filter.last_innovation().size(), 0u);
  ASSERT_TRUE(filter.Predict().ok());
  ASSERT_TRUE(filter.Correct(Vector{7.0}).ok());
  ASSERT_EQ(filter.last_innovation().size(), 1u);
  EXPECT_DOUBLE_EQ(filter.last_innovation()[0], 7.0);  // prior was 0
}

TEST(KalmanFilterTest, NisIsSmallForConsistentMeasurement) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{4.0}).ok());
  }
  ASSERT_TRUE(filter.Predict().ok());
  auto nis_near_or = filter.Nis(Vector{4.0});
  auto nis_far_or = filter.Nis(Vector{40.0});
  ASSERT_TRUE(nis_near_or.ok());
  ASSERT_TRUE(nis_far_or.ok());
  EXPECT_LT(nis_near_or.value(), 1.0);
  EXPECT_GT(nis_far_or.value(), 100.0);
}

TEST(KalmanFilterTest, JosephFormKeepsCovarianceSymmetricPsd) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{rng.Gaussian(0.0, 1.0)}).ok());
    const Matrix& p = filter.covariance();
    EXPECT_DOUBLE_EQ(p(0, 1), p(1, 0));
    EXPECT_GT(p(0, 0), 0.0);
    EXPECT_GT(p(1, 1), 0.0);
  }
}

TEST(KalmanFilterTest, SettersValidateShape) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  EXPECT_TRUE(filter.set_process_noise(Matrix::Identity(2)).ok());
  EXPECT_FALSE(filter.set_process_noise(Matrix::Identity(3)).ok());
  EXPECT_TRUE(filter.set_measurement_noise(Matrix{{0.5}}).ok());
  EXPECT_FALSE(filter.set_measurement_noise(Matrix::Identity(2)).ok());
}

TEST(KalmanFilterTest, ResetRestoresInitialState) {
  auto filter_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  ASSERT_TRUE(filter.Predict().ok());
  ASSERT_TRUE(filter.Correct(Vector{9.0}).ok());
  filter.Reset();
  EXPECT_EQ(filter.step(), 0);
  EXPECT_DOUBLE_EQ(filter.state()[0], 0.0);
  EXPECT_DOUBLE_EQ(filter.covariance()(0, 0), 100.0);
}

TEST(KalmanFilterTest, StateEqualsDetectsDivergence) {
  auto a_or = KalmanFilter::Create(CvOptions());
  auto b_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  KalmanFilter a = std::move(a_or).value();
  KalmanFilter b = std::move(b_or).value();
  EXPECT_TRUE(a.StateEquals(b));
  ASSERT_TRUE(a.Predict().ok());
  EXPECT_FALSE(a.StateEquals(b));
  ASSERT_TRUE(b.Predict().ok());
  EXPECT_TRUE(a.StateEquals(b));
  ASSERT_TRUE(a.Correct(Vector{1.0}).ok());
  ASSERT_TRUE(b.Correct(Vector{1.0}).ok());
  EXPECT_TRUE(a.StateEquals(b));
  ASSERT_TRUE(a.Correct(Vector{2.0}).ok());
  ASSERT_TRUE(b.Correct(Vector{2.0000001}).ok());
  EXPECT_FALSE(a.StateEquals(b));
}

TEST(KalmanFilterTest, DeterministicReplay) {
  // Identical call sequences produce bit-identical trajectories — the
  // property the whole DKF protocol rests on.
  auto a_or = KalmanFilter::Create(CvOptions());
  auto b_or = KalmanFilter::Create(CvOptions());
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  KalmanFilter a = std::move(a_or).value();
  KalmanFilter b = std::move(b_or).value();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Predict().ok());
    ASSERT_TRUE(b.Predict().ok());
    if (rng.Bernoulli(0.3)) {
      const Vector z{rng.Gaussian(0.0, 5.0)};
      ASSERT_TRUE(a.Correct(z).ok());
      ASSERT_TRUE(b.Correct(z).ok());
    }
    ASSERT_TRUE(a.StateEquals(b));
  }
}

}  // namespace
}  // namespace dkf
