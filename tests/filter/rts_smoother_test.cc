#include "filter/rts_smoother.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

KalmanFilterOptions CvOptions(double q = 0.01, double r = 0.5) {
  ModelNoise noise;
  noise.process_variance = q;
  noise.measurement_variance = r;
  return MakeLinearModel(1, 1.0, noise).value().options;
}

TEST(RtsTest, RejectsEmptyInput) {
  EXPECT_FALSE(RtsSmooth(CvOptions(), {}).ok());
}

TEST(RtsTest, OutputSizesMatchInput) {
  std::vector<std::optional<Vector>> measurements(10);
  for (int i = 0; i < 10; ++i) {
    measurements[i] = Vector{static_cast<double>(i)};
  }
  auto result_or = RtsSmooth(CvOptions(), measurements);
  ASSERT_TRUE(result_or.ok());
  EXPECT_EQ(result_or.value().states.size(), 10u);
  EXPECT_EQ(result_or.value().covariances.size(), 10u);
  EXPECT_EQ(result_or.value().measurements.size(), 10u);
}

TEST(RtsTest, LastStateMatchesForwardFilter) {
  // By definition the smoothed estimate at the final tick equals the
  // filtered one.
  Rng rng(1);
  std::vector<std::optional<Vector>> measurements;
  auto filter = KalmanFilter::Create(CvOptions()).value();
  for (int i = 0; i < 100; ++i) {
    const Vector z{0.5 * i + rng.Gaussian(0.0, 0.5)};
    measurements.push_back(z);
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(z).ok());
  }
  auto result_or = RtsSmooth(CvOptions(), measurements);
  ASSERT_TRUE(result_or.ok());
  const Vector& smoothed_last = result_or.value().states.back();
  for (size_t i = 0; i < smoothed_last.size(); ++i) {
    EXPECT_NEAR(smoothed_last[i], filter.state()[i], 1e-9);
  }
}

TEST(RtsTest, SmoothedCovarianceNoLargerThanFiltered) {
  // Smoothing uses future information, so the marginal variances can only
  // shrink (or stay equal at the last tick).
  Rng rng(2);
  std::vector<std::optional<Vector>> measurements;
  for (int i = 0; i < 200; ++i) {
    measurements.emplace_back(Vector{rng.Gaussian(0.0, 1.0)});
  }
  // Forward-only pass for comparison.
  auto filter = KalmanFilter::Create(CvOptions()).value();
  std::vector<double> filtered_var;
  for (const auto& z : measurements) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(*z).ok());
    filtered_var.push_back(filter.covariance()(0, 0));
  }
  auto result_or = RtsSmooth(CvOptions(), measurements);
  ASSERT_TRUE(result_or.ok());
  for (size_t i = 0; i < measurements.size(); ++i) {
    EXPECT_LE(result_or.value().covariances[i](0, 0),
              filtered_var[i] + 1e-9)
        << "tick " << i;
  }
}

TEST(RtsTest, FillsGapsBetterThanForwardFilter) {
  // A linear ramp observed only every 10th tick: forward filtering coasts
  // with growing error through each gap; smoothing interpolates through
  // it. Compare mean absolute errors against the true ramp.
  const double slope = 2.0;
  const int n = 300;
  std::vector<std::optional<Vector>> measurements(n);
  std::vector<double> truth(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = slope * (i + 1);
    if (i % 10 == 0) measurements[i] = Vector{truth[i]};
  }

  auto filter = KalmanFilter::Create(CvOptions()).value();
  double forward_err = 0.0;
  for (int i = 0; i < n; ++i) {
    (void)filter.Predict();
    if (measurements[i].has_value()) {
      (void)filter.Correct(*measurements[i]);
    }
    forward_err += std::fabs(filter.PredictedMeasurement()[0] - truth[i]);
  }
  auto result_or = RtsSmooth(CvOptions(), measurements);
  ASSERT_TRUE(result_or.ok());
  double smoothed_err = 0.0;
  for (int i = 0; i < n; ++i) {
    smoothed_err += std::fabs(result_or.value().measurements[i][0] -
                              truth[i]);
  }
  EXPECT_LT(smoothed_err, 0.9 * forward_err);
}

TEST(RtsTest, WorksWithTimeVaryingTransition) {
  ModelNoise noise;
  noise.process_variance = 1e-6;
  noise.measurement_variance = 1e-2;
  const double omega = 0.3;
  const StateModel model =
      MakeSinusoidalModel(omega, 0.0, 1.0, noise).value();
  // Stream generated with the model's own recurrence.
  std::vector<std::optional<Vector>> measurements;
  double signal = 0.0;
  for (int64_t k = 0; k < 200; ++k) {
    signal += std::cos(omega * static_cast<double>(k)) * 3.0;
    if (k % 5 == 0) {
      measurements.emplace_back(Vector{signal});
    } else {
      measurements.emplace_back(std::nullopt);
    }
  }
  auto result_or = RtsSmooth(model.options, measurements);
  ASSERT_TRUE(result_or.ok());
  // Re-generate and compare the tail (after amplitude convergence).
  signal = 0.0;
  double max_err = 0.0;
  for (int64_t k = 0; k < 200; ++k) {
    signal += std::cos(omega * static_cast<double>(k)) * 3.0;
    if (k > 50) {
      max_err = std::max(max_err,
                         std::fabs(result_or.value().measurements[k][0] -
                                   signal));
    }
  }
  EXPECT_LT(max_err, 0.5);
}

}  // namespace
}  // namespace dkf
