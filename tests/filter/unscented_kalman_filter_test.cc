#include "filter/unscented_kalman_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "filter/kalman_filter.h"
#include "models/nonlinear_models.h"

namespace dkf {
namespace {

/// A linear constant-velocity system expressed through the UKF interface.
UnscentedKalmanFilterOptions LinearAsUkf(double q = 0.01, double r = 0.1) {
  UnscentedKalmanFilterOptions options;
  options.transition = [](const Vector& x, int64_t) {
    return Vector{x[0] + x[1], x[1]};
  };
  options.measurement = [](const Vector& x) { return Vector{x[0]}; };
  options.process_noise = Matrix::ScaledIdentity(2, q);
  options.measurement_noise = Matrix{{r}};
  options.initial_state = Vector(2);
  options.initial_covariance = Matrix::ScaledIdentity(2, 100.0);
  return options;
}

KalmanFilterOptions LinearAsKf(double q = 0.01, double r = 0.1) {
  KalmanFilterOptions options;
  options.transition = Matrix{{1.0, 1.0}, {0.0, 1.0}};
  options.measurement = Matrix{{1.0, 0.0}};
  options.process_noise = Matrix::ScaledIdentity(2, q);
  options.measurement_noise = Matrix{{r}};
  options.initial_state = Vector(2);
  options.initial_covariance = Matrix::ScaledIdentity(2, 100.0);
  return options;
}

TEST(UkfTest, CreateValidates) {
  UnscentedKalmanFilterOptions options = LinearAsUkf();
  options.transition = nullptr;
  EXPECT_FALSE(UnscentedKalmanFilter::Create(options).ok());
  options = LinearAsUkf();
  options.measurement = nullptr;
  EXPECT_FALSE(UnscentedKalmanFilter::Create(options).ok());
  options = LinearAsUkf();
  options.alpha = 0.0;
  EXPECT_FALSE(UnscentedKalmanFilter::Create(options).ok());
  options = LinearAsUkf();
  options.alpha = 2.0;
  EXPECT_FALSE(UnscentedKalmanFilter::Create(options).ok());
  options = LinearAsUkf();
  options.process_noise = Matrix::Identity(3);
  EXPECT_FALSE(UnscentedKalmanFilter::Create(options).ok());
  EXPECT_TRUE(UnscentedKalmanFilter::Create(LinearAsUkf()).ok());
}

TEST(UkfTest, ExactOnLinearSystems) {
  // The unscented transform is exact through affine maps: on a linear
  // system the UKF must reproduce the ordinary KF's trajectory to
  // numerical precision.
  auto ukf = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  auto kf = KalmanFilter::Create(LinearAsKf()).value();
  Rng rng(1);
  double pos = 0.0;
  for (int i = 0; i < 200; ++i) {
    pos += 0.7;
    const Vector z{pos + rng.Gaussian(0.0, 0.3)};
    ASSERT_TRUE(ukf.Predict().ok());
    ASSERT_TRUE(kf.Predict().ok());
    ASSERT_TRUE(ukf.Correct(z).ok());
    ASSERT_TRUE(kf.Correct(z).ok());
    for (size_t s = 0; s < 2; ++s) {
      ASSERT_NEAR(ukf.state()[s], kf.state()[s], 1e-6) << "tick " << i;
    }
    ASSERT_LT(ukf.covariance().MaxAbsDiff(kf.covariance()), 1e-6);
  }
}

TEST(UkfTest, TracksCoordinatedTurnWithoutJacobians) {
  auto options_or = MakeCoordinatedTurnUkf(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  auto ukf = UnscentedKalmanFilter::Create(options_or.value()).value();

  const double dt = 0.1;
  const double speed = 10.0;
  const double turn_rate = 0.5;
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    x += speed * std::cos(heading) * dt;
    y += speed * std::sin(heading) * dt;
    heading += turn_rate * dt;
    ASSERT_TRUE(ukf.Predict().ok());
    ASSERT_TRUE(ukf.Correct(Vector{x + rng.Gaussian(0.0, 0.05),
                                   y + rng.Gaussian(0.0, 0.05)})
                    .ok());
  }
  const Vector est = ukf.PredictedMeasurement();
  EXPECT_LT(std::hypot(est[0] - x, est[1] - y), 0.5);
  EXPECT_NEAR(ukf.state()[4], turn_rate, 0.1);
}

TEST(UkfTest, CorrectValidatesMeasurementSize) {
  auto ukf = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  ASSERT_TRUE(ukf.Predict().ok());
  EXPECT_FALSE(ukf.Correct(Vector{1.0, 2.0}).ok());
}

TEST(UkfTest, DeterministicReplayAndStateEquals) {
  auto a = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  auto b = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Predict().ok());
    ASSERT_TRUE(b.Predict().ok());
    if (rng.Bernoulli(0.4)) {
      const Vector z{rng.Gaussian(0.0, 2.0)};
      ASSERT_TRUE(a.Correct(z).ok());
      ASSERT_TRUE(b.Correct(z).ok());
    }
    ASSERT_TRUE(a.StateEquals(b)) << "tick " << i;
  }
  ASSERT_TRUE(a.Predict().ok());
  EXPECT_FALSE(a.StateEquals(b));
}

TEST(UkfTest, ResetRestoresInitialState) {
  auto ukf = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  ASSERT_TRUE(ukf.Predict().ok());
  ASSERT_TRUE(ukf.Correct(Vector{5.0}).ok());
  ukf.Reset();
  EXPECT_EQ(ukf.step(), 0);
  EXPECT_DOUBLE_EQ(ukf.state()[0], 0.0);
  EXPECT_DOUBLE_EQ(ukf.covariance()(0, 0), 100.0);
}

TEST(UkfTest, CovarianceStaysSymmetricPositive) {
  auto ukf = UnscentedKalmanFilter::Create(LinearAsUkf()).value();
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(ukf.Predict().ok());
    ASSERT_TRUE(ukf.Correct(Vector{rng.Gaussian(0.0, 1.0)}).ok());
    const Matrix& p = ukf.covariance();
    EXPECT_DOUBLE_EQ(p(0, 1), p(1, 0));
    EXPECT_GT(p(0, 0), 0.0);
    EXPECT_GT(p(1, 1), 0.0);
  }
}

}  // namespace
}  // namespace dkf
