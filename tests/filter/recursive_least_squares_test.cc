#include "filter/recursive_least_squares.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/decompose.h"

namespace dkf {
namespace {

TEST(RlsTest, CreateValidatesOptions) {
  RecursiveLeastSquaresOptions options;
  options.dim = 0;
  EXPECT_FALSE(RecursiveLeastSquares::Create(options).ok());
  options.dim = 2;
  options.forgetting = 0.0;
  EXPECT_FALSE(RecursiveLeastSquares::Create(options).ok());
  options.forgetting = 1.1;
  EXPECT_FALSE(RecursiveLeastSquares::Create(options).ok());
  options.forgetting = 1.0;
  options.initial_gain = -1.0;
  EXPECT_FALSE(RecursiveLeastSquares::Create(options).ok());
  options.initial_gain = 1e6;
  EXPECT_TRUE(RecursiveLeastSquares::Create(options).ok());
}

TEST(RlsTest, RecoversExactLinearModel) {
  RecursiveLeastSquaresOptions options;
  options.dim = 2;
  auto rls_or = RecursiveLeastSquares::Create(options);
  ASSERT_TRUE(rls_or.ok());
  RecursiveLeastSquares rls = std::move(rls_or).value();

  // z = 3 * a - 2 * b, noise-free.
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Vector phi{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    ASSERT_TRUE(rls.Update(phi, 3.0 * phi[0] - 2.0 * phi[1]).ok());
  }
  EXPECT_NEAR(rls.parameters()[0], 3.0, 1e-6);
  EXPECT_NEAR(rls.parameters()[1], -2.0, 1e-6);
}

TEST(RlsTest, MatchesBatchLeastSquaresOnNoisyData) {
  // §3.2 case 4: with measurements treated as exact, the recursive filter
  // reduces to least squares. Verify RLS converges to the batch QR answer.
  RecursiveLeastSquaresOptions options;
  options.dim = 2;
  options.initial_gain = 1e9;  // diffuse prior -> pure least squares
  auto rls_or = RecursiveLeastSquares::Create(options);
  ASSERT_TRUE(rls_or.ok());
  RecursiveLeastSquares rls = std::move(rls_or).value();

  Rng rng(2);
  const int n = 100;
  Matrix a(n, 2);
  Vector b(n);
  for (int i = 0; i < n; ++i) {
    const Vector phi{rng.Uniform(-1.0, 1.0), 1.0};
    const double z = 1.7 * phi[0] + 0.4 + rng.Gaussian(0.0, 0.1);
    a(i, 0) = phi[0];
    a(i, 1) = phi[1];
    b[i] = z;
    ASSERT_TRUE(rls.Update(phi, z).ok());
  }
  auto batch_or = SolveLeastSquares(a, b);
  ASSERT_TRUE(batch_or.ok());
  EXPECT_NEAR(rls.parameters()[0], batch_or.value()[0], 1e-4);
  EXPECT_NEAR(rls.parameters()[1], batch_or.value()[1], 1e-4);
}

TEST(RlsTest, ForgettingTracksDriftingParameters) {
  RecursiveLeastSquaresOptions with_forgetting;
  with_forgetting.dim = 1;
  with_forgetting.forgetting = 0.95;
  RecursiveLeastSquaresOptions without;
  without.dim = 1;
  without.forgetting = 1.0;

  auto fast_or = RecursiveLeastSquares::Create(with_forgetting);
  auto slow_or = RecursiveLeastSquares::Create(without);
  ASSERT_TRUE(fast_or.ok());
  ASSERT_TRUE(slow_or.ok());
  RecursiveLeastSquares fast = std::move(fast_or).value();
  RecursiveLeastSquares slow = std::move(slow_or).value();

  // Parameter jumps from 1 to 5 halfway through.
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double w = i < 200 ? 1.0 : 5.0;
    const Vector phi{rng.Uniform(0.5, 1.5)};
    const double z = w * phi[0];
    ASSERT_TRUE(fast.Update(phi, z).ok());
    ASSERT_TRUE(slow.Update(phi, z).ok());
  }
  EXPECT_NEAR(fast.parameters()[0], 5.0, 0.05);
  // The non-forgetting estimator is still dragged down by the old regime.
  EXPECT_LT(slow.parameters()[0], 4.5);
}

TEST(RlsTest, PredictUsesCurrentParameters) {
  RecursiveLeastSquaresOptions options;
  options.dim = 1;
  auto rls_or = RecursiveLeastSquares::Create(options);
  ASSERT_TRUE(rls_or.ok());
  RecursiveLeastSquares rls = std::move(rls_or).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rls.Update(Vector{1.0}, 4.0).ok());
  }
  auto pred_or = rls.Predict(Vector{2.0});
  ASSERT_TRUE(pred_or.ok());
  EXPECT_NEAR(pred_or.value(), 8.0, 1e-6);
}

TEST(RlsTest, DimensionChecked) {
  RecursiveLeastSquaresOptions options;
  options.dim = 2;
  auto rls_or = RecursiveLeastSquares::Create(options);
  ASSERT_TRUE(rls_or.ok());
  RecursiveLeastSquares rls = std::move(rls_or).value();
  EXPECT_FALSE(rls.Update(Vector{1.0}, 1.0).ok());
  EXPECT_FALSE(rls.Predict(Vector{1.0, 2.0, 3.0}).ok());
}

TEST(RlsTest, ObservationCountTracked) {
  RecursiveLeastSquaresOptions options;
  options.dim = 1;
  auto rls_or = RecursiveLeastSquares::Create(options);
  ASSERT_TRUE(rls_or.ok());
  RecursiveLeastSquares rls = std::move(rls_or).value();
  ASSERT_TRUE(rls.Update(Vector{1.0}, 1.0).ok());
  ASSERT_TRUE(rls.Update(Vector{1.0}, 1.0).ok());
  EXPECT_EQ(rls.observations(), 2);
}

}  // namespace
}  // namespace dkf
