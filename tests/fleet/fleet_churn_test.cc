// Batch-membership churn harness (src/fleet/, docs/fleet.md): sources
// are repeatedly kicked off the batched path — delta reconfigurations
// via randomized query submit/remove, resyncs and heartbeats forced by
// the chaos channel — and re-enter when they re-converge. A per-source
// twin engine is driven in lockstep through the identical schedule and
// every answer must stay bit-identical throughout. A checkpoint is
// taken mid-run, while the fleet holds a mix of resident and spilled
// sources, and the restored engine must continue bit-identically too.
//
// Two further scenarios target lane states the randomized schedule
// cannot reach: a periodic-correct workload that arms the steady-state
// fast path *before* absorption (so lanes tick through the armed
// frozen-gain kernel, fall back on violations, and disarm when
// coasting), and a stale-suppression run where resident lanes outlive
// the staleness budget and must serve degraded, inflated answers.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

constexpr int kNumSources = 10;
constexpr int64_t kTicks = 360;
constexpr int64_t kSnapTick = 170;
constexpr int kChurnQueryBase = 500;

StateModel ScalarModel(double process_variance) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ShardedStreamEngineOptions ChurnOptions(int num_shards, bool batched) {
  ShardedStreamEngineOptions options;
  options.num_shards = num_shards;
  options.batched_fleet = batched;
  options.channel.seed = 77;
  options.channel.per_source_rng = true;
  options.channel.drop_probability = 0.05;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{0.04, 0.3, 0.0, 1.0};
  fault.delay = DelayModel{0, 1};
  fault.ack_loss_probability = 0.04;
  fault.active_until = 300;
  options.channel.fault = fault;
  options.protocol.heartbeat_interval = 10;
  options.protocol.staleness_budget = 20;
  options.protocol.resync_burst_retries = 4;
  options.protocol.resync_retry_backoff = 6;
  return options;
}

void InstallBase(ShardedStreamEngine& engine) {
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        engine.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 3.0 + 0.5 * (id % 3);
    ASSERT_TRUE(engine.SubmitQuery(query).ok());
  }
}

/// One randomized reconfiguration op: submit an extra query against a
/// source (tightening its effective delta) or remove it again.
struct ChurnOp {
  int64_t tick = 0;
  int source_id = 0;
  bool submit = false;
  double precision = 0.0;
};

/// The deterministic schedule both engines replay: readings plus the
/// randomized churn ops.
struct Schedule {
  std::vector<std::map<int, Vector>> readings;
  std::vector<ChurnOp> ops;  // ascending tick
};

const Schedule& GetSchedule() {
  static const Schedule* const schedule = [] {
    auto* s = new Schedule();
    Rng rng(123);
    std::vector<double> values(kNumSources + 1, 0.0);
    std::vector<bool> installed(kNumSources + 1, false);
    for (int64_t t = 0; t < kTicks; ++t) {
      std::map<int, Vector> tick;
      for (int id = 1; id <= kNumSources; ++id) {
        values[static_cast<size_t>(id)] += rng.Gaussian(0.05 * (id % 3), 0.7);
        tick[id] = Vector{values[static_cast<size_t>(id)]};
      }
      s->readings.push_back(std::move(tick));
      // ~one reconfiguration every few ticks, so sources keep cycling
      // between resident and spilled all run long.
      if (rng.Uniform() < 0.25) {
        ChurnOp op;
        op.tick = t;
        op.source_id = 1 + static_cast<int>(rng.UniformInt(0, kNumSources - 1));
        op.submit = !installed[static_cast<size_t>(op.source_id)];
        installed[static_cast<size_t>(op.source_id)] = op.submit;
        op.precision = 0.5 + 5.0 * rng.Uniform();
        s->ops.push_back(op);
      }
    }
    return s;
  }();
  return *schedule;
}

void ApplyOps(ShardedStreamEngine& engine, int64_t tick) {
  for (const ChurnOp& op : GetSchedule().ops) {
    if (op.tick != tick) continue;
    if (op.submit) {
      ContinuousQuery query;
      query.id = kChurnQueryBase + op.source_id;
      query.source_id = op.source_id;
      query.precision = op.precision;
      ASSERT_TRUE(engine.SubmitQuery(query).ok()) << "tick " << tick;
    } else {
      ASSERT_TRUE(engine.RemoveQuery(kChurnQueryBase + op.source_id).ok())
          << "tick " << tick;
    }
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void ExpectSameAnswers(ShardedStreamEngine& batched,
                       ShardedStreamEngine& reference, int64_t tick) {
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_EQ(batched.Answer(id).value()[0], reference.Answer(id).value()[0])
        << "tick " << tick << " source " << id;
    ASSERT_EQ(batched.answer_degraded(id).value(),
              reference.answer_degraded(id).value())
        << "tick " << tick << " source " << id;
    ASSERT_EQ(batched.resync_pending(id).value(),
              reference.resync_pending(id).value())
        << "tick " << tick << " source " << id;
    ASSERT_EQ(batched.source_delta(id).value(),
              reference.source_delta(id).value())
        << "tick " << tick << " source " << id;
  }
}

TEST(FleetChurn, RandomizedSpillReentryStaysBitExact) {
  const Schedule& schedule = GetSchedule();
  ASSERT_GT(schedule.ops.size(), 20u) << "schedule churns too little";

  // Same shard count on both sides so the mid-run snapshot bytes can be
  // compared directly (the snapshot header records the shard count).
  ShardedStreamEngine reference(ChurnOptions(2, /*batched=*/false));
  ShardedStreamEngine batched(ChurnOptions(2, /*batched=*/true));
  InstallBase(reference);
  InstallBase(batched);

  size_t max_residents = 0;
  bool saw_partial_residency = false;
  std::string snapshot_bytes;
  const std::string batched_path =
      testing::TempDir() + "/fleet_churn_batched.dkfsnap";
  const std::string reference_path =
      testing::TempDir() + "/fleet_churn_reference.dkfsnap";

  for (int64_t t = 0; t < kTicks; ++t) {
    ApplyOps(reference, t);
    ApplyOps(batched, t);
    ASSERT_TRUE(
        reference.ProcessTick(schedule.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    ASSERT_TRUE(
        batched.ProcessTick(schedule.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    ExpectSameAnswers(batched, reference, t);

    const size_t residents = batched.fleet_resident_count();
    max_residents = std::max(max_residents, residents);
    if (residents > 0 && residents < kNumSources) {
      saw_partial_residency = true;
    }
    if (t == kSnapTick) {
      // The checkpoint must be taken while the fleet holds both
      // resident and spilled sources, or the round-trip proves nothing.
      ASSERT_TRUE(saw_partial_residency);
      ASSERT_TRUE(batched.Save(batched_path).ok());
      ASSERT_TRUE(reference.Save(reference_path).ok());
      snapshot_bytes = ReadFile(batched_path);
      EXPECT_EQ(snapshot_bytes, ReadFile(reference_path))
          << "snapshot bytes differ between engines";
    }
  }
  EXPECT_GT(max_residents, 0u) << "nothing was ever absorbed";
  ASSERT_TRUE(saw_partial_residency)
      << "the run never held a resident/spilled mix";

  // Round-trip: restore the mid-run snapshot onto a batched engine at a
  // different shard count and replay the identical tail in lockstep
  // with a per-source restore of the same snapshot.
  auto restored_batched_or =
      ShardedStreamEngine::Restore(batched_path, 4, /*batched_fleet=*/true);
  ASSERT_TRUE(restored_batched_or.ok())
      << restored_batched_or.status().message();
  auto restored_reference_or =
      ShardedStreamEngine::Restore(reference_path, 1, /*batched_fleet=*/false);
  ASSERT_TRUE(restored_reference_or.ok())
      << restored_reference_or.status().message();
  ShardedStreamEngine& rb = *restored_batched_or.value();
  ShardedStreamEngine& rr = *restored_reference_or.value();
  ASSERT_EQ(rb.ticks(), kSnapTick + 1);
  for (int64_t t = kSnapTick + 1; t < kTicks; ++t) {
    ApplyOps(rb, t);
    ApplyOps(rr, t);
    ASSERT_TRUE(rb.ProcessTick(schedule.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    ASSERT_TRUE(rr.ProcessTick(schedule.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    ExpectSameAnswers(rb, rr, t);
  }
  EXPECT_TRUE(rb.VerifyLinkConsistency().ok());
  std::remove(batched_path.c_str());
  std::remove(reference_path.c_str());
}

/// Confidence answers (value, covariance, degraded flag) must be
/// bit-identical whether served from a lane or a server link.
void ExpectSameConfidentAnswers(ShardedStreamEngine& batched,
                                ShardedStreamEngine& reference, int64_t tick,
                                int num_sources) {
  for (int id = 1; id <= num_sources; ++id) {
    const ServerNode::ConfidentAnswer b =
        batched.AnswerWithConfidence(id).value();
    const ServerNode::ConfidentAnswer r =
        reference.AnswerWithConfidence(id).value();
    ASSERT_EQ(b.value[0], r.value[0]) << "tick " << tick << " source " << id;
    ASSERT_EQ(b.degraded, r.degraded) << "tick " << tick << " source " << id;
    ASSERT_EQ(b.covariance.has_value(), r.covariance.has_value())
        << "tick " << tick << " source " << id;
    if (b.covariance.has_value()) {
      ASSERT_EQ(b.covariance->MaxAbsDiff(*r.covariance), 0.0)
          << "tick " << tick << " source " << id;
    }
  }
}

// ---------------------------------------------------------------------
// Armed lanes.
//
// The steady-state fast path arms only under an unbroken
// predict/correct cadence with an exactly repeating covariance — a
// regime the randomized walks above never sustain. This workload
// manufactures it: every source violates delta on every tick (an
// alternating ±6 square wave) long enough for the filter to freeze its
// gain cycle, then settles onto a small sinusoid it can suppress
// indefinitely. Because a clean channel re-absorbs a source at the end
// of every corrected tick, the violation phase continuously thrashes
// absorb -> armed-lane tick -> violation spill, and the settle point
// lands an absorbed armed+corrected lane on the frozen-gain kernel;
// the tick after that is an uncorrected armed predict, which must
// disarm the lane exactly like KalmanFilter does. A late level jump
// kicks a third of the settled (tracking) lanes back off the batch.
// ---------------------------------------------------------------------

constexpr int kSteadySources = 24;
constexpr int64_t kSteadyTicks = 360;
constexpr int64_t kSteadyJumpTick = 260;

double SteadyValue(int id, int64_t t) {
  const int64_t settle = 120 + 4 * (id % 8);
  double value =
      t < settle ? (t % 2 == 0 ? 6.0 : -6.0)
                 : 0.25 * std::sin(0.01 * static_cast<double>(t + id));
  if (id % 3 == 0 && t >= kSteadyJumpTick) value += 25.0;
  return value;
}

void InstallSteadyWorkload(ShardedStreamEngine& engine) {
  ObsOptions obs;
  obs.ring_capacity = 1 << 18;
  ASSERT_TRUE(engine.EnableTracing(obs).ok());
  for (int id = 1; id <= kSteadySources; ++id) {
    ASSERT_TRUE(engine.RegisterSource(id, ScalarModel(0.05)).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 2.0;
    ASSERT_TRUE(engine.SubmitQuery(query).ok());
  }
}

TEST(FleetSteadyState, ArmedLanesStayBitExactThroughThrash) {
  ShardedStreamEngineOptions options;
  options.num_shards = 1;
  options.channel.seed = 77;
  options.channel.per_source_rng = true;

  options.batched_fleet = false;
  ShardedStreamEngine reference(options);
  options.batched_fleet = true;
  ShardedStreamEngine batched(options);
  InstallSteadyWorkload(reference);
  InstallSteadyWorkload(batched);

  size_t max_residents = 0;
  int64_t updates_while_resident = 0;
  int64_t last_updates = 0;
  for (int64_t t = 0; t < kSteadyTicks; ++t) {
    std::map<int, Vector> readings;
    for (int id = 1; id <= kSteadySources; ++id) {
      readings[id] = Vector{SteadyValue(id, t)};
    }
    ASSERT_TRUE(reference.ProcessTick(readings).ok()) << "tick " << t;
    ASSERT_TRUE(batched.ProcessTick(readings).ok()) << "tick " << t;
    for (int id = 1; id <= kSteadySources; ++id) {
      ASSERT_EQ(batched.Answer(id).value()[0], reference.Answer(id).value()[0])
          << "tick " << t << " source " << id;
    }
    ExpectSameConfidentAnswers(batched, reference, t, kSteadySources);
    const size_t residents = batched.fleet_resident_count();
    // With a clean channel a spilled lane re-absorbs at the end of the
    // same tick, so the end-of-tick resident count never dips; updates
    // sent while the fleet reads fully resident are the visible proof
    // of the absorb -> violate -> spill -> re-absorb thrash.
    const int64_t updates = batched.uplink_traffic().messages;
    if (max_residents == static_cast<size_t>(kSteadySources)) {
      updates_while_resident += updates - last_updates;
    }
    last_updates = updates;
    max_residents = std::max(max_residents, residents);
    if (t % 60 == 0 || t == kSteadyTicks - 1) {
      ASSERT_TRUE(batched.VerifyLinkConsistency().ok()) << "tick " << t;
    }
  }
  EXPECT_EQ(max_residents, static_cast<size_t>(kSteadySources))
      << "the settled fleet never went fully resident";
  EXPECT_GT(updates_while_resident, 0)
      << "no resident lane ever spilled to send — the run never thrashed";

  // The scenario is vacuous unless the fast path actually armed and
  // disarmed, and the batched run must have traced the exact same
  // freeze/disarm/suppress/send sequence as the per-source run.
  int64_t freezes = 0;
  int64_t disarms = 0;
  for (const TraceEvent& event : batched.MergedTrace()) {
    if (event.kind == TraceEventKind::kFastPathFreeze) ++freezes;
    if (event.kind == TraceEventKind::kFastPathDisarm) ++disarms;
  }
  EXPECT_GT(freezes, 0) << "steady-state fast path never armed";
  EXPECT_GT(disarms, 0) << "no lane ever coasted off the frozen cycle";
  EXPECT_TRUE(batched.MergedTrace() == reference.MergedTrace())
      << "merged trace differs";
  EXPECT_TRUE(batched.VerifyMirrorConsistency().ok());
}

// ---------------------------------------------------------------------
// Degraded resident lanes.
//
// With a staleness budget but no heartbeats, a suppressed source goes
// overdue without ever becoming unhealthy — so it stays batch-resident
// while its answers must flip to degraded with the covariance inflated
// exactly like ServerNode does it (docs/protocol.md §6).
// ---------------------------------------------------------------------

TEST(FleetDegraded, StaleResidentLanesServeInflatedAnswers) {
  constexpr int kStaleSources = 6;
  constexpr int64_t kStaleTicks = 80;

  ShardedStreamEngineOptions options;
  options.num_shards = 1;
  options.channel.seed = 77;
  options.channel.per_source_rng = true;
  options.protocol.staleness_budget = 6;  // no heartbeat to reset it

  options.batched_fleet = false;
  ShardedStreamEngine reference(options);
  options.batched_fleet = true;
  ShardedStreamEngine batched(options);
  for (ShardedStreamEngine* engine : {&reference, &batched}) {
    for (int id = 1; id <= kStaleSources; ++id) {
      ASSERT_TRUE(engine->RegisterSource(id, ScalarModel(0.05)).ok());
      ContinuousQuery query;
      query.id = id;
      query.source_id = id;
      query.precision = 3.0;
      ASSERT_TRUE(engine->SubmitQuery(query).ok());
    }
  }

  bool saw_degraded_resident = false;
  for (int64_t t = 0; t < kStaleTicks; ++t) {
    std::map<int, Vector> readings;
    for (int id = 1; id <= kStaleSources; ++id) {
      // One step onto a per-source level, then flat forever: a couple
      // of early corrects, then an unbounded suppression streak.
      readings[id] = Vector{5.0 + static_cast<double>(id)};
    }
    ASSERT_TRUE(reference.ProcessTick(readings).ok()) << "tick " << t;
    ASSERT_TRUE(batched.ProcessTick(readings).ok()) << "tick " << t;
    for (int id = 1; id <= kStaleSources; ++id) {
      ASSERT_EQ(batched.Answer(id).value()[0], reference.Answer(id).value()[0])
          << "tick " << t << " source " << id;
      ASSERT_EQ(batched.answer_degraded(id).value(),
                reference.answer_degraded(id).value())
          << "tick " << t << " source " << id;
    }
    ExpectSameConfidentAnswers(batched, reference, t, kStaleSources);
    if (batched.fleet_resident_count() == kStaleSources &&
        batched.answer_degraded(1).value()) {
      saw_degraded_resident = true;
    }
  }
  EXPECT_TRUE(saw_degraded_resident)
      << "no fully-resident tick ever served a degraded answer — the "
         "staleness budget never tripped on a lane";
  EXPECT_GT(batched.fault_stats().degraded_ticks, 0);
  EXPECT_EQ(batched.fault_stats().degraded_ticks,
            reference.fault_stats().degraded_ticks);
}

}  // namespace
}  // namespace dkf
