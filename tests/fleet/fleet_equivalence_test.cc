// Equivalence harness for the batched fleet engine (src/fleet/,
// docs/fleet.md): the same workload is driven through a per-source
// reference engine and through batched engines at 1/2/4/8 shards, and
// every observable must be bit-identical on every tick — answers,
// degraded flags, pending-resync flags — plus, at the end, fault
// counters, uplink accounting, per-source update totals, the merged
// trace, the metrics snapshot, and the checkpoint bytes. Two scenarios:
// a clean suppression-heavy run (where most sources should actually be
// batch-resident) and the chaos cocktail from the fault-tolerance
// harness (where sources continuously spill and re-enter).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/fault_stats.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

constexpr int kNumSources = 12;
constexpr int64_t kTicks = 400;
constexpr int kAggregateId = 7;

StateModel ScalarModel(double process_variance) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ChannelOptions CleanChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.per_source_rng = true;
  return options;
}

ChannelOptions ChaosChannel() {
  ChannelOptions options = CleanChannel();
  options.drop_probability = 0.1;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = 280;
  options.fault = fault;
  return options;
}

ProtocolOptions ChaosProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 8;
  protocol.staleness_budget = 16;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  return protocol;
}

struct Scenario {
  ChannelOptions channel;
  ProtocolOptions protocol;
  /// Query precision scale — large deltas make the run
  /// suppression-heavy, which is the batched engine's home turf.
  double precision = 4.0;
};

Scenario CleanScenario() {
  Scenario s;
  s.channel = CleanChannel();
  return s;
}

Scenario ChaosScenario() {
  Scenario s;
  s.channel = ChaosChannel();
  s.protocol = ChaosProtocol();
  return s;
}

ShardedStreamEngineOptions EngineOptions(const Scenario& scenario,
                                         int num_shards, bool batched) {
  ShardedStreamEngineOptions options;
  options.num_shards = num_shards;
  options.channel = scenario.channel;
  options.protocol = scenario.protocol;
  options.batched_fleet = batched;
  return options;
}

void InstallWorkload(ShardedStreamEngine& engine, const Scenario& scenario) {
  ObsOptions obs;
  obs.ring_capacity = 1 << 18;  // must hold the full run for bit compares
  ASSERT_TRUE(engine.EnableTracing(obs).ok());
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        engine.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = scenario.precision + 0.5 * (id % 3);
    ASSERT_TRUE(engine.SubmitQuery(query).ok());
  }
  // One smoothed source: KF_c keeps it permanently on the per-source
  // path (the batch only folds plain mirror/predictor pairs), proving
  // the two populations coexist.
  ContinuousQuery smoothed;
  smoothed.id = 100;
  smoothed.source_id = 3;
  smoothed.precision = 2.0;
  smoothed.smoothing_factor = 0.5;
  ASSERT_TRUE(engine.SubmitQuery(smoothed).ok());
  AggregateQuery aggregate;
  aggregate.id = kAggregateId;
  aggregate.source_ids = {2, 5, 8, 9};
  aggregate.precision = 8.0;
  ASSERT_TRUE(engine.SubmitAggregateQuery(aggregate).ok());
}

std::vector<std::map<int, Vector>> MakeReadings() {
  std::vector<std::map<int, Vector>> readings;
  Rng rng(91);
  std::vector<double> values(kNumSources + 1, 0.0);
  for (int64_t t = 0; t < kTicks; ++t) {
    std::map<int, Vector> tick;
    for (int id = 1; id <= kNumSources; ++id) {
      values[static_cast<size_t>(id)] += rng.Gaussian(0.05 * (id % 3), 0.7);
      tick[id] = Vector{values[static_cast<size_t>(id)]};
    }
    readings.push_back(std::move(tick));
  }
  return readings;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string SnapshotPath(const std::string& name) {
  return testing::TempDir() + "/" + name + ".dkfsnap";
}

/// Everything the reference run observed, captured once per scenario.
struct Reference {
  std::vector<std::map<int, Vector>> readings;
  std::vector<std::vector<double>> answers;    // [tick][id-1]
  std::vector<std::vector<bool>> degraded;     // [tick][id-1]
  std::vector<std::vector<bool>> pending;      // [tick][id-1]
  std::vector<double> aggregate;               // [tick]
  ProtocolFaultStats faults;
  ChannelStats uplink;
  std::vector<int64_t> updates;                // [id-1]
  std::vector<TraceEvent> trace;
  MetricsRegistry metrics;
  std::string snapshot_bytes;
};

Reference BuildReference(const Scenario& scenario, const std::string& name) {
  Reference ref;
  ref.readings = MakeReadings();
  ShardedStreamEngine engine(EngineOptions(scenario, 1, /*batched=*/false));
  InstallWorkload(engine, scenario);
  for (int64_t t = 0; t < kTicks; ++t) {
    EXPECT_TRUE(engine.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    std::vector<double> answers;
    std::vector<bool> degraded;
    std::vector<bool> pending;
    for (int id = 1; id <= kNumSources; ++id) {
      answers.push_back(engine.Answer(id).value()[0]);
      degraded.push_back(engine.answer_degraded(id).value());
      pending.push_back(engine.resync_pending(id).value());
    }
    ref.answers.push_back(std::move(answers));
    ref.degraded.push_back(std::move(degraded));
    ref.pending.push_back(std::move(pending));
    ref.aggregate.push_back(
        engine.AnswerAggregateCanonical(kAggregateId).value());
  }
  ref.faults = engine.fault_stats();
  ref.uplink = engine.uplink_traffic();
  for (int id = 1; id <= kNumSources; ++id) {
    ref.updates.push_back(engine.updates_sent(id).value());
  }
  ref.trace = engine.MergedTrace();
  ref.metrics = engine.MetricsSnapshot();
  EXPECT_GT(ref.trace.size(), 0u);
  EXPECT_EQ(engine.shard_sink(0)->dropped_events(), 0)
      << "ring too small for exact trace comparisons";
  const std::string path = SnapshotPath(name + "_reference");
  EXPECT_TRUE(engine.Save(path).ok());
  ref.snapshot_bytes = ReadFile(path);
  EXPECT_FALSE(ref.snapshot_bytes.empty());
  std::remove(path.c_str());
  return ref;
}

const Reference& CleanReference() {
  static const Reference* const ref =
      new Reference(BuildReference(CleanScenario(), "clean"));
  return *ref;
}

const Reference& ChaosReference() {
  static const Reference* const ref =
      new Reference(BuildReference(ChaosScenario(), "chaos"));
  return *ref;
}

void ExpectBatchedIdentical(const Scenario& scenario, const Reference& ref,
                            int num_shards, const std::string& name,
                            bool expect_residents) {
  SCOPED_TRACE(name + " shards=" + std::to_string(num_shards));
  ShardedStreamEngine engine(
      EngineOptions(scenario, num_shards, /*batched=*/true));
  InstallWorkload(engine, scenario);
  size_t max_residents = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    ASSERT_TRUE(engine.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    max_residents = std::max(max_residents, engine.fleet_resident_count());
    const auto& answers = ref.answers[static_cast<size_t>(t)];
    const auto& degraded = ref.degraded[static_cast<size_t>(t)];
    const auto& pending = ref.pending[static_cast<size_t>(t)];
    for (int id = 1; id <= kNumSources; ++id) {
      ASSERT_EQ(engine.Answer(id).value()[0],
                answers[static_cast<size_t>(id - 1)])
          << "tick " << t << " source " << id;
      ASSERT_EQ(engine.answer_degraded(id).value(),
                degraded[static_cast<size_t>(id - 1)])
          << "tick " << t << " source " << id;
      ASSERT_EQ(engine.resync_pending(id).value(),
                pending[static_cast<size_t>(id - 1)])
          << "tick " << t << " source " << id;
    }
    // Member-order summation is layout-invariant, so the aggregate must
    // be bit-equal, not merely close.
    ASSERT_EQ(engine.AnswerAggregateCanonical(kAggregateId).value(),
              ref.aggregate[static_cast<size_t>(t)])
        << "tick " << t;
    if (t % 50 == 0 || t == kTicks - 1) {
      ASSERT_TRUE(engine.VerifyLinkConsistency().ok()) << "tick " << t;
    }
  }
  if (expect_residents) {
    EXPECT_GT(max_residents, 0u)
        << "batched engine never absorbed anything — the whole run took "
           "the per-source path, so the test proved nothing";
  }

  const ProtocolFaultStats faults = engine.fault_stats();
  EXPECT_EQ(faults.divergence_events, ref.faults.divergence_events);
  EXPECT_EQ(faults.resyncs_sent, ref.faults.resyncs_sent);
  EXPECT_EQ(faults.resyncs_applied, ref.faults.resyncs_applied);
  EXPECT_EQ(faults.heartbeats_sent, ref.faults.heartbeats_sent);
  EXPECT_EQ(faults.heartbeats_received, ref.faults.heartbeats_received);
  EXPECT_EQ(faults.ambiguous_acks, ref.faults.ambiguous_acks);
  EXPECT_EQ(faults.ticks_diverged, ref.faults.ticks_diverged);
  EXPECT_EQ(faults.max_recovery_ticks, ref.faults.max_recovery_ticks);
  EXPECT_EQ(faults.rejected_stale, ref.faults.rejected_stale);
  EXPECT_EQ(faults.rejected_corrupt, ref.faults.rejected_corrupt);
  EXPECT_EQ(faults.sequence_gaps, ref.faults.sequence_gaps);
  EXPECT_EQ(faults.degraded_ticks, ref.faults.degraded_ticks);

  const ChannelStats uplink = engine.uplink_traffic();
  EXPECT_EQ(uplink.messages, ref.uplink.messages);
  EXPECT_EQ(uplink.bytes, ref.uplink.bytes);
  EXPECT_EQ(uplink.dropped, ref.uplink.dropped);
  EXPECT_EQ(uplink.corrupted, ref.uplink.corrupted);
  EXPECT_EQ(uplink.delayed, ref.uplink.delayed);
  EXPECT_EQ(uplink.ack_lost, ref.uplink.ack_lost);
  EXPECT_EQ(uplink.outage_dropped, ref.uplink.outage_dropped);

  for (int id = 1; id <= kNumSources; ++id) {
    EXPECT_EQ(engine.updates_sent(id).value(),
              ref.updates[static_cast<size_t>(id - 1)])
        << "source " << id;
  }

  EXPECT_TRUE(engine.MergedTrace() == ref.trace) << "merged trace differs";
  EXPECT_TRUE(engine.MetricsSnapshot() == ref.metrics)
      << "metrics snapshot differs";
  EXPECT_TRUE(engine.VerifyMirrorConsistency().ok());

  // Checkpoint bytes are engine-agnostic: a batch-resident source's
  // snapshot is synthesized from its lane and must match a per-source
  // run's byte for byte. The twin must run at the same shard count —
  // the snapshot header records it.
  ShardedStreamEngine twin(
      EngineOptions(scenario, num_shards, /*batched=*/false));
  InstallWorkload(twin, scenario);
  for (int64_t t = 0; t < kTicks; ++t) {
    ASSERT_TRUE(twin.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok());
  }
  const std::string path =
      SnapshotPath(name + "_batched_" + std::to_string(num_shards));
  const std::string twin_path =
      SnapshotPath(name + "_twin_" + std::to_string(num_shards));
  ASSERT_TRUE(engine.Save(path).ok());
  ASSERT_TRUE(twin.Save(twin_path).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(twin_path)) << "snapshot bytes differ";
  std::remove(path.c_str());
  std::remove(twin_path.c_str());
}

TEST(FleetEquivalence, CleanSuppressionHeavyAllShardCounts) {
  const Reference& ref = CleanReference();
  for (int shards : {1, 2, 4, 8}) {
    ExpectBatchedIdentical(CleanScenario(), ref, shards, "clean",
                           /*expect_residents=*/true);
  }
}

TEST(FleetEquivalence, ChaosCocktailAllShardCounts) {
  const Reference& ref = ChaosReference();
  for (int shards : {1, 2, 4, 8}) {
    ExpectBatchedIdentical(ChaosScenario(), ref, shards, "chaos",
                           /*expect_residents=*/true);
  }
}

// The batch overload must be bit-identical to the map overload, batched
// engine or not (the non-fleet shard projects the batch into a map).
TEST(FleetEquivalence, ReadingBatchOverloadMatchesMap) {
  const Reference& ref = CleanReference();
  const Scenario scenario = CleanScenario();
  for (const bool batched : {false, true}) {
    SCOPED_TRACE(batched ? "batched" : "per-source");
    ShardedStreamEngine engine(EngineOptions(scenario, 2, batched));
    InstallWorkload(engine, scenario);
    ReadingBatch batch;
    for (int64_t t = 0; t < 120; ++t) {
      batch.ids.clear();
      batch.values.clear();
      for (const auto& [id, value] : ref.readings[static_cast<size_t>(t)]) {
        batch.ids.push_back(id);
        batch.values.push_back(value);
      }
      ASSERT_TRUE(engine.ProcessTick(batch).ok()) << "tick " << t;
      const auto& answers = ref.answers[static_cast<size_t>(t)];
      for (int id = 1; id <= kNumSources; ++id) {
        ASSERT_EQ(engine.Answer(id).value()[0],
                  answers[static_cast<size_t>(id - 1)])
            << "tick " << t << " source " << id;
      }
    }
  }
}

// Restoring a per-source snapshot onto the batched engine (and the other
// way round) must continue bit-identically to the reference run.
TEST(FleetEquivalence, RestoreAcrossEngineKinds) {
  const Reference& ref = ChaosReference();
  const Scenario scenario = ChaosScenario();
  constexpr int64_t kSnapTick = 110;  // inside the outage window

  ShardedStreamEngine engine(
      EngineOptions(scenario, 2, /*batched=*/true));
  InstallWorkload(engine, scenario);
  for (int64_t t = 0; t < kSnapTick; ++t) {
    ASSERT_TRUE(
        engine.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok());
  }
  const std::string path = SnapshotPath("cross_engine");
  ASSERT_TRUE(engine.Save(path).ok());

  for (const bool batched : {false, true}) {
    SCOPED_TRACE(batched ? "restore batched" : "restore per-source");
    auto restored_or = ShardedStreamEngine::Restore(path, /*num_shards=*/4,
                                                    batched);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
    ShardedStreamEngine& restored = *restored_or.value();
    ASSERT_EQ(restored.ticks(), kSnapTick);
    for (int64_t t = kSnapTick; t < kTicks; ++t) {
      ASSERT_TRUE(
          restored.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok())
          << "tick " << t;
      const auto& answers = ref.answers[static_cast<size_t>(t)];
      const auto& degraded = ref.degraded[static_cast<size_t>(t)];
      for (int id = 1; id <= kNumSources; ++id) {
        ASSERT_EQ(restored.Answer(id).value()[0],
                  answers[static_cast<size_t>(id - 1)])
            << "tick " << t << " source " << id;
        ASSERT_EQ(restored.answer_degraded(id).value(),
                  degraded[static_cast<size_t>(id - 1)])
            << "tick " << t << " source " << id;
      }
    }
    EXPECT_TRUE(restored.MergedTrace() == ref.trace)
        << "merged trace differs after restore";
    const ProtocolFaultStats faults = restored.fault_stats();
    EXPECT_EQ(faults.degraded_ticks, ref.faults.degraded_ticks);
    EXPECT_EQ(faults.resyncs_applied, ref.faults.resyncs_applied);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkf
