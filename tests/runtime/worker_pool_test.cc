#include "runtime/worker_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::atomic<int>> runs(17);
  std::vector<WorkerPool::Task> tasks;
  for (size_t i = 0; i < runs.size(); ++i) {
    tasks.push_back([&runs, i] {
      runs[i].fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunAll(tasks).ok());
  for (const auto& count : runs) EXPECT_EQ(count.load(), 1);
}

TEST(WorkerPoolTest, ZeroThreadsRunsInline) {
  WorkerPool pool(0);
  int runs = 0;
  std::vector<WorkerPool::Task> tasks(5, [&runs] {
    ++runs;  // safe: with no workers, every task runs on this thread
    return Status::OK();
  });
  ASSERT_TRUE(pool.RunAll(tasks).ok());
  EXPECT_EQ(runs, 5);
}

TEST(WorkerPoolTest, EmptyBatchIsOk) {
  WorkerPool pool(2);
  EXPECT_TRUE(pool.RunAll({}).ok());
}

TEST(WorkerPoolTest, ReturnsFirstErrorInTaskOrderAndRunsAllTasks) {
  WorkerPool pool(2);
  std::atomic<int> runs{0};
  std::vector<WorkerPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&runs, i]() -> Status {
      runs.fetch_add(1);
      if (i == 3) return Status::Internal("task 3 failed");
      if (i == 6) return Status::InvalidArgument("task 6 failed");
      return Status::OK();
    });
  }
  Status status = pool.RunAll(tasks);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "task 3 failed");
  // No early abort: a failing shard must not strand its siblings.
  EXPECT_EQ(runs.load(), 8);
}

TEST(WorkerPoolTest, ReusableAcrossManyBatches) {
  WorkerPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    std::vector<WorkerPool::Task> tasks;
    for (int i = 0; i < 9; ++i) {
      tasks.push_back([&sum] {
        sum.fetch_add(1);
        return Status::OK();
      });
    }
    ASSERT_TRUE(pool.RunAll(tasks).ok());
  }
  EXPECT_EQ(sum.load(), 200 * 9);
}

}  // namespace
}  // namespace dkf
