#include "runtime/sharded_engine.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel ScalarModel(double process_variance) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

StateModel PlanarModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(2, 1.0, noise).value();
}

ContinuousQuery MakeQuery(int id, int source, double precision) {
  ContinuousQuery query;
  query.id = id;
  query.source_id = source;
  query.precision = precision;
  return query;
}

constexpr int kNumScalarSources = 12;
constexpr int kPlanarSourceId = 100;

/// Installs the shared multi-source, multi-query workload on any system
/// exposing the StreamManager API surface: 12 scalar sources with
/// varied dynamics, point queries of different precisions, a smoothing
/// query, an aggregate over a shard-spanning subset, plus one 2-D
/// source outside the aggregate.
template <typename System>
void InstallWorkload(System& system) {
  for (int id = 1; id <= kNumScalarSources; ++id) {
    ASSERT_TRUE(
        system.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
  }
  ASSERT_TRUE(system.RegisterSource(kPlanarSourceId, PlanarModel()).ok());

  for (int id = 1; id <= kNumScalarSources; ++id) {
    ASSERT_TRUE(
        system.SubmitQuery(MakeQuery(id, id, 1.0 + 0.5 * (id % 5))).ok());
  }
  ContinuousQuery smoothing = MakeQuery(50, 3, 4.0);
  smoothing.smoothing_factor = 1e-3;
  ASSERT_TRUE(system.SubmitQuery(smoothing).ok());
  ASSERT_TRUE(system.SubmitQuery(MakeQuery(51, kPlanarSourceId, 2.0)).ok());

  AggregateQuery aggregate;
  aggregate.id = 7;
  aggregate.source_ids = {2, 5, 8, 11};  // spans shards for any count > 1
  aggregate.precision = 8.0;
  ASSERT_TRUE(system.SubmitAggregateQuery(aggregate, {1.0, 2.0, 1.0, 2.0})
                  .ok());
}

/// One deterministic tick batch: drifting random walks for the scalars,
/// a slow circle for the planar source.
std::map<int, Vector> TickReadings(Rng& rng, int tick,
                                   std::vector<double>& values) {
  std::map<int, Vector> readings;
  for (int id = 1; id <= kNumScalarSources; ++id) {
    values[static_cast<size_t>(id)] += rng.Gaussian(0.05 * (id % 3), 0.8);
    readings[id] = Vector{values[static_cast<size_t>(id)]};
  }
  const double angle = 0.01 * tick;
  readings[kPlanarSourceId] =
      Vector{40.0 * std::cos(angle), 40.0 * std::sin(angle)};
  return readings;
}

/// Drives `system` through `ticks` deterministic ticks (seed-pinned
/// readings, query churn mid-stream) and returns nothing; observers
/// inspect the system afterwards or via `on_tick`.
template <typename System, typename OnTick>
void DriveWorkload(System& system, int ticks, OnTick on_tick) {
  Rng rng(42);
  std::vector<double> values(kNumScalarSources + 1, 0.0);
  for (int t = 0; t < ticks; ++t) {
    // Query churn mid-stream exercises reconfiguration on every system.
    if (t == 120) {
      ASSERT_TRUE(system.SubmitQuery(MakeQuery(60, 6, 0.5)).ok());
    }
    if (t == 240) {
      ASSERT_TRUE(system.RemoveQuery(60).ok());
    }
    ASSERT_TRUE(system.ProcessTick(TickReadings(rng, t, values)).ok());
    on_tick(t);
  }
}

TEST(ShardedStreamEngineTest, BitExactEquivalenceWithStreamManager) {
  for (int shards : {1, 2, 4, 8}) {
    StreamManagerOptions seq_options;
    StreamManager manager(seq_options);
    InstallWorkload(manager);

    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    ShardedStreamEngine engine(options);
    InstallWorkload(engine);
    EXPECT_EQ(engine.num_shards(), shards);

    // Drive both systems in lockstep on identical readings and churn.
    Rng rng(42);
    std::vector<double> values(kNumScalarSources + 1, 0.0);
    for (int t = 0; t < 400; ++t) {
      if (t == 120) {
        ASSERT_TRUE(manager.SubmitQuery(MakeQuery(60, 6, 0.5)).ok());
        ASSERT_TRUE(engine.SubmitQuery(MakeQuery(60, 6, 0.5)).ok());
      }
      if (t == 240) {
        ASSERT_TRUE(manager.RemoveQuery(60).ok());
        ASSERT_TRUE(engine.RemoveQuery(60).ok());
      }
      const std::map<int, Vector> readings = TickReadings(rng, t, values);
      ASSERT_TRUE(manager.ProcessTick(readings).ok());
      ASSERT_TRUE(engine.ProcessTick(readings).ok());
      if (t % 37 != 0 && t != 399) continue;
      for (int id = 1; id <= kNumScalarSources; ++id) {
        auto seq = manager.Answer(id);
        auto par = engine.Answer(id);
        ASSERT_TRUE(seq.ok() && par.ok());
        // Bit-exact: identical per-source filter call sequences.
        ASSERT_EQ(seq.value()[0], par.value()[0])
            << "shards=" << shards << " source=" << id << " tick=" << t;
      }
      auto planar_seq = manager.Answer(kPlanarSourceId).value();
      auto planar_par = engine.Answer(kPlanarSourceId).value();
      ASSERT_EQ(planar_seq[0], planar_par[0]);
      ASSERT_EQ(planar_seq[1], planar_par[1]);
      // Aggregate answers combine per-shard partial sums; only the FP
      // summation order differs from the sequential manager.
      ASSERT_NEAR(manager.AnswerAggregate(7).value(),
                  engine.AnswerAggregate(7).value(), 1e-9);
    }

    // Update/traffic accounting matches exactly.
    for (int id = 1; id <= kNumScalarSources; ++id) {
      EXPECT_EQ(manager.updates_sent(id).value(),
                engine.updates_sent(id).value());
      EXPECT_EQ(manager.source_delta(id).value(),
                engine.source_delta(id).value());
    }
    EXPECT_EQ(manager.uplink_traffic().messages,
              engine.uplink_traffic().messages);
    EXPECT_EQ(manager.uplink_traffic().bytes, engine.uplink_traffic().bytes);
    EXPECT_EQ(manager.control_messages(), engine.control_messages());
    EXPECT_EQ(manager.ticks(), engine.ticks());
    EXPECT_TRUE(engine.VerifyMirrorConsistency().ok());
  }
}

TEST(ShardedStreamEngineTest, ShardCountInvarianceUnderLossyChannel) {
  // Under loss the drop decisions come from per-source RNG streams, so
  // any shard count must produce identical per-source results.
  auto run = [](int shards) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel.drop_probability = 0.3;
    options.channel.seed = 77;
    auto engine = std::make_unique<ShardedStreamEngine>(options);
    InstallWorkload(*engine);
    DriveWorkload(*engine, 300, [](int) {});
    return engine;
  };
  auto reference = run(1);
  for (int shards : {2, 4, 8}) {
    auto engine = run(shards);
    for (int id = 1; id <= kNumScalarSources; ++id) {
      EXPECT_EQ(reference->Answer(id).value()[0],
                engine->Answer(id).value()[0])
          << "shards=" << shards << " source=" << id;
      EXPECT_EQ(reference->updates_sent(id).value(),
                engine->updates_sent(id).value())
          << "shards=" << shards << " source=" << id;
    }
    EXPECT_EQ(reference->uplink_traffic().messages,
              engine->uplink_traffic().messages);
    EXPECT_EQ(reference->uplink_traffic().dropped,
              engine->uplink_traffic().dropped);
  }
}

TEST(ShardedStreamEngineTest, MirrorConsistencyAcrossShardsUnderLoss) {
  ShardedStreamEngineOptions options;
  options.num_shards = 4;
  options.channel.drop_probability = 0.4;
  ShardedStreamEngine engine(options);
  InstallWorkload(engine);
  DriveWorkload(engine, 300, [&](int t) {
    ASSERT_TRUE(engine.VerifyMirrorConsistency().ok()) << "tick " << t;
  });
  // Loss must actually have occurred for this test to mean anything.
  EXPECT_GT(engine.uplink_traffic().dropped, 0);
}

TEST(ShardedStreamEngineTest, PreservesStreamManagerErrorSurface) {
  ShardedStreamEngineOptions options;
  options.num_shards = 3;
  ShardedStreamEngine engine(options);
  ASSERT_TRUE(engine.RegisterSource(1, ScalarModel(0.05)).ok());
  EXPECT_EQ(engine.RegisterSource(1, ScalarModel(0.05)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.SubmitQuery(MakeQuery(1, 9, 2.0)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.SubmitQuery(MakeQuery(1 << 24, 1, 2.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RemoveQuery(1 << 24).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Answer(2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.AnswerAggregate(9).status().code(), StatusCode::kNotFound);

  // Readings batch validation mirrors StreamManager.
  ASSERT_TRUE(engine.RegisterSource(2, ScalarModel(0.05)).ok());
  EXPECT_FALSE(engine.ProcessTick({{1, Vector{1.0}}}).ok());
  EXPECT_FALSE(
      engine.ProcessTick({{1, Vector{1.0}}, {3, Vector{1.0}}}).ok());
  EXPECT_TRUE(
      engine.ProcessTick({{1, Vector{1.0}}, {2, Vector{2.0}}}).ok());
  EXPECT_EQ(engine.ticks(), 1);

  // Aggregates reject non-scalar members, like StreamManager.
  ASSERT_TRUE(engine.RegisterSource(5, PlanarModel()).ok());
  AggregateQuery bad;
  bad.id = 1;
  bad.source_ids = {1, 5};
  bad.precision = 2.0;
  EXPECT_EQ(engine.SubmitAggregateQuery(bad).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedStreamEngineTest, AggregateLifecycleAndPartialSums) {
  ShardedStreamEngineOptions options;
  options.num_shards = 4;
  ShardedStreamEngine engine(options);
  for (int id = 1; id <= 8; ++id) {
    ASSERT_TRUE(engine.RegisterSource(id, ScalarModel(0.05)).ok());
  }
  AggregateQuery aggregate;
  aggregate.id = 3;
  aggregate.source_ids = {1, 2, 3, 4, 5, 6, 7, 8};
  aggregate.precision = 16.0;
  ASSERT_TRUE(engine.SubmitAggregateQuery(aggregate).ok());
  // Uniform split: every member runs at delta = 2, regardless of shard.
  for (int id = 1; id <= 8; ++id) {
    EXPECT_DOUBLE_EQ(engine.source_delta(id).value(), 2.0);
  }

  Rng rng(5);
  std::vector<double> values(9, 10.0);
  int violations = 0;
  for (int t = 0; t < 500; ++t) {
    std::map<int, Vector> readings;
    double truth = 0.0;
    for (int id = 1; id <= 8; ++id) {
      values[static_cast<size_t>(id)] += rng.Gaussian(0.1, 0.6);
      truth += values[static_cast<size_t>(id)];
      readings[id] = Vector{values[static_cast<size_t>(id)]};
    }
    ASSERT_TRUE(engine.ProcessTick(readings).ok());
    // Update ticks correct toward (not onto) the reading; tolerate the
    // small overshoot as the sequential aggregate test does.
    if (std::fabs(engine.AnswerAggregate(3).value() - truth) > 16.0 + 0.5) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);

  ASSERT_TRUE(engine.RemoveAggregateQuery(3).ok());
  EXPECT_EQ(engine.RemoveAggregateQuery(3).code(), StatusCode::kNotFound);
  EXPECT_GT(engine.source_delta(1).value(), 1e5);  // relaxed to default
}

TEST(ShardedStreamEngineTest, MergedStatsCoverAllShards) {
  ShardedStreamEngineOptions options;
  options.num_shards = 4;
  ShardedStreamEngine engine(options);
  for (int id = 0; id < 8; ++id) {
    ASSERT_TRUE(engine.RegisterSource(id, ScalarModel(0.05)).ok());
    ASSERT_TRUE(engine.SubmitQuery(MakeQuery(id + 1, id, 0.5)).ok());
  }
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    std::map<int, Vector> readings;
    for (int id = 0; id < 8; ++id) {
      readings[id] = Vector{rng.Gaussian(0.0, 5.0)};
    }
    ASSERT_TRUE(engine.ProcessTick(readings).ok());
  }
  MergedRuntimeStats stats = engine.stats();
  EXPECT_EQ(stats.sources, 8);
  EXPECT_EQ(stats.control_messages, 8);
  // Every source deviates hard at delta 0.5: traffic from all shards.
  int64_t per_source_total = 0;
  for (int id = 0; id < 8; ++id) {
    EXPECT_GT(engine.updates_sent(id).value(), 0);
    per_source_total += engine.updates_sent(id).value();
  }
  EXPECT_EQ(stats.uplink.messages, per_source_total);
  EXPECT_GT(stats.uplink.bytes, 0);
}

}  // namespace
}  // namespace dkf
