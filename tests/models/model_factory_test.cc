#include "models/model_factory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/time_series.h"
#include "core/dual_link.h"
#include "core/predictor.h"

namespace dkf {
namespace {

TEST(ConstantModelTest, MatchesPaperEquation15) {
  auto model_or = MakeConstantModel(2, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const StateModel& model = model_or.value();
  EXPECT_EQ(model.name, "constant");
  EXPECT_EQ(model.measurement_dim, 2u);
  EXPECT_LT(model.options.transition.MaxAbsDiff(Matrix::Identity(2)), 1e-15);
  EXPECT_LT(model.options.measurement.MaxAbsDiff(Matrix::Identity(2)),
            1e-15);
  EXPECT_DOUBLE_EQ(model.options.process_noise(0, 0), 0.05);
  EXPECT_DOUBLE_EQ(model.options.measurement_noise(1, 1), 0.05);
}

TEST(ConstantModelTest, Validation) {
  EXPECT_FALSE(MakeConstantModel(0, ModelNoise{}).ok());
  ModelNoise noise;
  noise.measurement_variance = 0.0;
  EXPECT_FALSE(MakeConstantModel(1, noise).ok());
  noise = ModelNoise{};
  noise.initial_variance = -1.0;
  EXPECT_FALSE(MakeConstantModel(1, noise).ok());
}

TEST(LinearModelTest, MatchesPaperEquations13To16) {
  const double dt = 0.1;
  auto model_or = MakeLinearModel(2, dt, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const StateModel& model = model_or.value();
  EXPECT_EQ(model.name, "linear");
  // State layout [x, xdot, y, ydot]; paper eq. 14.
  const Matrix expected_phi{{1.0, dt, 0.0, 0.0},
                            {0.0, 1.0, 0.0, 0.0},
                            {0.0, 0.0, 1.0, dt},
                            {0.0, 0.0, 0.0, 1.0}};
  EXPECT_LT(model.options.transition.MaxAbsDiff(expected_phi), 1e-15);
  // Paper eq. 16.
  const Matrix expected_h{{1.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 1.0, 0.0}};
  EXPECT_LT(model.options.measurement.MaxAbsDiff(expected_h), 1e-15);
}

TEST(LinearModelTest, OneAxisVariant) {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  EXPECT_EQ(model_or.value().options.initial_state.size(), 2u);
  EXPECT_EQ(model_or.value().measurement_dim, 1u);
}

TEST(LinearModelTest, Validation) {
  EXPECT_FALSE(MakeLinearModel(0, 1.0, ModelNoise{}).ok());
  EXPECT_FALSE(MakeLinearModel(1, 0.0, ModelNoise{}).ok());
  EXPECT_FALSE(MakeLinearModel(1, -1.0, ModelNoise{}).ok());
}

TEST(PolynomialModelTest, JerkModelTaylorCoefficients) {
  // §4.1: P_k = P + P' dt + P'' dt^2/2 + P''' dt^3/6.
  const double dt = 2.0;
  auto model_or = MakePolynomialModel(1, 3, dt, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const Matrix& phi = model_or.value().options.transition;
  ASSERT_EQ(phi.rows(), 4u);
  EXPECT_DOUBLE_EQ(phi(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(phi(0, 1), dt);
  EXPECT_DOUBLE_EQ(phi(0, 2), dt * dt / 2.0);
  EXPECT_DOUBLE_EQ(phi(0, 3), dt * dt * dt / 6.0);
  EXPECT_DOUBLE_EQ(phi(1, 2), dt);
  EXPECT_DOUBLE_EQ(phi(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(phi(3, 0), 0.0);
}

TEST(PolynomialModelTest, TwoAxesBlockDiagonal) {
  auto model_or = MakePolynomialModel(2, 2, 1.0, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const Matrix& phi = model_or.value().options.transition;
  ASSERT_EQ(phi.rows(), 6u);
  // Cross-axis block must be zero.
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 3; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(phi(r, c), 0.0);
      EXPECT_DOUBLE_EQ(phi(c, r), 0.0);
    }
  }
  // H picks positions of both axes.
  const Matrix& h = model_or.value().options.measurement;
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 3), 1.0);
}

TEST(PolynomialModelTest, OrderValidated) {
  EXPECT_FALSE(MakePolynomialModel(1, 0, 1.0, ModelNoise{}).ok());
  EXPECT_FALSE(MakePolynomialModel(1, 5, 1.0, ModelNoise{}).ok());
  EXPECT_TRUE(MakePolynomialModel(1, 4, 1.0, ModelNoise{}).ok());
}

TEST(SinusoidalModelTest, MatchesPaperEquations17And18) {
  const double omega = 2.0 * M_PI / 24.0;
  const double theta = M_PI;
  const double gamma = 1.0;
  auto model_or = MakeSinusoidalModel(omega, theta, gamma, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const StateModel& model = model_or.value();
  ASSERT_TRUE(static_cast<bool>(model.options.transition_fn));
  const Matrix phi_at_3 = model.options.transition_fn(3);
  EXPECT_DOUBLE_EQ(phi_at_3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(phi_at_3(0, 1), gamma * std::cos(omega * 3.0 + theta));
  EXPECT_DOUBLE_EQ(phi_at_3(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(phi_at_3(1, 1), 1.0);
  // Eq. 18: H = [1 0].
  EXPECT_DOUBLE_EQ(model.options.measurement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.options.measurement(0, 1), 0.0);
}

TEST(SinusoidalModelTest, FilterLearnsAmplitudeOfModelGeneratedStream) {
  // Generate the stream with the model's own recurrence
  //   x_k = x_{k-1} + cos(omega (k-1) + theta) * s_true
  // (the filter's transition_fn is evaluated at the pre-increment step
  // index); the filter must recover s_true and then coast accurately.
  const double omega = 0.25;
  const double theta = 0.4;
  const double s_true = 2.5;
  ModelNoise noise;
  noise.process_variance = 1e-8;
  noise.measurement_variance = 1e-4;
  auto model_or = MakeSinusoidalModel(omega, theta, 1.0, noise);
  ASSERT_TRUE(model_or.ok());
  auto filter_or = model_or.value().MakeFilter();
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  double signal = 0.0;
  for (int64_t k = 0; k < 300; ++k) {
    signal += std::cos(omega * static_cast<double>(k) + theta) * s_true;
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{signal}).ok());
  }
  EXPECT_NEAR(filter.state()[1], s_true, 0.01);
  // Coast 8 steps and compare against the recurrence.
  double max_err = 0.0;
  for (int64_t k = 300; k < 308; ++k) {
    signal += std::cos(omega * static_cast<double>(k) + theta) * s_true;
    ASSERT_TRUE(filter.Predict().ok());
    max_err = std::max(
        max_err, std::fabs(filter.PredictedMeasurement()[0] - signal));
  }
  EXPECT_LT(max_err, 0.1);
}

TEST(SinusoidalModelTest, FilterTracksTrueSinusoidApproximately) {
  // On a genuine sampled sinusoid 10 sin(omega k + theta) the model's
  // discrete regressor is phase-shifted by omega/2, so tracking is
  // approximate but close for small omega.
  const double omega = 0.25;
  const double theta = 0.0;
  ModelNoise noise;
  noise.process_variance = 1e-6;
  noise.measurement_variance = 1e-2;
  auto model_or = MakeSinusoidalModel(omega, theta, 1.0, noise);
  ASSERT_TRUE(model_or.ok());
  auto filter_or = model_or.value().MakeFilter();
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  auto signal = [&](int64_t k) {
    return 10.0 * std::sin(omega * static_cast<double>(k) + theta);
  };
  double max_err = 0.0;
  for (int64_t k = 1; k <= 300; ++k) {
    ASSERT_TRUE(filter.Predict().ok());
    if (k > 100) {
      max_err = std::max(max_err, std::fabs(filter.PredictedMeasurement()[0] -
                                            signal(k)));
    }
    ASSERT_TRUE(filter.Correct(Vector{signal(k)}).ok());
  }
  // One-step prediction error stays well under the amplitude.
  EXPECT_LT(max_err, 2.0);
}

TEST(SinusoidalModelTest, Validation) {
  EXPECT_FALSE(MakeSinusoidalModel(0.0, 0.0, 1.0, ModelNoise{}).ok());
  ModelNoise bad;
  bad.measurement_variance = -1.0;
  EXPECT_FALSE(MakeSinusoidalModel(1.0, 0.0, 1.0, bad).ok());
}

TEST(SmoothingModelTest, SingleStateWithFAsProcessNoise) {
  auto model_or = MakeSmoothingModel(1e-7, 1.0);
  ASSERT_TRUE(model_or.ok());
  const StateModel& model = model_or.value();
  EXPECT_EQ(model.options.initial_state.size(), 1u);
  EXPECT_DOUBLE_EQ(model.options.process_noise(0, 0), 1e-7);
  EXPECT_DOUBLE_EQ(model.options.transition(0, 0), 1.0);
}

TEST(SmoothingModelTest, Validation) {
  EXPECT_FALSE(MakeSmoothingModel(0.0, 1.0).ok());
  EXPECT_FALSE(MakeSmoothingModel(1e-7, 0.0).ok());
}

TEST(MeanRevertingModelTest, Validation) {
  EXPECT_FALSE(MakeMeanRevertingModel(0.0, ModelNoise{}).ok());
  EXPECT_FALSE(MakeMeanRevertingModel(1.0, ModelNoise{}).ok());
  EXPECT_FALSE(MakeMeanRevertingModel(-0.5, ModelNoise{}).ok());
  EXPECT_TRUE(MakeMeanRevertingModel(0.9, ModelNoise{}).ok());
}

TEST(MeanRevertingModelTest, TransitionStructure) {
  auto model_or = MakeMeanRevertingModel(0.8, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  const Matrix& phi = model_or.value().options.transition;
  EXPECT_DOUBLE_EQ(phi(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(phi(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(phi(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(phi(1, 1), 1.0);
}

TEST(MeanRevertingModelTest, LearnsTheMeanAndDecaysToIt) {
  // Feed an AR(1) process around mean 40; after convergence the mu state
  // should sit near 40, and coasting should decay the prediction toward
  // it (instead of holding the last value like the constant model).
  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 1.0;
  const double rho = 0.9;
  auto filter_or = MakeMeanRevertingModel(rho, noise).value().MakeFilter();
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();

  Rng rng(6);
  double x = 40.0;
  for (int i = 0; i < 2000; ++i) {
    x = 40.0 + rho * (x - 40.0) + rng.Gaussian(0.0, 1.0);
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{x}).ok());
  }
  EXPECT_NEAR(filter.state()[1], 40.0, 2.0);

  // Push the estimate onto a burst, then coast: the prediction must
  // decay back toward the learned mean.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{80.0}).ok());
  }
  const double at_burst = filter.PredictedMeasurement()[0];
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(filter.Predict().ok());
  const double after_coast = filter.PredictedMeasurement()[0];
  EXPECT_GT(at_burst, 60.0);
  EXPECT_LT(after_coast, 50.0);
  EXPECT_GT(after_coast, 30.0);
}

TEST(MeanRevertingModelTest, BeatsConstantModelOnMeanRevertingStream) {
  // Suppression comparison on a bursty mean-reverting stream: the
  // reverting model saves the "come-down" updates after each burst.
  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 1.0;
  ModelNoise adopt;
  adopt.process_variance = 100.0;
  adopt.measurement_variance = 1.0;
  auto reverting = KalmanPredictor::Create(
                       MakeMeanRevertingModel(0.95, noise).value())
                       .value();
  auto constant =
      KalmanPredictor::Create(MakeConstantModel(1, adopt).value()).value();

  Rng rng(7);
  TimeSeries stream(1);
  double x = 100.0;
  for (int i = 0; i < 4000; ++i) {
    x = 100.0 + 0.95 * (x - 100.0) + rng.Gaussian(0.0, 1.0);
    if (i % 400 == 0) x += 60.0;  // periodic bursts
    ASSERT_TRUE(stream.Append(static_cast<double>(i), x).ok());
  }
  DualLinkOptions options;
  options.delta = 8.0;
  auto reverting_link = DualLink::Create(reverting, options).value();
  auto constant_link = DualLink::Create(constant, options).value();
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(reverting_link.Step(Vector{stream.value(i)}).ok());
    ASSERT_TRUE(constant_link.Step(Vector{stream.value(i)}).ok());
  }
  EXPECT_LT(reverting_link.stats().updates_sent,
            constant_link.stats().updates_sent);
}

TEST(ModelFactoryTest, AllModelsProduceValidFilters) {
  const ModelNoise noise;
  auto constant = MakeConstantModel(2, noise);
  auto linear = MakeLinearModel(2, 0.1, noise);
  auto poly = MakePolynomialModel(2, 3, 0.1, noise);
  auto sinusoidal = MakeSinusoidalModel(0.3, 0.0, 1.0, noise);
  auto smoothing = MakeSmoothingModel(1e-5, 1.0);
  for (const auto* model_or :
       {&constant, &linear, &poly, &sinusoidal, &smoothing}) {
    ASSERT_TRUE(model_or->ok());
    EXPECT_TRUE(model_or->value().MakeFilter().ok());
  }
}

}  // namespace
}  // namespace dkf
