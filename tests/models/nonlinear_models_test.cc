#include "models/nonlinear_models.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(CoordinatedTurnTest, Validation) {
  EXPECT_FALSE(MakeCoordinatedTurnModel(0.0, NonlinearModelNoise{}).ok());
  NonlinearModelNoise bad;
  bad.measurement_variance = 0.0;
  EXPECT_FALSE(MakeCoordinatedTurnModel(0.1, bad).ok());
}

TEST(CoordinatedTurnTest, TransitionMatchesKinematics) {
  auto options_or = MakeCoordinatedTurnModel(0.5, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  const auto& options = options_or.value();
  // State [x, y, speed, heading, turn_rate].
  const Vector x{1.0, 2.0, 4.0, M_PI / 2.0, 0.2};
  const Vector next = options.transition(x, 0);
  EXPECT_NEAR(next[0], 1.0 + 4.0 * std::cos(M_PI / 2.0) * 0.5, 1e-12);
  EXPECT_NEAR(next[1], 2.0 + 4.0 * 0.5, 1e-12);  // sin(pi/2) = 1
  EXPECT_DOUBLE_EQ(next[2], 4.0);
  EXPECT_NEAR(next[3], M_PI / 2.0 + 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(next[4], 0.2);
}

TEST(CoordinatedTurnTest, JacobianMatchesFiniteDifferences) {
  auto options_or = MakeCoordinatedTurnModel(0.3, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  const auto& options = options_or.value();
  const Vector x{0.5, -1.0, 3.0, 0.7, -0.1};
  const Matrix analytic = options.transition_jacobian(x, 0);
  const double eps = 1e-7;
  for (size_t j = 0; j < 5; ++j) {
    Vector plus = x;
    Vector minus = x;
    plus[j] += eps;
    minus[j] -= eps;
    const Vector diff =
        (options.transition(plus, 0) - options.transition(minus, 0)) *
        (1.0 / (2.0 * eps));
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(analytic(i, j), diff[i], 1e-5)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(CoordinatedTurnTest, MeasurementPicksPosition) {
  auto options_or = MakeCoordinatedTurnModel(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  const auto& options = options_or.value();
  const Vector x{3.0, 4.0, 1.0, 0.0, 0.0};
  const Vector z = options.measurement(x);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], 4.0);
  const Matrix h = options.measurement_jacobian(x);
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 5u);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 1.0);
}

}  // namespace
}  // namespace dkf
