// Golden-trace tests for the observability layer: a canonical small run
// pins the exact event sequence (the trace format is an API — any
// change to emission order or event fields must show up here as a
// reviewed golden update), the sharded runtime's merged trace is
// bit-identical to the sequential manager's at every shard count, and a
// trace replays into the same counters the live sinks report.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "obs/trace_sink.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

std::string Render(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += FormatTraceEvent(event);
    out += '\n';
  }
  return out;
}

// --- 1. The pinned canonical run: one scalar source, perfect channel,
// --- heartbeats every 3 silent ticks, a step change at tick 4.

TEST(GoldenTraceTest, CanonicalRunEmitsPinnedEventSequence) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  StreamManagerOptions options;
  options.protocol.heartbeat_interval = 3;
  StreamManager manager(options);
  ASSERT_TRUE(manager.EnableTracing().ok());
  ASSERT_TRUE(manager.RegisterSource(1, ScalarModel()).ok());
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = 0.8;
  ASSERT_TRUE(manager.SubmitQuery(query).ok());

  const double readings[] = {0.0, 0.0, 0.0, 0.0, 2.5,
                             2.5, 2.5, 2.5, 2.5, 2.5};
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        manager.ProcessTick({{1, Vector{readings[t]}}}).ok());
  }

  // The full event stream, one "<step> <source> <kind> <actor> <value>
  // <aux> <detail>" line per event. Deviations are shortest-round-trip
  // doubles, so this pins the filter arithmetic bit-for-bit too: four
  // quiet ticks (heartbeat after 3 silent ones), the step change at
  // tick 4 transmitting the full 2.5 deviation, one follow-up transmit
  // while the filter converges, then suppression with the residual
  // deviation shrinking tick over tick until the next heartbeat.
  const std::string kGolden =
      "0 1 suppress source 0 0.8 0\n"
      "1 1 suppress source 0 0.8 0\n"
      "2 1 suppress source 0 0.8 0\n"
      "2 1 heartbeat_sent source 0 0 1\n"
      "2 1 heartbeat_received server 0 0 1\n"
      "3 1 suppress source 0 0.8 0\n"
      "4 1 transmit source 2.5 0.8 2\n"
      "4 1 update_applied server 0 0 2\n"
      "5 1 suppress source 0.4808690137597047 0.8 0\n"
      "6 1 transmit source 0.9617860711814896 0.8 3\n"
      "6 1 update_applied server 0 0 3\n"
      "7 1 suppress source 0.0080310001955608 0.8 0\n"
      "8 1 suppress source 0.013088034558436767 0.8 0\n"
      "9 1 suppress source 0.018145068921312735 0.8 0\n"
      "9 1 heartbeat_sent source 0 0 4\n"
      "9 1 heartbeat_received server 0 0 4\n";
  EXPECT_EQ(Render(manager.Trace()), kGolden);

  // The same run replays into the snapshot's counters.
  MetricsRegistry replayed;
  ReplayTrace(manager.Trace(), &replayed);
  EXPECT_TRUE(replayed.SameCounters(manager.MetricsSnapshot()));
  EXPECT_EQ(replayed.counter("trace.suppress"), 8);
  EXPECT_EQ(replayed.counter("trace.transmit"), 2);
  EXPECT_DOUBLE_EQ(replayed.gauge("suppression_ratio"), 0.8);
}

// --- 2 + 3. Shard invariance and replay, under a lossy channel.

constexpr int kNumSources = 9;

ChannelOptions LossyChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.25;
  // The manager must draw per-source fault schedules exactly like every
  // sharded layout (the engine forces this flag on).
  options.per_source_rng = true;
  return options;
}

ProtocolOptions TracedProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 4;
  protocol.staleness_budget = 6;
  return protocol;
}

template <typename System>
void InstallWorkload(System& system) {
  ASSERT_TRUE(system.EnableTracing().ok());
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        system.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 3))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.0 + 0.5 * (id % 4);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
}

template <typename System>
void Drive(System& system, int ticks) {
  Rng rng(19);
  std::vector<double> values(kNumSources + 1, 0.0);
  for (int t = 0; t < ticks; ++t) {
    std::map<int, Vector> readings;
    for (int id = 1; id <= kNumSources; ++id) {
      values[static_cast<size_t>(id)] += rng.Gaussian(0.04 * (id % 3), 0.7);
      readings[id] = Vector{values[static_cast<size_t>(id)]};
    }
    ASSERT_TRUE(system.ProcessTick(readings).ok()) << "tick " << t;
  }
}

TEST(GoldenTraceTest, MergedTraceIsBitIdenticalAcrossShardCounts) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  constexpr int kTicks = 250;

  // Reference: the sequential manager's trace, normalized through the
  // same deterministic merge order.
  StreamManagerOptions manager_options;
  manager_options.channel = LossyChannel();
  manager_options.protocol = TracedProtocol();
  StreamManager manager(manager_options);
  InstallWorkload(manager);
  Drive(manager, kTicks);
  const std::vector<TraceEvent> reference = MergeTraces({manager.Trace()});
  ASSERT_FALSE(reference.empty());
  ASSERT_EQ(manager.trace_sink()->dropped_events(), 0)
      << "ring too small for an exact comparison";
  const MetricsRegistry reference_metrics = manager.MetricsSnapshot();
  EXPECT_GT(reference_metrics.counter("trace.suppress"), 0);
  EXPECT_GT(reference_metrics.counter("trace.transmit"), 0);
  EXPECT_GT(reference_metrics.counter("trace.channel_drop"), 0);
  EXPECT_GT(reference_metrics.counter("trace.heartbeat_sent"), 0);

  for (int shards : {1, 2, 4, 8}) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = LossyChannel();
    options.protocol = TracedProtocol();
    ShardedStreamEngine engine(options);
    InstallWorkload(engine);
    Drive(engine, kTicks);

    const std::vector<TraceEvent> merged = engine.MergedTrace();
    ASSERT_EQ(merged.size(), reference.size()) << "shards=" << shards;
    // Bit-identical: every field of every event, in one deterministic
    // order, regardless of how sources landed on shards.
    EXPECT_TRUE(merged == reference) << "shards=" << shards;

    // The merged metrics snapshot matches exactly too (counters, the
    // additive in-flight gauge, derived rates).
    EXPECT_TRUE(engine.MetricsSnapshot() == reference_metrics)
        << "shards=" << shards;
  }
}

TEST(GoldenTraceTest, TraceReplaysIntoIdenticalCounters) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  ShardedStreamEngineOptions options;
  options.num_shards = 4;
  options.channel = LossyChannel();
  options.protocol = TracedProtocol();
  ShardedStreamEngine engine(options);
  InstallWorkload(engine);
  Drive(engine, 200);

  const MetricsRegistry live = engine.MetricsSnapshot();
  MetricsRegistry replayed;
  ReplayTrace(engine.MergedTrace(), &replayed);
  // A complete trace carries every event-derived counter; only sampled
  // gauges (live component state) are beyond replay.
  EXPECT_TRUE(replayed.SameCounters(live));
  EXPECT_DOUBLE_EQ(replayed.gauge("suppression_ratio"),
                   live.gauge("suppression_ratio"));
  EXPECT_GT(live.counter("trace.suppress"), 0);
}

}  // namespace
}  // namespace dkf
