#include "obs/trace_sink.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "filter/kalman_filter.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace dkf {
namespace {

TraceEvent MakeEvent(int64_t step, int32_t source, TraceEventKind kind) {
  TraceEvent event;
  event.step = step;
  event.source_id = source;
  event.kind = kind;
  event.actor = TraceActor::kSource;
  return event;
}

TEST(TraceSinkTest, EmitCountsAndRetainsInOrder) {
  TraceSink sink;
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  sink.Emit(0, 1, TraceEventKind::kSuppress, TraceActor::kSource, 0.4, 1.0);
  sink.Emit(1, 1, TraceEventKind::kTransmit, TraceActor::kSource, 1.7, 1.0,
            42);
  sink.Emit(1, 2, TraceEventKind::kSuppress, TraceActor::kSource, 0.1, 1.0);
  EXPECT_EQ(sink.count(TraceEventKind::kSuppress), 2);
  EXPECT_EQ(sink.count(TraceEventKind::kTransmit), 1);
  EXPECT_EQ(sink.count(TraceEventKind::kHeal), 0);
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped_events(), 0);

  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSuppress);
  EXPECT_EQ(events[1].kind, TraceEventKind::kTransmit);
  EXPECT_EQ(events[1].detail, 42);
  EXPECT_DOUBLE_EQ(events[1].value, 1.7);
  EXPECT_EQ(events[2].source_id, 2);
}

TEST(TraceSinkTest, RingOverflowKeepsNewestAndCountsDrops) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  ObsOptions options;
  options.ring_capacity = 4;
  TraceSink sink(options);
  for (int64_t step = 0; step < 10; ++step) {
    sink.Emit(step, 1, TraceEventKind::kSuppress, TraceActor::kSource);
  }
  // The ring keeps the newest 4; the exact per-kind counter is unharmed.
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped_events(), 6);
  EXPECT_EQ(sink.count(TraceEventKind::kSuppress), 10);
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().step, 6);  // oldest retained
  EXPECT_EQ(events.back().step, 9);   // newest
}

TEST(TraceSinkTest, DkfTraceMacroIsNullSafe) {
  TraceSink* null_sink = nullptr;
  // Must not crash, with or without the layer compiled in.
  DKF_TRACE(null_sink, 0, 1, TraceEventKind::kSuppress, TraceActor::kSource);
  TraceSink sink;
  DKF_TRACE(&sink, 3, 7, TraceEventKind::kHeal, TraceActor::kSource, 2.0);
#if DKF_OBS_ENABLED
  EXPECT_EQ(sink.count(TraceEventKind::kHeal), 1);
  EXPECT_EQ(sink.Events().at(0).step, 3);
#else
  EXPECT_EQ(sink.count(TraceEventKind::kHeal), 0);
#endif
}

TEST(TraceSinkTest, SnapshotDerivesSuppressionRatio) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  TraceSink sink;
  for (int i = 0; i < 3; ++i) {
    sink.Emit(i, 1, TraceEventKind::kSuppress, TraceActor::kSource);
  }
  sink.Emit(3, 1, TraceEventKind::kTransmit, TraceActor::kSource);
  sink.SetGauge("channel.in_flight", 2.0);

  MetricsRegistry registry = sink.Snapshot();
  EXPECT_EQ(registry.counter("trace.suppress"), 3);
  EXPECT_EQ(registry.counter("trace.transmit"), 1);
  EXPECT_EQ(registry.counter("trace.heal"), 0);  // all kinds present
  EXPECT_EQ(registry.counter("trace.dropped_events"), 0);
  EXPECT_DOUBLE_EQ(registry.gauge("suppression_ratio"), 0.75);
  EXPECT_DOUBLE_EQ(registry.gauge("channel.in_flight"), 2.0);

  // Folding two sinks into one registry adds, and the ratio is
  // re-derived over the merged counters.
  TraceSink other;
  other.Emit(0, 2, TraceEventKind::kTransmit, TraceActor::kSource);
  MetricsRegistry merged;
  sink.SnapshotInto(&merged);
  other.SnapshotInto(&merged);
  EXPECT_EQ(merged.counter("trace.suppress"), 3);
  EXPECT_EQ(merged.counter("trace.transmit"), 2);
  EXPECT_DOUBLE_EQ(merged.gauge("suppression_ratio"), 0.6);
}

TEST(TraceSinkTest, TimingHistogramGatedByOption) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  TraceSink silent;  // record_timing defaults off: determinism
  silent.RecordTickLatencyNs(500.0);
  EXPECT_EQ(silent.Snapshot().histogram("tick_latency_ns"), nullptr);

  ObsOptions options;
  options.record_timing = true;
  TraceSink timed(options);
  timed.RecordTickLatencyNs(500.0);
  timed.RecordTickLatencyNs(5e6);
  const MetricsRegistry snapshot = timed.Snapshot();
  const HistogramSnapshot* histogram = snapshot.histogram("tick_latency_ns");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 2);
  EXPECT_DOUBLE_EQ(histogram->sum, 500.0 + 5e6);
}

TEST(TraceSinkTest, ResetClearsEverything) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  ObsOptions options;
  options.ring_capacity = 2;
  TraceSink sink(options);
  for (int i = 0; i < 5; ++i) {
    sink.Emit(i, 1, TraceEventKind::kSuppress, TraceActor::kSource);
  }
  sink.SetGauge("g", 1.0);
  sink.Reset();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped_events(), 0);
  EXPECT_EQ(sink.count(TraceEventKind::kSuppress), 0);
  EXPECT_FALSE(sink.Snapshot().has_gauge("g"));
  sink.Emit(7, 1, TraceEventKind::kHeal, TraceActor::kSource);
  EXPECT_EQ(sink.Events().at(0).step, 7);
}

TEST(TraceSinkTest, FormatAndNamesAreStable) {
  TraceEvent event;
  event.step = 12;
  event.source_id = 3;
  event.kind = TraceEventKind::kTransmit;
  event.actor = TraceActor::kSource;
  event.value = 2.5;
  event.aux = 1.0;
  event.detail = 9;
  EXPECT_EQ(FormatTraceEvent(event), "12 3 transmit source 2.5 1 9");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kFastPathFreeze),
               "fast_path_freeze");
  EXPECT_STREQ(TraceActorName(TraceActor::kServerFilter), "server_filter");
  const std::string json = TraceToJson({event});
  EXPECT_NE(json.find("\"kind\": \"transmit\""), std::string::npos);
  EXPECT_NE(json.find("\"step\": 12"), std::string::npos);
}

TEST(TraceSinkTest, MergeTracesSortsByStepThenSourceStably) {
  // Shard A holds sources 1 and 3; shard B holds source 2. Per-source
  // order within a shard must survive, and sources interleave by id.
  std::vector<TraceEvent> shard_a = {
      MakeEvent(0, 1, TraceEventKind::kSuppress),
      MakeEvent(0, 3, TraceEventKind::kTransmit),
      MakeEvent(1, 1, TraceEventKind::kSuppress),
      MakeEvent(1, 1, TraceEventKind::kHeartbeatSent),
  };
  std::vector<TraceEvent> shard_b = {
      MakeEvent(0, 2, TraceEventKind::kTransmit),
      MakeEvent(1, 2, TraceEventKind::kSuppress),
  };
  const std::vector<TraceEvent> merged = MergeTraces({shard_a, shard_b});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged[0].source_id, 1);
  EXPECT_EQ(merged[1].source_id, 2);
  EXPECT_EQ(merged[2].source_id, 3);
  EXPECT_EQ(merged[3].source_id, 1);
  EXPECT_EQ(merged[3].kind, TraceEventKind::kSuppress);
  EXPECT_EQ(merged[4].kind, TraceEventKind::kHeartbeatSent);
  EXPECT_EQ(merged[5].source_id, 2);
  // Merging the single concatenated stream is idempotent.
  EXPECT_EQ(MergeTraces({merged}), merged);
}

TEST(TraceSinkTest, KalmanFilterEmitsFreezeAndDisarmEvents) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  // A constant model converges to a steady-state covariance, arming the
  // fast path; a coasting (predict-only) stretch breaks the cadence and
  // disarms it.
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  auto filter_or =
      KalmanFilter::Create(MakeConstantModel(1, noise).value().options);
  ASSERT_TRUE(filter_or.ok());
  KalmanFilter filter = std::move(filter_or).value();
  TraceSink sink;
  filter.set_trace(&sink, 5, TraceActor::kSourceFilter);

  bool armed = false;
  for (int t = 0; t < 400 && !armed; ++t) {
    ASSERT_TRUE(filter.Predict().ok());
    ASSERT_TRUE(filter.Correct(Vector{1.0}).ok());
    armed = filter.steady_state_armed();
  }
  ASSERT_TRUE(armed);
  EXPECT_EQ(sink.count(TraceEventKind::kFastPathFreeze), 1);
  EXPECT_EQ(sink.count(TraceEventKind::kFastPathDisarm), 0);

  // Coasting breaks the Predict/Correct cadence.
  ASSERT_TRUE(filter.Predict().ok());
  ASSERT_TRUE(filter.Predict().ok());
  EXPECT_FALSE(filter.steady_state_armed());
  EXPECT_EQ(sink.count(TraceEventKind::kFastPathDisarm), 1);

  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kFastPathFreeze);
  EXPECT_EQ(events[0].source_id, 5);
  EXPECT_EQ(events[0].actor, TraceActor::kSourceFilter);
  EXPECT_EQ(events[1].kind, TraceEventKind::kFastPathDisarm);
  EXPECT_LE(events[0].step, events[1].step);
}

}  // namespace
}  // namespace dkf
