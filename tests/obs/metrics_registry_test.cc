#include "obs/metrics_registry.h"

#include <string>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("missing"), 0);
  registry.AddCounter("trace.suppress", 3);
  registry.AddCounter("trace.suppress", 4);
  registry.AddCounter("trace.transmit", 1);
  EXPECT_EQ(registry.counter("trace.suppress"), 7);
  EXPECT_EQ(registry.counter("trace.transmit"), 1);
  EXPECT_EQ(registry.counters().size(), 2u);
}

TEST(MetricsRegistryTest, GaugesSetAndAdd) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.has_gauge("depth"));
  EXPECT_EQ(registry.gauge("depth"), 0.0);
  registry.SetGauge("depth", 4.0);
  EXPECT_TRUE(registry.has_gauge("depth"));
  EXPECT_EQ(registry.gauge("depth"), 4.0);
  registry.AddToGauge("depth", 2.5);  // cross-shard additive merge
  EXPECT_EQ(registry.gauge("depth"), 6.5);
  registry.SetGauge("depth", 1.0);  // set overwrites
  EXPECT_EQ(registry.gauge("depth"), 1.0);
}

TEST(MetricsRegistryTest, HistogramBucketsFollowLeSemantics) {
  MetricsRegistry registry;
  const std::vector<double> boundaries = {1.0, 10.0, 100.0};
  registry.RecordHistogram("lat", boundaries, 0.5);    // bucket 0
  registry.RecordHistogram("lat", boundaries, 1.0);    // le is inclusive
  registry.RecordHistogram("lat", boundaries, 50.0);   // bucket 2
  registry.RecordHistogram("lat", boundaries, 1000.0); // +Inf overflow
  const HistogramSnapshot* histogram = registry.histogram("lat");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->counts, (std::vector<int64_t>{2, 0, 1, 1}));
  EXPECT_EQ(histogram->count, 4);
  EXPECT_DOUBLE_EQ(histogram->sum, 1051.5);
  EXPECT_EQ(registry.histogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, MergeHistogramInsertsThenMergesBucketwise) {
  HistogramSnapshot h;
  h.boundaries = {1.0, 2.0};
  h.counts = {1, 2, 3};
  h.count = 6;
  h.sum = 10.0;

  MetricsRegistry registry;
  registry.MergeHistogram("lat", h);
  ASSERT_NE(registry.histogram("lat"), nullptr);
  EXPECT_EQ(*registry.histogram("lat"), h);

  registry.MergeHistogram("lat", h);
  EXPECT_EQ(registry.histogram("lat")->counts,
            (std::vector<int64_t>{2, 4, 6}));
  EXPECT_EQ(registry.histogram("lat")->count, 12);
  EXPECT_DOUBLE_EQ(registry.histogram("lat")->sum, 20.0);

  // Mismatched boundary shapes keep the existing histogram untouched.
  HistogramSnapshot other;
  other.boundaries = {5.0};
  other.counts = {1, 1};
  other.count = 2;
  other.sum = 6.0;
  registry.MergeHistogram("lat", other);
  EXPECT_EQ(registry.histogram("lat")->count, 12);
}

TEST(MetricsRegistryTest, MergeFromSumsEverything) {
  MetricsRegistry a;
  a.AddCounter("c", 2);
  a.SetGauge("g", 1.5);
  a.RecordHistogram("h", {1.0}, 0.5);

  MetricsRegistry b;
  b.AddCounter("c", 3);
  b.AddCounter("only_b", 1);
  b.SetGauge("g", 2.5);
  b.RecordHistogram("h", {1.0}, 2.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.counter("c"), 5);
  EXPECT_EQ(a.counter("only_b"), 1);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 4.0);  // gauges are additive partials
  EXPECT_EQ(a.histogram("h")->count, 2);
  EXPECT_EQ(a.histogram("h")->counts, (std::vector<int64_t>{1, 1}));
}

TEST(MetricsRegistryTest, EqualityAndSameCounters) {
  MetricsRegistry a;
  a.AddCounter("c", 1);
  a.SetGauge("g", 2.0);
  MetricsRegistry b;
  b.AddCounter("c", 1);
  b.SetGauge("g", 2.0);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.SameCounters(b));
  b.SetGauge("g", 3.0);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.SameCounters(b));  // counters-only comparison
  b.AddCounter("c", 1);
  EXPECT_FALSE(a.SameCounters(b));
}

TEST(MetricsRegistryTest, JsonExportIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.AddCounter("b.counter", 2);
  registry.AddCounter("a.counter", 1);
  registry.SetGauge("ratio", 0.5);
  registry.RecordHistogram("lat", {1.0}, 0.5);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\": 0.5"), std::string::npos);
  // std::map keys come out sorted, so the export is deterministic.
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));
  // Exporting twice yields the identical string.
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsRegistryTest, PrometheusExportFormat) {
  MetricsRegistry registry;
  registry.AddCounter("trace.suppress", 9);
  registry.SetGauge("suppression_ratio", 0.75);
  registry.RecordHistogram("tick_latency_ns", {10.0, 100.0}, 5.0);
  registry.RecordHistogram("tick_latency_ns", {10.0, 100.0}, 50.0);
  const std::string text = registry.ToPrometheus("dkf");
  // Counters: dots become underscores, _total suffix, TYPE line.
  EXPECT_NE(text.find("# TYPE dkf_trace_suppress_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dkf_trace_suppress_total 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dkf_suppression_ratio gauge"),
            std::string::npos);
  // Histograms: cumulative le buckets plus +Inf, _sum, _count.
  EXPECT_NE(text.find("dkf_tick_latency_ns_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dkf_tick_latency_ns_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dkf_tick_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dkf_tick_latency_ns_count 2"), std::string::npos);
}

}  // namespace
}  // namespace dkf
