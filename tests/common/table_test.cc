#include "common/table.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRule) {
  AsciiTable table({"col_a", "b"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("col_a  b"), std::string::npos);
  EXPECT_NE(text.find("-----  -"), std::string::npos);
}

TEST(AsciiTableTest, AlignsColumnsToWidestCell) {
  AsciiTable table({"x", "y"});
  table.AddRow({"longvalue", "1"});
  table.AddRow({"a", "22"});
  const std::string text = table.ToString();
  // Both rows should place the second column at the same offset.
  EXPECT_NE(text.find("longvalue  1"), std::string::npos);
  EXPECT_NE(text.find("a          22"), std::string::npos);
}

TEST(AsciiTableTest, PadsShortRowsTruncatesLong) {
  AsciiTable table({"a", "b"});
  table.AddRow({"only"});
  table.AddRow({"1", "2", "3"});
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string text = table.ToString();
  EXPECT_EQ(text.find("3"), std::string::npos);
}

TEST(AsciiTableTest, NumericRowFormatting) {
  AsciiTable table({"delta", "pct"});
  table.AddNumericRow({3.0, 74.25});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("74.25"), std::string::npos);
}

TEST(AsciiTableTest, NoTrailingSpaces) {
  AsciiTable table({"a", "b"});
  table.AddRow({"x", "y"});
  const std::string text = table.ToString();
  size_t pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    if (pos > 0) {
      EXPECT_NE(text[pos - 1], ' ');
    }
    ++pos;
  }
}

}  // namespace
}  // namespace dkf
