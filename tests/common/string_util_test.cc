#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string big(1000, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 1000u);
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrStripTest, StripsWhitespace) {
  EXPECT_EQ(StrStrip("  a b  "), "a b");
  EXPECT_EQ(StrStrip("\t\nx\r "), "x");
  EXPECT_EQ(StrStrip("   "), "");
  EXPECT_EQ(StrStrip(""), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(ParseDoubleTest, ParsesValidInput) {
  double out = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &out));
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &out));
  EXPECT_DOUBLE_EQ(out, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &out));
  EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(ParseDoubleTest, RejectsBadInput) {
  double out = 0.0;
  EXPECT_FALSE(ParseDouble("", &out));
  EXPECT_FALSE(ParseDouble("abc", &out));
  EXPECT_FALSE(ParseDouble("1.5x", &out));
  EXPECT_FALSE(ParseDouble("1e999", &out));  // range error
}

TEST(ParseInt64Test, ParsesValidInput) {
  long long out = 0;
  EXPECT_TRUE(ParseInt64("123", &out));
  EXPECT_EQ(out, 123);
  EXPECT_TRUE(ParseInt64("-5", &out));
  EXPECT_EQ(out, -5);
}

TEST(ParseInt64Test, RejectsBadInput) {
  long long out = 0;
  EXPECT_FALSE(ParseInt64("", &out));
  EXPECT_FALSE(ParseInt64("12.5", &out));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &out));
}

TEST(DoubleToStringTest, RoundTripsExactly) {
  const double cases[] = {0.0,     1.0,        -1.5,       3.141592653589793,
                          1e-300,  1e300,      0.1,        2.0 / 3.0,
                          -123.456, 5831.0};
  for (double value : cases) {
    double parsed = 0.0;
    ASSERT_TRUE(ParseDouble(DoubleToString(value), &parsed));
    EXPECT_EQ(parsed, value) << DoubleToString(value);
  }
}

TEST(DoubleToStringTest, PrefersShortForm) {
  EXPECT_EQ(DoubleToString(1.0), "1");
  EXPECT_EQ(DoubleToString(0.5), "0.5");
}

}  // namespace
}  // namespace dkf
