// Parser/robustness sweeps: deterministic pseudo-random garbage through
// every text-parsing surface must never crash and must either round-trip
// or fail with a clean Status.

#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace dkf {
namespace {

std::string RandomGarbage(Rng* rng, size_t max_len) {
  const std::string alphabet =
      "abc0123456789.,-+eE\"\n\r \t;|{}[]%$#@!";
  std::string out;
  const size_t len = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(max_len)));
  for (size_t i = 0; i < len; ++i) {
    out += alphabet[static_cast<size_t>(rng->UniformInt(
        0, static_cast<int64_t>(alphabet.size()) - 1))];
  }
  return out;
}

TEST(RobustnessTest, ParseCsvLineNeverCrashes) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string line = RandomGarbage(&rng, 120);
    const auto cells = ParseCsvLine(line);
    EXPECT_GE(cells.size(), 1u);
  }
}

TEST(RobustnessTest, ParseDoubleNeverCrashesAndNeverLies) {
  Rng rng(2);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::string text = RandomGarbage(&rng, 30);
    double value = 0.0;
    if (ParseDouble(text, &value)) {
      // A successful parse must round-trip through DoubleToString.
      double again = 0.0;
      ASSERT_TRUE(ParseDouble(DoubleToString(value), &again));
      EXPECT_EQ(again, value);
    }
  }
}

TEST(RobustnessTest, ParseInt64NeverCrashes) {
  Rng rng(3);
  for (int trial = 0; trial < 5000; ++trial) {
    long long value = 0;
    (void)ParseInt64(RandomGarbage(&rng, 25), &value);
  }
}

TEST(RobustnessTest, CsvCellRoundTripsArbitraryContent) {
  // Any cell content we write must come back identical through the
  // quote/parse cycle.
  Rng rng(4);
  const std::string path =
      std::string(::testing::TempDir()) + "/robustness_cells.csv";
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> row;
    for (int c = 0; c < 4; ++c) {
      std::string cell = RandomGarbage(&rng, 40);
      // Embedded newlines are documented as unsupported by the
      // line-oriented reader; strip them for the round-trip check.
      std::erase(cell, '\n');
      std::erase(cell, '\r');
      row.push_back(cell);
    }
    auto writer_or = CsvWriter::Open(path);
    ASSERT_TRUE(writer_or.ok());
    CsvWriter writer = std::move(writer_or).value();
    ASSERT_TRUE(writer.WriteRow(row).ok());
    ASSERT_TRUE(writer.Close().ok());

    auto rows_or = ReadCsvFile(path);
    ASSERT_TRUE(rows_or.ok());
    ASSERT_EQ(rows_or.value().size(), 1u);
    EXPECT_EQ(rows_or.value()[0], row);
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, TimeSeriesCsvRejectsGarbageCleanly) {
  Rng rng(5);
  const std::string path =
      std::string(::testing::TempDir()) + "/robustness_series.csv";
  for (int trial = 0; trial < 200; ++trial) {
    FILE* f = std::fopen(path.c_str(), "w");
    const std::string garbage = RandomGarbage(&rng, 200);
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
    // Must not crash; must return ok or a clean error.
    auto series_or = ReadTimeSeriesCsv(path);
    if (!series_or.ok()) {
      EXPECT_FALSE(series_or.status().message().empty());
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkf
