#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dkf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvParseTest, SimpleLine) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseTest, EmptyFields) {
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
}

TEST(CsvParseTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvParseTest, ToleratesCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvWriterTest, WriteAndReadBack) {
  const std::string path = TempPath("writer_roundtrip.csv");
  {
    auto writer_or = CsvWriter::Open(path);
    ASSERT_TRUE(writer_or.ok());
    CsvWriter writer = std::move(writer_or).value();
    ASSERT_TRUE(writer.WriteRow({"h1", "h2"}).ok());
    ASSERT_TRUE(writer.WriteRow({"with,comma", "with\"quote"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto rows_or = ReadCsvFile(path);
  ASSERT_TRUE(rows_or.ok());
  const auto& rows = rows_or.value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"with,comma", "with\"quote"}));
  std::remove(path.c_str());
}

TEST(CsvWriterTest, DoubleCloseFails) {
  const std::string path = TempPath("double_close.csv");
  auto writer_or = CsvWriter::Open(path);
  ASSERT_TRUE(writer_or.ok());
  CsvWriter writer = std::move(writer_or).value();
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_FALSE(writer.Close().ok());
  EXPECT_FALSE(writer.WriteRow({"x"}).ok());
  std::remove(path.c_str());
}

TEST(CsvReadTest, MissingFileErrors) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/really/not/here.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TimeSeriesCsvTest, RoundTripsMultivariate) {
  TimeSeries series(2);
  ASSERT_TRUE(series.Append(0.5, {1.25, -3.75}).ok());
  ASSERT_TRUE(series.Append(1.5, {2.0, 4.0}).ok());

  const std::string path = TempPath("series_roundtrip.csv");
  ASSERT_TRUE(WriteTimeSeriesCsv(series, path).ok());
  auto loaded_or = ReadTimeSeriesCsv(path);
  ASSERT_TRUE(loaded_or.ok());
  const TimeSeries& loaded = loaded_or.value();

  ASSERT_EQ(loaded.size(), series.size());
  ASSERT_EQ(loaded.width(), series.width());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(loaded.timestamp(i), series.timestamp(i));
    for (size_t d = 0; d < series.width(); ++d) {
      EXPECT_EQ(loaded.value(i, d), series.value(i, d));
    }
  }
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, RejectsMalformedHeader) {
  const std::string path = TempPath("bad_header.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("time,v0\n1,2\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadTimeSeriesCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, RejectsRowWithWrongArity) {
  const std::string path = TempPath("bad_row.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("timestamp,v0\n1,2,3\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadTimeSeriesCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, RejectsNonNumericCell) {
  const std::string path = TempPath("bad_cell.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("timestamp,v0\n1,abc\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadTimeSeriesCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkf
