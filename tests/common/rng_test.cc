#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoLowerBoundHolds) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoMeanMatchesTheory) {
  Rng rng(16);
  // Mean of Pareto(xm, a) is xm * a / (a - 1); use a = 3 for a fast-
  // converging mean.
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.03);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(18);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(19);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(20);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(21);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(22);
  Rng child = parent.Fork();
  // Child and parent should not produce the same next values.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(23);
  Rng b(23);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.Next(), fb.Next());
}

}  // namespace
}  // namespace dkf
