#include "common/time_series.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(TimeSeriesTest, StartsEmpty) {
  TimeSeries series(2);
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.width(), 2u);
}

TEST(TimeSeriesTest, ZeroWidthCoercedToOne) {
  TimeSeries series(0);
  EXPECT_EQ(series.width(), 1u);
}

TEST(TimeSeriesTest, AppendAndRead) {
  TimeSeries series(2);
  ASSERT_TRUE(series.Append(0.0, {1.0, 2.0}).ok());
  ASSERT_TRUE(series.Append(1.0, {3.0, 4.0}).ok());
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.timestamp(1), 1.0);
  EXPECT_DOUBLE_EQ(series.value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(series.value(1, 1), 4.0);
  EXPECT_EQ(series.Row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(series.Column(0), (std::vector<double>{1.0, 3.0}));
}

TEST(TimeSeriesTest, ScalarAppendConvenience) {
  TimeSeries series(1);
  ASSERT_TRUE(series.Append(0.0, 5.0).ok());
  EXPECT_DOUBLE_EQ(series.value(0), 5.0);
}

TEST(TimeSeriesTest, ScalarAppendRejectedOnWideSeries) {
  TimeSeries series(2);
  EXPECT_EQ(series.Append(0.0, 5.0).code(), StatusCode::kInvalidArgument);
}

TEST(TimeSeriesTest, RejectsWrongWidth) {
  TimeSeries series(2);
  EXPECT_EQ(series.Append(0.0, {1.0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(series.Append(0.0, {1.0, 2.0, 3.0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TimeSeriesTest, RejectsNonIncreasingTimestamps) {
  TimeSeries series(1);
  ASSERT_TRUE(series.Append(1.0, 1.0).ok());
  EXPECT_FALSE(series.Append(1.0, 2.0).ok());
  EXPECT_FALSE(series.Append(0.5, 2.0).ok());
  ASSERT_TRUE(series.Append(1.5, 2.0).ok());
}

TEST(TimeSeriesTest, StatsComputesMoments) {
  TimeSeries series(1);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(series.Append(i, static_cast<double>(i)).ok());
  }
  auto stats_or = series.Stats();
  ASSERT_TRUE(stats_or.ok());
  const SeriesStats& stats = stats_or.value();
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(2.0), 1e-12);
}

TEST(TimeSeriesTest, StatsErrors) {
  TimeSeries empty(1);
  EXPECT_EQ(empty.Stats().status().code(), StatusCode::kFailedPrecondition);

  TimeSeries series(1);
  ASSERT_TRUE(series.Append(0.0, 1.0).ok());
  EXPECT_EQ(series.Stats(3).status().code(), StatusCode::kOutOfRange);
}

TEST(TimeSeriesTest, SliceExtractsRange) {
  TimeSeries series(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(series.Append(i, static_cast<double>(i * i)).ok());
  }
  auto slice_or = series.Slice(2, 5);
  ASSERT_TRUE(slice_or.ok());
  const TimeSeries& slice = slice_or.value();
  EXPECT_EQ(slice.size(), 3u);
  EXPECT_DOUBLE_EQ(slice.value(0), 4.0);
  EXPECT_DOUBLE_EQ(slice.value(2), 16.0);
}

TEST(TimeSeriesTest, SliceBoundsChecked) {
  TimeSeries series(1);
  ASSERT_TRUE(series.Append(0.0, 1.0).ok());
  EXPECT_FALSE(series.Slice(0, 2).ok());
  EXPECT_FALSE(series.Slice(2, 1).ok());
  EXPECT_TRUE(series.Slice(0, 0).ok());  // empty slice is fine
}

TEST(TimeSeriesTest, DownsampleKeepsStride) {
  TimeSeries series(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(series.Append(i, static_cast<double>(i)).ok());
  }
  auto down_or = series.Downsample(3);
  ASSERT_TRUE(down_or.ok());
  const TimeSeries& down = down_or.value();
  EXPECT_EQ(down.size(), 4u);  // indices 0, 3, 6, 9
  EXPECT_DOUBLE_EQ(down.value(3), 9.0);
  EXPECT_FALSE(series.Downsample(0).ok());
}

TEST(TimeSeriesTest, ClearEmpties) {
  TimeSeries series(1);
  ASSERT_TRUE(series.Append(0.0, 1.0).ok());
  series.Clear();
  EXPECT_TRUE(series.empty());
  // After clear, any timestamp is accepted again.
  EXPECT_TRUE(series.Append(-100.0, 1.0).ok());
}

}  // namespace
}  // namespace dkf
