#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::string> result(std::string("a"));
  result.value() += "b";
  EXPECT_EQ(result.value(), "ab");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status ConsumeViaAssignOrReturn(int input, int* out) {
  DKF_ASSIGN_OR_RETURN(const int value, ParsePositive(input));
  *out = value * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(ConsumeViaAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(ConsumeViaAssignOrReturn(-1, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopyableResultCopies) {
  Result<int> original(9);
  Result<int> copy = original;
  EXPECT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), 9);
}

}  // namespace
}  // namespace dkf
