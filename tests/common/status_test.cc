#include "common/status.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::OutOfRange("e"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  const Status status = Status::NotFound("missing file");
  EXPECT_EQ(status.ToString(), "NotFound: missing file");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsThenPropagates(bool fail) {
  DKF_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CopyPreservesState) {
  const Status original = Status::OutOfRange("index 9");
  const Status copy = original;  // NOLINT(performance-unnecessary-copy...)
  EXPECT_EQ(copy, original);
}

}  // namespace
}  // namespace dkf
