// Unit tests for the fleet-wide delta governor (docs/governor.md):
// option validation, the water-filling allocation math, the robustness
// clamps (floor/ceiling/slew/dead-band), the freeze rule, overload
// degradation, and checkpoint state transfer.

#include "governor/delta_governor.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace dkf {
namespace {

/// Wide-open knobs for the allocation-math tests: no slew limit in
/// range, no dead band, EWMA = latest epoch only.
GovernorOptions MathOptions(double budget) {
  GovernorOptions options;
  options.enabled = true;
  options.epoch_ticks = 10;
  options.budget_bytes_per_tick = budget;
  options.delta_floor = 0.01;
  options.delta_ceiling = 1e6;
  options.max_step_ratio = 1e9;
  options.dead_band = 0.0;
  options.ewma_alpha = 1.0;
  return options;
}

GovernorSourceSample Sample(int id, int64_t bytes, double delta,
                            bool unhealthy = false) {
  GovernorSourceSample sample;
  sample.source_id = id;
  sample.bytes = bytes;
  sample.updates = bytes / 29;  // message size for a scalar payload
  sample.delta = delta;
  sample.unhealthy = unhealthy;
  return sample;
}

TEST(GovernorValidateTest, AcceptsDefaultsWithBudget) {
  GovernorOptions options;
  options.budget_bytes_per_tick = 100.0;
  EXPECT_TRUE(DeltaGovernor::Validate(options).ok());
}

TEST(GovernorValidateTest, RejectsOutOfRangeKnobs) {
  const GovernorOptions good = MathOptions(100.0);
  auto expect_invalid = [](GovernorOptions options) {
    const Status status = DeltaGovernor::Validate(options);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  };
  {
    GovernorOptions o = good;
    o.epoch_ticks = 0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.budget_bytes_per_tick = 0.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.delta_floor = 0.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.delta_ceiling = o.delta_floor / 2.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.max_step_ratio = 1.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.dead_band = 1.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.ewma_alpha = 0.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.process_noise = 0.0;
    expect_invalid(o);
  }
  {
    GovernorOptions o = good;
    o.measurement_noise = -1.0;
    expect_invalid(o);
  }
}

TEST(GovernorPlanTest, ValidatesLazily) {
  GovernorOptions options = MathOptions(100.0);
  options.dead_band = 2.0;  // out of range; the constructor must not throw
  DeltaGovernor governor(options);
  auto result = governor.PlanEpoch({Sample(1, 100, 1.0)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GovernorPlanTest, RejectsNonAscendingSamples) {
  DeltaGovernor governor(MathOptions(100.0));
  auto result =
      governor.PlanEpoch({Sample(2, 100, 1.0), Sample(1, 100, 1.0)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GovernorPlanTest, SourceExactlyAtBudgetHoldsSteady) {
  // One source spending exactly the budget at delta = 1: the
  // unconstrained optimum reproduces the installed delta (to rounding),
  // so even a hairline dead band installs nothing.
  GovernorOptions options = MathOptions(100.0);
  options.dead_band = 1e-9;
  DeltaGovernor governor(options);
  auto result = governor.PlanEpoch({Sample(1, 1000, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().epoch, 0);
  EXPECT_NEAR(result.value().spend, 100.0, 1e-9);
  EXPECT_EQ(result.value().overshoot, 0.0);
  EXPECT_TRUE(result.value().changes.empty());
  const auto& state = governor.states().at(1);
  EXPECT_NEAR(state.intensity, 100.0, 1e-9);
  EXPECT_TRUE(state.measured);
  EXPECT_NEAR(state.held_delta, 1.0, 1e-12);
}

TEST(GovernorPlanTest, OverspendingSourceIsWidened) {
  // The same source then doubles its traffic: the fitted intensity
  // rises, the allocation widens delta (a raise), and the planned
  // schedule spends the full budget against the new estimate.
  DeltaGovernor governor(MathOptions(100.0));
  ASSERT_TRUE(governor.PlanEpoch({Sample(1, 1000, 1.0)}).ok());
  auto result = governor.PlanEpoch({Sample(1, 3000, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GT(result.value().overshoot, 0.0);
  ASSERT_EQ(result.value().changes.size(), 1u);
  const DeltaChange& change = result.value().changes[0];
  EXPECT_EQ(change.source_id, 1);
  EXPECT_EQ(change.previous, 1.0);
  EXPECT_GT(change.delta, 1.0);
  const double intensity = governor.states().at(1).intensity;
  EXPECT_GT(intensity, 100.0);   // moved toward the new measurement
  EXPECT_LT(intensity, 200.0);   // but not all the way (noisy channel)
  // The schedule it installed spends the budget exactly per the fit.
  EXPECT_NEAR(intensity / (change.delta * change.delta), 100.0, 1e-6);
}

TEST(GovernorPlanTest, WaterFillingSplitsByCubeRootOfIntensity) {
  // Two sources with intensities 8 and 64 and budget 6: the optimum is
  // delta_i = cbrt(x_i) * sqrt(S / C) with S = cbrt(8) + cbrt(64) = 6,
  // so delta = (2, 4) — spending 8/4 + 64/16 = 6, the whole budget,
  // with the busier stream held to only twice the width.
  DeltaGovernor governor(MathOptions(6.0));
  auto result =
      governor.PlanEpoch({Sample(1, 80, 1.0), Sample(2, 640, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().changes.size(), 2u);
  EXPECT_EQ(result.value().changes[0].source_id, 1);
  EXPECT_NEAR(result.value().changes[0].delta, 2.0, 1e-9);
  EXPECT_EQ(result.value().changes[1].source_id, 2);
  EXPECT_NEAR(result.value().changes[1].delta, 4.0, 1e-9);
}

TEST(GovernorPlanTest, SlewLimitBoundsPerEpochMovement) {
  GovernorOptions options = MathOptions(1.0);
  options.max_step_ratio = 2.0;
  DeltaGovernor governor(options);
  // Intensity 1000 against budget 1 wants delta = 100; the slew limit
  // allows at most a doubling per epoch.
  auto result = governor.PlanEpoch({Sample(1, 10000, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().changes.size(), 1u);
  EXPECT_NEAR(result.value().changes[0].delta, 2.0, 1e-12);
  // Next epoch walks another slew-limited step from the new delta.
  auto next = governor.PlanEpoch({Sample(1, 20000, 2.0)});
  ASSERT_TRUE(next.ok()) << next.status().message();
  ASSERT_EQ(next.value().changes.size(), 1u);
  EXPECT_NEAR(next.value().changes[0].delta, 4.0, 1e-12);
}

TEST(GovernorPlanTest, QuietSourcesProbeTowardTheFloor) {
  // A source that sent nothing has zero estimated intensity: it costs
  // nothing, so the governor probes it toward the delta floor (at the
  // slew rate) instead of leaving precision on the table.
  GovernorOptions options = MathOptions(100.0);
  options.max_step_ratio = 4.0;
  DeltaGovernor governor(options);
  auto result = governor.PlanEpoch({Sample(1, 0, 8.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().changes.size(), 1u);
  EXPECT_NEAR(result.value().changes[0].delta, 2.0, 1e-12);  // 8 / 4
  auto next = governor.PlanEpoch({Sample(1, 0, 2.0)});
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next.value().changes.size(), 1u);
  EXPECT_NEAR(next.value().changes[0].delta, 0.5, 1e-12);
}

TEST(GovernorPlanTest, DeadBandHoldsNearNoiseMoves) {
  // Identical traffic easing slightly below the budget, two dead
  // bands: the tolerant governor holds the small tightening move (no
  // reconfigure, no spill), the tight one installs it.
  GovernorOptions tolerant = MathOptions(100.0);
  tolerant.dead_band = 0.5;
  GovernorOptions tight = MathOptions(100.0);
  tight.dead_band = 0.01;
  DeltaGovernor hold_governor(tolerant);
  DeltaGovernor move_governor(tight);
  const std::vector<GovernorSourceSample> first = {Sample(1, 1000, 1.0)};
  const std::vector<GovernorSourceSample> second = {Sample(1, 1800, 1.0)};
  ASSERT_TRUE(hold_governor.PlanEpoch(first).ok());
  ASSERT_TRUE(move_governor.PlanEpoch(first).ok());
  auto held = hold_governor.PlanEpoch(second);
  auto moved = move_governor.PlanEpoch(second);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(held.value().changes.empty());
  EXPECT_EQ(moved.value().changes.size(), 1u);
  // The held source still records its installed delta for the next
  // epoch's slew window.
  EXPECT_EQ(hold_governor.states().at(1).held_delta, 1.0);
}

TEST(GovernorPlanTest, DeadBandYieldsToOverspendingWidening) {
  // The budget is a ceiling, not a setpoint: while the fleet spends
  // above it, widening moves install even inside a generous dead band
  // — otherwise the settled spend camps a band-width over the budget.
  GovernorOptions options = MathOptions(100.0);
  options.dead_band = 0.5;
  DeltaGovernor governor(options);
  ASSERT_TRUE(governor.PlanEpoch({Sample(1, 1000, 1.0)}).ok());
  // Traffic doubles: spend 200 vs budget 100, target inside the band.
  auto widened = governor.PlanEpoch({Sample(1, 3000, 1.0)});
  ASSERT_TRUE(widened.ok()) << widened.status().message();
  EXPECT_GT(widened.value().spend, 100.0);
  ASSERT_EQ(widened.value().changes.size(), 1u);
  EXPECT_GT(widened.value().changes[0].delta, 1.0);
}

TEST(GovernorPlanTest, UnhealthySourceIsFrozenAndHeld) {
  DeltaGovernor governor(MathOptions(100.0));
  ASSERT_TRUE(governor.PlanEpoch({Sample(1, 1000, 1.0)}).ok());
  const double intensity_before = governor.states().at(1).intensity;

  // A resync storm balloons the counters; the governor must not let
  // the storm into the fit, must not retune the source, and must
  // report the freeze exactly once.
  auto frozen = governor.PlanEpoch({Sample(1, 50000, 1.0, true)});
  ASSERT_TRUE(frozen.ok()) << frozen.status().message();
  EXPECT_EQ(frozen.value().frozen, 1);
  ASSERT_EQ(frozen.value().newly_frozen.size(), 1u);
  EXPECT_EQ(frozen.value().newly_frozen[0], 1);
  EXPECT_TRUE(frozen.value().changes.empty());
  EXPECT_EQ(governor.states().at(1).intensity, intensity_before);
  EXPECT_NEAR(governor.states().at(1).ewma_bytes, 100.0, 1e-9);

  auto still = governor.PlanEpoch({Sample(1, 52000, 1.0, true)});
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value().frozen, 1);
  EXPECT_TRUE(still.value().newly_frozen.empty());  // not newly frozen

  // Anti-windup: the counters kept advancing during the freeze, so the
  // first healthy epoch measures only the healthy traffic after the
  // storm — 1000 bytes over 10 ticks, not the 51000-byte backlog.
  auto thawed = governor.PlanEpoch({Sample(1, 53000, 1.0)});
  ASSERT_TRUE(thawed.ok());
  EXPECT_EQ(thawed.value().frozen, 0);
  EXPECT_NEAR(governor.states().at(1).ewma_bytes, 100.0, 1e-9);
}

TEST(GovernorPlanTest, FrozenSpendIsReservedOffTheBudget) {
  // Source 1 spends 40 bytes/tick, source 2 spends 20, budget 120.
  // When source 1 freezes, its held 40 is reserved off the top, so
  // source 2 alone is allocated the remaining 80: with intensity 20
  // the single-source optimum spends all of it, delta = sqrt(20/80).
  DeltaGovernor governor(MathOptions(120.0));
  ASSERT_TRUE(
      governor
          .PlanEpoch({Sample(1, 400, 1.0), Sample(2, 200, 1.0)})
          .ok());
  EXPECT_NEAR(governor.states().at(1).ewma_bytes, 40.0, 1e-9);
  auto result =
      governor.PlanEpoch({Sample(1, 800, 1.0, true), Sample(2, 400, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().frozen, 1);
  ASSERT_EQ(result.value().changes.size(), 1u);
  EXPECT_EQ(result.value().changes[0].source_id, 2);
  EXPECT_NEAR(result.value().changes[0].delta, 0.5, 1e-9);
}

TEST(GovernorPlanTest, SustainedOverloadInflatesProportionally) {
  // The frozen source alone spends 3x the budget: every healthy source
  // inflates to its slew-limited ceiling — proportional degradation,
  // no oscillation — and keeps widening in later epochs.
  GovernorOptions options = MathOptions(100.0);
  options.max_step_ratio = 2.0;
  DeltaGovernor governor(options);
  ASSERT_TRUE(
      governor
          .PlanEpoch({Sample(1, 3000, 1.0), Sample(2, 200, 1.0)})
          .ok());
  auto result =
      governor.PlanEpoch({Sample(1, 6000, 1.0, true), Sample(2, 400, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GT(result.value().overshoot, 0.05);
  ASSERT_EQ(result.value().changes.size(), 1u);
  EXPECT_EQ(result.value().changes[0].source_id, 2);
  EXPECT_NEAR(result.value().changes[0].delta, 2.0, 1e-12);  // the hi bound
  auto next =
      governor.PlanEpoch({Sample(1, 9000, 2.0, true), Sample(2, 500, 2.0)});
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next.value().changes.size(), 1u);
  EXPECT_NEAR(next.value().changes[0].delta, 4.0, 1e-12);
}

TEST(GovernorPlanTest, CeilingCapsInflation) {
  GovernorOptions options = MathOptions(1e-6);  // hopeless budget
  options.max_step_ratio = 1e9;
  options.delta_ceiling = 50.0;
  DeltaGovernor governor(options);
  auto result = governor.PlanEpoch({Sample(1, 100000, 1.0)});
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().changes.size(), 1u);
  EXPECT_NEAR(result.value().changes[0].delta, 50.0, 1e-12);
}

TEST(GovernorPlanTest, AbsentSourceKeepsItsState) {
  DeltaGovernor governor(MathOptions(100.0));
  ASSERT_TRUE(
      governor
          .PlanEpoch({Sample(1, 1000, 1.0), Sample(2, 500, 1.0)})
          .ok());
  const auto state_before = governor.states().at(2);
  ASSERT_TRUE(governor.PlanEpoch({Sample(1, 2000, 1.0)}).ok());
  EXPECT_TRUE(governor.states().at(2) == state_before);
}

TEST(GovernorStateTest, ImportedStateContinuesIdentically) {
  // Two governors, one seeded from the other's exported state, must
  // plan bit-identical epochs from then on (the snapshot-v3 contract).
  GovernorOptions options = MathOptions(90.0);
  options.ewma_alpha = 0.3;
  options.dead_band = 0.1;
  options.max_step_ratio = 2.0;
  DeltaGovernor original(options);
  ASSERT_TRUE(
      original
          .PlanEpoch({Sample(1, 700, 1.0), Sample(2, 1400, 2.0)})
          .ok());
  ASSERT_TRUE(
      original
          .PlanEpoch({Sample(1, 1500, 1.0), Sample(2, 2700, 2.0, true)})
          .ok());

  DeltaGovernor imported(options);
  imported.ImportState(original.epochs(), original.states());
  EXPECT_EQ(imported.epochs(), 2);

  const std::vector<GovernorSourceSample> epoch3 = {
      Sample(1, 2600, 1.0), Sample(2, 4100, 2.0)};
  auto a = original.PlanEpoch(epoch3);
  auto b = imported.PlanEpoch(epoch3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().epoch, b.value().epoch);
  EXPECT_EQ(a.value().spend, b.value().spend);
  EXPECT_EQ(a.value().frozen, b.value().frozen);
  ASSERT_EQ(a.value().changes.size(), b.value().changes.size());
  for (size_t i = 0; i < a.value().changes.size(); ++i) {
    EXPECT_EQ(a.value().changes[i].source_id,
              b.value().changes[i].source_id);
    EXPECT_EQ(a.value().changes[i].delta, b.value().changes[i].delta);
    EXPECT_EQ(a.value().changes[i].previous,
              b.value().changes[i].previous);
  }
  EXPECT_TRUE(original.states() == imported.states());
}

}  // namespace
}  // namespace dkf
