// Integration chaos harness for the delta governor (docs/governor.md):
// the full fault cocktail from dsms/chaos_test.cc — Bernoulli +
// Gilbert–Elliott loss, delay with reordering, outage windows, ACK
// loss, payload corruption — runs under a fleet-wide bytes/tick budget.
// The governor must (a) plan the exact same delta schedule at any shard
// count, (b) hold the budget with bounded overshoot once settled,
// (c) move every delta within its floor/ceiling/slew bounds, (d) freeze
// storm-hit sources instead of chasing them, and (e) spill batch lanes
// at most once per source per epoch when riding the fleet engine.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

constexpr int kNumSources = 12;
constexpr int64_t kTicks = 512;
constexpr int64_t kEpochTicks = 16;
/// Bytes/tick the fleet is held to. A scalar update is 29 bytes, so 12
/// unsuppressed sources demand ~348 bytes/tick plus protocol overhead;
/// the budget forces real suppression without starving the protocol.
constexpr double kBudget = 150.0;
/// First epoch the sustained-overshoot bound is enforced from: the
/// fault cocktail stays active until tick 280 (epoch ~17) and the spend
/// EWMA needs a few epochs to forget the final resync storms.
constexpr int64_t kSettleEpochs = 26;

StateModel ScalarModel(double process_variance) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ChannelOptions ChaosChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.1;
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.outages.push_back(OutageWindow{/*start=*/220, /*end=*/232});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = 280;
  options.fault = fault;
  return options;
}

GovernorOptions ChaosGovernor() {
  GovernorOptions governor;
  governor.enabled = true;
  governor.epoch_ticks = kEpochTicks;
  governor.budget_bytes_per_tick = kBudget;
  governor.delta_floor = 0.05;
  governor.delta_ceiling = 64.0;
  governor.max_step_ratio = 2.0;
  governor.dead_band = 0.10;
  return governor;
}

ShardedStreamEngineOptions EngineOptions(int shards,
                                         bool batched_fleet = false) {
  ShardedStreamEngineOptions options;
  options.num_shards = shards;
  options.channel = ChaosChannel();
  options.protocol.heartbeat_interval = 3;
  options.protocol.staleness_budget = 5;
  options.protocol.resync_burst_retries = 4;
  options.protocol.resync_retry_backoff = 6;
  options.governor = ChaosGovernor();
  options.batched_fleet = batched_fleet;
  return options;
}

void InstallWorkload(ShardedStreamEngine& engine) {
  ObsOptions obs;
  obs.ring_capacity = 1 << 18;
  ASSERT_TRUE(engine.EnableTracing(obs).ok());
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        engine.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 0.5 + 0.25 * (id % 3);
    ASSERT_TRUE(engine.SubmitQuery(query).ok());
  }
}

/// The shared reading schedule: random walks, with every source's drift
/// doubling mid-run so the governor sees demand rise.
const std::vector<std::map<int, Vector>>& Readings() {
  static const std::vector<std::map<int, Vector>>* const readings = [] {
    auto* schedule = new std::vector<std::map<int, Vector>>();
    Rng rng(91);
    std::vector<double> values(kNumSources + 1, 0.0);
    for (int64_t t = 0; t < kTicks; ++t) {
      const double surge = t >= kTicks / 2 ? 2.0 : 1.0;
      std::map<int, Vector> tick;
      for (int id = 1; id <= kNumSources; ++id) {
        values[static_cast<size_t>(id)] +=
            rng.Gaussian(0.05 * (id % 3), 0.7 * surge);
        tick[id] = Vector{values[static_cast<size_t>(id)]};
      }
      schedule->push_back(std::move(tick));
    }
    return schedule;
  }();
  return *readings;
}

void RunAll(ShardedStreamEngine& engine) {
  for (int64_t t = 0; t < kTicks; ++t) {
    ASSERT_TRUE(engine.ProcessTick(Readings()[static_cast<size_t>(t)]).ok())
        << "tick " << t;
  }
}

bool IsGovernorKind(TraceEventKind kind) {
  return kind == TraceEventKind::kGovernorEpoch ||
         kind == TraceEventKind::kDeltaRaise ||
         kind == TraceEventKind::kDeltaLower ||
         kind == TraceEventKind::kGovernorFreeze;
}

std::vector<TraceEvent> GovernorTrace(const ShardedStreamEngine& engine) {
  std::vector<TraceEvent> events;
  for (const TraceEvent& event : engine.MergedTrace()) {
    if (IsGovernorKind(event.kind)) events.push_back(event);
  }
  return events;
}

TEST(GovernorChaosTest, DeltaScheduleIsShardCountInvariant) {
  // The 1-shard run is the reference; 2/4/8 shards must plan the same
  // epochs, install the same deltas, emit the same merged trace, and
  // fold to the same metrics snapshot, bit for bit.
  ShardedStreamEngine reference(EngineOptions(1));
  InstallWorkload(reference);
  RunAll(reference);
  const std::vector<TraceEvent> reference_trace = reference.MergedTrace();
  const MetricsRegistry reference_metrics = reference.MetricsSnapshot();
  ASSERT_EQ(reference.shard_sink(0)->dropped_events(), 0)
      << "ring too small for exact trace comparisons";
  EXPECT_FALSE(GovernorTrace(reference).empty());

  for (int shards : {2, 4, 8}) {
    ShardedStreamEngine engine(EngineOptions(shards));
    InstallWorkload(engine);
    RunAll(engine);
    for (int id = 1; id <= kNumSources; ++id) {
      EXPECT_EQ(engine.source_delta(id).value(),
                reference.source_delta(id).value())
          << "shards=" << shards << " source " << id;
    }
    EXPECT_TRUE(engine.MergedTrace() == reference_trace)
        << "shards=" << shards << ": merged trace differs";
    EXPECT_TRUE(engine.MetricsSnapshot() == reference_metrics)
        << "shards=" << shards << ": metrics snapshot differs";
  }
}

TEST(GovernorChaosTest, BudgetHoldsThroughChaosWithBoundedMoves) {
  ShardedStreamEngine engine(EngineOptions(4));
  InstallWorkload(engine);
  // Drive the run by hand so the wire-rate check below can window on
  // the settled tail instead of averaging over storms and cold start.
  constexpr int64_t kWindowStart = kSettleEpochs * kEpochTicks;
  int64_t window_start_bytes = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    if (t == kWindowStart) window_start_bytes = engine.uplink_traffic().bytes;
    ASSERT_TRUE(engine.ProcessTick(Readings()[static_cast<size_t>(t)]).ok())
        << "tick " << t;
  }

  const GovernorOptions& governor = engine.governor()->options();
  int64_t epochs_seen = 0;
  int64_t freezes = 0;
  for (const TraceEvent& event : GovernorTrace(engine)) {
    switch (event.kind) {
      case TraceEventKind::kGovernorEpoch: {
        ++epochs_seen;
        const double spend = event.value;
        const double budget = event.aux;
        EXPECT_EQ(budget, kBudget);
        if (event.detail >= kSettleEpochs) {
          EXPECT_LE(spend, budget * 1.05)
              << "epoch " << event.detail << " overshoots settled budget";
        }
        break;
      }
      case TraceEventKind::kDeltaRaise:
      case TraceEventKind::kDeltaLower: {
        // Every installed move respects the hard bounds and the
        // per-epoch slew limit.
        EXPECT_GE(event.value, governor.delta_floor);
        EXPECT_LE(event.value, governor.delta_ceiling);
        const double ratio = event.value / event.aux;
        EXPECT_LE(ratio, governor.max_step_ratio * (1.0 + 1e-12));
        EXPECT_GE(ratio, 1.0 / governor.max_step_ratio * (1.0 - 1e-12));
        // Dead band: a tightening move that installs must exceed the
        // band. Widening moves may install inside it — the band yields
        // whenever the fleet spends above budget, so small upward
        // corrections are never suppressed.
        if (event.kind == TraceEventKind::kDeltaLower) {
          EXPECT_GT(std::abs(event.value - event.aux),
                    governor.dead_band * event.aux);
        }
        break;
      }
      case TraceEventKind::kGovernorFreeze:
        ++freezes;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(epochs_seen, kTicks / kEpochTicks);
  EXPECT_EQ(engine.governor()->epochs(), kTicks / kEpochTicks);
  // The outage windows must have driven at least one source into the
  // frozen state — otherwise this harness isn't testing the storm path.
  EXPECT_GT(freezes, 0);

  // The governor's own estimate settles under the budget; check the
  // wire agrees: actual bytes/tick over the settled window stays within
  // the EWMA tolerance of the budget.
  const double actual_rate =
      static_cast<double>(engine.uplink_traffic().bytes -
                          window_start_bytes) /
      static_cast<double>(kTicks - kWindowStart);
  EXPECT_LE(actual_rate, kBudget * 1.15);

  // Governor gauges ride the metrics snapshot.
  const MetricsRegistry metrics = engine.MetricsSnapshot();
  const auto& gauges = metrics.gauges();
  ASSERT_TRUE(gauges.contains("governor.budget_bytes_per_tick"));
  EXPECT_EQ(gauges.at("governor.budget_bytes_per_tick"), kBudget);
  ASSERT_TRUE(gauges.contains("governor.spend_bytes_per_tick"));
  EXPECT_LE(gauges.at("governor.spend_bytes_per_tick"), kBudget * 1.05);
  ASSERT_TRUE(gauges.contains("governor.overshoot"));
  ASSERT_TRUE(gauges.contains("governor.frozen"));
}

TEST(GovernorChaosTest, UplinkGaugesAreShardInvariant) {
  // Per-source uplink gauges (satellite of the governor work): present
  // for every source and identical across shard layouts.
  ShardedStreamEngine one(EngineOptions(1));
  InstallWorkload(one);
  RunAll(one);
  ShardedStreamEngine four(EngineOptions(4));
  InstallWorkload(four);
  RunAll(four);
  const MetricsRegistry metrics_one = one.MetricsSnapshot();
  const MetricsRegistry metrics_four = four.MetricsSnapshot();
  const auto& gauges_one = metrics_one.gauges();
  const auto& gauges_four = metrics_four.gauges();
  for (int id = 1; id <= kNumSources; ++id) {
    const std::string bytes_key = "uplink.bytes." + std::to_string(id);
    const std::string rate_key =
        "uplink.updates_rate_ewma." + std::to_string(id);
    ASSERT_TRUE(gauges_one.contains(bytes_key)) << bytes_key;
    ASSERT_TRUE(gauges_one.contains(rate_key)) << rate_key;
    EXPECT_EQ(gauges_one.at(bytes_key), gauges_four.at(bytes_key)) << id;
    EXPECT_EQ(gauges_one.at(rate_key), gauges_four.at(rate_key)) << id;
    EXPECT_GT(gauges_one.at(bytes_key), 0.0) << id;
  }
}

TEST(GovernorChaosTest, BatchedFleetRunsBitIdenticalUnderGovernor) {
  // Riding the batched fleet engine, the governed run must stay
  // bit-identical to the per-source path: same installed deltas, same
  // answers, same merged trace (governor events included).
  ShardedStreamEngine plain(EngineOptions(2, /*batched_fleet=*/false));
  InstallWorkload(plain);
  RunAll(plain);
  ShardedStreamEngine batched(EngineOptions(2, /*batched_fleet=*/true));
  InstallWorkload(batched);
  RunAll(batched);

  for (int id = 1; id <= kNumSources; ++id) {
    EXPECT_EQ(batched.source_delta(id).value(),
              plain.source_delta(id).value())
        << id;
    EXPECT_EQ(batched.Answer(id).value()[0], plain.Answer(id).value()[0])
        << id;
  }
  EXPECT_TRUE(batched.MergedTrace() == plain.MergedTrace())
      << "fleet-engine governor run diverged from the per-source path";
}

TEST(GovernorChurnTest, BatchedReconfigureSpillsEachLaneAtMostOnce) {
  // The governor's installation path, pinned on a clean channel where
  // the only spills are the reconfigure's own: one batched
  // ReconfigureSources call spills each resident changed lane exactly
  // once, re-issuing identical deltas spills nothing, and a bad batch
  // installs nothing at all.
  constexpr int kFleet = 8;
  ShardedStreamEngineOptions options;
  options.num_shards = 2;
  options.channel.seed = 7;
  options.channel.per_source_rng = true;
  options.batched_fleet = true;
  ShardedStreamEngine engine(options);
  for (int id = 1; id <= kFleet; ++id) {
    ASSERT_TRUE(engine.RegisterSource(id, ScalarModel(0.05)).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 3.0;
    ASSERT_TRUE(engine.SubmitQuery(query).ok());
  }
  // One step onto a per-source level, then flat: every source settles
  // into suppression and its lane absorbs.
  std::map<int, Vector> readings;
  for (int id = 1; id <= kFleet; ++id) {
    readings[id] = Vector{5.0 + static_cast<double>(id)};
  }
  int64_t warmup = 0;
  while (engine.fleet_resident_count() < static_cast<size_t>(kFleet)) {
    ASSERT_LT(warmup++, 64) << "fleet never went fully resident";
    ASSERT_TRUE(engine.ProcessTick(readings).ok());
  }
  const int64_t spills_before = engine.fleet_spill_count();
  const int64_t controls_before = engine.control_messages();

  const std::vector<std::pair<int, double>> installs = {
      {2, 2.5}, {4, 2.5}, {5, 2.5}, {7, 2.5}};
  ASSERT_TRUE(engine.ReconfigureSources(installs).ok());
  EXPECT_EQ(engine.fleet_spill_count() - spills_before, 4);
  EXPECT_EQ(engine.control_messages() - controls_before, 4);
  for (const auto& [id, delta] : installs) {
    EXPECT_EQ(engine.source_delta(id).value(), delta) << id;
  }

  // Idempotent: identical deltas are skipped outright — no spill, no
  // control message (this is what makes cohort-stable governor epochs
  // free on the batched path).
  ASSERT_TRUE(engine.ReconfigureSources(installs).ok());
  EXPECT_EQ(engine.fleet_spill_count() - spills_before, 4);
  EXPECT_EQ(engine.control_messages() - controls_before, 4);

  // Validate-before-touch: one unknown id fails the whole batch with
  // nothing installed.
  const double delta_before = engine.source_delta(1).value();
  EXPECT_FALSE(
      engine.ReconfigureSources({{1, 9.0}, {kFleet + 99, 1.0}}).ok());
  EXPECT_EQ(engine.source_delta(1).value(), delta_before);
  EXPECT_EQ(engine.fleet_spill_count() - spills_before, 4);
}

}  // namespace
}  // namespace dkf
