// Golden tests for the serving front-end: a canonical small run pins
// the exact notification stream (the format and delivery order are an
// API — any change must show up here as a reviewed golden update), the
// sharded engine's merged notification stream is bit-identical to the
// sequential manager's at every shard count — including a mid-run
// attach and an aggregate spanning shards — and the serve trace events
// replay into the same counters the serve stats report.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "runtime/sharded_engine.h"
#include "serve/subscription.h"

namespace dkf {
namespace {

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

std::string Render(const std::vector<NotificationBatch>& batches) {
  std::string out;
  for (const NotificationBatch& batch : batches) {
    for (const Notification& notification : batch.notifications) {
      out += FormatNotification(notification);
      out += '\n';
    }
  }
  return out;
}

Subscription MakeSub(int64_t id, SubscriptionKind kind, int target, double lo,
                     double hi, double ceiling = 0.0) {
  Subscription sub;
  sub.id = id;
  sub.kind = kind;
  if (kind == SubscriptionKind::kAggregate) {
    sub.aggregate_id = target;
  } else {
    sub.source_id = target;
  }
  sub.lo = lo;
  sub.hi = hi;
  sub.uncertainty_ceiling = ceiling;
  return sub;
}

// --- 1. The pinned canonical run: one scalar source on a perfect
// --- channel with a step change at tick 4 (the same drive the trace
// --- golden pins), watched by a point and a band subscription.

TEST(ServeGoldenTest, CanonicalRunEmitsPinnedNotificationStream) {
  StreamManagerOptions options;
  options.protocol.heartbeat_interval = 3;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterSource(1, ScalarModel()).ok());
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = 0.8;
  ASSERT_TRUE(manager.SubmitQuery(query).ok());
  ASSERT_TRUE(
      manager.Subscribe(MakeSub(1, SubscriptionKind::kPoint, 1, 0, 0)).ok());
  ASSERT_TRUE(
      manager.Subscribe(MakeSub(2, SubscriptionKind::kBandAlert, 1, 0.5, 3.0))
          .ok());

  const double readings[] = {0.0, 0.0, 0.0, 0.0, 2.5,
                             2.5, 2.5, 2.5, 2.5, 2.5};
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(manager.ProcessTick({{1, Vector{readings[t]}}}).ok());
  }

  // One "<step> <source> <subscription> <kind> <value> <aux>" line per
  // notification; values are shortest-round-trip doubles, so this pins
  // the served answers (the server-side filter estimates, not the raw
  // readings) bit-for-bit: the attach-time initials at step 0 (answer
  // 0, outside the band), point deliveries every tick tracking the
  // server answer — frozen while updates are suppressed — and the band
  // entry when the step change's transmitted update pushes the answer
  // above 0.5 at tick 4. Same-step batches coalesce, so tick 0's value
  // delivery sorts between the two initials (subscription order).
  const std::string kGolden =
      "0 1 1 initial 0 0\n"
      "0 1 1 value 0 0\n"
      "0 1 2 initial 0 0\n"
      "1 1 1 value 0 0\n"
      "2 1 1 value 0 0\n"
      "3 1 1 value 0 0\n"
      "4 1 1 value 2.49995195633792 0\n"
      "4 1 2 band_enter 2.49995195633792 0\n"
      "5 1 1 value 2.9808690137597047 0\n"
      "6 1 1 value 2.502973965832685 0\n"
      "7 1 1 value 2.508031000195561 0\n"
      "8 1 1 value 2.5130880345584368 0\n"
      "9 1 1 value 2.5181450689213127 0\n";
  EXPECT_EQ(Render(manager.DrainNotifications()), kGolden);
  const ServeStats stats = manager.serve_stats();
  EXPECT_EQ(stats.subscriptions, 2);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_GE(stats.touched, stats.affected);
}

// --- 2. Shard invariance under a lossy channel, with an aggregate
// --- spanning shards and a mid-run attach.

constexpr int kNumSources = 9;
constexpr int kAggregateId = 100;
constexpr int kTicks = 160;
constexpr int kMidDrainTick = 60;

ChannelOptions LossyChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.25;
  options.per_source_rng = true;
  return options;
}

ProtocolOptions ServeProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 4;
  protocol.staleness_budget = 6;
  return protocol;
}

template <typename System>
void InstallWorkload(System& system) {
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        system.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 3))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.0 + 0.5 * (id % 4);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
  AggregateQuery aggregate;
  aggregate.id = kAggregateId;
  aggregate.source_ids = {2, 5, 8};  // lands on distinct shards at 4+
  aggregate.precision = 2.0;
  ASSERT_TRUE(system.SubmitAggregateQuery(aggregate).ok());

  ASSERT_TRUE(
      system.Subscribe(MakeSub(1, SubscriptionKind::kPoint, 1, 0, 0)).ok());
  ASSERT_TRUE(
      system.Subscribe(MakeSub(2, SubscriptionKind::kBandAlert, 2, -2, 2, 0.5))
          .ok());
  ASSERT_TRUE(
      system.Subscribe(MakeSub(3, SubscriptionKind::kBandAlert, 3, -1.5, 1.5))
          .ok());
  ASSERT_TRUE(
      system.Subscribe(MakeSub(4, SubscriptionKind::kBandAlert, 7, 0, 3))
          .ok());
  ASSERT_TRUE(
      system.Subscribe(MakeSub(5, SubscriptionKind::kRangePredicate, 5, -1, 1))
          .ok());
  ASSERT_TRUE(
      system.Subscribe(
                MakeSub(6, SubscriptionKind::kAggregate, kAggregateId, 0, 0))
          .ok());
}

template <typename System>
void Drive(System& system, int from, int to, std::vector<double>* values) {
  Rng rng(19 + from);
  for (int t = from; t < to; ++t) {
    std::map<int, Vector> readings;
    for (int id = 1; id <= kNumSources; ++id) {
      (*values)[static_cast<size_t>(id)] += rng.Gaussian(0.04 * (id % 3), 0.7);
      readings[id] = Vector{(*values)[static_cast<size_t>(id)]};
    }
    ASSERT_TRUE(system.ProcessTick(readings).ok()) << "tick " << t;
  }
}

Subscription LateBand() {
  return MakeSub(7, SubscriptionKind::kBandAlert, 9, -3, 3);
}

TEST(ServeGoldenTest, NotificationStreamIsBitIdenticalAcrossShardCounts) {
  // Reference: the sequential manager, drained mid-run (so batching
  // boundaries are exercised) with a subscription attached between the
  // two segments.
  StreamManagerOptions manager_options;
  manager_options.channel = LossyChannel();
  manager_options.protocol = ServeProtocol();
  StreamManager manager(manager_options);
  InstallWorkload(manager);
  std::vector<double> manager_values(kNumSources + 1, 0.0);
  Drive(manager, 0, kMidDrainTick, &manager_values);
  const std::string early = Render(manager.DrainNotifications());
  ASSERT_TRUE(manager.Subscribe(LateBand()).ok());
  Drive(manager, kMidDrainTick, kTicks, &manager_values);
  const std::string late = Render(manager.DrainNotifications());
  ASSERT_FALSE(early.empty());
  ASSERT_FALSE(late.empty());
  const ServeStats reference_stats = manager.serve_stats();
  EXPECT_GT(reference_stats.notifications, 0);
  EXPECT_EQ(reference_stats.dropped, 0);

  for (int shards : {1, 2, 4, 8}) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = LossyChannel();
    options.protocol = ServeProtocol();
    ShardedStreamEngine engine(options);
    InstallWorkload(engine);
    std::vector<double> values(kNumSources + 1, 0.0);
    Drive(engine, 0, kMidDrainTick, &values);
    EXPECT_EQ(Render(engine.DrainNotifications()), early)
        << "shards=" << shards;
    ASSERT_TRUE(engine.Subscribe(LateBand()).ok());
    Drive(engine, kMidDrainTick, kTicks, &values);
    EXPECT_EQ(Render(engine.DrainNotifications()), late)
        << "shards=" << shards;

    const ServeStats stats = engine.serve_stats();
    EXPECT_EQ(stats.notifications, reference_stats.notifications)
        << "shards=" << shards;
    EXPECT_EQ(stats.affected, reference_stats.affected)
        << "shards=" << shards;
    EXPECT_EQ(stats.dropped, 0) << "shards=" << shards;
    EXPECT_EQ(engine.num_subscriptions(), manager.num_subscriptions());
  }
}

// --- 3. Serve trace events are wired into the observability layer and
// --- replay into counters consistent with the serve stats.

TEST(ServeGoldenTest, ServeTraceReplaysConsistentWithStats) {
#if !DKF_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (DKF_OBS=OFF)";
#endif
  ShardedStreamEngineOptions options;
  options.num_shards = 4;
  options.channel = LossyChannel();
  options.protocol = ServeProtocol();
  ShardedStreamEngine engine(options);
  ASSERT_TRUE(engine.EnableTracing().ok());
  InstallWorkload(engine);
  std::vector<double> values(kNumSources + 1, 0.0);
  Drive(engine, 0, 100, &values);

  const std::vector<TraceEvent> trace = engine.MergedTrace();
  int64_t subscribes = 0;
  int64_t notifies = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind == TraceEventKind::kSubscribe) ++subscribes;
    if (event.kind == TraceEventKind::kNotify) ++notifies;
  }
  EXPECT_EQ(subscribes, 6);  // one per InstallWorkload subscription
  EXPECT_EQ(notifies, engine.serve_stats().notifications);

  MetricsRegistry replayed;
  ReplayTrace(trace, &replayed);
  EXPECT_EQ(replayed.counter("trace.subscribe"), subscribes);
  EXPECT_EQ(replayed.counter("trace.notify"), notifies);
  EXPECT_EQ(replayed.counter("trace.notify_drop"), 0);
}

}  // namespace
}  // namespace dkf
