// Unit tests for the serving front-end in isolation: subscription
// validation, the fan-out index (point lists, interval index,
// uncertainty cursor, aggregate members), delivery-order and batching
// semantics, backpressure eviction, and the checkpoint hooks. The
// engine is driven against a fake answer source so every notification
// is hand-checkable.

#include <limits>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "serve/interval_index.h"
#include "serve/subscription.h"
#include "serve/subscription_engine.h"

namespace dkf {
namespace {

class FakeAnswers final : public ServeAnswerSource {
 public:
  Result<double> SourceValue(int source_id) const override {
    auto it = values.find(source_id);
    if (it == values.end()) {
      return Status::NotFound(StrFormat("source %d", source_id));
    }
    return it->second;
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto it = variances.find(source_id);
    if (it == variances.end()) return 0.0;
    return it->second;
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    auto it = aggregates.find(aggregate_id);
    if (it == aggregates.end()) {
      return Status::NotFound(StrFormat("aggregate %d", aggregate_id));
    }
    return it->second;
  }

  std::map<int, double> values;
  std::map<int, double> variances;
  std::map<int, double> aggregates;
};

Subscription MakePoint(int64_t id, int source_id) {
  Subscription sub;
  sub.id = id;
  sub.kind = SubscriptionKind::kPoint;
  sub.source_id = source_id;
  return sub;
}

Subscription MakeBand(int64_t id, int source_id, double lo, double hi,
                      double ceiling = 0.0) {
  Subscription sub;
  sub.id = id;
  sub.kind = SubscriptionKind::kBandAlert;
  sub.source_id = source_id;
  sub.lo = lo;
  sub.hi = hi;
  sub.uncertainty_ceiling = ceiling;
  return sub;
}

Subscription MakeRange(int64_t id, int source_id, double lo, double hi) {
  Subscription sub;
  sub.id = id;
  sub.kind = SubscriptionKind::kRangePredicate;
  sub.source_id = source_id;
  sub.lo = lo;
  sub.hi = hi;
  return sub;
}

Subscription MakeAggregateSub(int64_t id, int aggregate_id) {
  Subscription sub;
  sub.id = id;
  sub.kind = SubscriptionKind::kAggregate;
  sub.aggregate_id = aggregate_id;
  return sub;
}

/// Flattens the drained batches into formatted lines for compact
/// assertions.
std::vector<std::string> Lines(const std::vector<NotificationBatch>& batches) {
  std::vector<std::string> lines;
  for (const NotificationBatch& batch : batches) {
    for (const Notification& notification : batch.notifications) {
      lines.push_back(FormatNotification(notification));
    }
  }
  return lines;
}

TEST(SubscriptionValidationTest, RejectsMalformedSubscriptions) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[1] = 0.0;
  answers.aggregates[7] = 0.0;

  EXPECT_EQ(engine.Subscribe(MakePoint(-1, 1), 0, answers).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Subscribe(MakePoint(1, -3), 0, answers).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Subscribe(MakeBand(1, 1, 2.0, -2.0), 0, answers).code(),
            StatusCode::kInvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.Subscribe(MakeBand(1, 1, nan, 1.0), 0, answers).code(),
            StatusCode::kInvalidArgument);

  Subscription ceiling_on_point = MakePoint(1, 1);
  ceiling_on_point.uncertainty_ceiling = 0.5;
  EXPECT_EQ(engine.Subscribe(ceiling_on_point, 0, answers).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.Subscribe(MakeAggregateSub(1, 7), 0, answers).code(),
            StatusCode::kInvalidArgument);  // no member sources
  EXPECT_EQ(engine.Subscribe(MakePoint(1, 1), 0, answers, {1, 2}).code(),
            StatusCode::kInvalidArgument);  // members on a point sub

  Subscription bad_kind = MakePoint(1, 1);
  bad_kind.kind = SubscriptionKind::kCount;
  EXPECT_EQ(engine.Subscribe(bad_kind, 0, answers).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(engine.Subscribe(MakePoint(1, 1), 0, answers).ok());
  EXPECT_EQ(engine.Subscribe(MakePoint(1, 1), 0, answers).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.num_subscriptions(), 1u);
}

TEST(SubscriptionEngineTest, PointSubscriptionDeliversEveryTick) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[4] = 1.5;
  ASSERT_TRUE(engine.Subscribe(MakePoint(10, 4), 0, answers).ok());

  ASSERT_TRUE(engine.EndTick(0, answers).ok());  // unchanged answer
  ASSERT_TRUE(engine.EndTick(1, answers).ok());  // still delivers

  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0 4 10 initial 1.5 0");
  EXPECT_EQ(lines[1], "0 4 10 value 1.5 0");
  EXPECT_EQ(lines[2], "1 4 10 value 1.5 0");
  EXPECT_EQ(engine.drained_through_step(), 1);
  EXPECT_TRUE(engine.pending().empty());
}

TEST(SubscriptionEngineTest, BandAlertFiresOnExitAndClearsOnReentry) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[2] = 0.0;
  ASSERT_TRUE(engine.Subscribe(MakeBand(5, 2, -1.0, 1.0), 3, answers).ok());

  answers.values[2] = 2.5;  // exit above
  ASSERT_TRUE(engine.EndTick(3, answers).ok());
  answers.values[2] = 2.6;  // still outside: no flip, no notification
  ASSERT_TRUE(engine.EndTick(4, answers).ok());
  answers.values[2] = 0.5;  // re-enter
  ASSERT_TRUE(engine.EndTick(5, answers).ok());

  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "3 2 5 initial 0 1");      // attached inside the band
  EXPECT_EQ(lines[1], "3 2 5 band_exit 2.5 1");  // aux = violated bound (hi)
  EXPECT_EQ(lines[2], "5 2 5 band_enter 0.5 0");
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.notifications, 3);
  EXPECT_GE(stats.touched, stats.affected);
}

TEST(SubscriptionEngineTest, UncertaintyCeilingLatchesAndClears) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[1] = 0.0;
  answers.variances[1] = 0.5;
  ASSERT_TRUE(
      engine.Subscribe(MakeBand(8, 1, -10.0, 10.0, 1.0), 0, answers).ok());

  answers.variances[1] = 2.0;  // crosses the ceiling
  ASSERT_TRUE(engine.EndTick(0, answers).ok());
  answers.variances[1] = 2.5;  // still high: latched, no repeat
  ASSERT_TRUE(engine.EndTick(1, answers).ok());
  answers.variances[1] = 1.0;  // ceiling >= variance clears (strict fire)
  ASSERT_TRUE(engine.EndTick(2, answers).ok());

  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0 1 8 initial 0 1");
  EXPECT_EQ(lines[1], "0 1 8 uncertainty_high 0 2");
  EXPECT_EQ(lines[2], "2 1 8 uncertainty_ok 0 1");
}

TEST(SubscriptionEngineTest, RangePredicateNotifiesOnEachFlip) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[3] = 5.0;
  ASSERT_TRUE(engine.Subscribe(MakeRange(2, 3, 0.0, 10.0), 0, answers).ok());

  answers.values[3] = 12.0;
  ASSERT_TRUE(engine.EndTick(0, answers).ok());
  answers.values[3] = 7.0;
  ASSERT_TRUE(engine.EndTick(1, answers).ok());

  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0 3 2 initial 5 1");
  EXPECT_EQ(lines[1], "0 3 2 predicate_false 12 0");
  EXPECT_EQ(lines[2], "1 3 2 predicate_true 7 1");
}

TEST(SubscriptionEngineTest, AggregateFansOutOnlyWhenSumMoves) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[1] = 1.0;
  answers.values[2] = 2.0;
  answers.aggregates[7] = 3.0;
  ASSERT_TRUE(
      engine.Subscribe(MakeAggregateSub(20, 7), 0, answers, {1, 2}).ok());
  ASSERT_TRUE(
      engine.Subscribe(MakeAggregateSub(21, 7), 0, answers, {1, 2}).ok());
  // A third subscriber naming different members is refused.
  EXPECT_EQ(engine.Subscribe(MakeAggregateSub(22, 7), 0, answers, {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.has_aggregate_subscriptions(7));

  // Members move but the sum is unchanged: recomputed, not delivered.
  answers.values[1] = 2.0;
  answers.values[2] = 1.0;
  ASSERT_TRUE(engine.EndTick(0, answers).ok());
  // Sum moves: every subscriber of the aggregate is notified.
  answers.values[1] = 3.0;
  answers.aggregates[7] = 4.0;
  ASSERT_TRUE(engine.EndTick(1, answers).ok());
  // No member moved: the aggregate is not even recomputed.
  ASSERT_TRUE(engine.EndTick(2, answers).ok());

  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "0 -8 20 initial 3 0");  // key = -1 - aggregate_id
  EXPECT_EQ(lines[1], "0 -8 21 initial 3 0");
  EXPECT_EQ(lines[2], "1 -8 20 aggregate_update 4 0");
  EXPECT_EQ(lines[3], "1 -8 21 aggregate_update 4 0");
}

TEST(SubscriptionEngineTest, UnsubscribeStopsDeliveryAndCleansIndex) {
  SubscriptionEngine engine;
  FakeAnswers answers;
  answers.values[1] = 0.0;
  answers.aggregates[7] = 0.0;
  ASSERT_TRUE(engine.Subscribe(MakePoint(1, 1), 0, answers).ok());
  ASSERT_TRUE(
      engine.Subscribe(MakeBand(2, 1, -1.0, 1.0, 0.5), 0, answers).ok());
  ASSERT_TRUE(engine.Subscribe(MakeAggregateSub(3, 7), 0, answers, {1}).ok());
  EXPECT_EQ(engine.num_subscriptions(), 3u);

  ASSERT_TRUE(engine.Unsubscribe(2).ok());
  ASSERT_TRUE(engine.Unsubscribe(3).ok());
  EXPECT_FALSE(engine.has_aggregate_subscriptions(7));
  EXPECT_EQ(engine.Unsubscribe(99).code(), StatusCode::kNotFound);

  (void)engine.Drain();
  answers.values[1] = 5.0;  // would have fired the band and the aggregate
  ASSERT_TRUE(engine.EndTick(0, answers).ok());
  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "0 1 1 value 5 0");

  ASSERT_TRUE(engine.Unsubscribe(1).ok());
  EXPECT_EQ(engine.num_subscriptions(), 0u);
  ASSERT_TRUE(engine.EndTick(1, answers).ok());
  EXPECT_TRUE(engine.pending().empty());
}

TEST(SubscriptionEngineTest, BackpressureEvictsOldestBatchesWhole) {
  ServeOptions options;
  options.max_buffered_notifications = 3;
  SubscriptionEngine engine(options);
  FakeAnswers answers;
  answers.values[1] = 0.0;
  ASSERT_TRUE(engine.Subscribe(MakePoint(1, 1), 0, answers).ok());

  for (int64_t t = 0; t < 6; ++t) {
    answers.values[1] = static_cast<double>(t);
    ASSERT_TRUE(engine.EndTick(t, answers).ok());
  }
  // 7 notifications entered (1 initial + 6 ticks); the cap keeps the
  // newest 3 and counts the evicted 4.
  EXPECT_EQ(engine.pending().size(), 3u);
  EXPECT_EQ(engine.stats().dropped, 4);
  const std::vector<std::string> lines = Lines(engine.Drain());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "3 1 1 value 3 0");  // the oldest ticks are gone
  EXPECT_EQ(lines[2], "5 1 1 value 5 0");
}

TEST(SubscriptionEngineTest, CheckpointHooksReproduceDelivery) {
  SubscriptionEngine original;
  FakeAnswers answers;
  answers.values[1] = 0.0;
  answers.values[2] = 3.0;
  answers.variances[1] = 0.2;
  answers.aggregates[7] = 3.0;
  ASSERT_TRUE(
      original.Subscribe(MakeBand(1, 1, -1.0, 1.0, 0.5), 0, answers).ok());
  ASSERT_TRUE(original.Subscribe(MakeRange(2, 2, 0.0, 5.0), 0, answers).ok());
  ASSERT_TRUE(
      original.Subscribe(MakeAggregateSub(3, 7), 0, answers, {1, 2}).ok());

  answers.values[1] = 2.0;     // band exit
  answers.variances[1] = 0.9;  // ceiling crossed
  answers.aggregates[7] = 5.0;
  ASSERT_TRUE(original.EndTick(0, answers).ok());
  (void)original.Drain();
  answers.values[2] = 6.0;  // predicate flips false; aggregate moves
  answers.aggregates[7] = 8.0;
  ASSERT_TRUE(original.EndTick(1, answers).ok());

  // Clone via the checkpoint hooks at the tick-1 boundary.
  SubscriptionEngine restored(original.options());
  for (const SubscriptionState& state : original.ExportSubscriptions()) {
    const std::vector<int> members =
        state.spec.kind == SubscriptionKind::kAggregate ? std::vector<int>{1, 2}
                                                        : std::vector<int>{};
    ASSERT_TRUE(restored.ImportSubscription(state, members).ok());
  }
  restored.RestorePending(
      std::vector<NotificationBatch>(original.pending().begin(),
                                     original.pending().end()),
      original.drained_through_step());
  const ServeStats counters = original.stats();
  restored.RestoreStats(counters);
  ASSERT_TRUE(restored.RefreshCaches(answers).ok());
  EXPECT_EQ(restored.num_subscriptions(), 3u);
  EXPECT_EQ(restored.drained_through_step(), original.drained_through_step());
  EXPECT_EQ(restored.stats().notifications, counters.notifications);

  // Both copies must now deliver identically, including the band
  // re-entry diff against the restored caches and the ceiling latch.
  answers.values[1] = 0.5;
  answers.variances[1] = 0.1;
  answers.aggregates[7] = 6.5;
  ASSERT_TRUE(original.EndTick(2, answers).ok());
  ASSERT_TRUE(restored.EndTick(2, answers).ok());
  const std::vector<std::string> original_lines = Lines(original.Drain());
  const std::vector<std::string> restored_lines = Lines(restored.Drain());
  EXPECT_EQ(original_lines, restored_lines);
  EXPECT_GE(original_lines.size(), 4u);
}

TEST(IntervalIndexTest, ChangedReturnsExactlyTheFlippedIntervals) {
  IntervalIndex index;
  EXPECT_TRUE(index.empty());
  index.Insert(1, 0.0, 1.0);
  index.Insert(2, 2.0, 3.0);
  index.Insert(3, 0.0, 5.0);
  EXPECT_FALSE(index.empty());
  EXPECT_EQ(index.size(), 3u);

  std::vector<int64_t> changed;
  index.Changed(-1.0, 0.5, &changed);  // enters [0,1] and [0,5]
  EXPECT_EQ(changed, (std::vector<int64_t>{1, 3}));
  changed.clear();
  index.Changed(0.5, 2.5, &changed);  // leaves [0,1], enters [2,3]
  EXPECT_EQ(changed, (std::vector<int64_t>{1, 2}));
  changed.clear();
  const size_t scanned = index.Changed(2.1, 2.9, &changed);  // inside both
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(scanned, 0u);

  index.Erase(2);
  changed.clear();
  index.Changed(0.5, 2.5, &changed);
  EXPECT_EQ(changed, (std::vector<int64_t>{1}));
  index.Erase(1);
  index.Erase(3);
  EXPECT_TRUE(index.empty());
}

TEST(NotificationTest, FormatAndNames) {
  EXPECT_STREQ(SubscriptionKindName(SubscriptionKind::kBandAlert),
               "band_alert");
  EXPECT_STREQ(SubscriptionKindName(SubscriptionKind::kRangePredicate),
               "range_predicate");
  EXPECT_STREQ(SubscriptionKindName(SubscriptionKind::kCount), "unknown");
  EXPECT_STREQ(NotificationKindName(NotificationKind::kUncertaintyHigh),
               "uncertainty_high");
  EXPECT_STREQ(NotificationKindName(NotificationKind::kCount), "unknown");
  Notification notification;
  notification.step = 12;
  notification.source_id = -8;
  notification.subscription_id = 4;
  notification.kind = NotificationKind::kAggregateUpdate;
  notification.value = 2.5;
  notification.aux = 0.25;
  EXPECT_EQ(FormatNotification(notification),
            "12 -8 4 aggregate_update 2.5 0.25");
}

TEST(NotificationTest, MergeCoalescesAndOrdersAcrossStreams) {
  // Two per-engine streams with overlapping steps; the merge must
  // coalesce per step and order by (source_id, subscription_id), with
  // negative (aggregate) keys first.
  Notification a;
  a.step = 1;
  a.source_id = 5;
  a.subscription_id = 2;
  a.kind = NotificationKind::kValue;
  Notification b = a;
  b.source_id = 3;
  b.subscription_id = 9;
  Notification c = a;
  c.source_id = -2;
  c.subscription_id = 1;
  c.kind = NotificationKind::kAggregateUpdate;
  Notification d = a;
  d.step = 2;

  std::vector<NotificationBatch> stream1;
  stream1.push_back(NotificationBatch{1, {a}});
  stream1.push_back(NotificationBatch{2, {d}});
  std::vector<NotificationBatch> stream2;
  stream2.push_back(NotificationBatch{1, {c, b}});

  const std::vector<NotificationBatch> merged =
      MergeNotificationBatches({stream1, stream2});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].step, 1);
  ASSERT_EQ(merged[0].notifications.size(), 3u);
  EXPECT_EQ(merged[0].notifications[0].source_id, -2);
  EXPECT_EQ(merged[0].notifications[1].source_id, 3);
  EXPECT_EQ(merged[0].notifications[2].source_id, 5);
  EXPECT_EQ(merged[1].step, 2);
  EXPECT_TRUE(MergeNotificationBatches({}).empty());
}

}  // namespace
}  // namespace dkf
