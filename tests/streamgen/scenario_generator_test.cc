#include "streamgen/scenario_generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

double SliceVariance(const TimeSeries& observed, const TimeSeries& truth,
                     size_t begin, size_t end) {
  double sum = 0.0;
  double sum_sq = 0.0;
  const double n = static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const double e = observed.value(i) - truth.value(i);
    sum += e;
    sum_sq += e * e;
  }
  const double mean = sum / n;
  return sum_sq / n - mean * mean;
}

TEST(ScenarioGeneratorTest, RegimeShiftChangesNoiseNotTruth) {
  RegimeShiftOptions options;
  auto data_or = GenerateRegimeShift(options);
  ASSERT_TRUE(data_or.ok());
  const ScenarioData& data = data_or.value();
  ASSERT_EQ(data.observed.size(), options.num_points);
  ASSERT_EQ(data.truth.size(), options.num_points);
  ASSERT_EQ(data.observed.width(), 1u);

  const double before = SliceVariance(data.observed, data.truth, 0,
                                      options.shift_point);
  const double after = SliceVariance(data.observed, data.truth,
                                     options.shift_point, options.num_points);
  // 0.05^2 = 0.0025 vs 0.8^2 = 0.64: the shift must be unmistakable.
  EXPECT_LT(before, 0.01);
  EXPECT_GT(after, 0.3);
}

TEST(ScenarioGeneratorTest, DegradingSensorNoiseRamps) {
  DegradingSensorOptions options;
  auto data_or = GenerateDegradingSensor(options);
  ASSERT_TRUE(data_or.ok());
  const ScenarioData& data = data_or.value();
  ASSERT_EQ(data.observed.size(), options.num_points);

  const size_t third = options.num_points / 3;
  const double early = SliceVariance(data.observed, data.truth, 0, third);
  const double late = SliceVariance(data.observed, data.truth,
                                    options.num_points - third,
                                    options.num_points);
  EXPECT_GT(late, 10.0 * early);
}

TEST(ScenarioGeneratorTest, QuantizedReadingsSnapToStep) {
  QuantizedReadingsOptions options;
  auto data_or = GenerateQuantizedReadings(options);
  ASSERT_TRUE(data_or.ok());
  const ScenarioData& data = data_or.value();
  ASSERT_EQ(data.observed.size(), options.num_points);
  for (size_t i = 0; i < data.observed.size(); ++i) {
    const double v = data.observed.value(i);
    const double snapped = std::round(v / options.step) * options.step;
    ASSERT_NEAR(v, snapped, 1e-12) << "sample " << i;
  }
  // The quantization error is bounded by half a step (plus pre-noise).
  for (size_t i = 0; i < data.observed.size(); ++i) {
    ASSERT_LE(std::fabs(data.observed.value(i) - data.truth.value(i)),
              options.step / 2.0 + 5.0 * options.pre_noise_stddev)
        << "sample " << i;
  }
}

TEST(ScenarioGeneratorTest, DeterministicPerSeed) {
  RegimeShiftOptions options;
  const ScenarioData a = GenerateRegimeShift(options).value();
  const ScenarioData b = GenerateRegimeShift(options).value();
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (size_t i = 0; i < a.observed.size(); ++i) {
    ASSERT_EQ(a.observed.value(i), b.observed.value(i));
  }
  options.seed = 1;
  const ScenarioData c = GenerateRegimeShift(options).value();
  bool differs = false;
  for (size_t i = 0; i < a.observed.size() && !differs; ++i) {
    differs = a.observed.value(i) != c.observed.value(i);
  }
  EXPECT_TRUE(differs);
}

TEST(ScenarioGeneratorTest, ValidatesOptions) {
  RegimeShiftOptions shift;
  shift.num_points = 0;
  EXPECT_FALSE(GenerateRegimeShift(shift).ok());
  shift = RegimeShiftOptions();
  shift.shift_point = shift.num_points + 1;
  EXPECT_FALSE(GenerateRegimeShift(shift).ok());

  DegradingSensorOptions degrade;
  degrade.stddev_end = -1.0;
  EXPECT_FALSE(GenerateDegradingSensor(degrade).ok());

  QuantizedReadingsOptions quantized;
  quantized.step = 0.0;
  EXPECT_FALSE(GenerateQuantizedReadings(quantized).ok());
}

}  // namespace
}  // namespace dkf
