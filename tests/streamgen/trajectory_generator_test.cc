#include "streamgen/trajectory_generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(TrajectoryTest, ProducesRequestedLength) {
  TrajectoryOptions options;
  options.num_points = 500;
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  EXPECT_EQ(data_or.value().observed.size(), 500u);
  EXPECT_EQ(data_or.value().truth.size(), 500u);
  EXPECT_EQ(data_or.value().observed.width(), 2u);
}

TEST(TrajectoryTest, DeterministicPerSeed) {
  TrajectoryOptions options;
  options.num_points = 200;
  auto a_or = GenerateTrajectory(options);
  auto b_or = GenerateTrajectory(options);
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a_or.value().observed.value(i, 0),
              b_or.value().observed.value(i, 0));
    EXPECT_EQ(a_or.value().observed.value(i, 1),
              b_or.value().observed.value(i, 1));
  }
}

TEST(TrajectoryTest, DifferentSeedsDiffer) {
  TrajectoryOptions a;
  a.num_points = 100;
  TrajectoryOptions b = a;
  b.seed = a.seed + 1;
  auto da_or = GenerateTrajectory(a);
  auto db_or = GenerateTrajectory(b);
  ASSERT_TRUE(da_or.ok());
  ASSERT_TRUE(db_or.ok());
  EXPECT_NE(da_or.value().truth.value(50, 0), db_or.value().truth.value(50, 0));
}

TEST(TrajectoryTest, SpeedNeverExceedsConfiguredBounds) {
  TrajectoryOptions options;
  options.num_points = 2000;
  options.min_speed = 5.0;
  options.max_speed = 50.0;
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  const TimeSeries& truth = data_or.value().truth;
  for (size_t i = 1; i < truth.size(); ++i) {
    const double dx = truth.value(i, 0) - truth.value(i - 1, 0);
    const double dy = truth.value(i, 1) - truth.value(i - 1, 1);
    const double speed = std::hypot(dx, dy) / options.dt;
    EXPECT_LE(speed, options.max_speed + 1e-9);
    EXPECT_GE(speed, options.min_speed - 1e-9);
  }
}

TEST(TrajectoryTest, HardCapAppliesWhenRangeExceedsIt) {
  TrajectoryOptions options;
  options.num_points = 2000;
  options.min_speed = 100.0;
  options.max_speed = 2000.0;
  options.max_speed_cap = 500.0;  // the paper's cap
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  const TimeSeries& truth = data_or.value().truth;
  for (size_t i = 1; i < truth.size(); ++i) {
    const double dx = truth.value(i, 0) - truth.value(i - 1, 0);
    const double dy = truth.value(i, 1) - truth.value(i - 1, 1);
    EXPECT_LE(std::hypot(dx, dy) / options.dt, 500.0 + 1e-9);
  }
}

TEST(TrajectoryTest, MovesOnStraightSegments) {
  // Within a segment consecutive displacement vectors are identical; count
  // direction changes — they should be far fewer than the sample count and
  // at least one should occur over a long run.
  TrajectoryOptions options;
  options.num_points = 3000;
  options.noise_stddev = 0.0;
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  const TimeSeries& truth = data_or.value().truth;
  int direction_changes = 0;
  double prev_dx = 0.0;
  double prev_dy = 0.0;
  for (size_t i = 1; i < truth.size(); ++i) {
    const double dx = truth.value(i, 0) - truth.value(i - 1, 0);
    const double dy = truth.value(i, 1) - truth.value(i - 1, 1);
    if (i > 1 && (std::fabs(dx - prev_dx) > 1e-9 ||
                  std::fabs(dy - prev_dy) > 1e-9)) {
      ++direction_changes;
    }
    prev_dx = dx;
    prev_dy = dy;
  }
  EXPECT_GT(direction_changes, 3);
  EXPECT_LT(direction_changes,
            static_cast<int>(options.num_points / options.min_segment));
}

TEST(TrajectoryTest, ObservationNoiseMatchesConfig) {
  TrajectoryOptions options;
  options.num_points = 5000;
  options.noise_stddev = 0.5;
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  double sum_sq = 0.0;
  for (size_t i = 0; i < 5000; ++i) {
    const double dx =
        data_or.value().observed.value(i, 0) - data_or.value().truth.value(i, 0);
    sum_sq += dx * dx;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / 5000), 0.5, 0.05);
}

TEST(TrajectoryTest, Validation) {
  TrajectoryOptions options;
  options.num_points = 0;
  EXPECT_FALSE(GenerateTrajectory(options).ok());
  options = TrajectoryOptions{};
  options.dt = 0.0;
  EXPECT_FALSE(GenerateTrajectory(options).ok());
  options = TrajectoryOptions{};
  options.min_speed = 10.0;
  options.max_speed = 5.0;
  EXPECT_FALSE(GenerateTrajectory(options).ok());
  options = TrajectoryOptions{};
  options.min_segment = 10;
  options.max_segment = 5;
  EXPECT_FALSE(GenerateTrajectory(options).ok());
  options = TrajectoryOptions{};
  options.noise_stddev = -0.1;
  EXPECT_FALSE(GenerateTrajectory(options).ok());
}

TEST(TrajectoryTest, PaperScaleDataset) {
  // The paper's Figure 3 configuration: 4000 points at 100 ms.
  TrajectoryOptions options;
  auto data_or = GenerateTrajectory(options);
  ASSERT_TRUE(data_or.ok());
  EXPECT_EQ(data_or.value().observed.size(), 4000u);
  EXPECT_NEAR(data_or.value().observed.timestamp(1) -
                  data_or.value().observed.timestamp(0),
              0.1, 1e-12);
}

}  // namespace
}  // namespace dkf
