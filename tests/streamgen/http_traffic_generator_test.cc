#include "streamgen/http_traffic_generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(HttpTrafficTest, ProducesRequestedLength) {
  HttpTrafficOptions options;
  options.num_points = 1000;
  auto series_or = GenerateHttpTraffic(options);
  ASSERT_TRUE(series_or.ok());
  EXPECT_EQ(series_or.value().size(), 1000u);
}

TEST(HttpTrafficTest, Deterministic) {
  auto a_or = GenerateHttpTraffic(HttpTrafficOptions{});
  auto b_or = GenerateHttpTraffic(HttpTrafficOptions{});
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  for (size_t i = 0; i < a_or.value().size(); i += 131) {
    EXPECT_EQ(a_or.value().value(i), b_or.value().value(i));
  }
}

TEST(HttpTrafficTest, CountsAreNonNegativeIntegers) {
  auto series_or = GenerateHttpTraffic(HttpTrafficOptions{});
  ASSERT_TRUE(series_or.ok());
  for (size_t i = 0; i < series_or.value().size(); ++i) {
    const double v = series_or.value().value(i);
    EXPECT_GE(v, 0.0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
}

TEST(HttpTrafficTest, MeanAboveBaseRate) {
  // Active on/off sources add on top of the base Poisson rate.
  HttpTrafficOptions options;
  options.num_points = 5000;
  auto series_or = GenerateHttpTraffic(options);
  ASSERT_TRUE(series_or.ok());
  auto stats_or = series_or.value().Stats();
  ASSERT_TRUE(stats_or.ok());
  EXPECT_GT(stats_or.value().mean, options.base_rate);
}

TEST(HttpTrafficTest, OverdispersedRelativeToPoisson) {
  // The defining property of the bursty substitute: the variance is much
  // larger than the mean (a plain Poisson stream has variance == mean).
  HttpTrafficOptions options;
  options.num_points = 5000;
  auto series_or = GenerateHttpTraffic(options);
  ASSERT_TRUE(series_or.ok());
  auto stats_or = series_or.value().Stats();
  ASSERT_TRUE(stats_or.ok());
  const double mean = stats_or.value().mean;
  const double variance =
      stats_or.value().stddev * stats_or.value().stddev;
  EXPECT_GT(variance, 5.0 * mean);
}

TEST(HttpTrafficTest, NoVisibleTrend) {
  // First-half and second-half means should be close relative to the
  // stddev ("the data shows little visible trend", §5.3).
  HttpTrafficOptions options;
  options.num_points = 6000;
  auto series_or = GenerateHttpTraffic(options);
  ASSERT_TRUE(series_or.ok());
  const TimeSeries& series = series_or.value();
  auto first_or = series.Slice(0, 3000);
  auto second_or = series.Slice(3000, 6000);
  ASSERT_TRUE(first_or.ok());
  ASSERT_TRUE(second_or.ok());
  const double m1 = first_or.value().Stats().value().mean;
  const double m2 = second_or.value().Stats().value().mean;
  const double sd = series.Stats().value().stddev;
  EXPECT_LT(std::fabs(m1 - m2), 0.5 * sd);
}

TEST(HttpTrafficTest, SpikesOccur) {
  HttpTrafficOptions options;
  options.num_points = 5000;
  options.spike_probability = 0.02;
  options.spike_scale = 10.0;
  auto series_or = GenerateHttpTraffic(options);
  ASSERT_TRUE(series_or.ok());
  auto stats_or = series_or.value().Stats();
  ASSERT_TRUE(stats_or.ok());
  // With 10x base-rate spikes the max should dwarf the mean.
  EXPECT_GT(stats_or.value().max, 3.0 * stats_or.value().mean);
}

TEST(HttpTrafficTest, Validation) {
  HttpTrafficOptions options;
  options.num_points = 0;
  EXPECT_FALSE(GenerateHttpTraffic(options).ok());
  options = HttpTrafficOptions{};
  options.num_sources = 0;
  EXPECT_FALSE(GenerateHttpTraffic(options).ok());
  options = HttpTrafficOptions{};
  options.pareto_shape = 1.0;
  EXPECT_FALSE(GenerateHttpTraffic(options).ok());
  options = HttpTrafficOptions{};
  options.mean_on_bins = 0.0;
  EXPECT_FALSE(GenerateHttpTraffic(options).ok());
  options = HttpTrafficOptions{};
  options.spike_probability = 1.5;
  EXPECT_FALSE(GenerateHttpTraffic(options).ok());
}

}  // namespace
}  // namespace dkf
