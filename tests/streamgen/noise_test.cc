#include "streamgen/noise.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TimeSeries ConstantSeries(size_t n, double value, size_t width = 1) {
  TimeSeries series(width);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(width, value);
    EXPECT_TRUE(series.Append(static_cast<double>(i), row).ok());
  }
  return series;
}

TEST(NoiseTest, NoOptionsIsIdentity) {
  const TimeSeries clean = ConstantSeries(100, 5.0);
  auto noisy_or = InjectNoise(clean, NoiseInjectionOptions{});
  ASSERT_TRUE(noisy_or.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(noisy_or.value().value(i), 5.0);
  }
}

TEST(NoiseTest, GaussianNoiseHasConfiguredSpread) {
  const TimeSeries clean = ConstantSeries(20000, 0.0);
  NoiseInjectionOptions options;
  options.gaussian_stddev = 2.0;
  auto noisy_or = InjectNoise(clean, options);
  ASSERT_TRUE(noisy_or.ok());
  auto stats_or = noisy_or.value().Stats();
  ASSERT_TRUE(stats_or.ok());
  EXPECT_NEAR(stats_or.value().mean, 0.0, 0.05);
  EXPECT_NEAR(stats_or.value().stddev, 2.0, 0.05);
}

TEST(NoiseTest, OutliersAreRareAndLarge) {
  const TimeSeries clean = ConstantSeries(20000, 0.0);
  NoiseInjectionOptions options;
  options.outlier_probability = 0.01;
  options.outlier_stddev = 100.0;
  auto noisy_or = InjectNoise(clean, options);
  ASSERT_TRUE(noisy_or.ok());
  int outliers = 0;
  for (size_t i = 0; i < noisy_or.value().size(); ++i) {
    if (std::fabs(noisy_or.value().value(i)) > 10.0) ++outliers;
  }
  EXPECT_GT(outliers, 100);
  EXPECT_LT(outliers, 300);
}

TEST(NoiseTest, MultivariateAllComponentsCorrupted) {
  const TimeSeries clean = ConstantSeries(5000, 1.0, 2);
  NoiseInjectionOptions options;
  options.gaussian_stddev = 1.0;
  auto noisy_or = InjectNoise(clean, options);
  ASSERT_TRUE(noisy_or.ok());
  for (size_t d = 0; d < 2; ++d) {
    auto stats_or = noisy_or.value().Stats(d);
    ASSERT_TRUE(stats_or.ok());
    EXPECT_GT(stats_or.value().stddev, 0.9);
  }
}

TEST(NoiseTest, DeterministicPerSeed) {
  const TimeSeries clean = ConstantSeries(100, 0.0);
  NoiseInjectionOptions options;
  options.gaussian_stddev = 1.0;
  auto a_or = InjectNoise(clean, options);
  auto b_or = InjectNoise(clean, options);
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a_or.value().value(i), b_or.value().value(i));
  }
}

TEST(NoiseTest, PreservesTimestamps) {
  TimeSeries clean(1);
  ASSERT_TRUE(clean.Append(0.25, 1.0).ok());
  ASSERT_TRUE(clean.Append(1.5, 2.0).ok());
  NoiseInjectionOptions options;
  options.gaussian_stddev = 1.0;
  auto noisy_or = InjectNoise(clean, options);
  ASSERT_TRUE(noisy_or.ok());
  EXPECT_DOUBLE_EQ(noisy_or.value().timestamp(0), 0.25);
  EXPECT_DOUBLE_EQ(noisy_or.value().timestamp(1), 1.5);
}

TEST(NoiseTest, Validation) {
  const TimeSeries clean = ConstantSeries(10, 0.0);
  NoiseInjectionOptions options;
  options.gaussian_stddev = -1.0;
  EXPECT_FALSE(InjectNoise(clean, options).ok());
  options = NoiseInjectionOptions{};
  options.outlier_probability = 2.0;
  EXPECT_FALSE(InjectNoise(clean, options).ok());
  options = NoiseInjectionOptions{};
  options.outlier_stddev = -5.0;
  EXPECT_FALSE(InjectNoise(clean, options).ok());
}

}  // namespace
}  // namespace dkf
