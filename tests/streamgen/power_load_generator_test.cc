#include "streamgen/power_load_generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(PowerLoadTest, PaperScaleDefaults) {
  auto series_or = GeneratePowerLoad(PowerLoadOptions{});
  ASSERT_TRUE(series_or.ok());
  EXPECT_EQ(series_or.value().size(), 5831u);  // §5.2: 5831 data points
  EXPECT_EQ(series_or.value().width(), 1u);
}

TEST(PowerLoadTest, Deterministic) {
  auto a_or = GeneratePowerLoad(PowerLoadOptions{});
  auto b_or = GeneratePowerLoad(PowerLoadOptions{});
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  for (size_t i = 0; i < a_or.value().size(); i += 97) {
    EXPECT_EQ(a_or.value().value(i), b_or.value().value(i));
  }
}

TEST(PowerLoadTest, MeanNearBaseLoad) {
  PowerLoadOptions options;
  options.num_points = 24 * 28;  // whole weeks so the weekday cycle averages
  auto series_or = GeneratePowerLoad(options);
  ASSERT_TRUE(series_or.ok());
  auto stats_or = series_or.value().Stats();
  ASSERT_TRUE(stats_or.ok());
  // Weekend scaling pulls the mean slightly below base_load.
  EXPECT_NEAR(stats_or.value().mean, options.base_load, 120.0);
}

TEST(PowerLoadTest, ExhibitsDiurnalCycle) {
  // Correlation of the series with a 24h cosine at the peak hour must be
  // strongly positive — this is the sinusoidal trend the paper's Example 2
  // model exploits.
  PowerLoadOptions options;
  options.num_points = 24 * 30;
  auto series_or = GeneratePowerLoad(options);
  ASSERT_TRUE(series_or.ok());
  const TimeSeries& series = series_or.value();
  auto stats_or = series.Stats();
  ASSERT_TRUE(stats_or.ok());
  const double mean = stats_or.value().mean;
  double corr = 0.0;
  for (size_t k = 0; k < series.size(); ++k) {
    const double hour_of_day = std::fmod(static_cast<double>(k), 24.0);
    const double reference =
        std::cos(2.0 * M_PI / 24.0 * (hour_of_day - options.peak_hour));
    corr += (series.value(k) - mean) * reference;
  }
  corr /= static_cast<double>(series.size());
  EXPECT_GT(corr, 0.5 * options.daily_amplitude / 2.0);
}

TEST(PowerLoadTest, PeakNearConfiguredHour) {
  PowerLoadOptions options;
  options.num_points = 24 * 30;
  options.noise_stddev = 0.0;
  auto series_or = GeneratePowerLoad(options);
  ASSERT_TRUE(series_or.ok());
  const TimeSeries& series = series_or.value();
  // Average by hour-of-day; the max must be at peak_hour.
  double best_value = -1e18;
  int best_hour = -1;
  for (int hod = 0; hod < 24; ++hod) {
    double sum = 0.0;
    int count = 0;
    for (size_t k = hod; k < series.size(); k += 24) {
      sum += series.value(k);
      ++count;
    }
    if (sum / count > best_value) {
      best_value = sum / count;
      best_hour = hod;
    }
  }
  EXPECT_EQ(best_hour, static_cast<int>(options.peak_hour));
}

TEST(PowerLoadTest, WeekendLoadLower) {
  PowerLoadOptions options;
  options.num_points = 24 * 70;
  options.noise_stddev = 0.0;
  auto series_or = GeneratePowerLoad(options);
  ASSERT_TRUE(series_or.ok());
  const TimeSeries& series = series_or.value();
  double weekday_sum = 0.0;
  double weekend_sum = 0.0;
  int weekday_count = 0;
  int weekend_count = 0;
  for (size_t k = 0; k < series.size(); ++k) {
    const size_t day = k / 24;
    if (day % 7 >= 5) {
      weekend_sum += series.value(k);
      ++weekend_count;
    } else {
      weekday_sum += series.value(k);
      ++weekday_count;
    }
  }
  EXPECT_LT(weekend_sum / weekend_count, weekday_sum / weekday_count);
}

TEST(PowerLoadTest, Validation) {
  PowerLoadOptions options;
  options.num_points = 0;
  EXPECT_FALSE(GeneratePowerLoad(options).ok());
  options = PowerLoadOptions{};
  options.noise_stddev = -1.0;
  EXPECT_FALSE(GeneratePowerLoad(options).ok());
  options = PowerLoadOptions{};
  options.ar_coefficient = 1.0;
  EXPECT_FALSE(GeneratePowerLoad(options).ok());
}

}  // namespace
}  // namespace dkf
