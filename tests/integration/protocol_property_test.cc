// Parameterized protocol property sweep: for every (model, delta, norm)
// combination, the dual-prediction protocol must uphold its two core
// guarantees on randomized streams — mirror consistency, and the
// suppressed-tick precision bound.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dual_link.h"
#include "core/ekf_predictor.h"
#include "core/predictor.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

enum class PredictorKind {
  kCaching,
  kConstant,
  kLinear,
  kPoly2,
  kSinusoidal,
  kSteadyStateLinear,
};

struct ProtocolCase {
  PredictorKind kind;
  double delta;
  DeviationNorm norm;
};

std::string CaseName(const ::testing::TestParamInfo<ProtocolCase>& info) {
  std::string name;
  switch (info.param.kind) {
    case PredictorKind::kCaching:
      name = "caching";
      break;
    case PredictorKind::kConstant:
      name = "constant";
      break;
    case PredictorKind::kLinear:
      name = "linear";
      break;
    case PredictorKind::kPoly2:
      name = "poly2";
      break;
    case PredictorKind::kSinusoidal:
      name = "sinusoidal";
      break;
    case PredictorKind::kSteadyStateLinear:
      name = "steadystate";
      break;
  }
  name += "_d" + std::to_string(static_cast<int>(info.param.delta * 10));
  switch (info.param.norm) {
    case DeviationNorm::kMaxAbs:
      name += "_maxabs";
      break;
    case DeviationNorm::kL2:
      name += "_l2";
      break;
    case DeviationNorm::kL1:
      name += "_l1";
      break;
  }
  return name;
}

std::unique_ptr<Predictor> MakePredictor(PredictorKind kind) {
  ModelNoise noise;
  noise.process_variance = 0.1;
  noise.measurement_variance = 0.1;
  switch (kind) {
    case PredictorKind::kCaching:
      return CachedValuePredictor::Create(1).value().Clone();
    case PredictorKind::kConstant:
      return KalmanPredictor::Create(MakeConstantModel(1, noise).value())
          .value()
          .Clone();
    case PredictorKind::kLinear:
      return KalmanPredictor::Create(MakeLinearModel(1, 1.0, noise).value())
          .value()
          .Clone();
    case PredictorKind::kPoly2:
      return KalmanPredictor::Create(
                 MakePolynomialModel(1, 2, 1.0, noise).value())
          .value()
          .Clone();
    case PredictorKind::kSinusoidal:
      return KalmanPredictor::Create(
                 MakeSinusoidalModel(0.26, 0.4, 1.0, noise).value())
          .value()
          .Clone();
    case PredictorKind::kSteadyStateLinear:
      return SteadyStatePredictor::Create(
                 MakeLinearModel(1, 1.0, noise).value())
          .value()
          .Clone();
  }
  return nullptr;
}

class ProtocolPropertyTest : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(ProtocolPropertyTest, GuaranteesHoldOnRandomWalk) {
  const ProtocolCase& param = GetParam();
  std::unique_ptr<Predictor> prototype = MakePredictor(param.kind);
  ASSERT_NE(prototype, nullptr);

  DualLinkOptions options;
  options.delta = param.delta;
  options.norm = param.norm;
  options.check_mirror_consistency = true;  // guarantee 1, checked per tick
  auto link_or = DualLink::Create(*prototype, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();

  Rng rng(static_cast<uint64_t>(param.delta * 1000) +
          static_cast<uint64_t>(param.kind));
  double value = 0.0;
  double drift = 0.3;
  for (int i = 0; i < 1500; ++i) {
    if (i % 200 == 0) drift = rng.Uniform(-1.0, 1.0);
    value += drift + rng.Gaussian(0.0, 0.4);
    auto step_or = link.Step(Vector{value});
    ASSERT_TRUE(step_or.ok()) << "tick " << i;
    // Guarantee 2: a suppressed tick means the prediction (== the server
    // answer on that tick) was within delta of the reading.
    if (!step_or.value().sent) {
      EXPECT_LE(
          Deviation(step_or.value().server_value, Vector{value}, param.norm),
          param.delta + 1e-9)
          << "tick " << i;
    }
  }
  // Sanity: the protocol neither sends everything nor (on this drifting
  // walk with small deltas) nothing.
  EXPECT_GT(link.stats().updates_sent, 0);
  EXPECT_LT(link.stats().updates_sent, link.stats().ticks);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, ProtocolPropertyTest,
    ::testing::Values(
        ProtocolCase{PredictorKind::kCaching, 1.0, DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kCaching, 4.0, DeviationNorm::kL2},
        ProtocolCase{PredictorKind::kConstant, 1.0, DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kConstant, 4.0, DeviationNorm::kL1},
        ProtocolCase{PredictorKind::kLinear, 1.0, DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kLinear, 2.0, DeviationNorm::kL2},
        ProtocolCase{PredictorKind::kLinear, 8.0, DeviationNorm::kL1},
        ProtocolCase{PredictorKind::kPoly2, 2.0, DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kSinusoidal, 2.0,
                     DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kSteadyStateLinear, 2.0,
                     DeviationNorm::kMaxAbs},
        ProtocolCase{PredictorKind::kSteadyStateLinear, 6.0,
                     DeviationNorm::kL2}),
    CaseName);

}  // namespace
}  // namespace dkf
