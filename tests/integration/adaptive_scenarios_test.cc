// Scenario battery for the adaptive noise servo (docs/adaptive.md): the
// three streamgen workloads that violate a fixed-R model — a regime
// shift, a degrading sensor, and ADC-quantized readings — each driven
// through the full DKF protocol twice (servo on vs. off). The claims
// under test, per scenario:
//
//   1. Suppression: the adaptive run transmits fewer updates than the
//      fixed run by a pinned margin (the servo pays for itself).
//   2. Precision: on every suppressed, non-degraded tick the served
//      answer is within delta of the reading that entered the protocol
//      — adaptation never silently weakens the paper's guarantee.
//   3. Shard invariance: with the servo on, ShardedStreamEngine at
//      1/2/4/8 shards answers bit-identically to the sequential
//      StreamManager, fault cocktail included.
//   4. Snapshot v4: a checkpoint taken mid-adaptation restores into
//      either runtime and continues bit-identically.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"
#include "runtime/sharded_engine.h"
#include "streamgen/scenario_generator.h"

namespace dkf {
namespace {

StateModel ScalarModel(double measurement_variance,
                       double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = measurement_variance;
  return MakeLinearModel(1, 1.0, noise).value();
}

AdaptiveNoiseConfig ScenarioAdaptation() {
  AdaptiveNoiseConfig config;
  config.enabled = true;
  config.warmup_corrections = 4;
  config.widen_rate = 0.15;
  config.shrink_rate = 0.05;
  // Suppression spaces corrections far apart by design; keep servoing
  // on them rather than treating every gap as a holdover outage.
  config.holdover_gap = 256;
  return config;
}

struct ScenarioRun {
  int64_t updates = 0;
  int precision_checks = 0;
};

/// Drives one scenario stream through a single-source StreamManager and
/// checks the delta guarantee on every suppressed tick along the way.
ScenarioRun DriveScenario(const TimeSeries& observed, const StateModel& model,
                          double delta, bool adaptive) {
  StreamManagerOptions options;
  options.channel.seed = 5;
  if (adaptive) options.protocol.adaptive = ScenarioAdaptation();
  StreamManager manager(options);
  EXPECT_TRUE(manager.RegisterSource(1, model).ok());
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = delta;
  EXPECT_TRUE(manager.SubmitQuery(query).ok());

  ScenarioRun run;
  int64_t updates_before = 0;
  for (size_t k = 0; k < observed.size(); ++k) {
    std::map<int, Vector> readings;
    readings[1] = Vector{observed.value(k)};
    EXPECT_TRUE(manager.ProcessTick(readings).ok()) << "tick " << k;
    const int64_t updates_now = manager.updates_sent(1).value();
    const bool suppressed = updates_now == updates_before;
    updates_before = updates_now;
    if (suppressed && !manager.answer_degraded(1).value()) {
      // The paper's contract, unchanged by the servo: a suppressed
      // answer is within delta of the value the source saw.
      EXPECT_LE(std::fabs(manager.Answer(1).value()[0] - observed.value(k)),
                delta)
          << (adaptive ? "adaptive" : "fixed") << " tick " << k;
      ++run.precision_checks;
    }
  }
  run.updates = manager.updates_sent(1).value();
  EXPECT_TRUE(manager.VerifyMirrorConsistency().ok());
  return run;
}

/// Asserts the pinned suppression margin: adaptive_updates must be at
/// most `max_percent` percent of fixed_updates.
void ExpectMargin(const ScenarioRun& adaptive, const ScenarioRun& fixed,
                  int64_t max_percent, const char* scenario) {
  EXPECT_GT(fixed.updates, 0) << scenario;
  EXPECT_GT(adaptive.precision_checks, 0) << scenario;
  EXPECT_GT(fixed.precision_checks, 0) << scenario;
  EXPECT_LE(adaptive.updates * 100, fixed.updates * max_percent)
      << scenario << ": adaptive sent " << adaptive.updates
      << " updates vs fixed " << fixed.updates;
}

TEST(AdaptiveScenariosTest, RegimeShiftAdaptiveBeatsFixed) {
  RegimeShiftOptions options;
  const ScenarioData data = GenerateRegimeShift(options).value();
  // Configured R matches the pre-shift sensor; after the shift the true
  // noise stddev is 16x the configured one.
  const StateModel model = ScalarModel(/*measurement_variance=*/0.0025);
  const ScenarioRun adaptive =
      DriveScenario(data.observed, model, /*delta=*/2.0, /*adaptive=*/true);
  const ScenarioRun fixed =
      DriveScenario(data.observed, model, /*delta=*/2.0, /*adaptive=*/false);
  ExpectMargin(adaptive, fixed, /*max_percent=*/80, "regime-shift");
}

TEST(AdaptiveScenariosTest, DegradingSensorAdaptiveBeatsFixed) {
  DegradingSensorOptions options;
  const ScenarioData data = GenerateDegradingSensor(options).value();
  const StateModel model = ScalarModel(/*measurement_variance=*/0.0025);
  const ScenarioRun adaptive =
      DriveScenario(data.observed, model, /*delta=*/2.0, /*adaptive=*/true);
  const ScenarioRun fixed =
      DriveScenario(data.observed, model, /*delta=*/2.0, /*adaptive=*/false);
  // The margin is tighter than the regime shift's: the servo trails a
  // ramp for the whole run instead of converging once after a step.
  ExpectMargin(adaptive, fixed, /*max_percent=*/90, "degrading-sensor");
}

TEST(AdaptiveScenariosTest, QuantizedReadingsAdaptiveBeatsFixed) {
  QuantizedReadingsOptions options;
  const ScenarioData data = GenerateQuantizedReadings(options).value();
  // Configured R believes the sensor is nearly noise-free; the real
  // error budget is the 0.5-unit ADC step, whose quantization variance
  // the servo's step floor discovers. Delta below the step makes every
  // level flip a transmission for the fixed filter. Process noise is
  // honest about the slow truth (a large Q would make the filter chase
  // readings no matter what R says, hiding the step floor's effect).
  const StateModel model = ScalarModel(/*measurement_variance=*/1e-4,
                                       /*process_variance=*/1e-4);
  const ScenarioRun adaptive =
      DriveScenario(data.observed, model, /*delta=*/0.4, /*adaptive=*/true);
  const ScenarioRun fixed =
      DriveScenario(data.observed, model, /*delta=*/0.4, /*adaptive=*/false);
  ExpectMargin(adaptive, fixed, /*max_percent=*/80, "quantized");
}

// --- Shard invariance and snapshot v4 --------------------------------

constexpr int kNumScenarioSources = 6;
constexpr int64_t kShardTicks = 700;
constexpr int64_t kSnapTick = 350;

ChannelOptions ScenarioChannel() {
  ChannelOptions options;
  options.seed = 314;
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/200, /*end=*/215});
  fault.ack_loss_probability = 0.04;
  fault.corruption_probability = 0.04;
  fault.active_until = 500;
  options.fault = fault;
  return options;
}

ProtocolOptions ScenarioProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 3;
  protocol.staleness_budget = 5;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  protocol.adaptive = ScenarioAdaptation();
  return protocol;
}

/// Six sources, two per scenario stream, all with understated R so the
/// servo is active everywhere — including through resync episodes the
/// fault cocktail forces, which carry the adapter payload on the wire.
template <typename System>
void InstallScenarioWorkload(System& system) {
  // Tracing on: the adapt.* gauges (and the kNoiseAdapt/kAdaptFreeze
  // event stream) only exist on a traced system.
  ASSERT_TRUE(system.EnableTracing().ok());
  for (int id = 1; id <= kNumScenarioSources; ++id) {
    ASSERT_TRUE(system.RegisterSource(id, ScalarModel(0.0025)).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.5 + 0.5 * (id % 2);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
}

std::vector<std::map<int, Vector>> ScenarioReadings() {
  RegimeShiftOptions shift;
  shift.num_points = kShardTicks;
  shift.shift_point = 250;
  DegradingSensorOptions degrade;
  degrade.num_points = kShardTicks;
  QuantizedReadingsOptions quantized;
  quantized.num_points = kShardTicks;
  const ScenarioData shift_a = GenerateRegimeShift(shift).value();
  shift.seed += 1;
  const ScenarioData shift_b = GenerateRegimeShift(shift).value();
  const ScenarioData degrade_a = GenerateDegradingSensor(degrade).value();
  degrade.seed += 1;
  const ScenarioData degrade_b = GenerateDegradingSensor(degrade).value();
  const ScenarioData quant_a = GenerateQuantizedReadings(quantized).value();
  quantized.seed += 1;
  const ScenarioData quant_b = GenerateQuantizedReadings(quantized).value();
  const TimeSeries* streams[kNumScenarioSources] = {
      &shift_a.observed,   &shift_b.observed, &degrade_a.observed,
      &degrade_b.observed, &quant_a.observed, &quant_b.observed};

  std::vector<std::map<int, Vector>> readings(kShardTicks);
  for (int64_t t = 0; t < kShardTicks; ++t) {
    for (int id = 1; id <= kNumScenarioSources; ++id) {
      readings[static_cast<size_t>(t)][id] =
          Vector{streams[id - 1]->value(static_cast<size_t>(t))};
    }
  }
  return readings;
}

TEST(AdaptiveScenariosTest, ShardCountInvarianceWithServoActive) {
  const std::vector<std::map<int, Vector>> readings = ScenarioReadings();

  StreamManagerOptions manager_options;
  manager_options.channel = ScenarioChannel();
  manager_options.protocol = ScenarioProtocol();
  StreamManager manager(manager_options);
  InstallScenarioWorkload(manager);

  std::vector<std::unique_ptr<ShardedStreamEngine>> engines;
  for (int shards : {1, 2, 4, 8}) {
    ShardedStreamEngineOptions options;
    options.num_shards = shards;
    options.channel = ScenarioChannel();
    options.protocol = ScenarioProtocol();
    engines.push_back(std::make_unique<ShardedStreamEngine>(options));
    InstallScenarioWorkload(*engines.back());
  }

  for (int64_t t = 0; t < kShardTicks; ++t) {
    ASSERT_TRUE(manager.ProcessTick(readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
    for (auto& engine : engines) {
      ASSERT_TRUE(engine->ProcessTick(readings[static_cast<size_t>(t)]).ok())
          << "tick " << t << " shards=" << engine->num_shards();
    }
    if (t % 50 == 0 || t == kShardTicks - 1) {
      for (auto& engine : engines) {
        for (int id = 1; id <= kNumScenarioSources; ++id) {
          ASSERT_EQ(manager.Answer(id).value()[0],
                    engine->Answer(id).value()[0])
              << "tick " << t << " shards=" << engine->num_shards()
              << " source=" << id;
          ASSERT_EQ(manager.answer_degraded(id).value(),
                    engine->answer_degraded(id).value())
              << "tick " << t << " shards=" << engine->num_shards()
              << " source=" << id;
        }
      }
    }
  }

  // The servo must have actually moved off nominal under this workload
  // (understated R everywhere), or the invariance claim is vacuous.
  bool any_adapted = false;
  for (int id = 1; id <= kNumScenarioSources; ++id) {
    EXPECT_EQ(manager.updates_sent(id).value(),
              engines[2]->updates_sent(id).value())
        << "source " << id;
    const MetricsRegistry metrics = manager.MetricsSnapshot();
    const std::string gauge = "adapt.r_scale." + std::to_string(id);
    if (metrics.has_gauge(gauge) && metrics.gauge(gauge) != 1.0) {
      any_adapted = true;
    }
  }
  EXPECT_TRUE(any_adapted);
  EXPECT_TRUE(manager.VerifyMirrorConsistency().ok());
  for (auto& engine : engines) {
    EXPECT_TRUE(engine->VerifyMirrorConsistency().ok())
        << "shards=" << engine->num_shards();
    const ProtocolFaultStats faults = engine->fault_stats();
    EXPECT_EQ(manager.fault_stats().resyncs_applied, faults.resyncs_applied)
        << "shards=" << engine->num_shards();
    EXPECT_EQ(manager.fault_stats().rejected_corrupt, faults.rejected_corrupt)
        << "shards=" << engine->num_shards();
  }
  // The cocktail really exercised resyncs, so adapter state crossed the
  // wire (and survived corruption attempts) during this run.
  EXPECT_GT(manager.fault_stats().resyncs_applied, 0);
  EXPECT_GT(manager.fault_stats().rejected_corrupt, 0);
}

TEST(AdaptiveScenariosTest, SnapshotV4RestoresMidAdaptationBitIdentically) {
  const std::vector<std::map<int, Vector>> readings = ScenarioReadings();

  auto drive = [&readings](auto& system, int64_t from, int64_t to) {
    for (int64_t t = from; t < to; ++t) {
      ASSERT_TRUE(system.ProcessTick(readings[static_cast<size_t>(t)]).ok())
          << "tick " << t;
    }
  };

  // Uninterrupted reference.
  StreamManagerOptions options;
  options.channel = ScenarioChannel();
  options.protocol = ScenarioProtocol();
  StreamManager reference(options);
  InstallScenarioWorkload(reference);
  drive(reference, 0, kShardTicks);

  // Interrupted run: checkpoint mid-adaptation (the servo has moved by
  // kSnapTick but the fault window is still open), then restore into
  // both runtimes and finish.
  StreamManager original(options);
  InstallScenarioWorkload(original);
  drive(original, 0, kSnapTick);
  const std::string path =
      ::testing::TempDir() + "/adaptive_scenarios.dkfsnap";
  ASSERT_TRUE(original.Save(path).ok());

  auto manager_or = StreamManager::Restore(path);
  ASSERT_TRUE(manager_or.ok()) << manager_or.status().message();
  drive(*manager_or.value(), kSnapTick, kShardTicks);

  auto engine_or = ShardedStreamEngine::Restore(path, /*num_shards=*/4);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().message();
  drive(*engine_or.value(), kSnapTick, kShardTicks);

  for (int id = 1; id <= kNumScenarioSources; ++id) {
    const double want = reference.Answer(id).value()[0];
    EXPECT_EQ(want, manager_or.value()->Answer(id).value()[0])
        << "manager restore, source " << id;
    EXPECT_EQ(want, engine_or.value()->Answer(id).value()[0])
        << "engine restore, source " << id;
    EXPECT_EQ(reference.updates_sent(id).value(),
              manager_or.value()->updates_sent(id).value())
        << "source " << id;
    EXPECT_EQ(reference.updates_sent(id).value(),
              engine_or.value()->updates_sent(id).value())
        << "source " << id;
    // The servo state itself restored bit-exactly: same gauges.
    const std::string gauge = "adapt.r_scale." + std::to_string(id);
    const MetricsRegistry ref_metrics = reference.MetricsSnapshot();
    const MetricsRegistry restored_metrics =
        manager_or.value()->MetricsSnapshot();
    EXPECT_EQ(ref_metrics.has_gauge(gauge), restored_metrics.has_gauge(gauge))
        << "source " << id;
    EXPECT_EQ(ref_metrics.gauge(gauge), restored_metrics.gauge(gauge))
        << "source " << id;
  }
  EXPECT_TRUE(manager_or.value()->VerifyMirrorConsistency().ok());
  EXPECT_TRUE(engine_or.value()->VerifyMirrorConsistency().ok());
}

}  // namespace
}  // namespace dkf
