// The library offers two implementations of the same protocol: the
// in-process DualLink (used by the experiment harness) and the
// message-passing SourceNode/Channel/ServerNode pipeline (used by the
// DSMS simulation). They must agree *exactly* — same transmissions on the
// same ticks, same server answers — or the figure reproductions would
// depend on which path a bench happens to use.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dual_link.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "dsms/simulation.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

StateModel LinearModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

TimeSeries RandomWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  double value = 0.0;
  double drift = 0.4;
  for (size_t i = 0; i < n; ++i) {
    if (i % 250 == 0) drift = rng.Uniform(-1.5, 1.5);
    value += drift + rng.Gaussian(0.0, 0.5);
    EXPECT_TRUE(series.Append(static_cast<double>(i), value).ok());
  }
  return series;
}

TEST(PathEquivalenceTest, DualLinkMatchesNodePipelineTickForTick) {
  const TimeSeries stream = RandomWalk(3000, 77);
  const double delta = 2.5;

  // Path 1: DualLink.
  auto predictor = KalmanPredictor::Create(LinearModel()).value();
  DualLinkOptions link_options;
  link_options.delta = delta;
  DualLink link = DualLink::Create(predictor, link_options).value();

  // Path 2: SourceNode -> Channel -> ServerNode.
  ServerNode server;
  ASSERT_TRUE(server.RegisterSource(1, LinearModel()).ok());
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); });
  SourceNodeOptions node_options;
  node_options.source_id = 1;
  node_options.model = LinearModel();
  node_options.delta = delta;
  SourceNode node = SourceNode::Create(node_options).value();

  for (size_t i = 0; i < stream.size(); ++i) {
    const Vector reading{stream.value(i)};
    auto link_step = link.Step(reading);
    ASSERT_TRUE(link_step.ok());

    ASSERT_TRUE(server.TickAll().ok());
    auto node_step =
        node.ProcessReading(static_cast<int64_t>(i), reading, &channel);
    ASSERT_TRUE(node_step.ok());

    ASSERT_EQ(link_step.value().sent, node_step.value().sent)
        << "tick " << i;
    const double link_answer = link_step.value().server_value[0];
    const double node_answer = server.Answer(1).value()[0];
    ASSERT_EQ(link_answer, node_answer) << "tick " << i;
  }
  EXPECT_EQ(link.stats().updates_sent, node.updates_sent());
}

TEST(PathEquivalenceTest, SimulationMatchesDualLinkTotals) {
  const TimeSeries stream = RandomWalk(2500, 78);
  const double delta = 3.0;

  auto predictor = KalmanPredictor::Create(LinearModel()).value();
  DualLinkOptions link_options;
  link_options.delta = delta;
  DualLink link = DualLink::Create(predictor, link_options).value();
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(link.Step(Vector{stream.value(i)}).ok());
  }

  SimulationSourceConfig config;
  config.id = 1;
  config.data = stream;
  config.model = LinearModel();
  config.delta = delta;
  auto reports = DsmsSimulation::Create({config}).value().Run().value();

  EXPECT_EQ(reports[0].updates_sent, link.stats().updates_sent);
  EXPECT_EQ(reports[0].readings, link.stats().ticks);
}

}  // namespace
}  // namespace dkf
