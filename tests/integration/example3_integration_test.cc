#include <gtest/gtest.h>

#include "core/moving_average.h"
#include "core/predictor.h"
#include "core/smoothing.h"
#include "metrics/experiment.h"
#include "metrics/metrics.h"
#include "models/model_factory.h"
#include "streamgen/http_traffic_generator.h"

namespace dkf {
namespace {

/// Example 3 (§5.3): on noisy, trendless HTTP traffic the KF_c smoothing
/// stage makes suppression effective, low F approaches the moving
/// average, and lowering F reduces updates (Figures 10-12).
class Example3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HttpTrafficOptions options;
    options.num_points = 3000;
    series_ = new TimeSeries(GenerateHttpTraffic(options).value());
  }
  static void TearDownTestSuite() {
    delete series_;
    series_ = nullptr;
  }

  /// Model noise for predictors running on the KF_c-smoothed stream
  /// (nearly noise-free, so measurements are trusted strongly).
  static ModelNoise TrafficNoise() {
    ModelNoise noise;
    noise.process_variance = 1e-4;
    noise.measurement_variance = 1e-2;
    return noise;
  }

  /// Measurement variance assumed by KF_c (the scale the paper's F values
  /// are read against; see EXPERIMENTS.md).
  static constexpr double kSmootherR = 0.01;

  static TimeSeries* series_;
};

TimeSeries* Example3Test::series_ = nullptr;

TEST_F(Example3Test, WindowEquivalentFMatchesMovingAverage) {
  // Figure 10 made quantitative: the F whose steady-state gain equals the
  // EWMA coefficient of a 64-sample moving average produces a smoothed
  // series close to MA(64).
  const double f = SmoothingFactorForWindow(64, 100.0);
  auto kf_or = SmoothSeriesKalman(*series_, f, 100.0);
  auto ma_or = SmoothSeriesMovingAverage(*series_, 64);
  ASSERT_TRUE(kf_or.ok());
  ASSERT_TRUE(ma_or.ok());
  auto kf_tail = kf_or.value().Slice(500, series_->size()).value();
  auto ma_tail = ma_or.value().Slice(500, series_->size()).value();
  auto mad_or = SeriesMeanAbsDiff(kf_tail, ma_tail);
  ASSERT_TRUE(mad_or.ok());
  const double raw_stddev = series_->Stats().value().stddev;
  EXPECT_LT(mad_or.value(), 0.2 * raw_stddev);
}

TEST_F(Example3Test, VeryLowFSmootherThanMovingAverage) {
  // Pushing F to 1e-9 smooths even harder than MA(64): the output's
  // variability collapses toward the global mean.
  auto kf_or = SmoothSeriesKalman(*series_, 1e-9, 100.0);
  auto ma_or = SmoothSeriesMovingAverage(*series_, 64);
  ASSERT_TRUE(kf_or.ok());
  ASSERT_TRUE(ma_or.ok());
  auto kf_tail = kf_or.value().Slice(500, series_->size()).value();
  auto ma_tail = ma_or.value().Slice(500, series_->size()).value();
  EXPECT_LT(kf_tail.Stats().value().stddev,
            ma_tail.Stats().value().stddev);
}

TEST_F(Example3Test, HighFTracksRawData) {
  auto kf_or = SmoothSeriesKalman(*series_, 1e3, 1.0);
  ASSERT_TRUE(kf_or.ok());
  auto mad_or = SeriesMeanAbsDiff(kf_or.value(), *series_);
  ASSERT_TRUE(mad_or.ok());
  const double raw_stddev = series_->Stats().value().stddev;
  EXPECT_LT(mad_or.value(), 0.05 * raw_stddev);
}

TEST_F(Example3Test, SmoothingEnablesSuppression) {
  // Figure 11's premise: raw traffic defeats prediction, smoothed traffic
  // doesn't.
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(1, 1.0, TrafficNoise()).value());
  ASSERT_TRUE(linear_or.ok());
  const double delta = 30.0;

  auto raw_row_or =
      RunSuppressionExperiment(*series_, linear_or.value(), delta);
  auto smoothed_or = SmoothSeriesKalman(*series_, 1e-7, kSmootherR);
  ASSERT_TRUE(smoothed_or.ok());
  auto smooth_row_or =
      RunSuppressionExperiment(smoothed_or.value(), linear_or.value(), delta);
  ASSERT_TRUE(raw_row_or.ok());
  ASSERT_TRUE(smooth_row_or.ok());
  EXPECT_LT(smooth_row_or.value().update_percentage,
            0.3 * raw_row_or.value().update_percentage);
}

TEST_F(Example3Test, LinearKfBestOnSmoothedStream) {
  // Figure 11's claim: "the reduction in communication overhead is better
  // using a linear KF model" — the smoothed stream retains the slow
  // diurnal trend, which the linear model rides and the cache cannot.
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(1, 1.0, TrafficNoise()).value());
  auto caching_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(linear_or.ok());
  ASSERT_TRUE(caching_or.ok());
  auto smoothed_or = SmoothSeriesKalman(*series_, 1e-7, kSmootherR);
  ASSERT_TRUE(smoothed_or.ok());
  for (double delta : {2.0, 5.0, 10.0}) {
    auto lin_row_or = RunSuppressionExperiment(smoothed_or.value(),
                                               linear_or.value(), delta);
    auto cache_row_or = RunSuppressionExperiment(smoothed_or.value(),
                                                 caching_or.value(), delta);
    ASSERT_TRUE(lin_row_or.ok());
    ASSERT_TRUE(cache_row_or.ok());
    EXPECT_LT(lin_row_or.value().update_percentage,
              cache_row_or.value().update_percentage)
        << "delta " << delta;
  }
}

TEST_F(Example3Test, LowerFMeansFewerUpdates) {
  // Figure 12: at fixed delta, lowering F lowers the update rate.
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(1, 1.0, TrafficNoise()).value());
  ASSERT_TRUE(linear_or.ok());
  const double delta = 10.0;  // the figure's operating point
  double prev = -1.0;
  for (double f : {1e-9, 1e-5, 1e-1}) {
    auto smoothed_or = SmoothSeriesKalman(*series_, f, kSmootherR);
    ASSERT_TRUE(smoothed_or.ok());
    auto row_or = RunSuppressionExperiment(smoothed_or.value(),
                                           linear_or.value(), delta);
    ASSERT_TRUE(row_or.ok());
    if (prev >= 0.0) {
      EXPECT_GE(row_or.value().update_percentage, prev - 0.5)
          << "F " << f;
    }
    prev = row_or.value().update_percentage;
  }
}

TEST_F(Example3Test, SmoothedAnswersWithinDeltaOfSmoothedStream) {
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(1, 1.0, TrafficNoise()).value());
  ASSERT_TRUE(linear_or.ok());
  auto smoothed_or = SmoothSeriesKalman(*series_, 1e-7, kSmootherR);
  ASSERT_TRUE(smoothed_or.ok());
  const double delta = 20.0;
  auto row_or = RunSuppressionExperiment(smoothed_or.value(),
                                         linear_or.value(), delta);
  ASSERT_TRUE(row_or.ok());
  EXPECT_LE(row_or.value().avg_error, delta);
}

}  // namespace
}  // namespace dkf
