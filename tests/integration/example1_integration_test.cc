#include <gtest/gtest.h>

#include "core/predictor.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"
#include "streamgen/trajectory_generator.h"

namespace dkf {
namespace {

/// Example 1 (§5.1) at reduced scale: the qualitative ordering of Figure 4
/// must hold — linear KF sends far fewer updates than caching; the
/// constant KF matches caching closely; all converge as delta grows.
class Example1Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TrajectoryOptions options;
    options.num_points = 1500;
    data_ = new TrajectoryData(GenerateTrajectory(options).value());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static ModelNoise PaperNoise() {
    // §4.1: Q and R diagonal with value 0.05.
    ModelNoise noise;
    noise.process_variance = 0.05;
    noise.measurement_variance = 0.05;
    return noise;
  }

  static TrajectoryData* data_;
};

TrajectoryData* Example1Test::data_ = nullptr;

TEST_F(Example1Test, LinearKfCutsUpdatesSharply) {
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(2, 0.1, PaperNoise()).value());
  auto caching_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(linear_or.ok());
  ASSERT_TRUE(caching_or.ok());

  const double delta = 3.0;  // the paper's headline operating point
  auto kf_row_or =
      RunSuppressionExperiment(data_->observed, linear_or.value(), delta);
  auto cache_row_or =
      RunSuppressionExperiment(data_->observed, caching_or.value(), delta);
  ASSERT_TRUE(kf_row_or.ok());
  ASSERT_TRUE(cache_row_or.ok());
  // "utilization of the communication source was cut down by approximately
  // 75% at a moderate precision width of 3 units" — require at least 50%
  // at this reduced scale.
  EXPECT_LT(kf_row_or.value().update_percentage,
            0.5 * cache_row_or.value().update_percentage);
}

TEST_F(Example1Test, ConstantKfMatchesCaching) {
  // The constant model plays the caching scheme's role ("conceptually
  // similar to the cached approximation value model", §5.1). That
  // equivalence requires a near-unity Kalman gain — the filter must adopt
  // each transmitted value — so its process variance is set high relative
  // to R (with Q = R the filter smooths transmitted values and re-triggers
  // sooner than the cache; see EXPERIMENTS.md).
  ModelNoise adopt_noise;
  adopt_noise.process_variance = 10.0;
  adopt_noise.measurement_variance = 0.05;
  auto constant_or =
      KalmanPredictor::Create(MakeConstantModel(2, adopt_noise).value());
  auto caching_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(constant_or.ok());
  ASSERT_TRUE(caching_or.ok());
  for (double delta : {2.0, 5.0}) {
    auto constant_row_or =
        RunSuppressionExperiment(data_->observed, constant_or.value(), delta);
    auto cache_row_or =
        RunSuppressionExperiment(data_->observed, caching_or.value(), delta);
    ASSERT_TRUE(constant_row_or.ok());
    ASSERT_TRUE(cache_row_or.ok());
    // "the percentage of updates using caching and constant KF model is
    // the same" — allow a modest relative band.
    EXPECT_NEAR(constant_row_or.value().update_percentage,
                cache_row_or.value().update_percentage,
                0.25 * cache_row_or.value().update_percentage + 2.0)
        << "delta " << delta;
  }
}

TEST_F(Example1Test, ModelsConvergeAtLargeDelta) {
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(2, 0.1, PaperNoise()).value());
  auto caching_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(linear_or.ok());
  ASSERT_TRUE(caching_or.ok());
  // At a precision width dwarfing the per-sample motion, everybody sends
  // almost nothing ("as the precision width increases ... all three models
  // show comparable performance").
  const double huge_delta = 400.0;
  auto kf_row_or = RunSuppressionExperiment(data_->observed,
                                            linear_or.value(), huge_delta);
  auto cache_row_or = RunSuppressionExperiment(
      data_->observed, caching_or.value(), huge_delta);
  ASSERT_TRUE(kf_row_or.ok());
  ASSERT_TRUE(cache_row_or.ok());
  EXPECT_LT(kf_row_or.value().update_percentage, 5.0);
  EXPECT_LT(cache_row_or.value().update_percentage, 5.0);
}

TEST_F(Example1Test, ErrorsStayWithinPrecisionRegime) {
  // Figure 5 sanity: the average error (|dx| + |dy|) is bounded by ~2x
  // delta (each coordinate within delta on suppressed ticks).
  auto linear_or = KalmanPredictor::Create(
      MakeLinearModel(2, 0.1, PaperNoise()).value());
  ASSERT_TRUE(linear_or.ok());
  for (double delta : {1.0, 3.0, 6.0}) {
    auto row_or =
        RunSuppressionExperiment(data_->observed, linear_or.value(), delta);
    ASSERT_TRUE(row_or.ok());
    EXPECT_LE(row_or.value().avg_error, 2.0 * delta + 0.5)
        << "delta " << delta;
  }
}

TEST_F(Example1Test, AvgErrorGrowsWithDelta) {
  // Coarser precision -> larger average error, for every model.
  auto caching_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(caching_or.ok());
  double prev = -1.0;
  for (double delta : {1.0, 4.0, 8.0}) {
    auto row_or =
        RunSuppressionExperiment(data_->observed, caching_or.value(), delta);
    ASSERT_TRUE(row_or.ok());
    EXPECT_GT(row_or.value().avg_error, prev);
    prev = row_or.value().avg_error;
  }
}

}  // namespace
}  // namespace dkf
