// Property test tying the observability layer to the paper's precision
// contract: across randomized models, precision widths, norms, and
// smoothing factors, (a) the server's answer on every suppressed
// non-degraded tick is within delta of the value that entered the
// protocol — per component for the per-component rules — and (b) the
// trace tells the truth: every transmit event records a genuine
// delta-violation (deviation > bound) and every suppress event records
// compliance.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/suppression.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "models/model_factory.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace dkf {
namespace {

struct SweepConfig {
  StateModel model;
  double delta = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;
  std::vector<double> component_deltas;
  std::optional<double> smoothing_factor;
  double drift = 0.0;
  double step_sigma = 0.5;
};

/// One randomized configuration drawn from the sweep RNG.
SweepConfig DrawConfig(Rng& rng) {
  SweepConfig config;
  const size_t dim = 1 + static_cast<size_t>(rng.Uniform() * 3.0) % 3;
  ModelNoise noise;
  noise.process_variance = 0.02 + 0.1 * rng.Uniform();
  noise.measurement_variance = 0.02 + 0.1 * rng.Uniform();
  if (rng.Uniform() < 0.5) {
    config.model = MakeConstantModel(dim, noise).value();
  } else {
    config.model = MakeLinearModel(dim, 1.0, noise).value();
  }
  config.delta = 0.4 + 2.6 * rng.Uniform();
  const double norm_draw = rng.Uniform();
  config.norm = norm_draw < 0.34   ? DeviationNorm::kMaxAbs
                : norm_draw < 0.67 ? DeviationNorm::kL2
                                   : DeviationNorm::kL1;
  if (dim > 1 && rng.Uniform() < 0.5) {
    for (size_t i = 0; i < dim; ++i) {
      config.component_deltas.push_back(0.4 + 2.0 * rng.Uniform());
    }
  }
  if (dim == 1 && rng.Uniform() < 0.4) {
    // KF_c smoothing factors F spanning heavy to light smoothing (§4.3).
    config.smoothing_factor = rng.Uniform() < 0.5 ? 1e-3 : 0.1;
  }
  config.drift = 0.1 * rng.Uniform();
  config.step_sigma = 0.2 + 0.8 * rng.Uniform();
  return config;
}

TEST(ObsPropertyTest, PrecisionHoldsAndTraceEventsMatchDecisions) {
  constexpr int kConfigs = 24;
  constexpr int64_t kTicks = 150;
  Rng sweep_rng(2024);

  for (int c = 0; c < kConfigs; ++c) {
    const SweepConfig config = DrawConfig(sweep_rng);
    const size_t dim = config.model.measurement_dim;

    ServerNode server;
    ASSERT_TRUE(server.RegisterSource(1, config.model).ok());
    Channel channel(
        [&server](const Message& message) {
          return server.OnMessage(message);
        },
        ChannelOptions());  // loss-free: the pure protocol property

    SourceNodeOptions node_options;
    node_options.source_id = 1;
    node_options.model = config.model;
    node_options.delta = config.delta;
    node_options.norm = config.norm;
    node_options.component_deltas = config.component_deltas;
    node_options.smoothing_factor = config.smoothing_factor;
    auto node_or = SourceNode::Create(node_options);
    ASSERT_TRUE(node_or.ok()) << "config " << c;
    SourceNode source = std::move(node_or).value();

    TraceSink sink;
    source.set_trace_sink(&sink);
    server.set_trace_sink(&sink);

    Rng walk_rng(100 + c);
    std::vector<double> truth(dim, 0.0);
    int64_t suppressed_checks = 0;
    for (int64_t t = 0; t < kTicks; ++t) {
      ASSERT_TRUE(server.TickAll().ok());
      ASSERT_TRUE(channel.BeginTick(t).ok());
      Vector reading(dim);
      for (size_t i = 0; i < dim; ++i) {
        truth[i] += walk_rng.Gaussian(config.drift, config.step_sigma);
        reading[i] = truth[i];
      }
      auto step_or = source.ProcessReading(t, reading, &channel);
      ASSERT_TRUE(step_or.ok()) << "config " << c << " tick " << t;
      const SourceStepResult& step = step_or.value();
      ASSERT_FALSE(step.pending_resync);  // loss-free channel

      ASSERT_FALSE(server.degraded(1).value());
      if (step.sent) continue;  // update ticks correct toward the value
      ++suppressed_checks;
      const Vector answer = server.Answer(1).value();
      ASSERT_EQ(answer.size(), dim);
      if (!config.component_deltas.empty()) {
        // Per-component rule: every attribute within its own width.
        for (size_t i = 0; i < dim; ++i) {
          ASSERT_LE(std::fabs(answer[i] - step.protocol_value[i]),
                    config.component_deltas[i])
              << "config " << c << " tick " << t << " component " << i;
        }
      } else {
        ASSERT_LE(Deviation(answer, step.protocol_value, config.norm),
                  config.delta)
            << "config " << c << " tick " << t;
        if (config.norm == DeviationNorm::kMaxAbs) {
          // The default norm's guarantee is per component (§5.1).
          for (size_t i = 0; i < dim; ++i) {
            ASSERT_LE(std::fabs(answer[i] - step.protocol_value[i]),
                      config.delta)
                << "config " << c << " tick " << t << " component " << i;
          }
        }
      }
    }
    ASSERT_GT(suppressed_checks, 0) << "config " << c;

#if DKF_OBS_ENABLED
    // The trace must mirror the decisions exactly: one suppress-or-
    // transmit event per tick, transmit iff genuine delta-violation.
    EXPECT_EQ(sink.count(TraceEventKind::kTransmit),
              source.updates_sent())
        << "config " << c;
    EXPECT_EQ(sink.count(TraceEventKind::kSuppress) +
                  sink.count(TraceEventKind::kTransmit),
              kTicks)
        << "config " << c;
    int64_t transmit_events = 0;
    for (const TraceEvent& event : sink.Events()) {
      if (event.kind == TraceEventKind::kTransmit) {
        ++transmit_events;
        EXPECT_GT(event.value, event.aux)
            << "config " << c << ": transmit without a delta-violation "
            << "at step " << event.step;
      } else if (event.kind == TraceEventKind::kSuppress) {
        EXPECT_LE(event.value, event.aux)
            << "config " << c << ": suppression despite a delta-violation "
            << "at step " << event.step;
      }
    }
    EXPECT_EQ(transmit_events, source.updates_sent()) << "config " << c;
    // Loss-free link: every transmit was applied at the server.
    EXPECT_EQ(sink.count(TraceEventKind::kUpdateApplied),
              source.updates_sent())
        << "config " << c;
#endif
  }
}

}  // namespace
}  // namespace dkf
