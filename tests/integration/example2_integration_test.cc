#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"
#include "streamgen/power_load_generator.h"

namespace dkf {
namespace {

/// Example 2 (§5.2): on the (synthetic stand-in for the) power-load data
/// the sinusoidal KF model should beat the linear KF, which should beat
/// caching, at moderate precision widths.
class Example2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PowerLoadOptions options;
    options.num_points = 24 * 60;  // two months, fast enough for a test
    series_ = new TimeSeries(GeneratePowerLoad(options).value());
  }
  static void TearDownTestSuite() {
    delete series_;
    series_ = nullptr;
  }

  static ModelNoise LoadNoise() {
    // Chosen so the filters adapt at the speed of the diurnal ramps (the
    // AR(1) observation noise has stddev ~35).
    ModelNoise noise;
    noise.process_variance = 25.0;
    noise.measurement_variance = 25.0;
    return noise;
  }

  static StateModel Sinusoidal() {
    // Match the generator's diurnal cosine A cos(omega (h - peak)). The
    // model's per-step regressor cos(omega k + theta) must align with the
    // *increment* of that cosine, whose phase is omega (k + 1/2 - peak) -
    // pi/2; the learned state s absorbs the amplitude.
    const double omega = 2.0 * M_PI / 24.0;
    const double theta = omega * (0.5 - 15.0) - M_PI / 2.0;
    return MakeSinusoidalModel(omega, theta, 1.0, LoadNoise()).value();
  }

  static TimeSeries* series_;
};

TimeSeries* Example2Test::series_ = nullptr;

TEST_F(Example2Test, SinusoidalModelBeatsCaching) {
  auto sinusoidal_or = KalmanPredictor::Create(Sinusoidal());
  auto caching_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(sinusoidal_or.ok());
  ASSERT_TRUE(caching_or.ok());
  const double delta = 100.0;  // ~a quarter of the daily amplitude
  auto sin_row_or =
      RunSuppressionExperiment(*series_, sinusoidal_or.value(), delta);
  auto cache_row_or =
      RunSuppressionExperiment(*series_, caching_or.value(), delta);
  ASSERT_TRUE(sin_row_or.ok());
  ASSERT_TRUE(cache_row_or.ok());
  EXPECT_LT(sin_row_or.value().update_percentage,
            cache_row_or.value().update_percentage);
}

TEST_F(Example2Test, LinearModelAlsoBeatsCaching) {
  // Even the "wrong" linear model exploits the slow diurnal ramps better
  // than a static cache — the robustness claim of §5.2.
  auto linear_or =
      KalmanPredictor::Create(MakeLinearModel(1, 1.0, LoadNoise()).value());
  auto caching_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(linear_or.ok());
  ASSERT_TRUE(caching_or.ok());
  const double delta = 100.0;
  auto lin_row_or =
      RunSuppressionExperiment(*series_, linear_or.value(), delta);
  auto cache_row_or =
      RunSuppressionExperiment(*series_, caching_or.value(), delta);
  ASSERT_TRUE(lin_row_or.ok());
  ASSERT_TRUE(cache_row_or.ok());
  EXPECT_LE(lin_row_or.value().update_percentage,
            cache_row_or.value().update_percentage * 1.05);
}

TEST_F(Example2Test, CorrectModelBeatsWrongModel) {
  // "using a correct KF model gives performance boost" — the sinusoidal
  // model should need no more updates than the linear one at moderate
  // precision.
  auto sinusoidal_or = KalmanPredictor::Create(Sinusoidal());
  auto linear_or =
      KalmanPredictor::Create(MakeLinearModel(1, 1.0, LoadNoise()).value());
  ASSERT_TRUE(sinusoidal_or.ok());
  ASSERT_TRUE(linear_or.ok());
  const double delta = 150.0;
  auto sin_row_or =
      RunSuppressionExperiment(*series_, sinusoidal_or.value(), delta);
  auto lin_row_or =
      RunSuppressionExperiment(*series_, linear_or.value(), delta);
  ASSERT_TRUE(sin_row_or.ok());
  ASSERT_TRUE(lin_row_or.ok());
  EXPECT_LE(sin_row_or.value().update_percentage,
            lin_row_or.value().update_percentage * 1.05);
}

TEST_F(Example2Test, UpdatesDropAsPrecisionWidens) {
  auto sinusoidal_or = KalmanPredictor::Create(Sinusoidal());
  ASSERT_TRUE(sinusoidal_or.ok());
  double prev = 101.0;
  for (double delta : {50.0, 100.0, 200.0, 400.0}) {
    auto row_or =
        RunSuppressionExperiment(*series_, sinusoidal_or.value(), delta);
    ASSERT_TRUE(row_or.ok());
    EXPECT_LE(row_or.value().update_percentage, prev + 1.0);
    prev = row_or.value().update_percentage;
  }
}

}  // namespace
}  // namespace dkf
