#include <cmath>

#include <gtest/gtest.h>

#include "dsms/simulation.h"
#include "models/model_factory.h"
#include "query/precision_allocation.h"
#include "query/registry.h"
#include "streamgen/http_traffic_generator.h"
#include "streamgen/power_load_generator.h"
#include "streamgen/trajectory_generator.h"

namespace dkf {
namespace {

/// The full Figure-1 path: user queries register precision constraints,
/// the registry derives per-source deltas and smoothing, the DSMS
/// simulation runs all three of the paper's scenarios side by side, and
/// the answers respect the constraints.
TEST(EndToEndTest, ThreeScenarioDsms) {
  // --- Queries.
  QueryRegistry registry;
  ContinuousQuery vehicle_query;
  vehicle_query.id = 1;
  vehicle_query.source_id = 1;
  vehicle_query.precision = 3.0;
  vehicle_query.description = "vehicle position within 3 units";
  ASSERT_TRUE(registry.AddQuery(vehicle_query).ok());

  ContinuousQuery load_query;
  load_query.id = 2;
  load_query.source_id = 2;
  load_query.precision = 120.0;
  ASSERT_TRUE(registry.AddQuery(load_query).ok());

  ContinuousQuery load_query_tighter;
  load_query_tighter.id = 3;
  load_query_tighter.source_id = 2;
  load_query_tighter.precision = 80.0;
  ASSERT_TRUE(registry.AddQuery(load_query_tighter).ok());

  ContinuousQuery traffic_query;
  traffic_query.id = 4;
  traffic_query.source_id = 3;
  traffic_query.precision = 25.0;
  traffic_query.smoothing_factor = 1e-7;
  ASSERT_TRUE(registry.AddQuery(traffic_query).ok());

  // --- Datasets.
  TrajectoryOptions trajectory_options;
  trajectory_options.num_points = 1200;
  auto trajectory_or = GenerateTrajectory(trajectory_options);
  ASSERT_TRUE(trajectory_or.ok());

  PowerLoadOptions load_options;
  load_options.num_points = 1200;
  auto load_or = GeneratePowerLoad(load_options);
  ASSERT_TRUE(load_or.ok());

  HttpTrafficOptions traffic_options;
  traffic_options.num_points = 1200;
  auto traffic_or = GenerateHttpTraffic(traffic_options);
  ASSERT_TRUE(traffic_or.ok());

  // --- Simulation wiring driven by the registry.
  ModelNoise vehicle_noise;  // paper §4.1 defaults (0.05)
  SimulationSourceConfig vehicle;
  vehicle.id = 1;
  vehicle.data = trajectory_or.value().observed;
  vehicle.model = MakeLinearModel(2, 0.1, vehicle_noise).value();
  vehicle.delta = registry.EffectiveDelta(1).value();

  ModelNoise load_noise;
  load_noise.process_variance = 25.0;
  load_noise.measurement_variance = 25.0;
  SimulationSourceConfig load;
  load.id = 2;
  load.data = load_or.value();
  load.model = MakeLinearModel(1, 1.0, load_noise).value();
  load.delta = registry.EffectiveDelta(2).value();
  EXPECT_DOUBLE_EQ(load.delta, 80.0);  // tightest of the two queries

  SimulationSourceConfig traffic;
  traffic.id = 3;
  traffic.data = traffic_or.value();
  traffic.model = MakeLinearModel(1, 1.0, load_noise).value();
  traffic.delta = registry.EffectiveDelta(3).value();
  traffic.smoothing_factor = *registry.EffectiveSmoothing(3).value();

  auto sim_or = DsmsSimulation::Create({vehicle, load, traffic});
  ASSERT_TRUE(sim_or.ok());
  auto reports_or = std::move(sim_or).value().Run();
  ASSERT_TRUE(reports_or.ok());
  const auto& reports = reports_or.value();
  ASSERT_EQ(reports.size(), 3u);

  for (const SourceReport& report : reports) {
    // Every source must be suppressing (not sending everything) and
    // keeping its tick-time answers reasonable relative to the precision.
    EXPECT_LT(report.update_percentage, 100.0) << "source " << report.id;
    EXPECT_GT(report.readings, 0) << "source " << report.id;
    EXPECT_GT(report.energy_send_all, report.energy_spent)
        << "source " << report.id;
  }
  // The vehicle error metric is |dx| + |dy| <= 2 * delta at tick time.
  EXPECT_LE(reports[0].max_error, 2.0 * vehicle.delta + 1.0);
  // Update ticks correct toward (not exactly onto) the reading, so the
  // max can exceed delta transiently; the average must respect it.
  EXPECT_LE(reports[1].avg_error, load.delta);
}

TEST(EndToEndTest, AllocationFeedsBackIntoDeltas) {
  // Calibrate per-source chattiness with a probe run, then let the
  // allocator pick deltas under a bandwidth budget and verify the
  // realized update rate honors it.
  PowerLoadOptions load_options;
  load_options.num_points = 1000;
  auto series_or = GeneratePowerLoad(load_options);
  ASSERT_TRUE(series_or.ok());

  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 100.0;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();

  // Probe at a reference precision.
  SimulationSourceConfig probe;
  probe.id = 1;
  probe.data = series_or.value();
  probe.model = model;
  probe.delta = 50.0;
  auto probe_sim_or = DsmsSimulation::Create({probe});
  ASSERT_TRUE(probe_sim_or.ok());
  auto probe_reports_or = std::move(probe_sim_or).value().Run();
  ASSERT_TRUE(probe_reports_or.ok());
  const double probe_rate =
      probe_reports_or.value()[0].update_percentage / 100.0;

  SourceLoadEstimate estimate;
  estimate.source_id = 1;
  estimate.required_precision = 20.0;  // user asks for tight precision
  estimate.reference_rate = probe_rate;
  estimate.reference_precision = 50.0;

  // Budget below the predicted requirement forces inflation.
  const double predicted_required =
      std::min(1.0, probe_rate * 50.0 / 20.0);
  const double budget = predicted_required / 2.0;
  auto plan_or = AllocatePrecision({estimate}, budget);
  ASSERT_TRUE(plan_or.ok());
  EXPECT_GT(plan_or.value().inflation, 1.0);

  // Re-run at the allocated precision: the realized rate should be near
  // or below the budget (the 1/delta model is approximate, so allow 2x).
  SimulationSourceConfig allocated = probe;
  allocated.delta = plan_or.value().allocations[0].allocated_precision;
  auto final_sim_or = DsmsSimulation::Create({allocated});
  ASSERT_TRUE(final_sim_or.ok());
  auto final_reports_or = std::move(final_sim_or).value().Run();
  ASSERT_TRUE(final_reports_or.ok());
  EXPECT_LT(final_reports_or.value()[0].update_percentage / 100.0,
            2.0 * budget);
}

}  // namespace
}  // namespace dkf
