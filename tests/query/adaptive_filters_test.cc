#include "query/adaptive_filters.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dkf {
namespace {

AdaptiveFiltersOptions DefaultOptions() {
  AdaptiveFiltersOptions options;
  options.total_width = 8.0;
  options.period = 20;
  return options;
}

TEST(AdaptiveFiltersTest, CreateValidates) {
  EXPECT_FALSE(AdaptiveFilterBank::Create(0, DefaultOptions()).ok());
  AdaptiveFiltersOptions options = DefaultOptions();
  options.total_width = 0.0;
  EXPECT_FALSE(AdaptiveFilterBank::Create(2, options).ok());
  options = DefaultOptions();
  options.shrink_fraction = 0.0;
  EXPECT_FALSE(AdaptiveFilterBank::Create(2, options).ok());
  options = DefaultOptions();
  options.shrink_fraction = 1.0;
  EXPECT_FALSE(AdaptiveFilterBank::Create(2, options).ok());
  options = DefaultOptions();
  options.period = 0;
  EXPECT_FALSE(AdaptiveFilterBank::Create(2, options).ok());
  options = DefaultOptions();
  options.min_width = 5.0;  // 2 * 5 > 8
  EXPECT_FALSE(AdaptiveFilterBank::Create(2, options).ok());
  EXPECT_TRUE(AdaptiveFilterBank::Create(2, DefaultOptions()).ok());
}

TEST(AdaptiveFiltersTest, StartsWithEvenSplit) {
  auto bank_or = AdaptiveFilterBank::Create(4, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(bank_or.value().width(i), 2.0);
  }
}

TEST(AdaptiveFiltersTest, FirstReadingAlwaysTransmits) {
  auto bank_or = AdaptiveFilterBank::Create(2, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  auto sent_or = bank.Step({0.0, 100.0});
  ASSERT_TRUE(sent_or.ok());
  EXPECT_TRUE(sent_or.value()[0]);
  EXPECT_TRUE(sent_or.value()[1]);
}

TEST(AdaptiveFiltersTest, ReadingCountValidated) {
  auto bank_or = AdaptiveFilterBank::Create(2, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  EXPECT_FALSE(bank.Step({1.0}).ok());
  EXPECT_FALSE(bank.Step({1.0, 2.0, 3.0}).ok());
}

TEST(AdaptiveFiltersTest, TransmitsOnlyOnBoundViolation) {
  auto bank_or = AdaptiveFilterBank::Create(1, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  ASSERT_TRUE(bank.Step({10.0}).ok());  // initial
  // Width 8 -> half-width 4: stay inside.
  auto quiet_or = bank.Step({13.0});
  ASSERT_TRUE(quiet_or.ok());
  EXPECT_FALSE(quiet_or.value()[0]);
  auto violation_or = bank.Step({14.5});
  ASSERT_TRUE(violation_or.ok());
  EXPECT_TRUE(violation_or.value()[0]);
  EXPECT_DOUBLE_EQ(bank.server_value(0), 14.5);  // recentered
}

TEST(AdaptiveFiltersTest, TotalWidthConservedThroughReallocation) {
  auto bank_or = AdaptiveFilterBank::Create(3, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  Rng rng(1);
  double drifting = 0.0;
  for (int i = 0; i < 500; ++i) {
    drifting += rng.Gaussian(0.5, 1.0);
    ASSERT_TRUE(bank.Step({drifting, 1.0, rng.Uniform(-1.0, 1.0)}).ok());
    EXPECT_NEAR(bank.TotalWidth(), 8.0, 1e-9) << "tick " << i;
  }
}

TEST(AdaptiveFiltersTest, VolatileSourceEarnsWiderBound) {
  // Source 0 drifts hard (pays updates constantly); source 1 is frozen.
  // After several reallocation rounds source 0 should hold most of the
  // width budget.
  auto bank_or = AdaptiveFilterBank::Create(2, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  double drifting = 0.0;
  for (int i = 0; i < 1000; ++i) {
    drifting += 3.0;
    ASSERT_TRUE(bank.Step({drifting, 5.0}).ok());
  }
  EXPECT_GT(bank.width(0), 3.0 * bank.width(1));
}

TEST(AdaptiveFiltersTest, AdaptiveBeatsStaticOnHeterogeneousSources) {
  // Versus a static even split of the same total width: adaptivity should
  // reduce the total number of updates when sources differ in
  // volatility.
  Rng rng(2);
  std::vector<double> fast;
  std::vector<double> slow;
  double f = 0.0;
  for (int i = 0; i < 3000; ++i) {
    f += rng.Gaussian(0.8, 0.8);
    fast.push_back(f);
    slow.push_back(3.0 + 0.1 * std::sin(0.01 * i));
  }

  AdaptiveFiltersOptions adaptive_options = DefaultOptions();
  auto adaptive = AdaptiveFilterBank::Create(2, adaptive_options).value();
  // Static: same protocol with a reallocation that never moves width —
  // emulate by an adaptive bank with an (effectively) infinite period.
  AdaptiveFiltersOptions static_options = DefaultOptions();
  static_options.period = 1 << 30;
  auto fixed = AdaptiveFilterBank::Create(2, static_options).value();

  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_TRUE(adaptive.Step({fast[i], slow[i]}).ok());
    ASSERT_TRUE(fixed.Step({fast[i], slow[i]}).ok());
  }
  const int64_t adaptive_total =
      adaptive.stats(0).updates_sent + adaptive.stats(1).updates_sent;
  const int64_t fixed_total =
      fixed.stats(0).updates_sent + fixed.stats(1).updates_sent;
  EXPECT_LT(adaptive_total, fixed_total);
}

TEST(AdaptiveFiltersTest, ServerErrorBoundedByHalfWidth) {
  auto bank_or = AdaptiveFilterBank::Create(1, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  Rng rng(3);
  double value = 0.0;
  for (int i = 0; i < 2000; ++i) {
    value += rng.Gaussian(0.0, 1.0);
    ASSERT_TRUE(bank.Step({value}).ok());
    EXPECT_LE(std::fabs(bank.server_value(0) - value),
              bank.width(0) / 2.0 + 1e-9);
  }
}

TEST(AdaptiveFiltersTest, QuietBankRedistributesEvenly) {
  // With zero burden everywhere, reallocation must not drain anyone.
  auto bank_or = AdaptiveFilterBank::Create(2, DefaultOptions());
  ASSERT_TRUE(bank_or.ok());
  AdaptiveFilterBank bank = std::move(bank_or).value();
  ASSERT_TRUE(bank.Step({1.0, 2.0}).ok());  // initial updates
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(bank.Step({1.0, 2.0}).ok());
  }
  EXPECT_NEAR(bank.width(0), bank.width(1), 1e-6);
  EXPECT_NEAR(bank.TotalWidth(), 8.0, 1e-9);
}

}  // namespace
}  // namespace dkf
