#include "query/registry.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

ContinuousQuery MakeQuery(int id, int source, double precision) {
  ContinuousQuery query;
  query.id = id;
  query.source_id = source;
  query.precision = precision;
  return query;
}

TEST(RegistryTest, AddValidates) {
  QueryRegistry registry;
  EXPECT_FALSE(registry.AddQuery(MakeQuery(1, 1, 0.0)).ok());
  EXPECT_FALSE(registry.AddQuery(MakeQuery(1, 1, -2.0)).ok());
  ContinuousQuery bad_smoothing = MakeQuery(1, 1, 1.0);
  bad_smoothing.smoothing_factor = 0.0;
  EXPECT_FALSE(registry.AddQuery(bad_smoothing).ok());
  EXPECT_TRUE(registry.AddQuery(MakeQuery(1, 1, 1.0)).ok());
  EXPECT_EQ(registry.AddQuery(MakeQuery(1, 2, 1.0)).code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, RemoveLifecycle) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddQuery(MakeQuery(1, 1, 1.0)).ok());
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_TRUE(registry.RemoveQuery(1).ok());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.RemoveQuery(1).code(), StatusCode::kNotFound);
}

TEST(RegistryTest, EffectiveDeltaIsTightestQuery) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddQuery(MakeQuery(1, 7, 5.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(2, 7, 2.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(3, 7, 9.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(4, 8, 1.0)).ok());
  auto delta_or = registry.EffectiveDelta(7);
  ASSERT_TRUE(delta_or.ok());
  EXPECT_DOUBLE_EQ(delta_or.value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.EffectiveDelta(8).value(), 1.0);
  EXPECT_EQ(registry.EffectiveDelta(9).status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, EffectiveDeltaUpdatesOnRemoval) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddQuery(MakeQuery(1, 1, 5.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(2, 1, 2.0)).ok());
  ASSERT_TRUE(registry.RemoveQuery(2).ok());
  EXPECT_DOUBLE_EQ(registry.EffectiveDelta(1).value(), 5.0);
}

TEST(RegistryTest, EffectiveSmoothingSmallestF) {
  QueryRegistry registry;
  ContinuousQuery q1 = MakeQuery(1, 3, 1.0);
  q1.smoothing_factor = 1e-5;
  ContinuousQuery q2 = MakeQuery(2, 3, 1.0);
  q2.smoothing_factor = 1e-8;
  ContinuousQuery q3 = MakeQuery(3, 3, 1.0);  // no smoothing requested
  ASSERT_TRUE(registry.AddQuery(q1).ok());
  ASSERT_TRUE(registry.AddQuery(q2).ok());
  ASSERT_TRUE(registry.AddQuery(q3).ok());
  auto smoothing_or = registry.EffectiveSmoothing(3);
  ASSERT_TRUE(smoothing_or.ok());
  ASSERT_TRUE(smoothing_or.value().has_value());
  EXPECT_DOUBLE_EQ(*smoothing_or.value(), 1e-8);
}

TEST(RegistryTest, EffectiveSmoothingAbsentWhenNoneAsked) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddQuery(MakeQuery(1, 3, 1.0)).ok());
  auto smoothing_or = registry.EffectiveSmoothing(3);
  ASSERT_TRUE(smoothing_or.ok());
  EXPECT_FALSE(smoothing_or.value().has_value());
  EXPECT_EQ(registry.EffectiveSmoothing(4).status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, QueriesForSourceAndActiveSources) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddQuery(MakeQuery(1, 5, 1.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(2, 5, 2.0)).ok());
  ASSERT_TRUE(registry.AddQuery(MakeQuery(3, 9, 2.0)).ok());
  EXPECT_EQ(registry.QueriesForSource(5).size(), 2u);
  EXPECT_EQ(registry.QueriesForSource(9).size(), 1u);
  EXPECT_TRUE(registry.QueriesForSource(6).empty());
  EXPECT_EQ(registry.ActiveSources(), (std::vector<int>{5, 9}));
}

}  // namespace
}  // namespace dkf
