#include "query/precision_allocation.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

SourceLoadEstimate MakeEstimate(int id, double required, double rate,
                                double reference = 1.0) {
  SourceLoadEstimate estimate;
  estimate.source_id = id;
  estimate.required_precision = required;
  estimate.reference_rate = rate;
  estimate.reference_precision = reference;
  return estimate;
}

TEST(AllocationTest, Validation) {
  EXPECT_FALSE(AllocatePrecision({}, 1.0).ok());
  EXPECT_FALSE(
      AllocatePrecision({MakeEstimate(1, 1.0, 0.5)}, 0.0).ok());
  EXPECT_FALSE(
      AllocatePrecision({MakeEstimate(1, 0.0, 0.5)}, 1.0).ok());
  EXPECT_FALSE(
      AllocatePrecision({MakeEstimate(1, 1.0, 1.5)}, 1.0).ok());
  EXPECT_FALSE(AllocatePrecision(
                   {MakeEstimate(1, 1.0, 0.5), MakeEstimate(1, 1.0, 0.5)},
                   1.0)
                   .ok());
}

TEST(AllocationTest, SufficientBudgetKeepsRequiredPrecision) {
  auto plan_or = AllocatePrecision(
      {MakeEstimate(1, 2.0, 0.2), MakeEstimate(2, 4.0, 0.4)}, 10.0);
  ASSERT_TRUE(plan_or.ok());
  const AllocationPlan& plan = plan_or.value();
  EXPECT_DOUBLE_EQ(plan.inflation, 1.0);
  EXPECT_DOUBLE_EQ(plan.allocations[0].allocated_precision, 2.0);
  EXPECT_DOUBLE_EQ(plan.allocations[1].allocated_precision, 4.0);
}

TEST(AllocationTest, TightBudgetInflatesProportionally) {
  // Both sources predict rate 0.5 at their required precision -> total 1.0.
  // Budget 0.5 forces inflation 2x.
  auto plan_or = AllocatePrecision(
      {MakeEstimate(1, 1.0, 0.5), MakeEstimate(2, 2.0, 0.5, 2.0)}, 0.5);
  ASSERT_TRUE(plan_or.ok());
  const AllocationPlan& plan = plan_or.value();
  EXPECT_NEAR(plan.inflation, 2.0, 1e-12);
  EXPECT_NEAR(plan.allocations[0].allocated_precision, 2.0, 1e-12);
  EXPECT_NEAR(plan.allocations[1].allocated_precision, 4.0, 1e-12);
  EXPECT_LE(plan.predicted_total_rate, 0.5 + 1e-12);
}

TEST(AllocationTest, RatePredictionFollowsInverseLaw) {
  auto plan_or =
      AllocatePrecision({MakeEstimate(1, 4.0, 0.8, 1.0)}, 10.0);
  ASSERT_TRUE(plan_or.ok());
  // rate(4.0) = 0.8 * 1.0 / 4.0 = 0.2.
  EXPECT_NEAR(plan_or.value().allocations[0].predicted_rate, 0.2, 1e-12);
}

TEST(AllocationTest, RateCappedAtOnePerTick) {
  auto plan_or =
      AllocatePrecision({MakeEstimate(1, 0.01, 0.9, 1.0)}, 10.0);
  ASSERT_TRUE(plan_or.ok());
  EXPECT_DOUBLE_EQ(plan_or.value().allocations[0].predicted_rate, 1.0);
}

TEST(AllocationTest, InflationNeverBelowOne) {
  // Loose requirements and a huge budget: do not tighten beyond the
  // requirement (that would waste bandwidth for precision nobody asked
  // for).
  auto plan_or = AllocatePrecision({MakeEstimate(1, 5.0, 0.1)}, 100.0);
  ASSERT_TRUE(plan_or.ok());
  EXPECT_DOUBLE_EQ(plan_or.value().inflation, 1.0);
  EXPECT_DOUBLE_EQ(plan_or.value().allocations[0].allocated_precision, 5.0);
}

}  // namespace
}  // namespace dkf
