#include "query/aggregate.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

AggregateQuery MakeQuery(std::vector<int> sources, double precision) {
  AggregateQuery query;
  query.id = 1;
  query.source_ids = std::move(sources);
  query.precision = precision;
  return query;
}

TEST(AggregateSplitTest, Validation) {
  EXPECT_FALSE(SplitAggregatePrecision(MakeQuery({}, 1.0)).ok());
  EXPECT_FALSE(SplitAggregatePrecision(MakeQuery({1, 2}, 0.0)).ok());
  EXPECT_FALSE(SplitAggregatePrecision(MakeQuery({1, 1}, 1.0)).ok());
  EXPECT_FALSE(
      SplitAggregatePrecision(MakeQuery({1, 2}, 1.0), {1.0}).ok());
  EXPECT_FALSE(
      SplitAggregatePrecision(MakeQuery({1, 2}, 1.0), {1.0, 0.0}).ok());
  EXPECT_TRUE(SplitAggregatePrecision(MakeQuery({1, 2}, 1.0)).ok());
}

TEST(AggregateSplitTest, UniformSplitSumsToPrecision) {
  auto deltas_or = SplitAggregatePrecision(MakeQuery({1, 2, 3, 4}, 8.0));
  ASSERT_TRUE(deltas_or.ok());
  double total = 0.0;
  for (double delta : deltas_or.value()) {
    EXPECT_DOUBLE_EQ(delta, 2.0);
    total += delta;
  }
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(AggregateSplitTest, WeightedSplitProportional) {
  auto deltas_or =
      SplitAggregatePrecision(MakeQuery({1, 2}, 9.0), {2.0, 1.0});
  ASSERT_TRUE(deltas_or.ok());
  EXPECT_DOUBLE_EQ(deltas_or.value()[0], 6.0);
  EXPECT_DOUBLE_EQ(deltas_or.value()[1], 3.0);
}

TEST(AggregateSplitTest, SingleSourceGetsFullBudget) {
  auto deltas_or = SplitAggregatePrecision(MakeQuery({7}, 5.0));
  ASSERT_TRUE(deltas_or.ok());
  ASSERT_EQ(deltas_or.value().size(), 1u);
  EXPECT_DOUBLE_EQ(deltas_or.value()[0], 5.0);
}

}  // namespace
}  // namespace dkf
