#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(ErrorAccumulatorTest, EmptyIsZero) {
  ErrorAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  EXPECT_DOUBLE_EQ(acc.rmse(), 0.0);
}

TEST(ErrorAccumulatorTest, ComputesMoments) {
  ErrorAccumulator acc;
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_NEAR(acc.rmse(), std::sqrt(14.0 / 3.0), 1e-12);
}

TEST(ErrorAccumulatorTest, MaxTracksLargest) {
  ErrorAccumulator acc;
  acc.Add(5.0);
  acc.Add(1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TimeSeries MakeSeries(std::initializer_list<double> values) {
  TimeSeries series(1);
  double t = 0.0;
  for (double v : values) {
    EXPECT_TRUE(series.Append(t, v).ok());
    t += 1.0;
  }
  return series;
}

TEST(SeriesDiffTest, MeanAbsDiff) {
  const TimeSeries a = MakeSeries({1.0, 2.0, 3.0});
  const TimeSeries b = MakeSeries({2.0, 2.0, 1.0});
  auto mad_or = SeriesMeanAbsDiff(a, b);
  ASSERT_TRUE(mad_or.ok());
  EXPECT_DOUBLE_EQ(mad_or.value(), 1.0);
}

TEST(SeriesDiffTest, MaxAbsDiff) {
  const TimeSeries a = MakeSeries({1.0, 2.0, 3.0});
  const TimeSeries b = MakeSeries({2.0, 2.0, -1.0});
  auto max_or = SeriesMaxAbsDiff(a, b);
  ASSERT_TRUE(max_or.ok());
  EXPECT_DOUBLE_EQ(max_or.value(), 4.0);
}

TEST(SeriesDiffTest, IdenticalSeriesZero) {
  const TimeSeries a = MakeSeries({1.0, 2.0});
  EXPECT_DOUBLE_EQ(SeriesMeanAbsDiff(a, a).value(), 0.0);
  EXPECT_DOUBLE_EQ(SeriesMaxAbsDiff(a, a).value(), 0.0);
}

TEST(SeriesDiffTest, Validation) {
  const TimeSeries a = MakeSeries({1.0, 2.0});
  const TimeSeries b = MakeSeries({1.0});
  EXPECT_FALSE(SeriesMeanAbsDiff(a, b).ok());

  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(SeriesMaxAbsDiff(wide, wide).ok());

  const TimeSeries empty(1);
  EXPECT_FALSE(SeriesMeanAbsDiff(empty, empty).ok());
}

}  // namespace
}  // namespace dkf
