#include "metrics/report.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dkf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ExperimentRow MakeRow(const std::string& predictor, double delta) {
  ExperimentRow row;
  row.predictor = predictor;
  row.delta = delta;
  row.ticks = 4000;
  row.updates = 301;
  row.update_percentage = 7.525;
  row.avg_error = 1.469;
  row.max_error = 6.25;
  row.rmse = 1.9;
  return row;
}

TEST(ReportTest, RoundTripsRows) {
  const std::string path = TempPath("rows_roundtrip.csv");
  const std::vector<ExperimentRow> rows = {MakeRow("linear", 3.0),
                                           MakeRow("caching", 3.0),
                                           MakeRow("linear", 5.0)};
  ASSERT_TRUE(WriteExperimentRowsCsv(rows, path).ok());
  auto loaded_or = ReadExperimentRowsCsv(path);
  ASSERT_TRUE(loaded_or.ok());
  const auto& loaded = loaded_or.value();
  ASSERT_EQ(loaded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(loaded[i].predictor, rows[i].predictor);
    EXPECT_EQ(loaded[i].delta, rows[i].delta);
    EXPECT_EQ(loaded[i].ticks, rows[i].ticks);
    EXPECT_EQ(loaded[i].updates, rows[i].updates);
    EXPECT_EQ(loaded[i].update_percentage, rows[i].update_percentage);
    EXPECT_EQ(loaded[i].avg_error, rows[i].avg_error);
    EXPECT_EQ(loaded[i].max_error, rows[i].max_error);
    EXPECT_EQ(loaded[i].rmse, rows[i].rmse);
  }
  std::remove(path.c_str());
}

TEST(ReportTest, EmptyRowListWritesHeaderOnly) {
  const std::string path = TempPath("rows_empty.csv");
  ASSERT_TRUE(WriteExperimentRowsCsv({}, path).ok());
  auto loaded_or = ReadExperimentRowsCsv(path);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_TRUE(loaded_or.value().empty());
  std::remove(path.c_str());
}

TEST(ReportTest, RejectsMissingHeader) {
  const std::string path = TempPath("rows_bad_header.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("model,delta\nlinear,3\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadExperimentRowsCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ReportTest, RejectsMalformedCells) {
  const std::string path = TempPath("rows_bad_cell.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(
      "predictor,delta,ticks,updates,update_percentage,avg_error,"
      "max_error,rmse\nlinear,3,abc,301,7.5,1.4,6.2,1.9\n",
      f);
  std::fclose(f);
  EXPECT_EQ(ReadExperimentRowsCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ReportTest, MissingFileErrors) {
  EXPECT_EQ(ReadExperimentRowsCsv("/nonexistent/rows.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dkf
