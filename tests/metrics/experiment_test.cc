#include "metrics/experiment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

TimeSeries Ramp(size_t n, double slope) {
  TimeSeries series(1);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        series.Append(static_cast<double>(i), slope * static_cast<double>(i))
            .ok());
  }
  return series;
}

KalmanPredictor LinearPredictor() {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

TEST(ExperimentTest, ValidatesWidth) {
  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(
      RunSuppressionExperiment(wide, LinearPredictor(), 1.0).ok());
}

TEST(ExperimentTest, RowMetricsConsistent) {
  const TimeSeries ramp = Ramp(1000, 2.0);
  auto row_or = RunSuppressionExperiment(ramp, LinearPredictor(), 2.0);
  ASSERT_TRUE(row_or.ok());
  const ExperimentRow& row = row_or.value();
  EXPECT_EQ(row.predictor, "linear");
  EXPECT_DOUBLE_EQ(row.delta, 2.0);
  EXPECT_EQ(row.ticks, 1000);
  EXPECT_NEAR(row.update_percentage,
              100.0 * static_cast<double>(row.updates) / 1000.0, 1e-9);
  EXPECT_LE(row.avg_error, row.max_error);
  EXPECT_GE(row.rmse, row.avg_error - 1e-9);  // RMSE >= mean for any data
}

TEST(ExperimentTest, LinearPredictorBeatsCachingOnRamp) {
  const TimeSeries ramp = Ramp(1000, 2.0);
  auto caching_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(caching_or.ok());
  auto kf_row_or = RunSuppressionExperiment(ramp, LinearPredictor(), 2.0);
  auto cache_row_or =
      RunSuppressionExperiment(ramp, caching_or.value(), 2.0);
  ASSERT_TRUE(kf_row_or.ok());
  ASSERT_TRUE(cache_row_or.ok());
  EXPECT_LT(kf_row_or.value().update_percentage,
            0.2 * cache_row_or.value().update_percentage);
}

TEST(ExperimentTest, MirrorCheckOptionRuns) {
  const TimeSeries ramp = Ramp(300, 1.0);
  ExperimentOptions options;
  options.check_mirror_consistency = true;
  EXPECT_TRUE(
      RunSuppressionExperiment(ramp, LinearPredictor(), 1.5, options).ok());
}

TEST(ExperimentTest, SweepOrderingAndSize) {
  const TimeSeries ramp = Ramp(300, 1.0);
  const KalmanPredictor linear = LinearPredictor();
  auto caching_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(caching_or.ok());
  const std::vector<const Predictor*> prototypes = {&linear,
                                                    &caching_or.value()};
  auto rows_or = RunSweep(ramp, prototypes, {1.0, 2.0, 4.0});
  ASSERT_TRUE(rows_or.ok());
  const auto& rows = rows_or.value();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_DOUBLE_EQ(rows[0].delta, 1.0);
  EXPECT_EQ(rows[0].predictor, "linear");
  EXPECT_EQ(rows[1].predictor, "caching");
  EXPECT_DOUBLE_EQ(rows[4].delta, 4.0);
}

TEST(ExperimentTest, SweepValidatesEmptyInputs) {
  const TimeSeries ramp = Ramp(10, 1.0);
  const KalmanPredictor linear = LinearPredictor();
  EXPECT_FALSE(RunSweep(ramp, {}, {1.0}).ok());
  EXPECT_FALSE(RunSweep(ramp, {&linear}, {}).ok());
}

TEST(ExperimentTest, UpdatesDecreaseWithDelta) {
  // Monotonicity property of threshold suppression: a wider precision
  // never needs more updates (on the same data/model).
  Rng rng(5);
  TimeSeries noisy(1);
  double value = 0.0;
  for (size_t i = 0; i < 1500; ++i) {
    value += rng.Gaussian(0.3, 1.0);
    ASSERT_TRUE(noisy.Append(static_cast<double>(i), value).ok());
  }
  const KalmanPredictor linear = LinearPredictor();
  int64_t prev_updates = INT64_MAX;
  for (double delta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto row_or = RunSuppressionExperiment(noisy, linear, delta);
    ASSERT_TRUE(row_or.ok());
    EXPECT_LE(row_or.value().updates, prev_updates) << "delta " << delta;
    prev_updates = row_or.value().updates;
  }
}

}  // namespace
}  // namespace dkf
