#include "metrics/consistency.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

TimeSeries NoisyConstant(size_t n, double stddev, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(series
                    .Append(static_cast<double>(i),
                            5.0 + rng.Gaussian(0.0, stddev))
                    .ok());
  }
  return series;
}

KalmanFilter ConstantFilter(double q, double r) {
  ModelNoise noise;
  noise.process_variance = q;
  noise.measurement_variance = r;
  return MakeConstantModel(1, noise).value().MakeFilter().value();
}

TEST(ConsistencyTest, Validation) {
  const TimeSeries series = NoisyConstant(100, 1.0, 1);
  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(
      EvaluateNisConsistency(ConstantFilter(1e-4, 1.0), wide).ok());
  EXPECT_FALSE(EvaluateNisConsistency(ConstantFilter(1e-4, 1.0), series,
                                      /*warmup=*/100)
                   .ok());
}

TEST(ConsistencyTest, WellSpecifiedFilterIsConsistent) {
  // True noise variance 1.0, assumed R = 1.0: mean NIS ~ 1 (m = 1) and
  // ~5% of samples above the 95% quantile.
  const TimeSeries series = NoisyConstant(5000, 1.0, 2);
  auto result_or =
      EvaluateNisConsistency(ConstantFilter(1e-6, 1.0), series);
  ASSERT_TRUE(result_or.ok());
  EXPECT_NEAR(result_or.value().mean_nis, 1.0, 0.15);
  EXPECT_NEAR(result_or.value().exceed_95_fraction, 0.05, 0.02);
}

TEST(ConsistencyTest, OptimisticRInflatesNis) {
  // Assumed R 100x too small: innovations look like constant outliers.
  const TimeSeries series = NoisyConstant(3000, 1.0, 3);
  auto result_or =
      EvaluateNisConsistency(ConstantFilter(1e-6, 0.01), series);
  ASSERT_TRUE(result_or.ok());
  EXPECT_GT(result_or.value().mean_nis, 5.0);
  EXPECT_GT(result_or.value().exceed_95_fraction, 0.3);
}

TEST(ConsistencyTest, PessimisticRDeflatesNis) {
  const TimeSeries series = NoisyConstant(3000, 1.0, 4);
  auto result_or =
      EvaluateNisConsistency(ConstantFilter(1e-6, 100.0), series);
  ASSERT_TRUE(result_or.ok());
  EXPECT_LT(result_or.value().mean_nis, 0.3);
  EXPECT_LT(result_or.value().exceed_95_fraction, 0.01);
}

TEST(ConsistencyTest, SampleCountExcludesWarmup) {
  const TimeSeries series = NoisyConstant(120, 1.0, 5);
  auto result_or = EvaluateNisConsistency(ConstantFilter(1e-6, 1.0), series,
                                          /*warmup=*/20);
  ASSERT_TRUE(result_or.ok());
  EXPECT_EQ(result_or.value().samples, 100);
}

}  // namespace
}  // namespace dkf
