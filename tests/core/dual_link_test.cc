#include "core/dual_link.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

KalmanPredictor MakeConstantPredictor(size_t dims = 1) {
  auto model_or = MakeConstantModel(dims, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

KalmanPredictor MakeLinearPredictor(size_t axes = 1, double dt = 1.0) {
  auto model_or = MakeLinearModel(axes, dt, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

TEST(DualLinkTest, CreateValidatesDelta) {
  const KalmanPredictor predictor = MakeConstantPredictor();
  DualLinkOptions options;
  options.delta = 0.0;
  EXPECT_FALSE(DualLink::Create(predictor, options).ok());
  options.delta = -1.0;
  EXPECT_FALSE(DualLink::Create(predictor, options).ok());
  options.delta = 1.0;
  EXPECT_TRUE(DualLink::Create(predictor, options).ok());
}

TEST(DualLinkTest, StepValidatesReadingWidth) {
  const KalmanPredictor predictor = MakeConstantPredictor(2);
  DualLinkOptions options;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  EXPECT_FALSE(link.Step(Vector{1.0}).ok());
}

TEST(DualLinkTest, FirstDeviantReadingIsSent) {
  const KalmanPredictor predictor = MakeConstantPredictor();
  DualLinkOptions options;
  options.delta = 1.0;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  auto step_or = link.Step(Vector{50.0});
  ASSERT_TRUE(step_or.ok());
  EXPECT_TRUE(step_or.value().sent);
}

TEST(DualLinkTest, SteadyValueIsSuppressedAfterConvergence) {
  const KalmanPredictor predictor = MakeConstantPredictor();
  DualLinkOptions options;
  options.delta = 0.5;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  int sent_late = 0;
  for (int i = 0; i < 100; ++i) {
    auto step_or = link.Step(Vector{10.0});
    ASSERT_TRUE(step_or.ok());
    if (i > 5 && step_or.value().sent) ++sent_late;
  }
  EXPECT_EQ(sent_late, 0);
  EXPECT_LT(link.stats().updates_sent, 5);
}

TEST(DualLinkTest, MirrorConsistencyOnRandomStream) {
  // THE core invariant of the architecture: with the debug check enabled,
  // a long random stream must never trip it.
  const KalmanPredictor predictor = MakeLinearPredictor();
  DualLinkOptions options;
  options.delta = 2.0;
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Rng rng(77);
  double value = 0.0;
  for (int i = 0; i < 5000; ++i) {
    value += rng.Gaussian(0.1, 1.0);
    ASSERT_TRUE(link.Step(Vector{value}).ok()) << "tick " << i;
  }
  EXPECT_TRUE(link.mirror().StateEquals(link.server()));
}

TEST(DualLinkTest, MirrorConsistencyWithCachingPredictor) {
  auto predictor_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(predictor_or.ok());
  DualLinkOptions options;
  options.delta = 1.0;
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(predictor_or.value(), options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Rng rng(78);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(link.Step(Vector{rng.Uniform(-10.0, 10.0)}).ok());
  }
}

TEST(DualLinkTest, ServerErrorBoundedByDeltaForCachingPredictor) {
  // For the caching baseline the protocol enforces a hard guarantee: the
  // server value never deviates from the reading by more than delta at
  // the *moment of the tick* (the cached value is refreshed whenever the
  // bound would be violated).
  auto predictor_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(predictor_or.ok());
  DualLinkOptions options;
  options.delta = 2.0;
  auto link_or = DualLink::Create(predictor_or.value(), options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Rng rng(79);
  double value = 0.0;
  for (int i = 0; i < 3000; ++i) {
    value += rng.Gaussian(0.0, 0.8);
    auto step_or = link.Step(Vector{value});
    ASSERT_TRUE(step_or.ok());
    EXPECT_LE(std::fabs(step_or.value().server_value[0] - value),
              options.delta + 1e-12);
  }
}

TEST(DualLinkTest, KalmanServerValueWithinDeltaAfterUpdates) {
  // For the KF predictor, whenever an update IS sent the corrected server
  // value must land near the reading; when suppressed, the prediction was
  // within delta by definition. Either way the tick-time error never
  // exceeds delta.
  const KalmanPredictor predictor = MakeLinearPredictor();
  DualLinkOptions options;
  options.delta = 3.0;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Rng rng(80);
  double value = 0.0;
  double slope = 1.0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 500 == 0) slope = rng.Uniform(-3.0, 3.0);
    value += slope;
    auto step_or = link.Step(Vector{value});
    ASSERT_TRUE(step_or.ok());
    const double err = std::fabs(step_or.value().server_value[0] - value);
    if (step_or.value().sent) {
      // Corrected estimate is a blend of prediction and measurement, but
      // with a converged gain it sits close to the measurement.
      EXPECT_LE(err, options.delta + 1.0) << "tick " << i;
    } else {
      EXPECT_LE(err, options.delta + 1e-9) << "tick " << i;
    }
  }
}

TEST(DualLinkTest, LinearKfSuppressesRampAlmostEntirely) {
  // A perfectly linear stream: after the filter locks on, it needs at most
  // an occasional refresh (residual velocity error drifts the coasting
  // prediction until one resync) — versus caching's send-every-tick.
  const KalmanPredictor predictor = MakeLinearPredictor();
  DualLinkOptions options;
  options.delta = 1.0;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  int sent_after_warmup = 0;
  for (int i = 0; i < 500; ++i) {
    auto step_or = link.Step(Vector{2.0 * i});
    ASSERT_TRUE(step_or.ok());
    if (i >= 50 && step_or.value().sent) ++sent_after_warmup;
  }
  EXPECT_LE(sent_after_warmup, 5);
}

TEST(DualLinkTest, CachingSendsContinuouslyOnRamp) {
  // Same ramp through the caching baseline: it must refresh every few
  // ticks forever (slope 2, delta 1 -> every tick).
  auto predictor_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(predictor_or.ok());
  DualLinkOptions options;
  options.delta = 1.0;
  auto link_or = DualLink::Create(predictor_or.value(), options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(link.Step(Vector{2.0 * i}).ok());
  }
  EXPECT_GT(link.stats().UpdatePercentage(), 90.0);
}

TEST(DualLinkTest, StatsCountTicksAndSends) {
  const KalmanPredictor predictor = MakeConstantPredictor();
  DualLinkOptions options;
  options.delta = 1000.0;  // nothing will ever be sent... except nothing
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.Step(Vector{1.0}).ok());
  }
  EXPECT_EQ(link.stats().ticks, 10);
  EXPECT_EQ(link.stats().updates_sent, 0);
  EXPECT_DOUBLE_EQ(link.stats().UpdatePercentage(), 0.0);
}

TEST(DualLinkTest, CoastAdvancesWithoutSending) {
  const KalmanPredictor predictor = MakeLinearPredictor();
  DualLinkOptions options;
  options.delta = 1.0;
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  // Lock onto a ramp, then coast: the prediction should keep extrapolating.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(link.Step(Vector{3.0 * i}).ok());
  }
  const int64_t sent_before = link.stats().updates_sent;
  auto coast_or = link.Coast();
  ASSERT_TRUE(coast_or.ok());
  EXPECT_FALSE(coast_or.value().sent);
  EXPECT_EQ(link.stats().updates_sent, sent_before);
  EXPECT_NEAR(coast_or.value().server_value[0], 3.0 * 50, 1.0);
}

TEST(DualLinkTest, UpdatePercentageMath) {
  LinkStats stats;
  stats.ticks = 200;
  stats.updates_sent = 50;
  EXPECT_DOUBLE_EQ(stats.UpdatePercentage(), 25.0);
  LinkStats empty;
  EXPECT_DOUBLE_EQ(empty.UpdatePercentage(), 0.0);
}

TEST(DualLinkTest, ComponentDeltasValidated) {
  const KalmanPredictor predictor = MakeLinearPredictor(2, 0.1);
  DualLinkOptions options;
  options.component_deltas = {1.0};  // wrong arity
  EXPECT_FALSE(DualLink::Create(predictor, options).ok());
  options.component_deltas = {1.0, -1.0};
  EXPECT_FALSE(DualLink::Create(predictor, options).ok());
  options.component_deltas = {1.0, 10.0};
  EXPECT_TRUE(DualLink::Create(predictor, options).ok());
}

TEST(DualLinkTest, ComponentDeltasGateEachAttribute) {
  // X must stay within 1, Y within 1000: a stream whose Y drifts hard but
  // X is steady should trigger only on X excursions.
  const KalmanPredictor predictor = MakeConstantPredictor(2);
  DualLinkOptions options;
  options.component_deltas = {1.0, 1000.0};
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();

  // Initial sync.
  ASSERT_TRUE(link.Step(Vector{0.0, 0.0}).ok());
  // Y drifts by 20/tick (way below its 1000 width), X constant.
  int sent = 0;
  for (int i = 1; i <= 40; ++i) {
    auto step_or = link.Step(Vector{0.0, 20.0 * i});
    ASSERT_TRUE(step_or.ok());
    if (step_or.value().sent) ++sent;
  }
  EXPECT_EQ(sent, 0);
  // Now X jumps past its tight width: must transmit.
  auto jump_or = link.Step(Vector{5.0, 20.0 * 41});
  ASSERT_TRUE(jump_or.ok());
  EXPECT_TRUE(jump_or.value().sent);
}

TEST(DualLinkTest, UniformComponentDeltasMatchMaxAbs) {
  // With equal per-component widths the rule coincides with kMaxAbs.
  const KalmanPredictor a = MakeLinearPredictor(2, 0.1);
  DualLinkOptions uniform;
  uniform.component_deltas = {2.0, 2.0};
  DualLinkOptions maxabs;
  maxabs.delta = 2.0;
  maxabs.norm = DeviationNorm::kMaxAbs;
  auto link_a = DualLink::Create(a, uniform).value();
  auto link_b = DualLink::Create(a, maxabs).value();
  Rng rng(55);
  double x = 0.0;
  double y = 0.0;
  for (int i = 0; i < 800; ++i) {
    x += rng.Gaussian(0.2, 0.6);
    y += rng.Gaussian(-0.1, 0.6);
    auto sa = link_a.Step(Vector{x, y});
    auto sb = link_b.Step(Vector{x, y});
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_EQ(sa.value().sent, sb.value().sent) << "tick " << i;
  }
}

class DualLinkNormTest : public ::testing::TestWithParam<DeviationNorm> {};

TEST_P(DualLinkNormTest, MirrorConsistencyHoldsUnderEveryNorm) {
  const KalmanPredictor predictor = MakeLinearPredictor(2, 0.1);
  DualLinkOptions options;
  options.delta = 1.5;
  options.norm = GetParam();
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Rng rng(42);
  double x = 0.0;
  double y = 0.0;
  for (int i = 0; i < 1500; ++i) {
    x += rng.Gaussian(0.3, 0.5);
    y += rng.Gaussian(-0.2, 0.5);
    ASSERT_TRUE(link.Step(Vector{x, y}).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, DualLinkNormTest,
                         ::testing::Values(DeviationNorm::kMaxAbs,
                                           DeviationNorm::kL2,
                                           DeviationNorm::kL1));

}  // namespace
}  // namespace dkf
