#include "core/model_switching.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

std::vector<StateModel> TwoModelBank() {
  auto constant_or = MakeConstantModel(1, ModelNoise{});
  auto linear_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(constant_or.ok());
  EXPECT_TRUE(linear_or.ok());
  return {constant_or.value(), linear_or.value()};
}

ModelSwitchingOptions DefaultOptions() {
  ModelSwitchingOptions options;
  options.link.delta = 2.0;
  options.check_interval = 50;
  options.warmup = 30;
  return options;
}

TEST(ModelSwitchingTest, CreateValidates) {
  EXPECT_FALSE(
      ModelSwitchingLink::Create({}, 0, DefaultOptions()).ok());
  EXPECT_FALSE(
      ModelSwitchingLink::Create(TwoModelBank(), 5, DefaultOptions()).ok());
  ModelSwitchingOptions bad = DefaultOptions();
  bad.improvement_threshold = 1.5;
  EXPECT_FALSE(ModelSwitchingLink::Create(TwoModelBank(), 0, bad).ok());
  bad = DefaultOptions();
  bad.check_interval = 0;
  EXPECT_FALSE(ModelSwitchingLink::Create(TwoModelBank(), 0, bad).ok());

  auto mixed_width = TwoModelBank();
  auto wide_or = MakeConstantModel(2, ModelNoise{});
  ASSERT_TRUE(wide_or.ok());
  mixed_width.push_back(wide_or.value());
  EXPECT_FALSE(
      ModelSwitchingLink::Create(mixed_width, 0, DefaultOptions()).ok());

  EXPECT_TRUE(
      ModelSwitchingLink::Create(TwoModelBank(), 0, DefaultOptions()).ok());
}

TEST(ModelSwitchingTest, SwitchesFromConstantToLinearOnRamp) {
  auto link_or = ModelSwitchingLink::Create(TwoModelBank(), /*initial=*/0,
                                            DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  ModelSwitchingLink link = std::move(link_or).value();
  for (int i = 0; i < 600; ++i) {
    auto step_or = link.Step(Vector{3.0 * i});
    ASSERT_TRUE(step_or.ok());
  }
  EXPECT_EQ(link.active_model(), 1u);  // linear
  EXPECT_GE(link.stats().switches, 1);
  // After the switch, the linear model suppresses the ramp; total updates
  // should be far below what the constant model alone would need
  // (slope 3 vs delta 2 -> constant model sends nearly every tick).
  EXPECT_LT(link.stats().updates_sent, 200);
}

TEST(ModelSwitchingTest, StaysOnCorrectModel) {
  auto link_or = ModelSwitchingLink::Create(TwoModelBank(), /*initial=*/1,
                                            DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  ModelSwitchingLink link = std::move(link_or).value();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(link.Step(Vector{2.0 * i}).ok());
  }
  EXPECT_EQ(link.active_model(), 1u);
  EXPECT_EQ(link.stats().switches, 0);
}

TEST(ModelSwitchingTest, HysteresisPreventsThrashingOnNoise) {
  ModelSwitchingOptions options = DefaultOptions();
  options.improvement_threshold = 0.5;  // demand a 2x improvement
  auto link_or = ModelSwitchingLink::Create(TwoModelBank(), 0, options);
  ASSERT_TRUE(link_or.ok());
  ModelSwitchingLink link = std::move(link_or).value();
  // Pure white noise around a constant: neither model is much better, so
  // no switches should fire.
  for (int i = 0; i < 1000; ++i) {
    const double v = 5.0 + std::sin(static_cast<double>(i)) * 0.3;
    ASSERT_TRUE(link.Step(Vector{v}).ok());
  }
  EXPECT_EQ(link.stats().switches, 0);
}

TEST(ModelSwitchingTest, CandidateErrorsTracked) {
  auto link_or =
      ModelSwitchingLink::Create(TwoModelBank(), 0, DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  ModelSwitchingLink link = std::move(link_or).value();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(link.Step(Vector{4.0 * i}).ok());
  }
  // The linear candidate must show a smaller one-step error on a ramp.
  EXPECT_LT(link.candidate_error(1), link.candidate_error(0));
}

TEST(ModelSwitchingTest, TicksAndUpdatesCounted) {
  auto link_or =
      ModelSwitchingLink::Create(TwoModelBank(), 1, DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  ModelSwitchingLink link = std::move(link_or).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(link.Step(Vector{10.0}).ok());
  }
  EXPECT_EQ(link.stats().ticks, 100);
  EXPECT_GE(link.stats().updates_sent, 1);  // at least the initial update
}

TEST(ModelSwitchingTest, TimeVaryingModelKeepsGlobalPhaseAfterSwitch) {
  // Regression: a mid-stream switch to a time-varying (sinusoidal) model
  // must rebase the transition function onto global time — a fresh filter
  // restarting at step 0 would be phase-shifted by the elapsed ticks.
  const double omega = 2.0 * M_PI / 24.0;
  const double theta = 0.3;
  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 1.0;
  ModelNoise adopt;
  adopt.process_variance = 100.0;
  adopt.measurement_variance = 1.0;
  const StateModel sinusoidal =
      MakeSinusoidalModel(omega, theta, 1.0, noise).value();

  // A clean sinusoid (generated with the model's own recurrence so phase
  // alignment is exact).
  TimeSeries stream(1);
  double value = 0.0;
  for (int64_t k = 0; k < 2000; ++k) {
    value += std::cos(omega * static_cast<double>(k) + theta) * 5.0;
    ASSERT_TRUE(stream.Append(static_cast<double>(k), value).ok());
  }

  // Reference: the sinusoidal model running from tick 0.
  auto reference =
      RunSuppressionExperiment(
          stream, KalmanPredictor::Create(sinusoidal).value(), 3.0)
          .value();

  // Switching link starting on the (bad) constant model; the switch to the
  // sinusoidal model happens at some tick not divisible by the period.
  ModelSwitchingOptions options;
  options.link.delta = 3.0;
  options.check_interval = 101;  // not a multiple of the 24-tick period
  options.warmup = 101;
  auto link = ModelSwitchingLink::Create(
                  {MakeConstantModel(1, adopt).value(), sinusoidal}, 0,
                  options)
                  .value();
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(link.Step(Vector{stream.value(i)}).ok());
  }
  ASSERT_EQ(link.active_model(), 1u);
  // Post-switch performance must approach the from-scratch sinusoidal
  // run; a phase-shifted filter would send several times more updates.
  const double switching_pct =
      100.0 * static_cast<double>(link.stats().updates_sent) /
      static_cast<double>(link.stats().ticks);
  EXPECT_LT(switching_pct, reference.update_percentage + 15.0);
}

}  // namespace
}  // namespace dkf
