#include "core/suppression.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(SuppressionTest, MaxAbsNorm) {
  const Vector pred{1.0, 5.0};
  const Vector actual{2.0, 2.0};
  EXPECT_DOUBLE_EQ(Deviation(pred, actual, DeviationNorm::kMaxAbs), 3.0);
}

TEST(SuppressionTest, L2Norm) {
  const Vector pred{0.0, 0.0};
  const Vector actual{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Deviation(pred, actual, DeviationNorm::kL2), 5.0);
}

TEST(SuppressionTest, L1Norm) {
  const Vector pred{1.0, 1.0};
  const Vector actual{3.0, -2.0};
  EXPECT_DOUBLE_EQ(Deviation(pred, actual, DeviationNorm::kL1), 5.0);
}

TEST(SuppressionTest, ZeroDeviationForEqualVectors) {
  const Vector v{1.5, -2.5};
  for (auto norm : {DeviationNorm::kMaxAbs, DeviationNorm::kL2,
                    DeviationNorm::kL1}) {
    EXPECT_DOUBLE_EQ(Deviation(v, v, norm), 0.0);
  }
}

TEST(SuppressionTest, ShouldTransmitStrictlyAboveDelta) {
  const Vector pred{0.0};
  EXPECT_FALSE(ShouldTransmit(pred, Vector{1.0}, 1.0,
                              DeviationNorm::kMaxAbs));  // == delta: keep
  EXPECT_TRUE(ShouldTransmit(pred, Vector{1.0 + 1e-9}, 1.0,
                             DeviationNorm::kMaxAbs));
  EXPECT_FALSE(ShouldTransmit(pred, Vector{0.5}, 1.0,
                              DeviationNorm::kMaxAbs));
}

TEST(SuppressionTest, PerComponentTriggerMatchesPaperSemantics) {
  // "updated to the server if error in either X or Y value is greater
  // than delta" — one bad component suffices under kMaxAbs.
  const Vector pred{0.0, 0.0};
  const Vector one_bad{0.1, 2.0};
  EXPECT_TRUE(
      ShouldTransmit(pred, one_bad, 1.0, DeviationNorm::kMaxAbs));
}

TEST(SuppressionTest, NormsOrderedOnSameInput) {
  // For any vectors: max-abs <= L2 <= L1.
  const Vector pred{0.0, 0.0, 0.0};
  const Vector actual{1.0, -2.0, 2.0};
  const double max_abs = Deviation(pred, actual, DeviationNorm::kMaxAbs);
  const double l2 = Deviation(pred, actual, DeviationNorm::kL2);
  const double l1 = Deviation(pred, actual, DeviationNorm::kL1);
  EXPECT_LE(max_abs, l2);
  EXPECT_LE(l2, l1);
}

}  // namespace
}  // namespace dkf
