#include "core/outlier_guard.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dual_link.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

KalmanPredictor LinearPredictor() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  auto predictor_or =
      KalmanPredictor::Create(MakeLinearModel(1, 1.0, noise).value());
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

OutlierGuardOptions DefaultOptions() {
  OutlierGuardOptions options;
  options.delta = 2.0;
  return options;
}

TEST(OutlierGuardTest, CreateValidates) {
  const KalmanPredictor predictor = LinearPredictor();
  OutlierGuardOptions options = DefaultOptions();
  options.delta = 0.0;
  EXPECT_FALSE(OutlierFilteredLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.nis_threshold = 0.0;
  EXPECT_FALSE(OutlierFilteredLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.confirmations = 0;
  EXPECT_FALSE(OutlierFilteredLink::Create(predictor, options).ok());
  EXPECT_TRUE(OutlierFilteredLink::Create(predictor, DefaultOptions()).ok());
}

TEST(OutlierGuardTest, IsolatedSpikeDroppedNotTransmitted) {
  auto link_or =
      OutlierFilteredLink::Create(LinearPredictor(), DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  OutlierFilteredLink link = std::move(link_or).value();
  // Converge on a ramp, then inject one massive spike.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(link.Step(Vector{1.0 * i}).ok());
  }
  const int64_t sent_before = link.stats().updates_sent;
  auto spike_or = link.Step(Vector{200.0 + 500.0});
  ASSERT_TRUE(spike_or.ok());
  EXPECT_TRUE(spike_or.value().dropped_as_outlier);
  EXPECT_FALSE(spike_or.value().sent);
  EXPECT_EQ(link.stats().updates_sent, sent_before);
  // The server answer stays on the ramp, unpolluted by the spike.
  EXPECT_NEAR(spike_or.value().server_value[0], 201.0, 2.0);
}

TEST(OutlierGuardTest, SustainedChangeGetsThroughAfterConfirmation) {
  OutlierGuardOptions options = DefaultOptions();
  options.confirmations = 2;
  auto link_or = OutlierFilteredLink::Create(LinearPredictor(), options);
  ASSERT_TRUE(link_or.ok());
  OutlierFilteredLink link = std::move(link_or).value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(link.Step(Vector{1.0 * i}).ok());
  }
  // The stream genuinely jumps and stays at the new level.
  bool sent_eventually = false;
  int ticks_until_sent = 0;
  for (int i = 0; i < 10; ++i) {
    auto step_or = link.Step(Vector{200.0 + 500.0 + i});
    ASSERT_TRUE(step_or.ok());
    ++ticks_until_sent;
    if (step_or.value().sent) {
      sent_eventually = true;
      break;
    }
  }
  EXPECT_TRUE(sent_eventually);
  EXPECT_LE(ticks_until_sent, 3);  // confirmation delay is short
}

TEST(OutlierGuardTest, MirrorStaysConsistent) {
  auto link_or =
      OutlierFilteredLink::Create(LinearPredictor(), DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  OutlierFilteredLink link = std::move(link_or).value();
  Rng rng(3);
  double value = 0.0;
  for (int i = 0; i < 2000; ++i) {
    value += rng.Gaussian(0.5, 1.0);
    const double reading =
        rng.Bernoulli(0.02) ? value + 300.0 : value;  // occasional spikes
    ASSERT_TRUE(link.Step(Vector{reading}).ok());
    ASSERT_TRUE(link.MirrorConsistent()) << "tick " << i;
  }
}

TEST(OutlierGuardTest, GuardReducesUpdatesAndErrorUnderSpikes) {
  // Versus a plain DualLink on the same spiky stream: the guard should
  // transmit less AND keep the server closer to the clean signal.
  Rng rng(4);
  std::vector<double> clean;
  std::vector<double> spiky;
  double value = 0.0;
  for (int i = 0; i < 4000; ++i) {
    value += 0.5;
    clean.push_back(value);
    spiky.push_back(rng.Bernoulli(0.01) ? value + 400.0 : value);
  }

  auto guarded_or =
      OutlierFilteredLink::Create(LinearPredictor(), DefaultOptions());
  ASSERT_TRUE(guarded_or.ok());
  OutlierFilteredLink guarded = std::move(guarded_or).value();
  DualLinkOptions plain_options;
  plain_options.delta = DefaultOptions().delta;
  auto plain_or = DualLink::Create(LinearPredictor(), plain_options);
  ASSERT_TRUE(plain_or.ok());
  DualLink plain = std::move(plain_or).value();

  double guarded_err = 0.0;
  double plain_err = 0.0;
  for (size_t i = 0; i < spiky.size(); ++i) {
    auto g_or = guarded.Step(Vector{spiky[i]});
    auto p_or = plain.Step(Vector{spiky[i]});
    ASSERT_TRUE(g_or.ok());
    ASSERT_TRUE(p_or.ok());
    guarded_err += std::fabs(g_or.value().server_value[0] - clean[i]);
    plain_err += std::fabs(p_or.value().server_value[0] - clean[i]);
  }
  EXPECT_LT(guarded.stats().updates_sent, plain.stats().updates_sent);
  EXPECT_LT(guarded_err, plain_err);
  EXPECT_GT(guarded.stats().outliers_dropped, 10);
}

TEST(OutlierGuardTest, ReadingWidthValidated) {
  auto link_or =
      OutlierFilteredLink::Create(LinearPredictor(), DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  OutlierFilteredLink link = std::move(link_or).value();
  EXPECT_FALSE(link.Step(Vector{1.0, 2.0}).ok());
}

}  // namespace
}  // namespace dkf
