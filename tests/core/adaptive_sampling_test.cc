#include "core/adaptive_sampling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

KalmanPredictor LinearPredictor() {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

AdaptiveSamplingOptions DefaultOptions(double delta = 2.0) {
  AdaptiveSamplingOptions options;
  options.link.delta = delta;
  options.link.check_mirror_consistency = true;
  return options;
}

TEST(AdaptiveSamplingTest, CreateValidatesOptions) {
  const KalmanPredictor predictor = LinearPredictor();
  AdaptiveSamplingOptions options = DefaultOptions();
  options.min_stride = 0;
  EXPECT_FALSE(AdaptiveSamplingLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.max_stride = 0;
  EXPECT_FALSE(AdaptiveSamplingLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.quiet_threshold = 0;
  EXPECT_FALSE(AdaptiveSamplingLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.guard_fraction = 0.0;
  EXPECT_FALSE(AdaptiveSamplingLink::Create(predictor, options).ok());
  options = DefaultOptions();
  options.guard_fraction = 1.5;
  EXPECT_FALSE(AdaptiveSamplingLink::Create(predictor, options).ok());
  EXPECT_TRUE(AdaptiveSamplingLink::Create(predictor, DefaultOptions()).ok());
}

TEST(AdaptiveSamplingTest, BacksOffOnPredictableStream) {
  const KalmanPredictor predictor = LinearPredictor();
  auto link_or = AdaptiveSamplingLink::Create(predictor, DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  AdaptiveSamplingLink link = std::move(link_or).value();
  // Perfect ramp: after convergence the sampler should reach max stride.
  size_t final_stride = 1;
  for (int i = 0; i < 500; ++i) {
    auto step_or = link.Step(Vector{1.5 * i});
    ASSERT_TRUE(step_or.ok());
    final_stride = step_or.value().stride;
  }
  EXPECT_EQ(final_stride, DefaultOptions().max_stride);
  // Far fewer samples than ticks.
  EXPECT_LT(link.stats().samples_taken, link.stats().ticks / 3);
}

TEST(AdaptiveSamplingTest, SnapsBackOnManeuver) {
  const KalmanPredictor predictor = LinearPredictor();
  auto link_or = AdaptiveSamplingLink::Create(predictor, DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  AdaptiveSamplingLink link = std::move(link_or).value();
  double value = 0.0;
  for (int i = 0; i < 300; ++i) {
    value += 1.0;
    ASSERT_TRUE(link.Step(Vector{value}).ok());
  }
  // Abrupt reversal: the next sampled reading deviates, forcing an update
  // and a stride reset to 1.
  bool saw_reset = false;
  for (int i = 0; i < 100; ++i) {
    value -= 5.0;
    auto step_or = link.Step(Vector{value});
    ASSERT_TRUE(step_or.ok());
    if (step_or.value().sent) {
      EXPECT_EQ(step_or.value().stride, 1u);
      saw_reset = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reset);
}

TEST(AdaptiveSamplingTest, FixedStrideWhenMinEqualsMax) {
  const KalmanPredictor predictor = LinearPredictor();
  AdaptiveSamplingOptions options = DefaultOptions();
  options.min_stride = 1;
  options.max_stride = 1;
  auto link_or = AdaptiveSamplingLink::Create(predictor, options);
  ASSERT_TRUE(link_or.ok());
  AdaptiveSamplingLink link = std::move(link_or).value();
  for (int i = 0; i < 200; ++i) {
    auto step_or = link.Step(Vector{0.5 * i});
    ASSERT_TRUE(step_or.ok());
    EXPECT_TRUE(step_or.value().sampled);
  }
  EXPECT_EQ(link.stats().samples_taken, link.stats().ticks);
}

TEST(AdaptiveSamplingTest, ServerValueTrackedDuringCoast) {
  const KalmanPredictor predictor = LinearPredictor();
  auto link_or = AdaptiveSamplingLink::Create(predictor, DefaultOptions());
  ASSERT_TRUE(link_or.ok());
  AdaptiveSamplingLink link = std::move(link_or).value();
  double worst_err = 0.0;
  for (int i = 0; i < 600; ++i) {
    const double truth = 2.0 * i;
    auto step_or = link.Step(Vector{truth});
    ASSERT_TRUE(step_or.ok());
    if (i > 50) {
      worst_err = std::max(
          worst_err, std::fabs(step_or.value().server_value[0] - truth));
    }
  }
  // Linear stream, linear model: coasting stays accurate.
  EXPECT_LT(worst_err, 2.0);
}

TEST(AdaptiveSamplingTest, SamplingSavesEnergyWithoutLosingUpdates) {
  // On a piecewise-linear stream the adaptive sampler should take far
  // fewer readings than a per-tick sampler while sending a comparable
  // number of updates.
  Rng rng(9);
  std::vector<double> values;
  double value = 0.0;
  double slope = 1.0;
  for (int i = 0; i < 3000; ++i) {
    if (i % 400 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope;
    values.push_back(value);
  }

  const KalmanPredictor predictor = LinearPredictor();
  auto adaptive_or =
      AdaptiveSamplingLink::Create(predictor, DefaultOptions());
  ASSERT_TRUE(adaptive_or.ok());
  AdaptiveSamplingLink adaptive = std::move(adaptive_or).value();
  AdaptiveSamplingOptions fixed_options = DefaultOptions();
  fixed_options.max_stride = 1;
  auto fixed_or = AdaptiveSamplingLink::Create(predictor, fixed_options);
  ASSERT_TRUE(fixed_or.ok());
  AdaptiveSamplingLink fixed = std::move(fixed_or).value();

  for (double v : values) {
    ASSERT_TRUE(adaptive.Step(Vector{v}).ok());
    ASSERT_TRUE(fixed.Step(Vector{v}).ok());
  }
  EXPECT_LT(adaptive.stats().samples_taken,
            fixed.stats().samples_taken / 2);
  EXPECT_LT(adaptive.stats().updates_sent,
            2 * fixed.stats().updates_sent + 20);
}

}  // namespace
}  // namespace dkf
