#include "core/predictor.h"

#include <gtest/gtest.h>

#include "models/model_factory.h"

namespace dkf {
namespace {

TEST(KalmanPredictorTest, CreatedFromModel) {
  auto model_or = MakeLinearModel(2, 0.1, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  ASSERT_TRUE(predictor_or.ok());
  EXPECT_EQ(predictor_or.value().name(), "linear");
  EXPECT_EQ(predictor_or.value().dim(), 2u);
}

TEST(KalmanPredictorTest, TickThenUpdateTracksValue) {
  auto model_or = MakeConstantModel(1, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  ASSERT_TRUE(predictor_or.ok());
  KalmanPredictor predictor = std::move(predictor_or).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(predictor.Tick().ok());
    ASSERT_TRUE(predictor.Update(Vector{8.0}).ok());
  }
  EXPECT_NEAR(predictor.Predicted()[0], 8.0, 0.1);
}

TEST(KalmanPredictorTest, CloneIsIndependentDeepCopy) {
  auto model_or = MakeConstantModel(1, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  ASSERT_TRUE(predictor_or.ok());
  KalmanPredictor predictor = std::move(predictor_or).value();
  std::unique_ptr<Predictor> clone = predictor.Clone();
  ASSERT_TRUE(clone->StateEquals(predictor));
  ASSERT_TRUE(clone->Tick().ok());
  EXPECT_FALSE(clone->StateEquals(predictor));
  ASSERT_TRUE(predictor.Tick().ok());
  EXPECT_TRUE(clone->StateEquals(predictor));
}

TEST(KalmanPredictorTest, StateEqualsRejectsDifferentType) {
  auto model_or = MakeConstantModel(1, ModelNoise{});
  ASSERT_TRUE(model_or.ok());
  auto kalman_or = KalmanPredictor::Create(model_or.value());
  auto cache_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(kalman_or.ok());
  ASSERT_TRUE(cache_or.ok());
  EXPECT_FALSE(kalman_or.value().StateEquals(cache_or.value()));
  EXPECT_FALSE(cache_or.value().StateEquals(kalman_or.value()));
}

TEST(CachedValuePredictorTest, PredictsLastUpdate) {
  auto predictor_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(predictor_or.ok());
  CachedValuePredictor predictor = std::move(predictor_or).value();
  EXPECT_EQ(predictor.name(), "caching");
  EXPECT_DOUBLE_EQ(predictor.Predicted()[0], 0.0);
  ASSERT_TRUE(predictor.Update(Vector{3.0, 4.0}).ok());
  // Ticks never move the cached value — that is the whole point of the
  // static caching baseline.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(predictor.Tick().ok());
  EXPECT_DOUBLE_EQ(predictor.Predicted()[0], 3.0);
  EXPECT_DOUBLE_EQ(predictor.Predicted()[1], 4.0);
}

TEST(CachedValuePredictorTest, UpdateValidatesWidth) {
  auto predictor_or = CachedValuePredictor::Create(2);
  ASSERT_TRUE(predictor_or.ok());
  CachedValuePredictor predictor = std::move(predictor_or).value();
  EXPECT_FALSE(predictor.Update(Vector{1.0}).ok());
}

TEST(CachedValuePredictorTest, CreateValidatesDim) {
  EXPECT_FALSE(CachedValuePredictor::Create(0).ok());
}

TEST(CachedValuePredictorTest, CloneAndStateEquals) {
  auto predictor_or = CachedValuePredictor::Create(1);
  ASSERT_TRUE(predictor_or.ok());
  CachedValuePredictor predictor = std::move(predictor_or).value();
  ASSERT_TRUE(predictor.Update(Vector{2.0}).ok());
  std::unique_ptr<Predictor> clone = predictor.Clone();
  EXPECT_TRUE(clone->StateEquals(predictor));
  ASSERT_TRUE(clone->Update(Vector{3.0}).ok());
  EXPECT_FALSE(clone->StateEquals(predictor));
}

}  // namespace
}  // namespace dkf
