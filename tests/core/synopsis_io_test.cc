#include "core/synopsis_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteWholeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TimeSeries DriftingStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  double value = 0.0;
  double slope = 1.0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 200 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope;
    EXPECT_TRUE(series.Append(static_cast<double>(i), value).ok());
  }
  return series;
}

KfSynopsis BuildSample(uint64_t seed = 1) {
  ModelNoise noise;
  SynopsisOptions options;
  options.tolerance = 2.0;
  return KfSynopsis::Build(DriftingStream(800, seed),
                           MakeLinearModel(1, 1.0, noise).value(), options)
      .value();
}

TEST(SynopsisIoTest, RoundTripReplaysIdentically) {
  const KfSynopsis original = BuildSample();
  const std::string path = TempPath("synopsis_roundtrip.csv");
  ASSERT_TRUE(SaveSynopsis(original, path).ok());

  auto loaded_or = LoadSynopsis(path);
  ASSERT_TRUE(loaded_or.ok());
  const KfSynopsis& loaded = loaded_or.value();

  EXPECT_EQ(loaded.entries().size(), original.entries().size());
  EXPECT_EQ(loaded.original_size(), original.original_size());
  EXPECT_EQ(loaded.options().tolerance, original.options().tolerance);
  EXPECT_EQ(loaded.model().name, original.model().name);

  auto original_recon = original.Reconstruct().value();
  auto loaded_recon = loaded.Reconstruct().value();
  ASSERT_EQ(loaded_recon.size(), original_recon.size());
  for (size_t i = 0; i < original_recon.size(); ++i) {
    EXPECT_EQ(loaded_recon.value(i), original_recon.value(i))
        << "sample " << i;
    EXPECT_EQ(loaded_recon.timestamp(i), original_recon.timestamp(i));
  }
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, TimeVaryingModelRefusesToSerialize) {
  ModelNoise noise;
  const StateModel sinusoidal =
      MakeSinusoidalModel(0.26, 0.0, 1.0, noise).value();
  TimeSeries series(1);
  double value = 0.0;
  for (int k = 0; k < 100; ++k) {
    value += std::cos(0.26 * k) * 5.0;
    ASSERT_TRUE(series.Append(static_cast<double>(k), value).ok());
  }
  SynopsisOptions options;
  options.tolerance = 2.0;
  auto synopsis_or = KfSynopsis::Build(series, sinusoidal, options);
  ASSERT_TRUE(synopsis_or.ok());
  EXPECT_EQ(SaveSynopsis(synopsis_or.value(),
                         TempPath("synopsis_timevarying.csv"))
                .code(),
            StatusCode::kUnimplemented);
}

TEST(SynopsisIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("synopsis_garbage.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not,a,synopsis\n", f);
  std::fclose(f);
  EXPECT_EQ(LoadSynopsis(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, LoadRejectsCorruptedEntryIndex) {
  const KfSynopsis original = BuildSample(2);
  const std::string path = TempPath("synopsis_corrupt.csv");
  ASSERT_TRUE(SaveSynopsis(original, path).ok());
  // Append an out-of-range entry.
  FILE* f = std::fopen(path.c_str(), "a");
  std::fputs("entry,999999,1.5\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadSynopsis(path).ok());
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, SaveRejectsNonFiniteModel) {
  // FromParts only checks that the model is instantiable (filter
  // creation validates the initial state, not Q), so a NaN process
  // noise reaches the save path — which must refuse to persist it.
  ModelNoise noise;
  StateModel model = MakeLinearModel(1, 1.0, noise).value();
  model.options.process_noise(0, 0) = std::numeric_limits<double>::quiet_NaN();
  SynopsisOptions options;
  options.tolerance = 1.0;
  auto synopsis_or =
      KfSynopsis::FromParts(model, options, {0.0, 1.0}, {{0, Vector{1.0}}});
  ASSERT_TRUE(synopsis_or.ok()) << synopsis_or.status().message();
  const Status status = SaveSynopsis(synopsis_or.value(),
                                     TempPath("synopsis_nan_model.csv"));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
}

TEST(SynopsisIoTest, LoadRejectsNonFiniteModelValue) {
  const std::string path = TempPath("synopsis_nan_load.csv");
  ASSERT_TRUE(SaveSynopsis(BuildSample(3), path).ok());
  // Later rows win for repeated tags, so appending a poisoned
  // process_noise overrides the good one — as a hand-edited or
  // corrupted file would. strtod happily parses "nan"; the codec's
  // finiteness contract must not.
  FILE* f = std::fopen(path.c_str(), "a");
  std::fputs("process_noise,1,1,nan\n", f);
  std::fclose(f);
  const Status status = LoadSynopsis(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, LoadRejectsInfiniteEntryValue) {
  const std::string path = TempPath("synopsis_inf_entry.csv");
  ASSERT_TRUE(SaveSynopsis(BuildSample(4), path).ok());
  FILE* f = std::fopen(path.c_str(), "a");
  std::fputs("entry,1,inf\n", f);
  std::fclose(f);
  const Status status = LoadSynopsis(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, LoadRejectsTruncatedFile) {
  const std::string path = TempPath("synopsis_truncated.csv");
  ASSERT_TRUE(SaveSynopsis(BuildSample(5), path).ok());
  const std::string full = ReadWholeFile(path);
  // Sever the timestamps row mid-way: its declared element count then
  // exceeds the cells present, which must fail cleanly rather than
  // load a shorter stream.
  const size_t ts = full.find("\ntimestamps,");
  ASSERT_NE(ts, std::string::npos);
  WriteWholeFile(path, full.substr(0, ts + 30));
  EXPECT_FALSE(LoadSynopsis(path).ok());
  // Truncation inside the header row must read as "not a synopsis".
  WriteWholeFile(path, full.substr(0, 8));
  EXPECT_EQ(LoadSynopsis(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, LoadRejectsVersionMismatch) {
  const std::string path = TempPath("synopsis_version.csv");
  ASSERT_TRUE(SaveSynopsis(BuildSample(6), path).ok());
  std::string contents = ReadWholeFile(path);
  const std::string header = "dkf_synopsis,1";
  ASSERT_EQ(contents.compare(0, header.size(), header), 0);
  contents.replace(0, header.size(), "dkf_synopsis,99");
  WriteWholeFile(path, contents);
  const Status status = LoadSynopsis(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unsupported synopsis version"),
            std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SynopsisIoTest, FromPartsValidation) {
  ModelNoise noise;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();
  SynopsisOptions options;
  options.tolerance = 1.0;

  // Bad tolerance.
  SynopsisOptions bad_tolerance;
  bad_tolerance.tolerance = 0.0;
  EXPECT_FALSE(
      KfSynopsis::FromParts(model, bad_tolerance, {0.0, 1.0}, {}).ok());
  // Empty timestamps.
  EXPECT_FALSE(KfSynopsis::FromParts(model, options, {}, {}).ok());
  // Non-increasing timestamps.
  EXPECT_FALSE(
      KfSynopsis::FromParts(model, options, {0.0, 0.0}, {}).ok());
  // Entry out of range.
  EXPECT_FALSE(KfSynopsis::FromParts(model, options, {0.0, 1.0},
                                     {{5, Vector{1.0}}})
                   .ok());
  // Entry width mismatch.
  EXPECT_FALSE(KfSynopsis::FromParts(model, options, {0.0, 1.0},
                                     {{0, Vector{1.0, 2.0}}})
                   .ok());
  // Out-of-order entries.
  EXPECT_FALSE(KfSynopsis::FromParts(
                   model, options, {0.0, 1.0, 2.0},
                   {{1, Vector{1.0}}, {0, Vector{2.0}}})
                   .ok());
  // Valid.
  EXPECT_TRUE(KfSynopsis::FromParts(model, options, {0.0, 1.0, 2.0},
                                    {{0, Vector{1.0}}, {2, Vector{2.0}}})
                  .ok());
}

}  // namespace
}  // namespace dkf
