#include "core/ekf_predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dual_link.h"
#include "models/model_factory.h"
#include "models/nonlinear_models.h"

namespace dkf {
namespace {

EkfPredictor TurnPredictor() {
  auto options_or = MakeCoordinatedTurnModel(0.1, NonlinearModelNoise{});
  EXPECT_TRUE(options_or.ok());
  auto predictor_or =
      EkfPredictor::Create("coordinated-turn", options_or.value(), 2);
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

/// True circular motion generator.
struct Circler {
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  double speed = 10.0;
  double turn_rate = 0.4;
  double dt = 0.1;
  Vector Next() {
    x += speed * std::cos(heading) * dt;
    y += speed * std::sin(heading) * dt;
    heading += turn_rate * dt;
    return Vector{x, y};
  }
};

TEST(EkfPredictorTest, CreateValidates) {
  auto options_or = MakeCoordinatedTurnModel(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  EXPECT_FALSE(EkfPredictor::Create("x", options_or.value(), 0).ok());
  EXPECT_FALSE(EkfPredictor::Create("x", options_or.value(), 3).ok());
  EXPECT_TRUE(EkfPredictor::Create("x", options_or.value(), 2).ok());
}

TEST(EkfPredictorTest, ProtocolRoundTrip) {
  EkfPredictor predictor = TurnPredictor();
  EXPECT_EQ(predictor.dim(), 2u);
  EXPECT_EQ(predictor.name(), "coordinated-turn");
  ASSERT_TRUE(predictor.Tick().ok());
  ASSERT_TRUE(predictor.Update(Vector{1.0, 2.0}).ok());
  const Vector predicted = predictor.Predicted();
  EXPECT_EQ(predicted.size(), 2u);
}

TEST(EkfPredictorTest, CloneAndStateEquals) {
  EkfPredictor predictor = TurnPredictor();
  std::unique_ptr<Predictor> clone = predictor.Clone();
  EXPECT_TRUE(clone->StateEquals(predictor));
  ASSERT_TRUE(clone->Tick().ok());
  EXPECT_FALSE(clone->StateEquals(predictor));
}

TEST(EkfPredictorTest, MirrorConsistencyThroughDualLink) {
  // The nonlinear DKF variant keeps the mirror invariant: both EKFs are
  // deterministic.
  DualLinkOptions options;
  options.delta = 1.0;
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(TurnPredictor(), options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Circler circler;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(link.Step(circler.Next()).ok()) << "tick " << i;
  }
}

TEST(EkfPredictorTest, EkfSuppressesTurningMotionBetterThanLinear) {
  // On sustained circular motion the linear (constant-velocity) model
  // keeps flying off the arc; the coordinated-turn EKF coasts along it.
  DualLinkOptions options;
  options.delta = 2.0;

  auto ekf_link = DualLink::Create(TurnPredictor(), options).value();
  ModelNoise noise;
  auto linear = KalmanPredictor::Create(
                    MakeLinearModel(2, 0.1, noise).value())
                    .value();
  auto linear_link = DualLink::Create(linear, options).value();

  Circler a;
  Circler b;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ekf_link.Step(a.Next()).ok());
    ASSERT_TRUE(linear_link.Step(b.Next()).ok());
  }
  EXPECT_LT(ekf_link.stats().updates_sent,
            linear_link.stats().updates_sent / 2);
}

UkfPredictor TurnUkfPredictor() {
  // Honest (small) process noise — see MakeCoordinatedTurnUkf's note on
  // the UKF's second-order bias under inflated Q.
  NonlinearModelNoise noise;
  noise.process_variance = 1e-4;
  auto options_or = MakeCoordinatedTurnUkf(0.1, noise);
  EXPECT_TRUE(options_or.ok());
  auto predictor_or =
      UkfPredictor::Create("coordinated-turn-ukf", options_or.value(), 2);
  EXPECT_TRUE(predictor_or.ok());
  return std::move(predictor_or).value();
}

TEST(UkfPredictorTest, CreateValidates) {
  auto options_or = MakeCoordinatedTurnUkf(0.1, NonlinearModelNoise{});
  ASSERT_TRUE(options_or.ok());
  EXPECT_FALSE(UkfPredictor::Create("x", options_or.value(), 0).ok());
  EXPECT_FALSE(UkfPredictor::Create("x", options_or.value(), 3).ok());
  EXPECT_TRUE(UkfPredictor::Create("x", options_or.value(), 2).ok());
}

TEST(UkfPredictorTest, MirrorConsistencyThroughDualLink) {
  DualLinkOptions options;
  options.delta = 1.0;
  options.check_mirror_consistency = true;
  auto link_or = DualLink::Create(TurnUkfPredictor(), options);
  ASSERT_TRUE(link_or.ok());
  DualLink link = std::move(link_or).value();
  Circler circler;
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(link.Step(circler.Next()).ok()) << "tick " << i;
  }
}

TEST(UkfPredictorTest, SuppressesTurningMotionLikeEkf) {
  DualLinkOptions options;
  options.delta = 2.0;
  auto ukf_link = DualLink::Create(TurnUkfPredictor(), options).value();
  auto ekf_link = DualLink::Create(TurnPredictor(), options).value();
  Circler a;
  Circler b;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ukf_link.Step(a.Next()).ok());
    ASSERT_TRUE(ekf_link.Step(b.Next()).ok());
  }
  // Both nonlinear variants should land in the same (near-silent)
  // suppression regime on sustained circular motion — versus the ~20-40%
  // a linear model pays on the same arc (see the EKF test above).
  EXPECT_LT(ukf_link.stats().UpdatePercentage(), 5.0);
  EXPECT_LT(ekf_link.stats().UpdatePercentage(), 5.0);
}

TEST(SteadyStatePredictorTest, CreateRequiresConstantTransition) {
  ModelNoise noise;
  auto sinusoidal = MakeSinusoidalModel(0.3, 0.0, 1.0, noise).value();
  EXPECT_FALSE(SteadyStatePredictor::Create(sinusoidal).ok());
  auto linear = MakeLinearModel(1, 1.0, noise).value();
  EXPECT_TRUE(SteadyStatePredictor::Create(linear).ok());
}

TEST(SteadyStatePredictorTest, NameAndDim) {
  ModelNoise noise;
  auto predictor =
      SteadyStatePredictor::Create(MakeLinearModel(2, 0.1, noise).value())
          .value();
  EXPECT_EQ(predictor.name(), "linear-ss");
  EXPECT_EQ(predictor.dim(), 2u);
}

TEST(SteadyStatePredictorTest, MirrorConsistencyThroughDualLink) {
  ModelNoise noise;
  auto predictor =
      SteadyStatePredictor::Create(MakeLinearModel(1, 1.0, noise).value())
          .value();
  DualLinkOptions options;
  options.delta = 2.0;
  options.check_mirror_consistency = true;
  auto link = DualLink::Create(predictor, options).value();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(link.Step(Vector{1.3 * i}).ok());
  }
}

TEST(SteadyStatePredictorTest, SuppressionCostOfFixedGain) {
  // The Riccati gain assumes corrections every tick; under suppression
  // the full filter inflates its covariance during silent runs and
  // resyncs in one high-gain correction, while the fixed gain resyncs
  // sluggishly. The steady-state link therefore sends MORE updates than
  // the full filter — but still massively fewer than the caching
  // baseline. This test pins down that documented trade-off.
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();
  auto full = KalmanPredictor::Create(model).value();
  auto steady = SteadyStatePredictor::Create(model).value();
  auto caching = CachedValuePredictor::Create(1).value();

  DualLinkOptions options;
  options.delta = 2.0;
  auto full_link = DualLink::Create(full, options).value();
  auto steady_link = DualLink::Create(steady, options).value();
  auto caching_link = DualLink::Create(caching, options).value();
  double value = 0.0;
  double slope = 1.0;
  for (int i = 0; i < 5000; ++i) {
    if (i % 500 == 0) slope = (i / 500 % 2 == 0) ? 1.5 : -1.0;
    value += slope;
    ASSERT_TRUE(full_link.Step(Vector{value}).ok());
    ASSERT_TRUE(steady_link.Step(Vector{value}).ok());
    ASSERT_TRUE(caching_link.Step(Vector{value}).ok());
  }
  const double full_pct = full_link.stats().UpdatePercentage();
  const double steady_pct = steady_link.stats().UpdatePercentage();
  const double caching_pct = caching_link.stats().UpdatePercentage();
  EXPECT_GE(steady_pct, full_pct);
  EXPECT_LT(steady_pct, 0.5 * caching_pct);
}

}  // namespace
}  // namespace dkf
