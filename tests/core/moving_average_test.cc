#include "core/moving_average.h"

#include <gtest/gtest.h>

namespace dkf {
namespace {

TEST(MovingAverageTest, CreateValidatesWindow) {
  EXPECT_FALSE(MovingAverage::Create(0).ok());
  EXPECT_TRUE(MovingAverage::Create(1).ok());
}

TEST(MovingAverageTest, PartialWindowAveragesWhatItHas) {
  auto ma_or = MovingAverage::Create(4);
  ASSERT_TRUE(ma_or.ok());
  MovingAverage ma = std::move(ma_or).value();
  EXPECT_DOUBLE_EQ(ma.Push(2.0), 2.0);
  EXPECT_DOUBLE_EQ(ma.Push(4.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.Push(6.0), 4.0);
}

TEST(MovingAverageTest, FullWindowSlides) {
  auto ma_or = MovingAverage::Create(2);
  ASSERT_TRUE(ma_or.ok());
  MovingAverage ma = std::move(ma_or).value();
  ma.Push(1.0);
  ma.Push(3.0);
  EXPECT_DOUBLE_EQ(ma.Push(5.0), 4.0);   // (3 + 5) / 2
  EXPECT_DOUBLE_EQ(ma.Push(-5.0), 0.0);  // (5 - 5) / 2
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  auto ma_or = MovingAverage::Create(1);
  ASSERT_TRUE(ma_or.ok());
  MovingAverage ma = std::move(ma_or).value();
  EXPECT_DOUBLE_EQ(ma.Push(7.0), 7.0);
  EXPECT_DOUBLE_EQ(ma.Push(-2.0), -2.0);
}

TEST(MovingAverageTest, SpikeBarelyMovesLongAverage) {
  // The §5.3 criticism of moving averages: "even a series of spikes after
  // a few steady measurements will not alter the moving average value
  // significantly."
  auto ma_or = MovingAverage::Create(100);
  ASSERT_TRUE(ma_or.ok());
  MovingAverage ma = std::move(ma_or).value();
  double value = 0.0;
  for (int i = 0; i < 100; ++i) value = ma.Push(10.0);
  value = ma.Push(100.0);  // large spike
  EXPECT_NEAR(value, 10.9, 1e-9);
}

TEST(MovingAverageTest, SeriesHelperMatchesManual) {
  TimeSeries series(1);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(series.Append(i, static_cast<double>(i)).ok());
  }
  auto smoothed_or = SmoothSeriesMovingAverage(series, 3);
  ASSERT_TRUE(smoothed_or.ok());
  const TimeSeries& smoothed = smoothed_or.value();
  EXPECT_DOUBLE_EQ(smoothed.value(0), 0.0);
  EXPECT_DOUBLE_EQ(smoothed.value(1), 0.5);
  EXPECT_DOUBLE_EQ(smoothed.value(2), 1.0);
  EXPECT_DOUBLE_EQ(smoothed.value(5), 4.0);  // (3 + 4 + 5) / 3
}

TEST(MovingAverageTest, SeriesHelperValidatesWidth) {
  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(SmoothSeriesMovingAverage(wide, 3).ok());
}

}  // namespace
}  // namespace dkf
