#include "core/synopsis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/suppression.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

TimeSeries PiecewiseLinear(size_t n, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  double value = 0.0;
  double slope = 1.0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 300 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope;
    EXPECT_TRUE(series.Append(static_cast<double>(i), value).ok());
  }
  return series;
}

StateModel LinearModel() {
  auto model_or = MakeLinearModel(1, 1.0, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  return model_or.value();
}

StateModel ConstantModel() {
  auto model_or = MakeConstantModel(1, ModelNoise{});
  EXPECT_TRUE(model_or.ok());
  return model_or.value();
}

TEST(SynopsisTest, BuildValidates) {
  const TimeSeries series = PiecewiseLinear(100, 1);
  SynopsisOptions options;
  options.tolerance = 0.0;
  EXPECT_FALSE(KfSynopsis::Build(series, LinearModel(), options).ok());

  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  options.tolerance = 1.0;
  EXPECT_FALSE(KfSynopsis::Build(wide, LinearModel(), options).ok());
}

TEST(SynopsisTest, ReconstructionHonorsTolerance) {
  // The headline guarantee: every reconstructed sample within tolerance.
  const TimeSeries series = PiecewiseLinear(2000, 2);
  SynopsisOptions options;
  options.tolerance = 1.5;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  auto recon_or = synopsis_or.value().Reconstruct();
  ASSERT_TRUE(recon_or.ok());
  const TimeSeries& recon = recon_or.value();
  ASSERT_EQ(recon.size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_LE(std::fabs(recon.value(i) - series.value(i)),
              options.tolerance + 1e-9)
        << "sample " << i;
  }
}

TEST(SynopsisTest, ToleranceGuaranteeAcrossSweep) {
  const TimeSeries series = PiecewiseLinear(1000, 3);
  for (double tolerance : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    SynopsisOptions options;
    options.tolerance = tolerance;
    auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
    ASSERT_TRUE(synopsis_or.ok());
    auto recon_or = synopsis_or.value().Reconstruct();
    ASSERT_TRUE(recon_or.ok());
    for (size_t i = 0; i < series.size(); ++i) {
      ASSERT_LE(std::fabs(recon_or.value().value(i) - series.value(i)),
                tolerance + 1e-9);
    }
  }
}

TEST(SynopsisTest, CompressionImprovesWithTolerance) {
  const TimeSeries series = PiecewiseLinear(2000, 4);
  double prev_ratio = 2.0;
  for (double tolerance : {0.5, 2.0, 8.0}) {
    SynopsisOptions options;
    options.tolerance = tolerance;
    auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
    ASSERT_TRUE(synopsis_or.ok());
    const double ratio = synopsis_or.value().CompressionRatio();
    EXPECT_LE(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  // At generous tolerance the linear model should store only a small
  // fraction of a piecewise-linear stream.
  EXPECT_LT(prev_ratio, 0.1);
}

TEST(SynopsisTest, BetterModelCompressesBetter) {
  const TimeSeries series = PiecewiseLinear(2000, 5);
  SynopsisOptions options;
  options.tolerance = 1.5;
  auto linear_or = KfSynopsis::Build(series, LinearModel(), options);
  auto constant_or = KfSynopsis::Build(series, ConstantModel(), options);
  ASSERT_TRUE(linear_or.ok());
  ASSERT_TRUE(constant_or.ok());
  EXPECT_LT(linear_or.value().CompressionRatio(),
            constant_or.value().CompressionRatio());
}

TEST(SynopsisTest, StorageBytesProportionalToEntries) {
  const TimeSeries series = PiecewiseLinear(500, 6);
  SynopsisOptions options;
  options.tolerance = 1.0;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  const KfSynopsis& synopsis = synopsis_or.value();
  EXPECT_EQ(synopsis.StorageBytes(),
            synopsis.entries().size() * (sizeof(uint64_t) + sizeof(double)));
}

TEST(SynopsisTest, EntriesAreSortedAndInRange) {
  const TimeSeries series = PiecewiseLinear(800, 7);
  SynopsisOptions options;
  options.tolerance = 1.0;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  size_t prev = 0;
  bool first = true;
  for (const SynopsisEntry& entry : synopsis_or.value().entries()) {
    EXPECT_LT(entry.index, series.size());
    if (!first) {
      EXPECT_GT(entry.index, prev);
    }
    prev = entry.index;
    first = false;
  }
}

/// Data drawn from the linear model's own generative process (velocity
/// random walk) — the regime where smoothing's statistical optimality
/// claims actually apply.
TimeSeries ModelConsistentStream(size_t n, double q_stddev, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  double value = 0.0;
  double velocity = 1.0;
  for (size_t i = 0; i < n; ++i) {
    value += velocity;
    velocity += rng.Gaussian(0.0, q_stddev);
    EXPECT_TRUE(series.Append(static_cast<double>(i), value).ok());
  }
  return series;
}

TEST(SynopsisTest, SmoothedReconstructionReducesAverageErrorOnMatchedData) {
  // On data matching the model's prior, the RTS pass interpolates the
  // coasted gaps using future entries and beats the online replay. (On
  // data that *violates* the prior — e.g. piecewise-constant velocity
  // with an inflated Q — the smoother legitimately bends between anchors
  // and can do worse; the online Reconstruct() keeps the hard tolerance
  // bound either way.)
  const TimeSeries series = ModelConsistentStream(2000, 0.22, 9);
  SynopsisOptions options;
  options.tolerance = 3.0;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  auto online_or = synopsis_or.value().Reconstruct();
  auto smoothed_or = synopsis_or.value().ReconstructSmoothed();
  ASSERT_TRUE(online_or.ok());
  ASSERT_TRUE(smoothed_or.ok());
  double online_err = 0.0;
  double smoothed_err = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    online_err += std::fabs(online_or.value().value(i) - series.value(i));
    smoothed_err +=
        std::fabs(smoothed_or.value().value(i) - series.value(i));
  }
  EXPECT_LT(smoothed_err, online_err);
}

TEST(SynopsisTest, SmoothedReconstructionKeepsShapeOnMatchedData) {
  const TimeSeries series = ModelConsistentStream(500, 0.22, 10);
  SynopsisOptions options;
  options.tolerance = 2.0;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  auto smoothed_or = synopsis_or.value().ReconstructSmoothed();
  ASSERT_TRUE(smoothed_or.ok());
  ASSERT_EQ(smoothed_or.value().size(), series.size());
  // No hard pointwise bound is promised, but on matched data the smoothed
  // replay stays within a small multiple of the tolerance everywhere.
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_LE(std::fabs(smoothed_or.value().value(i) - series.value(i)),
              4.0 * options.tolerance)
        << "sample " << i;
  }
}

TEST(SynopsisTest, ReconstructPreservesTimestamps) {
  const TimeSeries series = PiecewiseLinear(200, 8);
  SynopsisOptions options;
  options.tolerance = 1.0;
  auto synopsis_or = KfSynopsis::Build(series, LinearModel(), options);
  ASSERT_TRUE(synopsis_or.ok());
  auto recon_or = synopsis_or.value().Reconstruct();
  ASSERT_TRUE(recon_or.ok());
  for (size_t i = 0; i < series.size(); i += 37) {
    EXPECT_EQ(recon_or.value().timestamp(i), series.timestamp(i));
  }
}

}  // namespace
}  // namespace dkf
