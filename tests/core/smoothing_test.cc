#include "core/smoothing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/moving_average.h"
#include "metrics/metrics.h"

namespace dkf {
namespace {

TimeSeries NoisyConstant(size_t n, double level, double stddev,
                         uint64_t seed) {
  Rng rng(seed);
  TimeSeries series(1);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(series
                    .Append(static_cast<double>(i),
                            level + rng.Gaussian(0.0, stddev))
                    .ok());
  }
  return series;
}

TEST(KalmanSmootherTest, CreateValidates) {
  EXPECT_FALSE(KalmanSmoother::Create(0.0).ok());
  EXPECT_FALSE(KalmanSmoother::Create(-1.0).ok());
  EXPECT_FALSE(KalmanSmoother::Create(1e-7, 0.0).ok());
  EXPECT_TRUE(KalmanSmoother::Create(1e-7).ok());
}

TEST(KalmanSmootherTest, SmallFSuppressesNoise) {
  auto smoother_or = KalmanSmoother::Create(1e-9, 1.0);
  ASSERT_TRUE(smoother_or.ok());
  KalmanSmoother smoother = std::move(smoother_or).value();
  Rng rng(1);
  double last = 0.0;
  for (int i = 0; i < 2000; ++i) {
    auto out_or = smoother.Push(10.0 + rng.Gaussian(0.0, 2.0));
    ASSERT_TRUE(out_or.ok());
    last = out_or.value();
  }
  EXPECT_NEAR(last, 10.0, 0.3);
}

TEST(KalmanSmootherTest, LargeFTracksRawClosely) {
  auto smoother_or = KalmanSmoother::Create(100.0, 1e-4);
  ASSERT_TRUE(smoother_or.ok());
  KalmanSmoother smoother = std::move(smoother_or).value();
  for (int i = 0; i < 50; ++i) {
    const double raw = std::sin(0.3 * i) * 5.0;
    auto out_or = smoother.Push(raw);
    ASSERT_TRUE(out_or.ok());
    if (i > 5) {
      EXPECT_NEAR(out_or.value(), raw, 0.05);
    }
  }
}

TEST(KalmanSmootherTest, SmoothnessMonotoneInF) {
  // Smaller F must yield a smoother output (smaller mean step size).
  const TimeSeries noisy = NoisyConstant(3000, 0.0, 1.0, 2);
  double prev_roughness = -1.0;
  for (double f : {1e-9, 1e-5, 1e-1}) {
    auto smoothed_or = SmoothSeriesKalman(noisy, f, 1.0);
    ASSERT_TRUE(smoothed_or.ok());
    const TimeSeries& smoothed = smoothed_or.value();
    double roughness = 0.0;
    for (size_t i = 1; i < smoothed.size(); ++i) {
      roughness += std::fabs(smoothed.value(i) - smoothed.value(i - 1));
    }
    roughness /= static_cast<double>(smoothed.size() - 1);
    if (prev_roughness >= 0.0) {
      EXPECT_GT(roughness, prev_roughness);
    }
    prev_roughness = roughness;
  }
}

TEST(KalmanSmootherTest, LowFMatchesMovingAverage) {
  // Figure 10's claim: with sufficiently low F the KF-smoothed values
  // match a moving-average smoothing of the same stream.
  const TimeSeries noisy = NoisyConstant(4000, 5.0, 1.5, 3);
  auto kf_or = SmoothSeriesKalman(noisy, 1e-9, 1.0);
  auto ma_or = SmoothSeriesMovingAverage(noisy, 64);
  ASSERT_TRUE(kf_or.ok());
  ASSERT_TRUE(ma_or.ok());
  // Compare after both have warmed up.
  auto kf_tail_or = kf_or.value().Slice(500, 4000);
  auto ma_tail_or = ma_or.value().Slice(500, 4000);
  ASSERT_TRUE(kf_tail_or.ok());
  ASSERT_TRUE(ma_tail_or.ok());
  auto mad_or = SeriesMeanAbsDiff(kf_tail_or.value(), ma_tail_or.value());
  ASSERT_TRUE(mad_or.ok());
  EXPECT_LT(mad_or.value(), 0.3);
}

TEST(KalmanSmootherTest, SeriesHelperValidatesWidth) {
  TimeSeries wide(2);
  ASSERT_TRUE(wide.Append(0.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(SmoothSeriesKalman(wide, 1e-7).ok());
}

TEST(KalmanSmootherTest, SeriesHelperPreservesLengthAndTimestamps) {
  const TimeSeries noisy = NoisyConstant(100, 0.0, 1.0, 4);
  auto smoothed_or = SmoothSeriesKalman(noisy, 1e-5);
  ASSERT_TRUE(smoothed_or.ok());
  ASSERT_EQ(smoothed_or.value().size(), noisy.size());
  for (size_t i = 0; i < noisy.size(); i += 13) {
    EXPECT_EQ(smoothed_or.value().timestamp(i), noisy.timestamp(i));
  }
}

TEST(KalmanSmootherTest, CountTracksPushes) {
  auto smoother_or = KalmanSmoother::Create(1e-5);
  ASSERT_TRUE(smoother_or.ok());
  KalmanSmoother smoother = std::move(smoother_or).value();
  ASSERT_TRUE(smoother.Push(1.0).ok());
  ASSERT_TRUE(smoother.Push(2.0).ok());
  EXPECT_EQ(smoother.count(), 2);
  EXPECT_DOUBLE_EQ(smoother.smoothing_factor(), 1e-5);
}

}  // namespace
}  // namespace dkf
