// Crash-recovery chaos harness for the checkpoint subsystem
// (docs/checkpoint.md): the fleet workload from dsms/chaos_test.cc —
// Bernoulli + Gilbert–Elliott loss, delay with reordering, an outage
// window, ACK loss, and payload corruption, all at once — is
// interrupted mid-outage by Save, restored (into either engine, at any
// shard count), and driven to the end. The restored run must be
// bit-identical to the uninterrupted one on every tick: same answers,
// same degraded flags, same fault counters, same uplink accounting,
// same merged trace, same metrics snapshot.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "metrics/fault_stats.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "runtime/sharded_engine.h"

namespace dkf {
namespace {

constexpr int kNumSources = 10;
constexpr int kAggregateId = 7;
constexpr int64_t kFleetFaultEnd = 280;
constexpr int64_t kFleetTicks = 420;
/// Snapshot tick — inside the 100..115 outage window, so the checkpoint
/// catches pending-resync episodes, staged in-flight messages, and
/// degraded links mid-flight.
constexpr int64_t kSnapTick = 110;

StateModel ScalarModel(double process_variance = 0.05) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

ChannelOptions FleetChannel() {
  ChannelOptions options;
  options.seed = 77;
  options.drop_probability = 0.1;
  options.per_source_rng = true;
  FaultModel fault;
  fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  fault.outages.push_back(OutageWindow{/*start=*/100, /*end=*/115});
  fault.ack_loss_probability = 0.05;
  fault.corruption_probability = 0.03;
  fault.active_until = kFleetFaultEnd;
  options.fault = fault;
  return options;
}

ProtocolOptions FleetProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 3;
  protocol.staleness_budget = 5;
  protocol.resync_burst_retries = 4;
  protocol.resync_retry_backoff = 6;
  return protocol;
}

template <typename System>
void InstallChaosWorkload(System& system) {
  ASSERT_TRUE(system.EnableTracing().ok());
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(
        system.RegisterSource(id, ScalarModel(0.02 + 0.01 * (id % 4))).ok());
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 1.0 + 0.5 * (id % 3);
    ASSERT_TRUE(system.SubmitQuery(query).ok());
  }
  // One source also asks for smoothing, so KF_c state rides through the
  // checkpoint too.
  ContinuousQuery smoothed;
  smoothed.id = 100;
  smoothed.source_id = 3;
  smoothed.precision = 2.0;
  smoothed.smoothing_factor = 0.5;
  ASSERT_TRUE(system.SubmitQuery(smoothed).ok());
  AggregateQuery aggregate;
  aggregate.id = kAggregateId;
  aggregate.source_ids = {2, 5, 8, 9};
  aggregate.precision = 8.0;
  ASSERT_TRUE(system.SubmitAggregateQuery(aggregate).ok());
}

std::vector<TraceEvent> CanonicalTrace(const StreamManager& manager) {
  return MergeTraces({manager.Trace()});
}

std::vector<TraceEvent> CanonicalTrace(const ShardedStreamEngine& engine) {
  return engine.MergedTrace();
}

/// The uninterrupted run every restored run is measured against:
/// the full reading schedule plus the manager's per-tick answers and
/// final accounting.
struct Reference {
  std::vector<std::map<int, Vector>> readings;  // [tick]
  /// Bit-exact per-tick scalar answers and degraded flags, [tick][id].
  std::vector<std::array<double, kNumSources + 1>> answers;
  std::vector<std::array<bool, kNumSources + 1>> degraded;
  ProtocolFaultStats faults;
  ChannelStats uplink;
  std::array<int64_t, kNumSources + 1> updates{};
  double aggregate_value = 0.0;
  int aggregate_degraded = 0;
  std::vector<TraceEvent> trace;
  MetricsRegistry metrics;
};

const Reference& GetReference() {
  static const Reference* const reference = [] {
    auto* ref = new Reference();
    Rng rng(91);
    std::vector<double> values(kNumSources + 1, 0.0);
    for (int64_t t = 0; t < kFleetTicks; ++t) {
      std::map<int, Vector> readings;
      for (int id = 1; id <= kNumSources; ++id) {
        values[static_cast<size_t>(id)] += rng.Gaussian(0.05 * (id % 3), 0.7);
        readings[id] = Vector{values[static_cast<size_t>(id)]};
      }
      ref->readings.push_back(std::move(readings));
    }

    StreamManagerOptions options;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();
    StreamManager manager(options);
    InstallChaosWorkload(manager);
    for (int64_t t = 0; t < kFleetTicks; ++t) {
      EXPECT_TRUE(
          manager.ProcessTick(ref->readings[static_cast<size_t>(t)]).ok())
          << "tick " << t;
      std::array<double, kNumSources + 1> answers{};
      std::array<bool, kNumSources + 1> degraded{};
      for (int id = 1; id <= kNumSources; ++id) {
        answers[static_cast<size_t>(id)] = manager.Answer(id).value()[0];
        degraded[static_cast<size_t>(id)] =
            manager.answer_degraded(id).value();
      }
      ref->answers.push_back(answers);
      ref->degraded.push_back(degraded);
    }
    ref->faults = manager.fault_stats();
    ref->uplink = manager.uplink_traffic();
    for (int id = 1; id <= kNumSources; ++id) {
      ref->updates[static_cast<size_t>(id)] =
          manager.updates_sent(id).value();
    }
    const auto aggregate = manager.AnswerAggregateWithStatus(kAggregateId);
    EXPECT_TRUE(aggregate.ok());
    ref->aggregate_value = aggregate.value().value;
    ref->aggregate_degraded = aggregate.value().degraded_members;
    ref->trace = CanonicalTrace(manager);
    ref->metrics = manager.MetricsSnapshot();
    EXPECT_EQ(manager.trace_sink()->dropped_events(), 0)
        << "ring too small for exact trace comparisons";
    return ref;
  }();
  return *reference;
}

/// Drives `system` over ticks [from, to) with the reference readings.
template <typename System>
void RunTicks(System& system, int64_t from, int64_t to) {
  const Reference& ref = GetReference();
  for (int64_t t = from; t < to; ++t) {
    ASSERT_TRUE(system.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok())
        << "tick " << t;
  }
}

/// Drives a restored system from `from` to the end, asserting bit-equal
/// answers on every tick and bit-equal accounting at the end.
template <typename System>
void FinishAndExpectIdentical(System& system, int64_t from,
                              const std::string& label) {
  const Reference& ref = GetReference();
  ASSERT_EQ(system.ticks(), from) << label;
  for (int64_t t = from; t < kFleetTicks; ++t) {
    ASSERT_TRUE(system.ProcessTick(ref.readings[static_cast<size_t>(t)]).ok())
        << label << " tick " << t;
    const auto& answers = ref.answers[static_cast<size_t>(t)];
    const auto& degraded = ref.degraded[static_cast<size_t>(t)];
    for (int id = 1; id <= kNumSources; ++id) {
      ASSERT_EQ(system.Answer(id).value()[0], answers[static_cast<size_t>(id)])
          << label << " tick " << t << " source " << id;
      ASSERT_EQ(system.answer_degraded(id).value(),
                degraded[static_cast<size_t>(id)])
          << label << " tick " << t << " source " << id;
    }
    if (t % 50 == 0 || t == kFleetTicks - 1) {
      ASSERT_TRUE(system.VerifyLinkConsistency().ok())
          << label << " tick " << t;
    }
  }

  const ProtocolFaultStats faults = system.fault_stats();
  EXPECT_EQ(faults.divergence_events, ref.faults.divergence_events) << label;
  EXPECT_EQ(faults.resyncs_sent, ref.faults.resyncs_sent) << label;
  EXPECT_EQ(faults.heartbeats_sent, ref.faults.heartbeats_sent) << label;
  EXPECT_EQ(faults.ambiguous_acks, ref.faults.ambiguous_acks) << label;
  EXPECT_EQ(faults.ticks_diverged, ref.faults.ticks_diverged) << label;
  EXPECT_EQ(faults.max_recovery_ticks, ref.faults.max_recovery_ticks)
      << label;
  EXPECT_EQ(faults.resyncs_applied, ref.faults.resyncs_applied) << label;
  EXPECT_EQ(faults.heartbeats_received, ref.faults.heartbeats_received)
      << label;
  EXPECT_EQ(faults.rejected_stale, ref.faults.rejected_stale) << label;
  EXPECT_EQ(faults.rejected_corrupt, ref.faults.rejected_corrupt) << label;
  EXPECT_EQ(faults.sequence_gaps, ref.faults.sequence_gaps) << label;
  EXPECT_EQ(faults.degraded_ticks, ref.faults.degraded_ticks) << label;

  const ChannelStats uplink = system.uplink_traffic();
  EXPECT_EQ(uplink.messages, ref.uplink.messages) << label;
  EXPECT_EQ(uplink.bytes, ref.uplink.bytes) << label;
  EXPECT_EQ(uplink.dropped, ref.uplink.dropped) << label;
  EXPECT_EQ(uplink.corrupted, ref.uplink.corrupted) << label;
  EXPECT_EQ(uplink.delayed, ref.uplink.delayed) << label;
  EXPECT_EQ(uplink.ack_lost, ref.uplink.ack_lost) << label;
  EXPECT_EQ(uplink.outage_dropped, ref.uplink.outage_dropped) << label;

  for (int id = 1; id <= kNumSources; ++id) {
    EXPECT_EQ(system.updates_sent(id).value(),
              ref.updates[static_cast<size_t>(id)])
        << label << " source " << id;
  }

  const auto aggregate = system.AnswerAggregateWithStatus(kAggregateId);
  ASSERT_TRUE(aggregate.ok()) << label;
  // Summation order follows the shard layout; the value is equal to
  // within reordering, the degradation count exactly.
  EXPECT_NEAR(aggregate.value().value, ref.aggregate_value, 1e-9) << label;
  EXPECT_EQ(aggregate.value().degraded_members, ref.aggregate_degraded)
      << label;

  EXPECT_TRUE(CanonicalTrace(system) == ref.trace)
      << label << ": merged trace differs";
  EXPECT_TRUE(system.MetricsSnapshot() == ref.metrics)
      << label << ": metrics snapshot differs";
  EXPECT_TRUE(system.VerifyMirrorConsistency().ok()) << label;
}

std::string SnapshotPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A manager snapshot taken mid-outage, shared by the tests below.
const std::string& ManagerSnapshotFile() {
  static const std::string* const path = [] {
    auto* p = new std::string(SnapshotPath("manager_chaos.dkfsnap"));
    StreamManagerOptions options;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();
    StreamManager manager(options);
    InstallChaosWorkload(manager);
    RunTicks(manager, 0, kSnapTick);
    EXPECT_TRUE(manager.Save(*p).ok());
    return p;
  }();
  return *path;
}

/// An engine snapshot (3 shards — deliberately a count the restores
/// below never reuse) taken at the same tick.
const std::string& EngineSnapshotFile() {
  static const std::string* const path = [] {
    auto* p = new std::string(SnapshotPath("engine_chaos.dkfsnap"));
    ShardedStreamEngineOptions options;
    options.num_shards = 3;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();
    ShardedStreamEngine engine(options);
    InstallChaosWorkload(engine);
    RunTicks(engine, 0, kSnapTick);
    EXPECT_TRUE(engine.Save(*p).ok());
    return p;
  }();
  return *path;
}

TEST(CheckpointChaosTest, ManagerRestoresBitIdentically) {
  auto restored_or = StreamManager::Restore(ManagerSnapshotFile());
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  FinishAndExpectIdentical(*restored_or.value(), kSnapTick,
                           "manager->manager");
}

TEST(CheckpointChaosTest, ManagerSnapshotRestoresIntoShardedEngine) {
  for (int shards : {2, 4}) {
    auto restored_or =
        ShardedStreamEngine::Restore(ManagerSnapshotFile(), shards);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
    ASSERT_EQ(restored_or.value()->num_shards(), shards);
    FinishAndExpectIdentical(*restored_or.value(), kSnapTick,
                             "manager->engine(" + std::to_string(shards) +
                                 ")");
  }
}

TEST(CheckpointChaosTest, EngineSnapshotReshardsElastically) {
  for (int shards : {1, 2, 8}) {
    auto restored_or =
        ShardedStreamEngine::Restore(EngineSnapshotFile(), shards);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
    ASSERT_EQ(restored_or.value()->num_shards(), shards);
    FinishAndExpectIdentical(*restored_or.value(), kSnapTick,
                             "engine(3)->engine(" + std::to_string(shards) +
                                 ")");
  }
  // num_shards = 0 keeps the snapshot's own count.
  auto restored_or = ShardedStreamEngine::Restore(EngineSnapshotFile());
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  ASSERT_EQ(restored_or.value()->num_shards(), 3);
  FinishAndExpectIdentical(*restored_or.value(), kSnapTick,
                           "engine(3)->engine(3)");
}

TEST(CheckpointChaosTest, EngineSnapshotRestoresIntoManager) {
  auto restored_or = StreamManager::Restore(EngineSnapshotFile());
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  FinishAndExpectIdentical(*restored_or.value(), kSnapTick,
                           "engine(3)->manager");
}

TEST(CheckpointChaosTest, QueriesSurviveRestoreAndStayReconfigurable) {
  auto restored_or = StreamManager::Restore(ManagerSnapshotFile());
  ASSERT_TRUE(restored_or.ok());
  StreamManager& manager = *restored_or.value();
  // The registry came back verbatim: per-source deltas match the
  // installed workload, including the aggregate's synthetic members.
  EXPECT_EQ(manager.registry().size(),
            static_cast<size_t>(kNumSources + 1 + 4));
  EXPECT_EQ(manager.source_delta(1).value(), 1.5);  // precision 1.0+0.5*1
  // Query churn still works after a restore: removing the aggregate
  // relaxes its members back to their point-query deltas.
  ASSERT_TRUE(manager.RemoveAggregateQuery(kAggregateId).ok());
  EXPECT_EQ(manager.AnswerAggregate(kAggregateId).ok(), false);
  ContinuousQuery tight;
  tight.id = 200;
  tight.source_id = 1;
  tight.precision = 0.25;
  ASSERT_TRUE(manager.SubmitQuery(tight).ok());
  EXPECT_EQ(manager.source_delta(1).value(), 0.25);
}

TEST(CheckpointChaosTest, SharedRngSnapshotRejectedByShardedRestore) {
  // A lossy shared-RNG channel cannot fan out to shards without
  // changing the fault sequence; the sharded restore must refuse.
  const std::string path = SnapshotPath("shared_rng.dkfsnap");
  StreamManagerOptions options;
  options.channel.seed = 5;
  options.channel.drop_probability = 0.2;
  options.channel.per_source_rng = false;
  StreamManager manager(options);
  ASSERT_TRUE(manager.RegisterSource(1, ScalarModel()).ok());
  std::map<int, Vector> reading;
  Rng rng(3);
  double value = 0.0;
  for (int64_t t = 0; t < 25; ++t) {
    value += rng.Gaussian(0.0, 1.0);
    reading[1] = Vector{value};
    ASSERT_TRUE(manager.ProcessTick(reading).ok());
  }
  ASSERT_TRUE(manager.Save(path).ok());

  auto engine_or = ShardedStreamEngine::Restore(path, 2);
  ASSERT_FALSE(engine_or.ok());
  EXPECT_EQ(engine_or.status().code(), StatusCode::kInvalidArgument);

  // The manager restore preserves the shared stream bit-exactly: the
  // remaining ticks drop exactly the same sends as the uninterrupted run.
  auto restored_or = StreamManager::Restore(path);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  StreamManager& restored = *restored_or.value();
  Rng rng2(3);
  double value2 = 0.0;
  StreamManager uninterrupted(options);
  ASSERT_TRUE(uninterrupted.RegisterSource(1, ScalarModel()).ok());
  for (int64_t t = 0; t < 50; ++t) {
    value2 += rng2.Gaussian(0.0, 1.0);
    reading[1] = Vector{value2};
    ASSERT_TRUE(uninterrupted.ProcessTick(reading).ok());
    if (t >= 25) {
      ASSERT_TRUE(restored.ProcessTick(reading).ok());
      ASSERT_EQ(restored.Answer(1).value()[0],
                uninterrupted.Answer(1).value()[0])
          << "tick " << t;
    }
  }
  EXPECT_EQ(restored.uplink_traffic().dropped,
            uninterrupted.uplink_traffic().dropped);
}

// ---- serving-layer continuation --------------------------------------

constexpr int64_t kServeTicks = 200;
constexpr int64_t kServeDrainTick = 60;
constexpr int64_t kServeLateAttachTick = 80;

/// A standing-query mix covering every subscription kind, attached at
/// tick 0 (ids 1..4); a late band (id 6) attaches mid-run before the
/// snapshot so a mid-run attach's state rides through the checkpoint.
template <typename System>
void InstallServeSubscriptions(System& system) {
  Subscription point;
  point.id = 1;
  point.kind = SubscriptionKind::kPoint;
  point.source_id = 1;
  ASSERT_TRUE(system.Subscribe(point).ok());
  Subscription band;
  band.id = 2;
  band.kind = SubscriptionKind::kBandAlert;
  band.source_id = 2;
  band.lo = -2.0;
  band.hi = 2.0;
  band.uncertainty_ceiling = 0.3;
  ASSERT_TRUE(system.Subscribe(band).ok());
  Subscription range;
  range.id = 3;
  range.kind = SubscriptionKind::kRangePredicate;
  range.source_id = 5;
  range.lo = 0.0;
  range.hi = 10.0;
  ASSERT_TRUE(system.Subscribe(range).ok());
  Subscription agg;
  agg.id = 4;
  agg.kind = SubscriptionKind::kAggregate;
  agg.aggregate_id = kAggregateId;
  ASSERT_TRUE(system.Subscribe(agg).ok());
}

Subscription LateBand() {
  Subscription late;
  late.id = 6;
  late.kind = SubscriptionKind::kBandAlert;
  late.source_id = 9;
  late.lo = -1.0;
  late.hi = 4.0;
  return late;
}

/// The uninterrupted serve run (notification stream + counters) and the
/// snapshot its interrupted twin saved mid-outage. The early drain puts
/// a nontrivial delivery cursor and a partially drained buffer into the
/// checkpoint.
struct ServeReference {
  std::string snapshot_path;
  std::vector<NotificationBatch> early;  // drained at kServeDrainTick
  std::vector<NotificationBatch> late;   // drained at the end
  ServeStats stats;
};

const ServeReference& GetServeReference() {
  static const ServeReference* const reference = [] {
    auto* ref = new ServeReference();
    ref->snapshot_path = SnapshotPath("serve_chaos.dkfsnap");
    StreamManagerOptions options;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();

    StreamManager manager(options);
    InstallChaosWorkload(manager);
    InstallServeSubscriptions(manager);
    RunTicks(manager, 0, kServeDrainTick);
    ref->early = manager.DrainNotifications();
    RunTicks(manager, kServeDrainTick, kServeLateAttachTick);
    EXPECT_TRUE(manager.Subscribe(LateBand()).ok());
    RunTicks(manager, kServeLateAttachTick, kServeTicks);
    ref->late = manager.DrainNotifications();
    ref->stats = manager.serve_stats();
    EXPECT_FALSE(ref->late.empty());

    StreamManager twin(options);
    InstallChaosWorkload(twin);
    InstallServeSubscriptions(twin);
    RunTicks(twin, 0, kServeDrainTick);
    EXPECT_TRUE(twin.DrainNotifications() == ref->early);
    RunTicks(twin, kServeDrainTick, kServeLateAttachTick);
    EXPECT_TRUE(twin.Subscribe(LateBand()).ok());
    RunTicks(twin, kServeLateAttachTick, kSnapTick);
    EXPECT_TRUE(twin.Save(ref->snapshot_path).ok());
    return ref;
  }();
  return *reference;
}

TEST(CheckpointChaosTest, ServeDeliveryContinuesBitIdenticallyAcrossRestore) {
  const ServeReference& ref = GetServeReference();

  auto manager_or = StreamManager::Restore(ref.snapshot_path);
  ASSERT_TRUE(manager_or.ok()) << manager_or.status().message();
  StreamManager& manager = *manager_or.value();
  EXPECT_EQ(manager.num_subscriptions(), 5u);
  RunTicks(manager, kSnapTick, kServeTicks);
  EXPECT_TRUE(manager.DrainNotifications() == ref.late)
      << "manager->manager notification stream differs";
  const ServeStats stats = manager.serve_stats();
  EXPECT_EQ(stats.notifications, ref.stats.notifications);
  EXPECT_EQ(stats.touched, ref.stats.touched);
  EXPECT_EQ(stats.affected, ref.stats.affected);
  EXPECT_EQ(stats.dropped, 0);

  for (int shards : {1, 2, 4, 8}) {
    auto engine_or = ShardedStreamEngine::Restore(ref.snapshot_path, shards);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().message();
    ShardedStreamEngine& engine = *engine_or.value();
    ASSERT_EQ(engine.num_subscriptions(), 5u);
    RunTicks(engine, kSnapTick, kServeTicks);
    EXPECT_TRUE(engine.DrainNotifications() == ref.late)
        << "manager->engine(" << shards << ") notification stream differs";
    const ServeStats merged = engine.serve_stats();
    EXPECT_EQ(merged.subscriptions, 5);
    EXPECT_EQ(merged.notifications, ref.stats.notifications) << shards;
    EXPECT_EQ(merged.touched, ref.stats.touched) << shards;
    EXPECT_EQ(merged.affected, ref.stats.affected) << shards;
    EXPECT_EQ(merged.dropped, 0) << shards;
  }
}

// ---- governor continuation -------------------------------------------

/// Governor knobs for the continuation runs. With 16-tick epochs the
/// boundaries land after ticks 95 and 111, so kSnapTick = 110 catches
/// the controller mid-epoch: its EWMA rates, sensitivity fits, and
/// freeze flags must come back verbatim for the post-restore epoch at
/// tick 111 to allocate identically.
GovernorOptions SnapGovernor() {
  GovernorOptions governor;
  governor.enabled = true;
  governor.epoch_ticks = 16;
  governor.budget_bytes_per_tick = 140.0;
  governor.delta_floor = 0.05;
  governor.delta_ceiling = 64.0;
  governor.max_step_ratio = 2.0;
  governor.dead_band = 0.10;
  return governor;
}

/// The uninterrupted governed run (per-tick answers from the snapshot
/// tick on, final delta schedule, merged trace, controller state) and
/// the snapshot its interrupted twin saved mid-outage, mid-epoch.
struct GovernorReference {
  std::string snapshot_path;
  std::vector<std::array<double, kNumSources + 1>> answers;  // from kSnapTick
  std::array<double, kNumSources + 1> deltas{};
  std::vector<TraceEvent> trace;
  int64_t epochs = 0;
  std::map<int, DeltaGovernor::SourceState> states;
};

const GovernorReference& GetGovernorReference() {
  static const GovernorReference* const reference = [] {
    auto* ref = new GovernorReference();
    ref->snapshot_path = SnapshotPath("governor_chaos.dkfsnap");
    ShardedStreamEngineOptions options;
    options.num_shards = 3;
    options.channel = FleetChannel();
    options.protocol = FleetProtocol();
    options.governor = SnapGovernor();

    ShardedStreamEngine engine(options);
    InstallChaosWorkload(engine);
    const Reference& readings = GetReference();
    for (int64_t t = 0; t < kFleetTicks; ++t) {
      EXPECT_TRUE(
          engine.ProcessTick(readings.readings[static_cast<size_t>(t)]).ok())
          << "tick " << t;
      if (t >= kSnapTick) {
        std::array<double, kNumSources + 1> answers{};
        for (int id = 1; id <= kNumSources; ++id) {
          answers[static_cast<size_t>(id)] = engine.Answer(id).value()[0];
        }
        ref->answers.push_back(answers);
      }
    }
    for (int id = 1; id <= kNumSources; ++id) {
      ref->deltas[static_cast<size_t>(id)] = engine.source_delta(id).value();
    }
    ref->trace = engine.MergedTrace();
    ref->epochs = engine.governor()->epochs();
    ref->states = engine.governor()->states();
    EXPECT_EQ(ref->epochs, kFleetTicks / 16);
    EXPECT_EQ(engine.shard_sink(0)->dropped_events(), 0)
        << "ring too small for exact trace comparisons";

    ShardedStreamEngine twin(options);
    InstallChaosWorkload(twin);
    RunTicks(twin, 0, kSnapTick);
    EXPECT_TRUE(twin.Save(ref->snapshot_path).ok());
    return ref;
  }();
  return *reference;
}

TEST(CheckpointChaosTest, GovernorResumesMidEpochBitIdentically) {
  const GovernorReference& ref = GetGovernorReference();
  const Reference& readings = GetReference();
  for (int shards : {1, 2, 8}) {
    const std::string label =
        "governor(3)->engine(" + std::to_string(shards) + ")";
    auto engine_or = ShardedStreamEngine::Restore(ref.snapshot_path, shards);
    ASSERT_TRUE(engine_or.ok()) << label << ": "
                                << engine_or.status().message();
    ShardedStreamEngine& engine = *engine_or.value();
    ASSERT_EQ(engine.num_shards(), shards) << label;
    ASSERT_EQ(engine.ticks(), kSnapTick) << label;
    ASSERT_NE(engine.governor(), nullptr) << label;
    for (int64_t t = kSnapTick; t < kFleetTicks; ++t) {
      ASSERT_TRUE(
          engine.ProcessTick(readings.readings[static_cast<size_t>(t)]).ok())
          << label << " tick " << t;
      const auto& answers = ref.answers[static_cast<size_t>(t - kSnapTick)];
      for (int id = 1; id <= kNumSources; ++id) {
        ASSERT_EQ(engine.Answer(id).value()[0],
                  answers[static_cast<size_t>(id)])
            << label << " tick " << t << " source " << id;
      }
    }
    for (int id = 1; id <= kNumSources; ++id) {
      EXPECT_EQ(engine.source_delta(id).value(),
                ref.deltas[static_cast<size_t>(id)])
          << label << " source " << id;
    }
    EXPECT_TRUE(engine.MergedTrace() == ref.trace)
        << label << ": merged trace differs";
    EXPECT_EQ(engine.governor()->epochs(), ref.epochs) << label;
    EXPECT_TRUE(engine.governor()->states() == ref.states)
        << label << ": controller state differs";
  }
}

TEST(CheckpointChaosTest, GovernorSnapshotRejectedByManagerRestore) {
  // A StreamManager never runs governor epochs, so restoring a governed
  // snapshot into one would silently abandon the budget control loop.
  const GovernorReference& ref = GetGovernorReference();
  auto manager_or = StreamManager::Restore(ref.snapshot_path);
  ASSERT_FALSE(manager_or.ok());
  EXPECT_EQ(manager_or.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(manager_or.status().message().find("governor"),
            std::string::npos);
}

TEST(CheckpointChaosTest, UntracedSystemRoundTripsWithTracingOff) {
  const std::string path = SnapshotPath("untraced.dkfsnap");
  StreamManagerOptions options;
  options.channel = FleetChannel();
  options.protocol = FleetProtocol();
  StreamManager manager(options);
  // Workload without EnableTracing.
  for (int id = 1; id <= kNumSources; ++id) {
    ASSERT_TRUE(manager.RegisterSource(id, ScalarModel()).ok());
  }
  RunTicks(manager, 0, 40);
  ASSERT_TRUE(manager.Save(path).ok());
  auto restored_or = StreamManager::Restore(path);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().message();
  EXPECT_EQ(restored_or.value()->trace_sink(), nullptr);
  EXPECT_EQ(restored_or.value()->ticks(), 40);
}

}  // namespace
}  // namespace dkf
