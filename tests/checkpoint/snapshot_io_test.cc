// Wire-format tests for the snapshot codec (docs/checkpoint.md): field
// round-trips including raw-bit NaN payloads, header validation (magic,
// version, checksum, length), truncation and trailing-garbage
// rejection, and the binary primitives underneath.

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/snapshot.h"
#include "checkpoint/snapshot_io.h"
#include "common/binary_io.h"
#include "common/rng.h"
#include "models/model_factory.h"

namespace dkf {
namespace {

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

StateModel ScalarModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

KalmanFilter::FullState SmallFullState(double x0) {
  KalmanFilter::FullState state;
  state.x = Vector{x0};
  state.p = Matrix(1, 1);
  state.p(0, 0) = 0.25;
  state.step = 42;
  state.last_innovation = Vector{-0.125};
  state.process_noise = Matrix(1, 1);
  state.process_noise(0, 0) = 0.05;
  state.measurement_noise = Matrix(1, 1);
  state.measurement_noise(0, 0) = 0.05;
  state.phase = 1;
  state.ss_mode = 2;  // armed fast path
  state.ss_streak1 = 7;
  state.ss_streak2 = 3;
  state.predicts_since_correct = 5;
  state.ss_have_prev = 1;
  state.ss_prev_post[0] = Matrix(1, 1);
  state.ss_prev_post[0](0, 0) = 0.2;
  state.ss_prev_gain = Matrix(1, 1);
  state.ss_prev_gain(0, 0) = 0.6;
  state.ss_period = 2;
  state.ss_idx = 1;
  state.ss_gain[0] = Matrix(1, 1);
  state.ss_gain[0](0, 0) = 0.61;
  state.ss_prior_p[1] = Matrix(1, 1);
  state.ss_prior_p[1](0, 0) = 0.3;
  return state;
}

/// A snapshot exercising every optional branch of the format: faults,
/// per-source RNG + Gilbert–Elliott state, in-flight messages with a
/// NaN (corrupted) payload, deferred ACKs, smoothing, queries,
/// aggregates, and a retained trace.
EngineSnapshot BuildSnapshot() {
  EngineSnapshot snapshot;
  snapshot.energy.instructions_per_bit = 900.0;
  snapshot.channel.drop_probability = 0.1;
  snapshot.channel.seed = 77;
  snapshot.channel.per_source_rng = true;
  snapshot.channel.fault.gilbert_elliott =
      GilbertElliottLoss{0.05, 0.3, 0.0, 1.0};
  snapshot.channel.fault.delay = DelayModel{0, 2};
  snapshot.channel.fault.outages.push_back(OutageWindow{100, 115});
  snapshot.channel.fault.ack_loss_probability = 0.05;
  snapshot.channel.fault.corruption_probability = 0.03;
  snapshot.channel.fault.active_until = 280;
  snapshot.default_delta = 5.0;
  snapshot.protocol.heartbeat_interval = 3;
  snapshot.protocol.staleness_budget = 5;
  snapshot.num_shards = 3;
  snapshot.ticks = 110;
  snapshot.control_messages = 12;

  SourceSnapshot plain;
  plain.source_id = 1;
  plain.model = ScalarModel();
  plain.node.delta = 1.5;
  plain.node.mirror = SmallFullState(2.0);
  plain.node.readings = 110;
  plain.node.updates_sent = 31;
  plain.node.next_sequence = 40;
  plain.node.pending = true;
  plain.node.pending_since = 104;
  plain.node.first_resync_sequence = 38;
  plain.node.resync_attempts = 2;
  plain.node.last_resync_tick = 108;
  plain.node.last_send_tick = 108;
  plain.node.faults.divergence_events = 3;
  plain.link.last_sequence = 37;
  plain.link.last_valid_tick = 99;
  plain.link.last_resync_tick = 80;
  plain.link.last_update_tick = 99;
  plain.link.predictor = SmallFullState(1.9);
  plain.channel.stats.messages = 45;
  plain.channel.stats.bytes = 2000;
  plain.channel.stats.dropped = 6;
  plain.channel.has_rng = true;
  Rng rng(7);
  (void)rng.Gaussian(0.0, 1.0);  // cached-gaussian branch
  plain.channel.rng = rng.SaveState();
  plain.channel.has_ge_state = true;
  plain.channel.ge_bad = true;
  Channel::InFlightEntry corrupted;
  corrupted.due = 111;
  corrupted.corrupted = true;
  corrupted.message.type = MessageType::kMeasurement;
  corrupted.message.source_id = 1;
  corrupted.message.tick = 109;
  corrupted.message.payload =
      Vector{std::numeric_limits<double>::quiet_NaN()};
  corrupted.message.sequence = 39;
  corrupted.message.checksum = 0xDEADBEEF;
  plain.channel.in_flight.push_back(corrupted);
  Channel::InFlightEntry resync;
  resync.due = 112;
  resync.ack_lost = true;
  resync.message.type = MessageType::kResync;
  resync.message.source_id = 1;
  resync.message.tick = 110;
  resync.message.sequence = 40;
  resync.message.resync_state = Vector{2.25};
  resync.message.resync_covariance = Matrix(1, 1);
  resync.message.resync_covariance(0, 0) = 0.5;
  resync.message.resync_step = 108;
  plain.channel.in_flight.push_back(resync);
  plain.channel.deferred_acks = {36, 37};
  snapshot.sources.push_back(plain);

  SourceSnapshot smoothed;
  smoothed.source_id = 4;
  smoothed.model = ScalarModel();
  smoothed.node.delta = 2.0;
  smoothed.node.smoothing_factor = 0.5;
  smoothed.node.smoothing_measurement_variance = 0.8;
  smoothed.node.mirror = SmallFullState(-1.0);
  smoothed.node.smoother_filter = SmallFullState(-0.9);
  smoothed.node.smoother_count = 110;
  smoothed.link.predictor = SmallFullState(-1.0);
  snapshot.sources.push_back(smoothed);

  snapshot.server_faults.resyncs_applied = 9;
  snapshot.server_faults.rejected_corrupt = 4;
  snapshot.has_shared_rng = true;
  snapshot.shared_rng = Rng(13).SaveState();

  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = 1.5;
  query.description = "point query";
  snapshot.queries.push_back(query);
  ContinuousQuery smoothed_query;
  smoothed_query.id = 100;
  smoothed_query.source_id = 4;
  smoothed_query.precision = 2.0;
  smoothed_query.smoothing_factor = 0.5;
  snapshot.queries.push_back(smoothed_query);

  AggregateSnapshot aggregate;
  aggregate.id = 7;
  aggregate.source_ids = {1, 4};
  aggregate.synthetic_query_ids = {(1 << 24) + 7 * 1024,
                                   (1 << 24) + 7 * 1024 + 1};
  snapshot.aggregates.push_back(aggregate);

  snapshot.obs.enabled = true;
  snapshot.obs.options.ring_capacity = 1 << 10;
  TraceEvent event;
  event.step = 109;
  event.source_id = 1;
  event.kind = TraceEventKind::kDivergence;
  event.actor = TraceActor::kSource;
  event.value = 3.5;
  event.detail = 39;
  snapshot.obs.events.push_back(event);
  snapshot.obs.kind_counts[static_cast<size_t>(TraceEventKind::kSuppress)] =
      800;
  snapshot.obs.kind_counts[static_cast<size_t>(
      TraceEventKind::kDivergence)] = 1;
  snapshot.obs.dropped = 0;
  snapshot.obs.gauges["channel.in_flight"] = 2.0;

  snapshot.serve.options.max_buffered_notifications = 4096;
  ServeSubscriptionSnapshot band;
  band.spec.id = 3;
  band.spec.kind = SubscriptionKind::kBandAlert;
  band.spec.source_id = 1;
  band.spec.lo = -1.0;
  band.spec.hi = 2.5;
  band.spec.uncertainty_ceiling = 0.75;
  band.spec.description = "band over source 1";
  band.inside = true;
  band.fired = true;
  snapshot.serve.subscriptions.push_back(band);
  ServeSubscriptionSnapshot agg_sub;
  agg_sub.spec.id = 9;
  agg_sub.spec.kind = SubscriptionKind::kAggregate;
  agg_sub.spec.aggregate_id = 7;
  snapshot.serve.subscriptions.push_back(agg_sub);
  NotificationBatch batch;
  batch.step = 109;
  Notification agg_update;
  agg_update.step = 109;
  agg_update.source_id = -8;  // AggregateSourceKey(7)
  agg_update.subscription_id = 9;
  agg_update.kind = NotificationKind::kAggregateUpdate;
  agg_update.value = 3.25;
  batch.notifications.push_back(agg_update);
  Notification band_exit;
  band_exit.step = 109;
  band_exit.source_id = 1;
  band_exit.subscription_id = 3;
  band_exit.kind = NotificationKind::kBandExit;
  band_exit.value = 2.75;
  band_exit.aux = 2.5;
  batch.notifications.push_back(band_exit);
  snapshot.serve.pending.push_back(batch);
  snapshot.serve.drained_through_step = 108;
  snapshot.serve.notifications = 61;
  snapshot.serve.dropped = 2;
  snapshot.serve.touched = 400;
  snapshot.serve.affected = 59;

  snapshot.governor.enabled = true;
  snapshot.governor.options.enabled = true;
  snapshot.governor.options.epoch_ticks = 16;
  snapshot.governor.options.budget_bytes_per_tick = 150.0;
  snapshot.governor.options.delta_floor = 0.05;
  snapshot.governor.options.delta_ceiling = 64.0;
  snapshot.governor.options.max_step_ratio = 2.0;
  snapshot.governor.options.dead_band = 0.10;
  snapshot.governor.options.ewma_alpha = 0.35;
  snapshot.governor.options.process_noise = 0.04;
  snapshot.governor.options.measurement_noise = 0.20;
  snapshot.governor.epochs = 6;
  GovernorSourceSnapshot measured;
  measured.source_id = 1;
  measured.state.ewma_bytes = 87.5;
  measured.state.ewma_updates = 2.75;
  measured.state.last_bytes = 9800;
  measured.state.last_updates = 310;
  measured.state.intensity = 196.875;
  measured.state.variance = 12.5;
  measured.state.measured = true;
  snapshot.governor.states.push_back(measured);
  GovernorSourceSnapshot frozen;
  frozen.source_id = 4;
  frozen.state.last_bytes = 450;
  frozen.state.last_updates = 12;
  frozen.state.frozen = true;
  frozen.state.held_delta = 2.5;
  snapshot.governor.states.push_back(frozen);
  return snapshot;
}

void ExpectFullStateEq(const KalmanFilter::FullState& a,
                       const KalmanFilter::FullState& b) {
  ASSERT_EQ(a.x.size(), b.x.size());
  EXPECT_EQ(a.x[0], b.x[0]);
  EXPECT_EQ(a.p(0, 0), b.p(0, 0));
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.last_innovation[0], b.last_innovation[0]);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.ss_mode, b.ss_mode);
  EXPECT_EQ(a.ss_streak1, b.ss_streak1);
  EXPECT_EQ(a.ss_streak2, b.ss_streak2);
  EXPECT_EQ(a.predicts_since_correct, b.predicts_since_correct);
  EXPECT_EQ(a.ss_have_prev, b.ss_have_prev);
  EXPECT_EQ(a.ss_prev_post[0](0, 0), b.ss_prev_post[0](0, 0));
  EXPECT_EQ(a.ss_prev_gain(0, 0), b.ss_prev_gain(0, 0));
  EXPECT_EQ(a.ss_period, b.ss_period);
  EXPECT_EQ(a.ss_idx, b.ss_idx);
  EXPECT_EQ(a.ss_gain[0](0, 0), b.ss_gain[0](0, 0));
  EXPECT_EQ(a.ss_prior_p[1](0, 0), b.ss_prior_p[1](0, 0));
}

TEST(SnapshotIoTest, RoundTripPreservesEveryField) {
  const EngineSnapshot original = BuildSnapshot();
  auto bytes_or = EncodeSnapshot(original);
  ASSERT_TRUE(bytes_or.ok()) << bytes_or.status().message();
  auto decoded_or = DecodeSnapshot(bytes_or.value());
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().message();
  const EngineSnapshot& decoded = decoded_or.value();

  EXPECT_EQ(decoded.energy.instructions_per_bit, 900.0);
  EXPECT_EQ(decoded.channel.drop_probability, 0.1);
  EXPECT_EQ(decoded.channel.seed, 77u);
  EXPECT_TRUE(decoded.channel.per_source_rng);
  ASSERT_TRUE(decoded.channel.fault.gilbert_elliott.has_value());
  EXPECT_EQ(decoded.channel.fault.gilbert_elliott->p_good_to_bad, 0.05);
  ASSERT_TRUE(decoded.channel.fault.delay.has_value());
  EXPECT_EQ(decoded.channel.fault.delay->max_ticks, 2);
  ASSERT_EQ(decoded.channel.fault.outages.size(), 1u);
  EXPECT_EQ(decoded.channel.fault.outages[0].end, 115);
  EXPECT_EQ(decoded.channel.fault.active_until, 280);
  EXPECT_EQ(decoded.default_delta, 5.0);
  EXPECT_EQ(decoded.protocol.heartbeat_interval, 3);
  EXPECT_EQ(decoded.protocol.staleness_budget, 5);
  EXPECT_EQ(decoded.num_shards, 3);
  EXPECT_EQ(decoded.ticks, 110);
  EXPECT_EQ(decoded.control_messages, 12);

  ASSERT_EQ(decoded.sources.size(), 2u);
  const SourceSnapshot& plain = decoded.sources[0];
  EXPECT_EQ(plain.source_id, 1);
  EXPECT_EQ(plain.model.measurement_dim, 1u);
  EXPECT_EQ(plain.node.delta, 1.5);
  EXPECT_FALSE(plain.node.smoothing_factor.has_value());
  ExpectFullStateEq(plain.node.mirror, original.sources[0].node.mirror);
  EXPECT_EQ(plain.node.readings, 110);
  EXPECT_EQ(plain.node.updates_sent, 31);
  EXPECT_EQ(plain.node.next_sequence, 40u);
  EXPECT_TRUE(plain.node.pending);
  EXPECT_EQ(plain.node.pending_since, 104);
  EXPECT_EQ(plain.node.first_resync_sequence, 38u);
  EXPECT_EQ(plain.node.resync_attempts, 2);
  EXPECT_EQ(plain.node.faults.divergence_events, 3);
  EXPECT_EQ(plain.link.last_sequence, 37u);
  EXPECT_EQ(plain.link.last_valid_tick, 99);
  EXPECT_EQ(plain.link.last_resync_tick, 80);
  ExpectFullStateEq(plain.link.predictor,
                    original.sources[0].link.predictor);
  EXPECT_EQ(plain.channel.stats.messages, 45);
  EXPECT_EQ(plain.channel.stats.dropped, 6);
  ASSERT_TRUE(plain.channel.has_rng);
  EXPECT_TRUE(plain.channel.rng.has_cached_gaussian);
  EXPECT_EQ(plain.channel.rng.cached_gaussian,
            original.sources[0].channel.rng.cached_gaussian);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(plain.channel.rng.words[w],
              original.sources[0].channel.rng.words[w]);
  }
  ASSERT_TRUE(plain.channel.has_ge_state);
  EXPECT_TRUE(plain.channel.ge_bad);
  ASSERT_EQ(plain.channel.in_flight.size(), 2u);
  EXPECT_EQ(plain.channel.in_flight[0].due, 111);
  EXPECT_TRUE(plain.channel.in_flight[0].corrupted);
  // The corrupted payload's NaN survives bit-exactly (raw IEEE bits).
  EXPECT_EQ(BitsOf(plain.channel.in_flight[0].message.payload[0]),
            BitsOf(original.sources[0]
                       .channel.in_flight[0]
                       .message.payload[0]));
  EXPECT_EQ(plain.channel.in_flight[0].message.checksum, 0xDEADBEEFu);
  EXPECT_EQ(plain.channel.in_flight[1].message.type, MessageType::kResync);
  EXPECT_TRUE(plain.channel.in_flight[1].ack_lost);
  EXPECT_EQ(plain.channel.in_flight[1].message.resync_state[0], 2.25);
  EXPECT_EQ(plain.channel.in_flight[1].message.resync_step, 108);
  EXPECT_EQ(plain.channel.deferred_acks,
            (std::vector<uint32_t>{36, 37}));

  const SourceSnapshot& smoothed = decoded.sources[1];
  EXPECT_EQ(smoothed.source_id, 4);
  ASSERT_TRUE(smoothed.node.smoothing_factor.has_value());
  EXPECT_EQ(*smoothed.node.smoothing_factor, 0.5);
  EXPECT_EQ(smoothed.node.smoothing_measurement_variance, 0.8);
  ExpectFullStateEq(smoothed.node.smoother_filter,
                    original.sources[1].node.smoother_filter);
  EXPECT_EQ(smoothed.node.smoother_count, 110);

  EXPECT_EQ(decoded.server_faults.resyncs_applied, 9);
  EXPECT_EQ(decoded.server_faults.rejected_corrupt, 4);
  ASSERT_TRUE(decoded.has_shared_rng);
  EXPECT_EQ(decoded.shared_rng.words[0], original.shared_rng.words[0]);

  ASSERT_EQ(decoded.queries.size(), 2u);
  EXPECT_EQ(decoded.queries[0].description, "point query");
  ASSERT_TRUE(decoded.queries[1].smoothing_factor.has_value());
  EXPECT_EQ(*decoded.queries[1].smoothing_factor, 0.5);
  ASSERT_EQ(decoded.aggregates.size(), 1u);
  EXPECT_EQ(decoded.aggregates[0].id, 7);
  EXPECT_EQ(decoded.aggregates[0].source_ids, (std::vector<int>{1, 4}));
  EXPECT_EQ(decoded.aggregates[0].synthetic_query_ids,
            original.aggregates[0].synthetic_query_ids);

  ASSERT_TRUE(decoded.obs.enabled);
  EXPECT_EQ(decoded.obs.options.ring_capacity, 1u << 10);
  ASSERT_EQ(decoded.obs.events.size(), 1u);
  EXPECT_TRUE(decoded.obs.events[0] == original.obs.events[0]);
  EXPECT_EQ(decoded.obs.kind_counts, original.obs.kind_counts);
  EXPECT_EQ(decoded.obs.gauges.at("channel.in_flight"), 2.0);

  EXPECT_EQ(decoded.serve.options.max_buffered_notifications, 4096u);
  ASSERT_EQ(decoded.serve.subscriptions.size(), 2u);
  EXPECT_TRUE(decoded.serve.subscriptions[0].spec ==
              original.serve.subscriptions[0].spec);
  EXPECT_TRUE(decoded.serve.subscriptions[0].inside);
  EXPECT_TRUE(decoded.serve.subscriptions[0].fired);
  EXPECT_TRUE(decoded.serve.subscriptions[1].spec ==
              original.serve.subscriptions[1].spec);
  EXPECT_FALSE(decoded.serve.subscriptions[1].inside);
  ASSERT_EQ(decoded.serve.pending.size(), 1u);
  EXPECT_TRUE(decoded.serve.pending[0] == original.serve.pending[0]);
  EXPECT_EQ(decoded.serve.drained_through_step, 108);
  EXPECT_EQ(decoded.serve.notifications, 61);
  EXPECT_EQ(decoded.serve.dropped, 2);
  EXPECT_EQ(decoded.serve.touched, 400);
  EXPECT_EQ(decoded.serve.affected, 59);

  ASSERT_TRUE(decoded.governor.enabled);
  EXPECT_TRUE(decoded.governor.options.enabled);
  EXPECT_EQ(decoded.governor.options.epoch_ticks, 16);
  EXPECT_EQ(decoded.governor.options.budget_bytes_per_tick, 150.0);
  EXPECT_EQ(decoded.governor.options.delta_floor, 0.05);
  EXPECT_EQ(decoded.governor.options.delta_ceiling, 64.0);
  EXPECT_EQ(decoded.governor.options.max_step_ratio, 2.0);
  EXPECT_EQ(decoded.governor.options.dead_band, 0.10);
  EXPECT_EQ(decoded.governor.options.ewma_alpha, 0.35);
  EXPECT_EQ(decoded.governor.options.process_noise, 0.04);
  EXPECT_EQ(decoded.governor.options.measurement_noise, 0.20);
  EXPECT_EQ(decoded.governor.epochs, 6);
  ASSERT_EQ(decoded.governor.states.size(), 2u);
  EXPECT_EQ(decoded.governor.states[0].source_id, 1);
  EXPECT_TRUE(decoded.governor.states[0].state ==
              original.governor.states[0].state);
  EXPECT_EQ(decoded.governor.states[1].source_id, 4);
  EXPECT_TRUE(decoded.governor.states[1].state ==
              original.governor.states[1].state);
}

TEST(SnapshotIoTest, ReadsVersion1FilesWithoutServeSection) {
  EngineSnapshot snapshot = BuildSnapshot();
  snapshot.serve = ServeSnapshot();  // v1 files predate the serving layer
  snapshot.governor = GovernorSnapshot();  // ...and the delta governor
  auto encoded_or = EncodeSnapshotForVersion(snapshot, 1);
  ASSERT_TRUE(encoded_or.ok()) << encoded_or.status().message();
  auto decoded_or = DecodeSnapshot(encoded_or.value());
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().message();
  EXPECT_EQ(decoded_or.value().ticks, 110);
  EXPECT_TRUE(decoded_or.value().serve.subscriptions.empty());
  EXPECT_TRUE(decoded_or.value().serve.pending.empty());
  EXPECT_EQ(decoded_or.value().serve.drained_through_step, -1);
  EXPECT_FALSE(decoded_or.value().governor.enabled);
  EXPECT_FALSE(decoded_or.value().protocol.adaptive.enabled);
}

TEST(SnapshotIoTest, ReadsVersion2FilesWithoutGovernorSection) {
  EngineSnapshot snapshot = BuildSnapshot();
  snapshot.governor = GovernorSnapshot();  // v2 predates the governor
  auto encoded_or = EncodeSnapshotForVersion(snapshot, 2);
  ASSERT_TRUE(encoded_or.ok()) << encoded_or.status().message();
  auto decoded_or = DecodeSnapshot(encoded_or.value());
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().message();
  const EngineSnapshot& decoded = decoded_or.value();
  EXPECT_EQ(decoded.ticks, 110);
  // The serve section (a v2 feature) still decodes in full.
  EXPECT_EQ(decoded.serve.subscriptions.size(), 2u);
  EXPECT_EQ(decoded.serve.notifications, 61);
  // The governor section defaults to disabled with empty state.
  EXPECT_FALSE(decoded.governor.enabled);
  EXPECT_TRUE(decoded.governor.states.empty());
  EXPECT_EQ(decoded.governor.epochs, 0);
}

TEST(SnapshotIoTest, ReadsVersion3FilesWithoutAdaptiveFields) {
  // A v3 target drops the adaptive configuration and every adapter
  // vector, even when the source snapshot carries them; the decoded
  // snapshot comes back adaptation-disabled, everything else intact.
  EngineSnapshot snapshot = BuildSnapshot();
  snapshot.protocol.adaptive.enabled = true;
  snapshot.protocol.adaptive.holdover_gap = 512;
  snapshot.sources[0].node.adapt = Vector{1.0, 0.5, 0.25};
  snapshot.sources[0].link.adapt = Vector{1.0, 0.5, 0.25};
  auto encoded_or = EncodeSnapshotForVersion(snapshot, 3);
  ASSERT_TRUE(encoded_or.ok()) << encoded_or.status().message();
  auto decoded_or = DecodeSnapshot(encoded_or.value());
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().message();
  const EngineSnapshot& decoded = decoded_or.value();
  EXPECT_EQ(decoded.ticks, 110);
  EXPECT_FALSE(decoded.protocol.adaptive.enabled);
  EXPECT_EQ(decoded.protocol.adaptive.holdover_gap,
            AdaptiveNoiseConfig().holdover_gap);
  EXPECT_EQ(decoded.sources[0].node.adapt.size(), 0);
  EXPECT_EQ(decoded.sources[0].link.adapt.size(), 0);
  // v3 features survive the downgrade untouched.
  EXPECT_TRUE(decoded.governor.enabled);
  EXPECT_EQ(decoded.serve.subscriptions.size(), 2u);
}

TEST(SnapshotIoTest, RejectsEncodingUnsupportedVersions) {
  EngineSnapshot snapshot = BuildSnapshot();
  auto too_old = EncodeSnapshotForVersion(snapshot, 0);
  ASSERT_FALSE(too_old.ok());
  EXPECT_EQ(too_old.status().code(), StatusCode::kInvalidArgument);
  auto too_new = EncodeSnapshotForVersion(snapshot, kSnapshotVersion + 1);
  ASSERT_FALSE(too_new.ok());
  EXPECT_EQ(too_new.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotIoTest, RejectsCorruptGovernorSections) {
  // Out-of-order source ids: the encoder writes whatever it is given,
  // the decoder refuses.
  EngineSnapshot unordered = BuildSnapshot();
  std::swap(unordered.governor.states[0], unordered.governor.states[1]);
  auto unordered_result =
      DecodeSnapshot(EncodeSnapshot(unordered).value());
  ASSERT_FALSE(unordered_result.ok());
  EXPECT_EQ(unordered_result.status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_NE(unordered_result.status().message().find("ascending"),
            std::string::npos);

  // A non-finite controller state would poison every later allocation.
  EngineSnapshot poisoned = BuildSnapshot();
  poisoned.governor.states[0].state.intensity =
      std::numeric_limits<double>::quiet_NaN();
  auto poisoned_result = DecodeSnapshot(EncodeSnapshot(poisoned).value());
  ASSERT_FALSE(poisoned_result.ok());
  EXPECT_EQ(poisoned_result.status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_NE(poisoned_result.status().message().find("non-finite"),
            std::string::npos);

  // Invalid governor options (a dead band of 1 would hold every delta
  // forever) fail the decoder's Validate pass.
  EngineSnapshot misconfigured = BuildSnapshot();
  misconfigured.governor.options.dead_band = 1.0;
  auto misconfigured_result =
      DecodeSnapshot(EncodeSnapshot(misconfigured).value());
  ASSERT_FALSE(misconfigured_result.ok());
  EXPECT_EQ(misconfigured_result.status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotIoTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/roundtrip.dkfsnap";
  ASSERT_TRUE(SaveSnapshotFile(BuildSnapshot(), path).ok());
  auto loaded_or = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().message();
  EXPECT_EQ(loaded_or.value().ticks, 110);

  auto missing = LoadSnapshotFile(::testing::TempDir() + "/nope.dkfsnap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotIoTest, RejectsWrongMagic) {
  auto result = DecodeSnapshot("definitely not a snapshot");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("not a dkf snapshot"),
            std::string::npos);
}

TEST(SnapshotIoTest, RejectsVersionMismatch) {
  std::string bytes = EncodeSnapshot(BuildSnapshot()).value();
  bytes[8] = static_cast<char>(9);  // version u32 lives at offset 8
  auto result = DecodeSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("unsupported snapshot version"),
            std::string::npos);
}

TEST(SnapshotIoTest, RejectsChecksumMismatch) {
  std::string bytes = EncodeSnapshot(BuildSnapshot()).value();
  bytes[bytes.size() - 1] =
      static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
  auto result = DecodeSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotIoTest, RejectsTruncation) {
  const std::string bytes = EncodeSnapshot(BuildSnapshot()).value();
  // Truncated payload: the declared length no longer matches.
  auto payload_cut = DecodeSnapshot(bytes.substr(0, bytes.size() - 7));
  ASSERT_FALSE(payload_cut.ok());
  EXPECT_EQ(payload_cut.status().code(), StatusCode::kOutOfRange);
  // Truncated header (magic survives, version does not).
  auto header_cut = DecodeSnapshot(bytes.substr(0, 10));
  ASSERT_FALSE(header_cut.ok());
  EXPECT_EQ(header_cut.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotIoTest, RejectsTrailingGarbageInsidePayload) {
  // Craft a file whose header checksums and counts the padded payload,
  // so the only defense left is the decoder's exhaustion check.
  const std::string valid = EncodeSnapshot(BuildSnapshot()).value();
  std::string payload = valid.substr(28);  // 8 magic + 4 + 8 + 8
  payload.append("XX");
  BinaryWriter file;
  for (char c : std::string("DKFSNAP1")) {
    file.WriteU8(static_cast<uint8_t>(c));
  }
  file.WriteU32(kSnapshotVersion);
  file.WriteU64(Fnv1a64(reinterpret_cast<const uint8_t*>(payload.data()),
                        payload.size()));
  file.WriteU64(payload.size());
  std::string bytes = file.TakeBytes();
  bytes.append(payload);
  auto result = DecodeSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(SnapshotIoTest, RejectsUnserializableModels) {
  EngineSnapshot snapshot = BuildSnapshot();
  snapshot.sources[0].model.options.transition_fn =
      [](int64_t) { return Matrix(1, 1); };
  auto fn_result = EncodeSnapshot(snapshot);
  ASSERT_FALSE(fn_result.ok());
  EXPECT_EQ(fn_result.status().code(), StatusCode::kUnimplemented);

  EngineSnapshot bad = BuildSnapshot();
  bad.sources[0].model.options.transition(0, 0) =
      std::numeric_limits<double>::infinity();
  auto finite_result = EncodeSnapshot(bad);
  ASSERT_FALSE(finite_result.ok());
  EXPECT_EQ(finite_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotIoTest, BinaryPrimitivesRoundTripAndBoundsCheck) {
  BinaryWriter writer;
  writer.WriteU8(200);
  writer.WriteU32(0xA1B2C3D4u);
  writer.WriteU64(0x1122334455667788ull);
  writer.WriteI64(-5);
  writer.WriteF64(std::numeric_limits<double>::quiet_NaN());
  writer.WriteBool(true);
  writer.WriteString("snapshot");

  const std::string bytes = writer.bytes();
  BinaryReader reader(bytes);
  EXPECT_EQ(reader.ReadU8().value(), 200);
  EXPECT_EQ(reader.ReadU32().value(), 0xA1B2C3D4u);
  EXPECT_EQ(reader.ReadU64().value(), 0x1122334455667788ull);
  EXPECT_EQ(reader.ReadI64().value(), -5);
  EXPECT_EQ(BitsOf(reader.ReadF64().value()),
            BitsOf(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(reader.ReadBool().value(), true);
  EXPECT_EQ(reader.ReadString().value(), "snapshot");
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
  auto past_end = reader.ReadU8();
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kOutOfRange);

  // A bool byte other than 0/1 is rejected, not coerced.
  BinaryWriter bad_bool;
  bad_bool.WriteU8(2);
  const std::string bad_bytes = bad_bool.bytes();
  BinaryReader bad_reader(bad_bytes);
  ASSERT_FALSE(bad_reader.ReadBool().ok());

  // A payload that runs out mid-decode fails cleanly with OutOfRange
  // even when its header checksums correctly.
  BinaryWriter huge;
  huge.WriteU64(1ull << 60);
  const std::string huge_bytes = huge.bytes();
  BinaryWriter file;
  for (char c : std::string("DKFSNAP1")) {
    file.WriteU8(static_cast<uint8_t>(c));
  }
  file.WriteU32(kSnapshotVersion);
  file.WriteU64(Fnv1a64(
      reinterpret_cast<const uint8_t*>(huge_bytes.data()),
      huge_bytes.size()));
  file.WriteU64(huge_bytes.size());
  std::string crafted = file.TakeBytes();
  crafted.append(huge_bytes);
  auto result = DecodeSnapshot(crafted);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dkf
