#!/usr/bin/env python3
"""Compare two bench JSON reports and gate regressions.

Usage: bench_compare.py OLD.json NEW.json [--threshold=0.10]

Supports seven report kinds (both files must be the same kind):

filter_hotpath — rows keyed by (model, state_dim). Fails when any row's
ns_per_tick regressed by more than the threshold (default 10%), when a
row present in OLD disappeared from NEW, or when NEW reports nonzero
allocs_per_tick / nonzero adaptive_allocs_per_tick (the noise servo may
not put allocations back into the hot loop) / a disarmed fast path for
an inline-size model (state_dim <= 6).

runtime_throughput — rows keyed by (sources, shards). Fails when any
row's ticks_per_sec regressed by more than the threshold, when a row
disappeared, when the sequential-equivalence cross-check failed, or on
a resync storm: resyncs_sent growing past the old report's count by
more than the threshold (plus a small absolute slack), or divergence
episodes that never healed (divergence_events > 0 with
resyncs_applied == 0).

serve_fanout — rows keyed by (subscriptions, shards). Fails when any
row's notifications_per_sec regressed by more than the threshold, when
a row disappeared, when backpressure dropped notifications (the bench
drains every tick, so any drop is a delivery bug), or when the fan-out
index stopped being proportional: touched must stay within
FANOUT_TOUCH_FACTOR x affected (plus a small absolute slack) — the
whole point of the query index is that per-tick work tracks the
affected subscription count, not the registered count.

fleet_scale — rows keyed by sources. Fails when any row's
ns_per_tick_per_source regressed by more than the threshold, when a
row disappeared, when the batched cost meets or exceeds the committed
per-source dim-1 baseline (FLEET_NS_LIMIT — the batched engine must
beat the path it replaces, not just track itself), when resident_ratio
falls below FLEET_RESIDENT_FLOOR (the fleet quietly spilling back to
the scalar path makes the numbers meaningless), or when the per-source
equivalence cross-check failed on the row that carries one.

adaptive — rows keyed by scenario. Fails when a row disappeared, when
any delta_violations are reported (the servo silently weakened the
paper's precision contract), when the sharded equivalence cross-check
failed, when suppression_gain fell below ADAPTIVE_GAIN_FLOOR (the
servo no longer pays for itself on a workload built to reward it), or
when a scenario's gain dropped more than ADAPTIVE_GAIN_SLACK below the
old report's (the streams are seeded, so any drift is a code change).

governor — rows keyed by sources. Fails when a row disappeared, when
any row's sustained overshoot exceeds GOVERNOR_OVERSHOOT_LIMIT, when
the settled wire rate leaves the GOVERNOR_FLAT_TOL band around the
report's budget (the headline robustness claim: doubling the fleet
must not move the bytes), when a run never settles within the sweep,
or when settle time regresses past the old report's by more than
GOVERNOR_SETTLE_SLACK epochs.

fusion — rows keyed by members (redundant sensors per group). Fails
when a row disappeared, when the largest group's uplink_reduction
falls below FUSION_REDUCTION_FLOOR (the headline claim: a redundant
fleet must buy at least that multiple of uplink back), when any row's
reduction drops more than FUSION_REDUCTION_SLACK below the old
report's (the workload is seeded and the protocol deterministic, so
drift is a code change), or when fused_rmse exceeds
FUSION_RMSE_FACTOR x baseline_rmse (the uplink win may not be bought
with garbage answers). The downlink broadcast_bytes are printed with
every row — the uplink reduction is never quoted without its price.

All kinds additionally gate observability overhead: when NEW's rows
carry an obs_overhead_pct field (bench run with tracing measured —
always for filter_hotpath, --trace for runtime_throughput), any row
whose traced run costs more than OBS_OVERHEAD_LIMIT_PCT over the
untraced run fails.

Intended for CI and for eyeballing a PR's perf delta:

    ./build-release/bench/bench_filter_hotpath > /tmp/new.json
    scripts/bench_compare.py BENCH_filter_hotpath.json /tmp/new.json
"""

import json
import sys

KNOWN_KINDS = ("filter_hotpath", "runtime_throughput", "serve_fanout",
               "fleet_scale", "governor", "adaptive", "fusion")

# Ceiling on the cost of running with trace sinks wired, as a percent of
# the untraced run. The sinks are designed to be an array increment plus
# a ring write per event; anything past this is an instrumentation bug.
OBS_OVERHEAD_LIMIT_PCT = 5.0


def check_obs_overhead(name, new_row, failures):
    """Gates new_row's obs_overhead_pct, if measured. Returns a marker."""
    overhead = new_row.get("obs_overhead_pct")
    if overhead is None or overhead <= OBS_OVERHEAD_LIMIT_PCT:
        return ""
    failures.append(
        f"{name}: tracing overhead {overhead:.1f}% "
        f"(limit {OBS_OVERHEAD_LIMIT_PCT:.0f}%)")
    return "  <-- OBS OVERHEAD"


def load(path):
    with open(path) as f:
        report = json.load(f)
    kind = report.get("benchmark")
    if kind not in KNOWN_KINDS:
        sys.exit(f"{path}: not one of {', '.join(KNOWN_KINDS)}")
    return kind, report


def compare_filter_hotpath(old, new, threshold):
    failures = []
    old_rows = {(r["model"], r["state_dim"]): r for r in old["results"]}
    new_rows = {(r["model"], r["state_dim"]): r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = f"{key[0]} n={key[1]}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_ns, new_ns = old_row["ns_per_tick"], new_row["ns_per_tick"]
        ratio = new_ns / old_ns if old_ns > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: ns/tick regressed {old_ns:.1f} -> {new_ns:.1f} "
                f"({(ratio - 1) * 100:+.1f}%, threshold {threshold:.0%})")
            marker = "  <-- REGRESSION"
        if key[1] <= 6 and new_row.get("allocs_per_tick", 0) != 0:
            failures.append(
                f"{name}: {new_row['allocs_per_tick']} allocs/tick "
                "(inline sizes must be allocation-free)")
            marker = "  <-- ALLOCATES"
        if key[1] <= 6 and new_row.get("adaptive_allocs_per_tick", 0) != 0:
            failures.append(
                f"{name}: {new_row['adaptive_allocs_per_tick']} allocs/tick "
                "with the noise servo wired (must stay allocation-free)")
            marker = "  <-- SERVO ALLOCATES"
        if key[1] <= 6 and not new_row.get("steady_state_armed", False):
            failures.append(f"{name}: steady-state fast path did not arm")
            marker = "  <-- NOT ARMED"
        marker = check_obs_overhead(name, new_row, failures) or marker
        print(f"{name:16s} {old_ns:8.1f} -> {new_ns:8.1f} ns/tick "
              f"({(ratio - 1) * 100:+6.1f}%){marker}")
    return failures


# Absolute slack on the resync-storm gate, so a near-zero old count does
# not turn ordinary run-to-run jitter into a failure.
RESYNC_SLACK = 10


def compare_runtime_throughput(old, new, threshold):
    failures = []
    old_rows = {(r["sources"], r["shards"]): r for r in old["results"]}
    new_rows = {(r["sources"], r["shards"]): r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = f"sources={key[0]} shards={key[1]}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_tps, new_tps = old_row["ticks_per_sec"], new_row["ticks_per_sec"]
        ratio = old_tps / new_tps if new_tps > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: ticks/sec regressed {old_tps:.1f} -> {new_tps:.1f} "
                f"({(1 - new_tps / old_tps) * 100:+.1f}%, "
                f"threshold {threshold:.0%})")
            marker = "  <-- REGRESSION"
        if not new_row.get("equivalent", True):
            failures.append(
                f"{name}: sharded run diverged from the sequential baseline")
            marker = "  <-- DIVERGED"
        old_resyncs = old_row.get("resyncs_sent", 0)
        new_resyncs = new_row.get("resyncs_sent", 0)
        if new_resyncs > old_resyncs * (1.0 + threshold) + RESYNC_SLACK:
            failures.append(
                f"{name}: resync storm — resyncs_sent "
                f"{old_resyncs} -> {new_resyncs}")
            marker = "  <-- RESYNC STORM"
        if (new_row.get("divergence_events", 0) > 0
                and new_row.get("resyncs_applied", 0) == 0):
            failures.append(
                f"{name}: {new_row['divergence_events']} divergence "
                "event(s) but no resync was ever applied")
            marker = "  <-- NEVER HEALED"
        marker = check_obs_overhead(name, new_row, failures) or marker
        rss = new_row.get("peak_rss_bytes")
        rss_note = f" rss {rss / (1024 * 1024):.0f}MB" if rss else ""
        print(f"{name:28s} {old_tps:9.1f} -> {new_tps:9.1f} ticks/sec "
              f"({(new_tps / old_tps - 1) * 100:+6.1f}%) "
              f"resyncs {old_resyncs} -> {new_resyncs}{rss_note}{marker}")
    return failures


# Fan-out proportionality gate: the index may scan a few candidates per
# affected subscription (endpoint neighbors that did not flip), but
# touched growing past this multiple of affected means the index has
# degraded toward scanning registrations.
FANOUT_TOUCH_FACTOR = 4.0
FANOUT_TOUCH_SLACK = 1000


def compare_serve_fanout(old, new, threshold):
    failures = []
    old_rows = {(r["subscriptions"], r["shards"]): r for r in old["results"]}
    new_rows = {(r["subscriptions"], r["shards"]): r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = f"subs={key[0]} shards={key[1]}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_nps = old_row["notifications_per_sec"]
        new_nps = new_row["notifications_per_sec"]
        ratio = old_nps / new_nps if new_nps > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: notifications/sec regressed "
                f"{old_nps:.0f} -> {new_nps:.0f} "
                f"({(1 - new_nps / old_nps) * 100:+.1f}%, "
                f"threshold {threshold:.0%})")
            marker = "  <-- REGRESSION"
        touched = new_row.get("touched", 0)
        affected = new_row.get("affected", 0)
        if touched > affected * FANOUT_TOUCH_FACTOR + FANOUT_TOUCH_SLACK:
            failures.append(
                f"{name}: fan-out touched {touched} subscriptions for "
                f"{affected} affected (limit {FANOUT_TOUCH_FACTOR:.0f}x + "
                f"{FANOUT_TOUCH_SLACK}) — index no longer proportional")
            marker = "  <-- FAN-OUT BLOWUP"
        if new_row.get("dropped", 0) != 0:
            failures.append(
                f"{name}: {new_row['dropped']} notifications dropped by "
                "backpressure in a drain-every-tick run")
            marker = "  <-- DROPPED"
        marker = check_obs_overhead(name, new_row, failures) or marker
        print(f"{name:24s} {old_nps:10.0f} -> {new_nps:10.0f} notif/sec "
              f"({(new_nps / old_nps - 1) * 100:+6.1f}%) "
              f"touched/affected {touched}/{affected}{marker}")
    return failures


# Absolute ceiling on the batched fleet's per-source tick cost: the
# committed per-source baseline for a dim-1 steady-state tick. The
# batched engine exists to beat this; a row at or above it means the
# SoA path has degraded into a slower per-source loop.
FLEET_NS_LIMIT = 75.0

# Floor on the fraction of the fleet resident on the batched lanes at
# the end of the timed window. The workload is suppression-heavy by
# construction, so almost everything should be absorbed; mass spill
# means the measurement no longer exercises the batched path.
FLEET_RESIDENT_FLOOR = 0.90


def compare_fleet_scale(old, new, threshold):
    failures = []
    old_rows = {r["sources"]: r for r in old["results"]}
    new_rows = {r["sources"]: r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = f"sources={key}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_ns = old_row["ns_per_tick_per_source"]
        new_ns = new_row["ns_per_tick_per_source"]
        ratio = new_ns / old_ns if old_ns > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: ns/tick/source regressed {old_ns:.1f} -> "
                f"{new_ns:.1f} ({(ratio - 1) * 100:+.1f}%, "
                f"threshold {threshold:.0%})")
            marker = "  <-- REGRESSION"
        if new_ns >= FLEET_NS_LIMIT:
            failures.append(
                f"{name}: {new_ns:.1f} ns/tick/source is not below the "
                f"per-source baseline ({FLEET_NS_LIMIT:.0f} ns)")
            marker = "  <-- OVER BUDGET"
        resident = new_row.get("resident_ratio", 0.0)
        if resident < FLEET_RESIDENT_FLOOR:
            failures.append(
                f"{name}: resident_ratio {resident:.2f} below floor "
                f"{FLEET_RESIDENT_FLOOR:.2f} — fleet spilled off the "
                "batched path")
            marker = "  <-- SPILLED"
        if not new_row.get("equivalent", True):
            failures.append(
                f"{name}: batched run diverged from the per-source twin")
            marker = "  <-- DIVERGED"
        marker = check_obs_overhead(name, new_row, failures) or marker
        rss_mb = new_row.get("peak_rss_bytes", 0) / (1024 * 1024)
        print(f"{name:18s} {old_ns:7.1f} -> {new_ns:7.1f} ns/tick/source "
              f"({(ratio - 1) * 100:+6.1f}%) "
              f"resident {resident:.2f} rss {rss_mb:.0f}MB{marker}")
    return failures


# Floor on the adaptive servo's suppression gain per scenario, and the
# absolute drop vs. the old report that counts as a regression. The
# scenario streams are seeded and the protocol is deterministic, so the
# gains are exactly reproducible — the slack only covers deliberate
# servo-law retunes, not machine noise.
ADAPTIVE_GAIN_FLOOR = 0.08
ADAPTIVE_GAIN_SLACK = 0.05


def compare_adaptive(old, new, threshold):
    del threshold  # the gain gates are absolute, not relative percentages
    failures = []
    old_rows = {r["scenario"]: r for r in old["results"]}
    new_rows = {r["scenario"]: r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = key
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_gain = old_row["suppression_gain"]
        new_gain = new_row["suppression_gain"]
        marker = ""
        if new_row.get("delta_violations", 0) != 0:
            failures.append(
                f"{name}: {new_row['delta_violations']} suppressed tick(s) "
                "outside delta — the servo broke the precision contract")
            marker = "  <-- DELTA VIOLATED"
        if not new_row.get("equivalent", True):
            failures.append(
                f"{name}: sharded adaptive run diverged from the "
                "sequential baseline")
            marker = "  <-- DIVERGED"
        if new_gain < ADAPTIVE_GAIN_FLOOR:
            failures.append(
                f"{name}: suppression gain {new_gain:.1%} below floor "
                f"{ADAPTIVE_GAIN_FLOOR:.0%} — the servo no longer pays "
                "for itself")
            marker = "  <-- NO GAIN"
        elif new_gain < old_gain - ADAPTIVE_GAIN_SLACK:
            failures.append(
                f"{name}: suppression gain regressed {old_gain:.1%} -> "
                f"{new_gain:.1%} (slack {ADAPTIVE_GAIN_SLACK:.0%})")
            marker = "  <-- GAIN REGRESSED"
        marker = check_obs_overhead(name, new_row, failures) or marker
        print(f"{name:22s} gain {old_gain:6.1%} -> {new_gain:6.1%} "
              f"updates {new_row['adaptive_updates']}/"
              f"{new_row['fixed_updates']} "
              f"violations {new_row.get('delta_violations', 0)}{marker}")
    return failures


# Ceiling on a governed fleet's sustained overshoot over the settled
# window, and the band the settled wire rate must hold around the
# budget regardless of fleet size. Settle time may drift by a few
# epochs run to run (the workload is seeded but timing-free, so the
# slack only covers control-law changes, not machine noise).
GOVERNOR_OVERSHOOT_LIMIT = 0.05
GOVERNOR_FLAT_TOL = 0.10
GOVERNOR_SETTLE_SLACK = 6


def compare_governor(old, new, threshold):
    del threshold  # the budget band is absolute, not relative to old
    failures = []
    budget = new.get("budget_bytes_per_tick", 0.0)
    epochs = new.get("epochs", 0)
    old_rows = {r["sources"]: r for r in old["results"]}
    new_rows = {r["sources"]: r for r in new["results"]}
    for key, old_row in sorted(old_rows.items()):
        name = f"sources={key}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        bytes_per_tick = new_row["bytes_per_tick"]
        overshoot = new_row["overshoot"]
        settle = new_row["settle_epochs"]
        old_settle = old_row["settle_epochs"]
        marker = ""
        if overshoot > GOVERNOR_OVERSHOOT_LIMIT:
            failures.append(
                f"{name}: sustained overshoot {overshoot:.1%} "
                f"(limit {GOVERNOR_OVERSHOOT_LIMIT:.0%})")
            marker = "  <-- OVERSHOOT"
        if budget > 0 and abs(bytes_per_tick / budget - 1.0) > \
                GOVERNOR_FLAT_TOL:
            failures.append(
                f"{name}: settled {bytes_per_tick:.1f} bytes/tick is "
                f"outside +-{GOVERNOR_FLAT_TOL:.0%} of the "
                f"{budget:.0f} budget")
            marker = "  <-- OFF BUDGET"
        if settle >= epochs:
            failures.append(f"{name}: budget never settled in the sweep")
            marker = "  <-- NEVER SETTLED"
        elif settle > old_settle + GOVERNOR_SETTLE_SLACK:
            failures.append(
                f"{name}: settle regressed {old_settle} -> {settle} "
                f"epochs (slack {GOVERNOR_SETTLE_SLACK})")
            marker = "  <-- SLOW SETTLE"
        marker = check_obs_overhead(name, new_row, failures) or marker
        print(f"{name:14s} {old_row['bytes_per_tick']:7.1f} -> "
              f"{bytes_per_tick:7.1f} bytes/tick "
              f"(budget {budget:.0f}) overshoot {overshoot:5.1%} "
              f"settle {old_settle:3d} -> {settle:3d}{marker}")
    return failures


# Floor on the uplink reduction the LARGEST group in the sweep must
# deliver (baseline bytes / fused bytes), the absolute drop vs. the old
# report that counts as a regression on any row, and the ceiling on the
# fused answer's RMSE as a multiple of the baseline's. The workload is
# seeded and the clean-channel protocol deterministic, so the slack only
# covers deliberate trigger/protocol retunes, not machine noise.
FUSION_REDUCTION_FLOOR = 2.0
FUSION_REDUCTION_SLACK = 0.2
FUSION_RMSE_FACTOR = 2.0


def compare_fusion(old, new, threshold):
    del threshold  # the reduction gates are absolute, not percentages
    failures = []
    old_rows = {r["members"]: r for r in old["results"]}
    new_rows = {r["members"]: r for r in new["results"]}
    largest = max(new_rows) if new_rows else 0
    for key, old_row in sorted(old_rows.items()):
        name = f"members={key}"
        new_row = new_rows.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_reduction = old_row["uplink_reduction"]
        new_reduction = new_row["uplink_reduction"]
        marker = ""
        if key == largest and new_reduction < FUSION_REDUCTION_FLOOR:
            failures.append(
                f"{name}: uplink reduction {new_reduction:.2f}x below the "
                f"{FUSION_REDUCTION_FLOOR:.1f}x floor on the largest group")
            marker = "  <-- UNDER FLOOR"
        elif new_reduction < old_reduction - FUSION_REDUCTION_SLACK:
            failures.append(
                f"{name}: uplink reduction regressed {old_reduction:.2f}x "
                f"-> {new_reduction:.2f}x (slack {FUSION_REDUCTION_SLACK})")
            marker = "  <-- REDUCTION LOST"
        baseline_rmse = new_row["baseline_rmse"]
        fused_rmse = new_row["fused_rmse"]
        if fused_rmse > baseline_rmse * FUSION_RMSE_FACTOR:
            failures.append(
                f"{name}: fused rmse {fused_rmse:.3f} exceeds "
                f"{FUSION_RMSE_FACTOR:.1f}x the baseline's "
                f"{baseline_rmse:.3f} — uplink bought with garbage answers")
            marker = "  <-- RMSE BLOWUP"
        marker = check_obs_overhead(name, new_row, failures) or marker
        print(f"{name:12s} reduction {old_reduction:5.2f}x -> "
              f"{new_reduction:5.2f}x "
              f"uplink {new_row['fused_uplink_bytes']}B "
              f"(baseline {new_row['baseline_uplink_bytes']}B) "
              f"downlink {new_row['fused_broadcast_bytes']}B "
              f"rmse {fused_rmse:.3f}/{baseline_rmse:.3f}{marker}")
    return failures


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__.strip())

    (old_kind, old), (new_kind, new) = load(paths[0]), load(paths[1])
    if old_kind != new_kind:
        sys.exit(f"report kinds differ: {old_kind} vs {new_kind}")
    if old_kind == "filter_hotpath":
        failures = compare_filter_hotpath(old, new, threshold)
    elif old_kind == "serve_fanout":
        failures = compare_serve_fanout(old, new, threshold)
    elif old_kind == "fleet_scale":
        failures = compare_fleet_scale(old, new, threshold)
    elif old_kind == "governor":
        failures = compare_governor(old, new, threshold)
    elif old_kind == "adaptive":
        failures = compare_adaptive(old, new, threshold)
    elif old_kind == "fusion":
        failures = compare_fusion(old, new, threshold)
    else:
        failures = compare_runtime_throughput(old, new, threshold)

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
