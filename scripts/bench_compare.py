#!/usr/bin/env python3
"""Compare two bench_filter_hotpath JSON reports and gate regressions.

Usage: bench_compare.py OLD.json NEW.json [--threshold=0.10]

Matches result rows by (model, state_dim) and exits nonzero when any
row's ns_per_tick regressed by more than the threshold (default 10%),
when a row present in OLD disappeared from NEW, or when NEW reports
nonzero allocs_per_tick / a disarmed fast path for an inline-size model
(state_dim <= 6). Intended for CI and for eyeballing a PR's perf delta:

    ./build-release/bench/bench_filter_hotpath > /tmp/new.json
    scripts/bench_compare.py BENCH_filter_hotpath.json /tmp/new.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("benchmark") != "filter_hotpath":
        sys.exit(f"{path}: not a filter_hotpath report")
    return {(r["model"], r["state_dim"]): r for r in report["results"]}


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__.strip())

    old, new = load(paths[0]), load(paths[1])
    failures = []
    for key, old_row in sorted(old.items()):
        name = f"{key[0]} n={key[1]}"
        new_row = new.get(key)
        if new_row is None:
            failures.append(f"{name}: present in old report, missing in new")
            continue
        old_ns, new_ns = old_row["ns_per_tick"], new_row["ns_per_tick"]
        ratio = new_ns / old_ns if old_ns > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: ns/tick regressed {old_ns:.1f} -> {new_ns:.1f} "
                f"({(ratio - 1) * 100:+.1f}%, threshold {threshold:.0%})")
            marker = "  <-- REGRESSION"
        if key[1] <= 6 and new_row.get("allocs_per_tick", 0) != 0:
            failures.append(
                f"{name}: {new_row['allocs_per_tick']} allocs/tick "
                "(inline sizes must be allocation-free)")
            marker = "  <-- ALLOCATES"
        if key[1] <= 6 and not new_row.get("steady_state_armed", False):
            failures.append(f"{name}: steady-state fast path did not arm")
            marker = "  <-- NOT ARMED"
        print(f"{name:16s} {old_ns:8.1f} -> {new_ns:8.1f} ns/tick "
              f"({(ratio - 1) * 100:+6.1f}%){marker}")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
