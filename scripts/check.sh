#!/usr/bin/env bash
# One-command verify: tier-1 build + full test suite, then the sharded
# runtime's test binaries under ThreadSanitizer (race detection for the
# worker pool / shard tick path), then a Release-mode build of the filter
# hot-loop benchmark, refreshing BENCH_filter_hotpath.json at the repo
# root. See docs/runtime.md and docs/perf.md.
#
# Env knobs:
#   JOBS          parallel build jobs (default: nproc)
#   DKF_TSAN=0    skip the thread-sanitizer stage
#   DKF_SANITIZE  sanitizer list for the TSan stage (default: thread)
#   DKF_ASAN=0    skip the address+UB sanitizer stage
#   DKF_BENCH=0   skip the Release benchmark stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SANITIZE="${DKF_SANITIZE:-thread}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${DKF_TSAN:-1}" == "0" ]]; then
  echo "== sanitizer stage skipped (DKF_TSAN=0) =="
else
  echo "== sanitizer (${SANITIZE}): runtime tests =="
  cmake -B "build-${SANITIZE//,/-}" -S . -DDKF_SANITIZE="$SANITIZE" >/dev/null
  cmake --build "build-${SANITIZE//,/-}" -j "$JOBS" \
    --target worker_pool_test sharded_engine_test
  "./build-${SANITIZE//,/-}/tests/worker_pool_test"
  "./build-${SANITIZE//,/-}/tests/sharded_engine_test"
fi

if [[ "${DKF_ASAN:-1}" == "0" ]]; then
  echo "== asan/ubsan stage skipped (DKF_ASAN=0) =="
else
  echo "== asan+ubsan: fault-injection / protocol tests =="
  # The chaos harness drives the fault-injected channel, the resync
  # state machine, and the sharded runtime end to end — exactly the new
  # allocation patterns (in-flight queue, deferred ACKs, resync
  # snapshots) ASan+UBSan should chew on.
  cmake -B build-asan -S . -DDKF_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target chaos_test channel_test stream_manager_test source_server_test
  ./build-asan/tests/chaos_test
  ./build-asan/tests/channel_test
  ./build-asan/tests/stream_manager_test
  ./build-asan/tests/source_server_test
fi

if [[ "${DKF_BENCH:-1}" == "0" ]]; then
  echo "== benchmark stage skipped (DKF_BENCH=0) =="
else
  echo "== release bench: filter hot path =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS" --target bench_filter_hotpath
  ./build-release/bench/bench_filter_hotpath > BENCH_filter_hotpath.json
  # Surface the numbers; compare against the committed snapshot with
  #   git stash -- BENCH_filter_hotpath.json  (or git show HEAD:...)
  #   scripts/bench_compare.py <old> BENCH_filter_hotpath.json
  cat BENCH_filter_hotpath.json
fi

echo "== all checks passed =="
