#!/usr/bin/env bash
# One-command verify: tier-1 build + full test suite, then the sharded
# runtime's test binaries under ThreadSanitizer (race detection for the
# worker pool / shard tick path). See docs/runtime.md.
#
# Env knobs:
#   JOBS          parallel build jobs (default: nproc)
#   DKF_TSAN=0    skip the sanitizer stage
#   DKF_SANITIZE  sanitizer list for the second stage (default: thread)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SANITIZE="${DKF_SANITIZE:-thread}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${DKF_TSAN:-1}" == "0" ]]; then
  echo "== sanitizer stage skipped (DKF_TSAN=0) =="
  exit 0
fi

echo "== sanitizer (${SANITIZE}): runtime tests =="
cmake -B "build-${SANITIZE//,/-}" -S . -DDKF_SANITIZE="$SANITIZE" >/dev/null
cmake --build "build-${SANITIZE//,/-}" -j "$JOBS" \
  --target worker_pool_test sharded_engine_test
"./build-${SANITIZE//,/-}/tests/worker_pool_test"
"./build-${SANITIZE//,/-}/tests/sharded_engine_test"

echo "== all checks passed =="
