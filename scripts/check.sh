#!/usr/bin/env bash
# One-command verify: docs link/coverage check, tier-1 build + full
# test suite, then the sharded
# runtime's test binaries under ThreadSanitizer (race detection for the
# worker pool / shard tick path / per-shard trace sinks), then the
# protocol + observability + serving + batched-fleet + adaptive-servo
# + fusion tests under ASan+UBSan, then a gcov coverage build gating
# line coverage of src/obs/, src/dsms/, src/serve/, src/fleet/,
# src/governor/, src/filter/, and src/fusion/, then Release-mode
# builds of the filter hot-loop and adaptive-servo benchmarks,
# refreshing BENCH_filter_hotpath.json and BENCH_adaptive.json at the
# repo root. See docs/runtime.md, docs/perf.md, docs/observability.md,
# docs/adaptive.md, and docs/fusion.md.
#
# Env knobs:
#   JOBS            parallel build jobs (default: nproc)
#   DKF_TSAN=0      skip the thread-sanitizer stage
#   DKF_SANITIZE    sanitizer list for the TSan stage (default: thread)
#   DKF_ASAN=0      skip the address+UB sanitizer stage
#   DKF_COVERAGE=0  skip the coverage-gate stage
#   DKF_BENCH=0     skip the Release benchmark stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SANITIZE="${DKF_SANITIZE:-thread}"

echo "== docs: intra-repo links + architecture coverage =="
python3 scripts/check_docs.py

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${DKF_TSAN:-1}" == "0" ]]; then
  echo "== sanitizer stage skipped (DKF_TSAN=0) =="
else
  echo "== sanitizer (${SANITIZE}): runtime tests =="
  cmake -B "build-${SANITIZE//,/-}" -S . -DDKF_SANITIZE="$SANITIZE" >/dev/null
  # golden_trace_test drives the per-shard trace sinks through the
  # worker pool, so it races exactly the code the obs layer added;
  # serve_golden_test does the same for the per-shard subscription
  # engines (EndTick runs on shard workers, Drain on the driver);
  # the fleet tests run the batched SoA engine inside shard workers at
  # several shard counts (docs/fleet.md); the governor tests drive
  # epoch planning + batched reconfiguration from the tick driver while
  # shard workers run (docs/governor.md); the adaptive scenario battery
  # runs the noise servo inside shard workers at 1/2/4/8 shards
  # (docs/adaptive.md); the fusion chaos test ticks group-pinned
  # FusionEngines inside shard workers and diffs merged state across
  # shard counts (docs/fusion.md).
  cmake --build "build-${SANITIZE//,/-}" -j "$JOBS" \
    --target worker_pool_test sharded_engine_test golden_trace_test \
             subscription_engine_test serve_golden_test \
             fleet_equivalence_test fleet_churn_test \
             governor_test governor_chaos_test adaptive_scenarios_test \
             fusion_chaos_test
  "./build-${SANITIZE//,/-}/tests/worker_pool_test"
  "./build-${SANITIZE//,/-}/tests/sharded_engine_test"
  "./build-${SANITIZE//,/-}/tests/golden_trace_test"
  "./build-${SANITIZE//,/-}/tests/subscription_engine_test"
  "./build-${SANITIZE//,/-}/tests/serve_golden_test"
  "./build-${SANITIZE//,/-}/tests/fleet_equivalence_test"
  "./build-${SANITIZE//,/-}/tests/fleet_churn_test"
  "./build-${SANITIZE//,/-}/tests/governor_test"
  "./build-${SANITIZE//,/-}/tests/governor_chaos_test"
  "./build-${SANITIZE//,/-}/tests/adaptive_scenarios_test"
  "./build-${SANITIZE//,/-}/tests/fusion_chaos_test"
fi

if [[ "${DKF_ASAN:-1}" == "0" ]]; then
  echo "== asan/ubsan stage skipped (DKF_ASAN=0) =="
else
  echo "== asan+ubsan: fault-injection / protocol tests =="
  # The chaos harness drives the fault-injected channel, the resync
  # state machine, and the sharded runtime end to end — exactly the new
  # allocation patterns (in-flight queue, deferred ACKs, resync
  # snapshots) ASan+UBSan should chew on.
  cmake -B build-asan -S . -DDKF_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target chaos_test channel_test stream_manager_test source_server_test \
             metrics_registry_test trace_sink_test golden_trace_test \
             obs_property_test corruption_fuzz_test \
             subscription_engine_test serve_golden_test \
             fleet_equivalence_test fleet_churn_test \
             governor_test governor_chaos_test \
             adaptive_property_test adaptive_scenarios_test \
             fusion_engine_test fusion_chaos_test fusion_checkpoint_test
  ./build-asan/tests/chaos_test
  ./build-asan/tests/channel_test
  ./build-asan/tests/stream_manager_test
  ./build-asan/tests/source_server_test
  ./build-asan/tests/metrics_registry_test
  ./build-asan/tests/trace_sink_test
  ./build-asan/tests/golden_trace_test
  ./build-asan/tests/obs_property_test
  ./build-asan/tests/corruption_fuzz_test
  ./build-asan/tests/subscription_engine_test
  ./build-asan/tests/serve_golden_test
  # The batched fleet's SoA lanes, spill/absorb path, and resident
  # bookkeeping are exactly the new pointer/vector churn to chew on.
  ./build-asan/tests/fleet_equivalence_test
  ./build-asan/tests/fleet_churn_test
  # The governor's per-epoch allocation scratch and the mid-stream
  # reconfigure spills are fresh allocation churn for ASan.
  ./build-asan/tests/governor_test
  ./build-asan/tests/governor_chaos_test
  # The noise servo's resync_adapt payload (export/import, corrupted
  # frames, holdover resets) is new parsing surface for ASan+UBSan.
  ./build-asan/tests/adaptive_property_test
  ./build-asan/tests/adaptive_scenarios_test
  # The fusion engine's per-group member maps, deferred-ACK queues, and
  # broadcast fan-out buffers are new allocation surface; the resync
  # path parses member-shipped frames it then deliberately discards.
  ./build-asan/tests/fusion_engine_test
  ./build-asan/tests/fusion_chaos_test
  ./build-asan/tests/fusion_checkpoint_test
fi

if [[ "${DKF_COVERAGE:-1}" == "0" ]]; then
  echo "== coverage stage skipped (DKF_COVERAGE=0) =="
else
  echo "== coverage: src/obs + src/dsms + src/serve + src/fleet + src/governor + src/filter + src/fusion line-coverage floors =="
  cmake -B build-coverage -S . -DDKF_COVERAGE=ON >/dev/null
  cmake --build build-coverage -j "$JOBS" \
    --target metrics_registry_test trace_sink_test golden_trace_test \
             obs_property_test corruption_fuzz_test chaos_test channel_test \
             stream_manager_test source_server_test simulation_test \
             confidence_test energy_model_test \
             subscription_engine_test serve_golden_test \
             fleet_equivalence_test fleet_churn_test \
             governor_test governor_chaos_test \
             kalman_filter_test fast_path_test extended_kalman_filter_test \
             steady_state_test recursive_least_squares_test \
             noise_estimation_test rts_smoother_test \
             unscented_kalman_filter_test \
             adaptive_property_test adaptive_scenarios_test \
             fusion_engine_test fusion_chaos_test fusion_checkpoint_test
  # Fresh counters each run: .gcda files accumulate across executions.
  find build-coverage -name '*.gcda' -delete
  for t in metrics_registry_test trace_sink_test golden_trace_test \
           obs_property_test corruption_fuzz_test chaos_test channel_test \
           stream_manager_test source_server_test simulation_test \
           confidence_test energy_model_test \
           subscription_engine_test serve_golden_test \
           fleet_equivalence_test fleet_churn_test \
           governor_test governor_chaos_test \
           kalman_filter_test fast_path_test extended_kalman_filter_test \
           steady_state_test recursive_least_squares_test \
           noise_estimation_test rts_smoother_test \
           unscented_kalman_filter_test \
           adaptive_property_test adaptive_scenarios_test \
           fusion_engine_test fusion_chaos_test fusion_checkpoint_test; do
    "./build-coverage/tests/$t" > /dev/null
  done
  python3 scripts/coverage_gate.py build-coverage --root=. \
    --gate=src/obs=0.90 --gate=src/dsms=0.80 --gate=src/serve=0.85 \
    --gate=src/fleet=0.85 --gate=src/governor=0.85 --gate=src/filter=0.90 \
    --gate=src/fusion=0.85
fi

if [[ "${DKF_BENCH:-1}" == "0" ]]; then
  echo "== benchmark stage skipped (DKF_BENCH=0) =="
else
  echo "== release bench: filter hot path + adaptive servo =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS" \
    --target bench_filter_hotpath bench_adaptive
  ./build-release/bench/bench_filter_hotpath > BENCH_filter_hotpath.json
  ./build-release/bench/bench_adaptive > BENCH_adaptive.json
  # Surface the numbers; compare against the committed snapshot with
  #   git stash -- BENCH_filter_hotpath.json  (or git show HEAD:...)
  #   scripts/bench_compare.py <old> BENCH_filter_hotpath.json
  cat BENCH_filter_hotpath.json
  cat BENCH_adaptive.json
fi

echo "== all checks passed =="
