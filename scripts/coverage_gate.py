#!/usr/bin/env python3
"""Aggregate gcov line coverage and gate directories against a floor.

Usage:
    coverage_gate.py BUILD_DIR --root=REPO_ROOT \
        --gate=src/obs=0.85 --gate=src/dsms=0.80

Walks BUILD_DIR for .gcda counter files (written by binaries built with
DKF_COVERAGE=ON when they run), invokes `gcov --json-format` on each,
and merges the per-line execution counts by source file: a line counts
as covered when any object file saw it execute. Prints a per-file table
for every gated directory and exits nonzero if a directory's line
coverage falls below its floor.

Stdlib-only on purpose — the CI image carries gcov but not gcovr/lcov.
"""

import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for dirpath, _, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                yield os.path.join(dirpath, name)


def run_gcov(gcda_paths):
    """Runs gcov over the counter files; yields parsed JSON reports."""
    # One invocation per counter file: --stdout emits the JSON document
    # directly, so no scratch files and no basename collisions between
    # objects compiled from same-named sources.
    for path in gcda_paths:
        result = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.abspath(path)],
            check=True, capture_output=True)
        for line in result.stdout.splitlines():
            if line.strip():
                yield json.loads(line)


def merge_coverage(reports, repo_root):
    """Returns {relative source path: {line_number: total count}}."""
    coverage = {}
    for report in reports:
        for file_entry in report.get("files", []):
            path = file_entry["file"]
            if not os.path.isabs(path):
                path = os.path.join(repo_root, path)
            path = os.path.realpath(path)
            rel = os.path.relpath(path, repo_root)
            if rel.startswith(".."):
                continue  # system or third-party header
            lines = coverage.setdefault(rel, {})
            for line in file_entry.get("lines", []):
                number = line["line_number"]
                lines[number] = lines.get(number, 0) + line["count"]
    return coverage


def gate_directory(coverage, directory, floor):
    """Prints the directory's table; returns (covered, total, failures)."""
    prefix = directory.rstrip("/") + "/"
    total = covered = 0
    rows = []
    for path in sorted(coverage):
        if not path.startswith(prefix):
            continue
        lines = coverage[path]
        file_total = len(lines)
        file_covered = sum(1 for count in lines.values() if count > 0)
        total += file_total
        covered += file_covered
        rows.append((path, file_covered, file_total))
    print(f"\n{directory}: ", end="")
    if total == 0:
        print("NO COVERAGE DATA")
        return [f"{directory}: no instrumented lines found "
                "(coverage build did not run these sources?)"]
    ratio = covered / total
    print(f"{covered}/{total} lines = {ratio:.1%} (floor {floor:.0%})")
    for path, file_covered, file_total in rows:
        pct = file_covered / file_total if file_total else 1.0
        print(f"  {path:52s} {file_covered:5d}/{file_total:<5d} {pct:7.1%}")
    if ratio < floor:
        return [f"{directory}: line coverage {ratio:.1%} "
                f"below the {floor:.0%} floor"]
    return []


def main(argv):
    build_dir = None
    repo_root = os.getcwd()
    gates = []
    for arg in argv[1:]:
        if arg.startswith("--root="):
            repo_root = arg.split("=", 1)[1]
        elif arg.startswith("--gate="):
            spec = arg.split("=", 1)[1]
            directory, _, floor = spec.partition("=")
            gates.append((directory, float(floor)))
        elif build_dir is None:
            build_dir = arg
        else:
            sys.exit(__doc__.strip())
    if build_dir is None or not gates:
        sys.exit(__doc__.strip())
    repo_root = os.path.realpath(repo_root)

    gcda_paths = sorted(find_gcda(build_dir))
    if not gcda_paths:
        sys.exit(f"{build_dir}: no .gcda files — build with "
                 "-DDKF_COVERAGE=ON and run the test binaries first")
    coverage = merge_coverage(run_gcov(gcda_paths), repo_root)

    failures = []
    for directory, floor in gates:
        failures += gate_directory(coverage, directory, floor)
    if failures:
        print(f"\n{len(failures)} coverage failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\ncoverage floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
