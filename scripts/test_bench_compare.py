#!/usr/bin/env python3
"""Unit tests for bench_compare.py (stdlib unittest; wired into ctest).

Covers every gate on crafted fixtures — throughput/latency regression,
missing rows, allocation and fast-path invariants, sequential-equivalence
failures, resync storms, never-healed divergence, the fleet-scale
budget/residency/equivalence gates, the governor budget-holding gates,
the adaptive precision/gain/equivalence gates, and the observability
overhead ceiling — plus an end-to-end self-compare of the committed
BENCH_filter_hotpath.json, which must always be regression-free
against itself.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def hotpath_report(**overrides):
    row = {
        "model": "constant",
        "state_dim": 2,
        "measurement_dim": 2,
        "ns_per_tick": 100.0,
        "ref_ns_per_tick": 500.0,
        "traced_ns_per_tick": 101.0,
        "obs_overhead_pct": 1.0,
        "allocs_per_tick": 0.0,
        "steady_state_armed": True,
    }
    row.update(overrides)
    return {"benchmark": "filter_hotpath", "results": [row]}


def runtime_report(**overrides):
    row = {
        "sources": 1000,
        "shards": 4,
        "seconds": 0.5,
        "ticks_per_sec": 400.0,
        "equivalent": True,
        "divergence_events": 5,
        "resyncs_sent": 8,
        "resyncs_applied": 6,
        "obs_overhead_pct": 1.0,
    }
    row.update(overrides)
    return {"benchmark": "runtime_throughput", "results": [row]}


def serve_report(**overrides):
    row = {
        "subscriptions": 100000,
        "sources": 256,
        "shards": 4,
        "ticks": 120,
        "seconds": 0.2,
        "notifications": 240000,
        "notifications_per_sec": 1200000.0,
        "p99_batch_latency_us": 2000.0,
        "touched": 280000,
        "affected": 240000,
        "dropped": 0,
    }
    row.update(overrides)
    return {"benchmark": "serve_fanout", "results": [row]}


def fleet_report(**overrides):
    row = {
        "sources": 1000000,
        "seconds": 4.0,
        "ns_per_tick_per_source": 40.0,
        "sources_per_sec": 25000000.0,
        "resident_ratio": 0.99,
        "peak_rss_bytes": 2 * 1024 * 1024 * 1024,
        "uplink_messages": 12000,
    }
    row.update(overrides)
    return {"benchmark": "fleet_scale", "results": [row]}


def governor_report(**overrides):
    row = {
        "sources": 64,
        "seconds": 0.03,
        "bytes_per_tick": 148.0,
        "overshoot": 0.0,
        "settle_epochs": 25,
        "mean_delta": 2.7,
        "suppression_ratio": 0.92,
        "uplink_updates": 5000,
        "obs_overhead_pct": 1.0,
    }
    row.update(overrides)
    return {
        "benchmark": "governor",
        "budget_bytes_per_tick": 150.0,
        "epoch_ticks": 16,
        "epochs": 60,
        "settle_epochs": 30,
        "results": [row],
    }


def adaptive_report(**overrides):
    row = {
        "scenario": "regime_shift",
        "delta": 2.0,
        "adaptive_updates": 176,
        "fixed_updates": 252,
        "suppression_gain": 0.30,
        "delta_violations": 0,
        "equivalent": True,
    }
    row.update(overrides)
    return {"benchmark": "adaptive", "ticks": 2000, "results": [row]}


def fusion_report(**overrides):
    row = {
        "members": 8,
        "baseline_uplink_messages": 2400,
        "baseline_uplink_bytes": 70000,
        "fused_uplink_messages": 600,
        "fused_uplink_bytes": 25000,
        "uplink_reduction": 2.8,
        "fused_broadcast_bytes": 430000,
        "baseline_rmse": 0.35,
        "fused_rmse": 0.50,
        "baseline_seconds": 0.005,
        "fused_seconds": 0.003,
    }
    row.update(overrides)
    return {"benchmark": "fusion", "ticks": 2000, "delta": 1.5,
            "results": [row]}


def compare(old, new, threshold=0.10):
    """Runs the right comparison quietly and returns the failure list."""
    kind = old["benchmark"]
    with contextlib.redirect_stdout(io.StringIO()):
        if kind == "filter_hotpath":
            return bench_compare.compare_filter_hotpath(old, new, threshold)
        if kind == "serve_fanout":
            return bench_compare.compare_serve_fanout(old, new, threshold)
        if kind == "fleet_scale":
            return bench_compare.compare_fleet_scale(old, new, threshold)
        if kind == "governor":
            return bench_compare.compare_governor(old, new, threshold)
        if kind == "adaptive":
            return bench_compare.compare_adaptive(old, new, threshold)
        if kind == "fusion":
            return bench_compare.compare_fusion(old, new, threshold)
        return bench_compare.compare_runtime_throughput(old, new, threshold)


class FilterHotpathGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = hotpath_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_regression_beyond_threshold_fails(self):
        failures = compare(hotpath_report(), hotpath_report(ns_per_tick=115.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("regressed", failures[0])

    def test_regression_within_threshold_passes(self):
        self.assertEqual(
            compare(hotpath_report(), hotpath_report(ns_per_tick=105.0)), [])

    def test_improvement_passes(self):
        self.assertEqual(
            compare(hotpath_report(), hotpath_report(ns_per_tick=50.0)), [])

    def test_missing_row_fails(self):
        new = hotpath_report()
        new["results"][0]["state_dim"] = 3  # old (constant, 2) vanished
        failures = compare(hotpath_report(), new)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing in new", failures[0])

    def test_inline_allocation_fails(self):
        failures = compare(hotpath_report(), hotpath_report(allocs_per_tick=2))
        self.assertTrue(any("allocation-free" in f for f in failures))

    def test_large_dim_allocation_tolerated(self):
        old = hotpath_report(state_dim=8)
        new = hotpath_report(state_dim=8, allocs_per_tick=3,
                             steady_state_armed=False)
        self.assertEqual(compare(old, new), [])

    def test_disarmed_fast_path_fails(self):
        failures = compare(hotpath_report(),
                           hotpath_report(steady_state_armed=False))
        self.assertTrue(any("did not arm" in f for f in failures))

    def test_servo_allocation_fails(self):
        failures = compare(hotpath_report(),
                           hotpath_report(adaptive_allocs_per_tick=1.0))
        self.assertTrue(any("noise servo" in f for f in failures))

    def test_servo_zero_allocation_passes(self):
        self.assertEqual(
            compare(hotpath_report(),
                    hotpath_report(adaptive_allocs_per_tick=0.0)), [])

    def test_report_without_servo_field_passes(self):
        # Pre-adaptive snapshots predate the field; not a failure.
        self.assertEqual(compare(hotpath_report(), hotpath_report()), [])

    def test_obs_overhead_over_limit_fails(self):
        failures = compare(
            hotpath_report(),
            hotpath_report(obs_overhead_pct=
                           bench_compare.OBS_OVERHEAD_LIMIT_PCT + 0.1))
        self.assertEqual(len(failures), 1)
        self.assertIn("tracing overhead", failures[0])

    def test_obs_overhead_at_limit_passes(self):
        self.assertEqual(
            compare(hotpath_report(),
                    hotpath_report(
                        obs_overhead_pct=bench_compare.OBS_OVERHEAD_LIMIT_PCT)),
            [])

    def test_missing_obs_field_passes(self):
        # Pre-observability reports carry no overhead field; not a failure.
        new = hotpath_report()
        del new["results"][0]["obs_overhead_pct"]
        self.assertEqual(compare(hotpath_report(), new), [])


class RuntimeThroughputGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = runtime_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_throughput_regression_fails(self):
        failures = compare(runtime_report(),
                           runtime_report(ticks_per_sec=300.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("regressed", failures[0])

    def test_missing_row_fails(self):
        new = runtime_report(shards=8)
        failures = compare(runtime_report(), new)
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_divergence_from_baseline_fails(self):
        failures = compare(runtime_report(), runtime_report(equivalent=False))
        self.assertTrue(any("diverged" in f for f in failures))

    def test_resync_storm_fails(self):
        # Past old * (1 + threshold) + slack.
        new_resyncs = int(8 * 1.1 + bench_compare.RESYNC_SLACK) + 1
        failures = compare(runtime_report(),
                           runtime_report(resyncs_sent=new_resyncs))
        self.assertTrue(any("resync storm" in f for f in failures))

    def test_resync_growth_within_slack_passes(self):
        self.assertEqual(
            compare(runtime_report(), runtime_report(resyncs_sent=17)), [])

    def test_never_healed_divergence_fails(self):
        failures = compare(
            runtime_report(),
            runtime_report(divergence_events=3, resyncs_applied=0))
        self.assertTrue(any("no resync was ever applied" in f
                            for f in failures))

    def test_quiet_run_without_divergence_passes(self):
        new = runtime_report(divergence_events=0, resyncs_applied=0,
                             resyncs_sent=0)
        self.assertEqual(compare(runtime_report(), new), [])

    def test_obs_overhead_over_limit_fails(self):
        failures = compare(runtime_report(),
                           runtime_report(obs_overhead_pct=7.5))
        self.assertEqual(len(failures), 1)
        self.assertIn("tracing overhead", failures[0])

    def test_untraced_report_passes(self):
        new = runtime_report()
        del new["results"][0]["obs_overhead_pct"]
        self.assertEqual(compare(runtime_report(), new), [])


class ServeFanoutGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = serve_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_throughput_regression_fails(self):
        failures = compare(serve_report(),
                           serve_report(notifications_per_sec=900000.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("notifications/sec regressed", failures[0])

    def test_regression_within_threshold_passes(self):
        self.assertEqual(
            compare(serve_report(),
                    serve_report(notifications_per_sec=1150000.0)), [])

    def test_missing_row_fails(self):
        failures = compare(serve_report(), serve_report(subscriptions=1000))
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_fanout_blowup_fails(self):
        # touched far beyond FANOUT_TOUCH_FACTOR x affected: the index
        # has degraded toward scanning every registration.
        failures = compare(serve_report(),
                           serve_report(touched=2000000, affected=240000))
        self.assertTrue(any("no longer proportional" in f for f in failures))

    def test_fanout_within_factor_passes(self):
        self.assertEqual(
            compare(serve_report(),
                    serve_report(touched=900000, affected=240000)), [])

    def test_dropped_notifications_fail(self):
        failures = compare(serve_report(), serve_report(dropped=12))
        self.assertTrue(any("dropped by" in f for f in failures))

    def test_obs_overhead_over_limit_fails(self):
        failures = compare(serve_report(),
                           serve_report(obs_overhead_pct=9.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("tracing overhead", failures[0])

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_serve_fanout.json")
        self.assertTrue(os.path.exists(path),
                        "committed serve fan-out snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(compare(report, copy.deepcopy(report)), [])
        # The committed run itself must satisfy the proportionality and
        # no-drop invariants, and hold the 1M-subscription row.
        subs = [row["subscriptions"] for row in report["results"]]
        self.assertIn(1000000, subs)


class FleetScaleGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = fleet_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_regression_beyond_threshold_fails(self):
        failures = compare(fleet_report(),
                           fleet_report(ns_per_tick_per_source=46.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("regressed", failures[0])

    def test_regression_within_threshold_passes(self):
        self.assertEqual(
            compare(fleet_report(),
                    fleet_report(ns_per_tick_per_source=43.0)), [])

    def test_missing_row_fails(self):
        failures = compare(fleet_report(), fleet_report(sources=10000))
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_over_absolute_budget_fails(self):
        # Even without a relative regression (old was already slow),
        # meeting the per-source baseline fails the absolute gate.
        old = fleet_report(
            ns_per_tick_per_source=bench_compare.FLEET_NS_LIMIT)
        new = fleet_report(
            ns_per_tick_per_source=bench_compare.FLEET_NS_LIMIT)
        failures = compare(old, new)
        self.assertTrue(any("not below the per-source baseline" in f
                            for f in failures))

    def test_just_under_budget_passes(self):
        self.assertEqual(
            compare(fleet_report(ns_per_tick_per_source=74.0),
                    fleet_report(ns_per_tick_per_source=74.0)), [])

    def test_mass_spill_fails(self):
        failures = compare(fleet_report(), fleet_report(resident_ratio=0.4))
        self.assertTrue(any("spilled off the batched path" in f
                            for f in failures))

    def test_divergence_from_twin_fails(self):
        failures = compare(fleet_report(), fleet_report(equivalent=False))
        self.assertTrue(any("diverged" in f for f in failures))

    def test_row_without_equivalence_check_passes(self):
        # Only the smallest fleet size carries the twin cross-check;
        # rows without the field are not failures.
        self.assertEqual(compare(fleet_report(), fleet_report()), [])

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_fleet_scale.json")
        self.assertTrue(os.path.exists(path),
                        "committed fleet-scale snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(compare(report, copy.deepcopy(report)), [])
        # The committed run must hold the million-source row, beat the
        # per-source budget on it, and carry a passing equivalence
        # cross-check somewhere in the sweep.
        rows = {row["sources"]: row for row in report["results"]}
        self.assertIn(1000000, rows)
        self.assertLess(rows[1000000]["ns_per_tick_per_source"],
                        bench_compare.FLEET_NS_LIMIT)
        self.assertTrue(any(row.get("equivalent") is True
                            for row in report["results"]))


class GovernorGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = governor_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_sustained_overshoot_fails(self):
        failures = compare(governor_report(),
                           governor_report(overshoot=0.08,
                                           bytes_per_tick=162.0))
        self.assertTrue(any("overshoot" in f for f in failures))

    def test_settled_rate_off_budget_fails(self):
        # Undershoot far below the band fails too: the claim is that the
        # governor converges to the budget, not merely below it.
        failures = compare(governor_report(),
                           governor_report(bytes_per_tick=120.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("outside", failures[0])

    def test_rate_inside_band_passes(self):
        self.assertEqual(
            compare(governor_report(),
                    governor_report(bytes_per_tick=158.0)), [])

    def test_never_settling_fails(self):
        failures = compare(governor_report(),
                           governor_report(settle_epochs=60))
        self.assertTrue(any("never settled" in f for f in failures))

    def test_settle_regression_beyond_slack_fails(self):
        failures = compare(governor_report(),
                           governor_report(settle_epochs=35))
        self.assertTrue(any("settle regressed" in f for f in failures))

    def test_settle_regression_within_slack_passes(self):
        self.assertEqual(
            compare(governor_report(), governor_report(settle_epochs=30)),
            [])

    def test_missing_row_fails(self):
        failures = compare(governor_report(), governor_report(sources=128))
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_obs_overhead_fails(self):
        failures = compare(governor_report(),
                           governor_report(obs_overhead_pct=9.0))
        self.assertTrue(any("tracing overhead" in f for f in failures))

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_governor.json")
        self.assertTrue(os.path.exists(path),
                        "committed governor snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(compare(report, copy.deepcopy(report)), [])
        # The committed sweep must double the fleet at least twice and
        # hold the budget band on every row — the headline claim.
        budget = report["budget_bytes_per_tick"]
        rows = report["results"]
        self.assertGreaterEqual(len(rows), 3)
        self.assertGreaterEqual(rows[-1]["sources"], 4 * rows[0]["sources"])
        for row in rows:
            self.assertLessEqual(
                abs(row["bytes_per_tick"] / budget - 1.0),
                bench_compare.GOVERNOR_FLAT_TOL)
            self.assertLessEqual(row["overshoot"],
                                 bench_compare.GOVERNOR_OVERSHOOT_LIMIT)


class AdaptiveGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = adaptive_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_missing_row_fails(self):
        failures = compare(adaptive_report(),
                           adaptive_report(scenario="degrading_sensor"))
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_delta_violation_fails(self):
        failures = compare(adaptive_report(),
                           adaptive_report(delta_violations=3))
        self.assertTrue(any("precision contract" in f for f in failures))

    def test_shard_divergence_fails(self):
        failures = compare(adaptive_report(), adaptive_report(equivalent=False))
        self.assertTrue(any("diverged" in f for f in failures))

    def test_gain_below_floor_fails(self):
        failures = compare(
            adaptive_report(),
            adaptive_report(
                suppression_gain=bench_compare.ADAPTIVE_GAIN_FLOOR - 0.01))
        self.assertTrue(any("below floor" in f for f in failures))

    def test_gain_regression_beyond_slack_fails(self):
        failures = compare(adaptive_report(suppression_gain=0.30),
                           adaptive_report(suppression_gain=0.20))
        self.assertTrue(any("gain regressed" in f for f in failures))

    def test_gain_regression_within_slack_passes(self):
        self.assertEqual(
            compare(adaptive_report(suppression_gain=0.30),
                    adaptive_report(suppression_gain=0.27)), [])

    def test_gain_improvement_passes(self):
        self.assertEqual(
            compare(adaptive_report(suppression_gain=0.30),
                    adaptive_report(suppression_gain=0.45)), [])

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_adaptive.json")
        self.assertTrue(os.path.exists(path),
                        "committed adaptive snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(compare(report, copy.deepcopy(report)), [])
        # The committed run must cover all three scenario workloads and
        # hold the precision contract on each.
        scenarios = {row["scenario"] for row in report["results"]}
        self.assertEqual(scenarios, {"regime_shift", "degrading_sensor",
                                     "quantized_readings"})
        for row in report["results"]:
            self.assertEqual(row["delta_violations"], 0)
            self.assertTrue(row["equivalent"])


class FusionGates(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = fusion_report()
        self.assertEqual(compare(report, copy.deepcopy(report)), [])

    def test_largest_group_under_floor_fails(self):
        failures = compare(fusion_report(),
                           fusion_report(uplink_reduction=1.8))
        self.assertTrue(any("floor" in f for f in failures))

    def test_small_group_under_floor_passes(self):
        # Only the largest group carries the absolute floor; a two-member
        # group legitimately sits near 1x.
        old = fusion_report()
        old["results"].insert(0, dict(old["results"][0], members=2,
                                      uplink_reduction=1.1))
        self.assertEqual(compare(old, copy.deepcopy(old)), [])

    def test_reduction_regression_beyond_slack_fails(self):
        failures = compare(fusion_report(uplink_reduction=3.2),
                           fusion_report(uplink_reduction=2.9))
        self.assertTrue(any("regressed" in f for f in failures))

    def test_reduction_regression_within_slack_passes(self):
        self.assertEqual(
            compare(fusion_report(uplink_reduction=2.9),
                    fusion_report(uplink_reduction=2.8)), [])

    def test_rmse_blowup_fails(self):
        failures = compare(fusion_report(), fusion_report(fused_rmse=0.80))
        self.assertTrue(any("rmse" in f for f in failures))

    def test_missing_row_fails(self):
        failures = compare(fusion_report(), fusion_report(members=4))
        self.assertTrue(any("missing in new" in f for f in failures))

    def test_obs_overhead_fails(self):
        failures = compare(fusion_report(),
                           fusion_report(obs_overhead_pct=9.0))
        self.assertTrue(any("tracing overhead" in f for f in failures))

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_fusion.json")
        self.assertTrue(os.path.exists(path),
                        "committed fusion snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(compare(report, copy.deepcopy(report)), [])
        # The committed sweep's largest group must clear the headline
        # floor, and every row must report its downlink price.
        rows = report["results"]
        self.assertGreaterEqual(
            rows[-1]["uplink_reduction"],
            bench_compare.FUSION_REDUCTION_FLOOR)
        for row in rows:
            self.assertIn("fused_broadcast_bytes", row)
            self.assertGreater(row["fused_broadcast_bytes"], 0)


class RuntimeReportNewKeys(unittest.TestCase):
    def test_rows_with_memory_keys_pass(self):
        new = runtime_report(sources_per_sec=400000.0,
                             peak_rss_bytes=512 * 1024 * 1024)
        self.assertEqual(compare(runtime_report(), new), [])

    def test_rows_without_memory_keys_still_pass(self):
        # Older committed snapshots predate the keys; both sides of the
        # compare must accept their absence.
        self.assertEqual(compare(runtime_report(), runtime_report()), [])


class MainEndToEnd(unittest.TestCase):
    def run_main(self, old, new, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            old_path = os.path.join(tmp, "old.json")
            new_path = os.path.join(tmp, "new.json")
            with open(old_path, "w") as f:
                json.dump(old, f)
            with open(new_path, "w") as f:
                json.dump(new, f)
            argv = ["bench_compare.py", *extra_args, old_path, new_path]
            with contextlib.redirect_stdout(io.StringIO()), \
                    contextlib.redirect_stderr(io.StringIO()):
                return bench_compare.main(argv)

    def test_clean_compare_exits_zero(self):
        self.assertEqual(self.run_main(hotpath_report(), hotpath_report()), 0)

    def test_failing_compare_exits_nonzero(self):
        self.assertEqual(
            self.run_main(runtime_report(),
                          runtime_report(equivalent=False)), 1)

    def test_threshold_flag_is_honored(self):
        old, new = hotpath_report(), hotpath_report(ns_per_tick=115.0)
        self.assertEqual(self.run_main(old, new), 1)
        self.assertEqual(
            self.run_main(old, new, extra_args=("--threshold=0.25",)), 0)

    def test_mismatched_kinds_rejected(self):
        with self.assertRaises(SystemExit):
            self.run_main(hotpath_report(), runtime_report())

    def test_unknown_kind_rejected(self):
        with self.assertRaises(SystemExit):
            self.run_main({"benchmark": "nonsense", "results": []},
                          hotpath_report())

    def test_committed_snapshot_self_compare_is_clean(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_filter_hotpath.json")
        self.assertTrue(os.path.exists(path),
                        "committed benchmark snapshot missing")
        with open(path) as f:
            report = json.load(f)
        self.assertEqual(self.run_main(report, copy.deepcopy(report)), 0)


if __name__ == "__main__":
    unittest.main()
