#!/usr/bin/env python3
"""Documentation hygiene checks (stdlib only).

1. Every intra-repo markdown link in every tracked .md file must
   resolve to an existing file or directory (anchors are stripped;
   external http(s)/mailto links are ignored).
2. docs/architecture.md must mention every direct subdirectory of
   src/ — the architecture page is the map, and a subsystem missing
   from the map is drift.
3. docs/architecture.md must link every other file in docs/ — the
   "Which doc do I read?" index is only useful if it is complete, and
   a doc nothing links to is a doc nobody finds.

Run from anywhere: paths are resolved relative to the repo root
(the parent of this script's directory). Exits nonzero with a report
when anything is broken; prints a one-line summary when clean.

Wired into ctest (check_docs_test) and scripts/check.sh.
"""

import os
import re
import sys

# [text](target) — target up to the first closing paren or whitespace.
# Good enough for this repo's docs; fenced code blocks are excluded
# separately below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIR_NAMES = {".git", "third_party"}
SKIP_DIR_PREFIXES = ("build",)


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIR_NAMES and not d.startswith(SKIP_DIR_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_fenced_code(text):
    """Remove ``` blocks so example links / ASCII art are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(root):
    errors = []
    for md in markdown_files(root):
        text = strip_fenced_code(open(md, encoding="utf-8").read())
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md, root)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def check_architecture_mentions(root):
    arch_path = os.path.join(root, "docs", "architecture.md")
    if not os.path.isfile(arch_path):
        return ["docs/architecture.md is missing"]
    text = open(arch_path, encoding="utf-8").read()
    errors = []
    src = os.path.join(root, "src")
    for name in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, name)):
            continue
        # Accept "src/name/", "name/", or a bare mention of the dir.
        if not re.search(rf"\b{re.escape(name)}/", text):
            errors.append(
                f"docs/architecture.md: src/{name}/ is not mentioned")
    return errors


def check_doc_index_complete(root):
    """Every docs/*.md must be linked from docs/architecture.md."""
    arch_path = os.path.join(root, "docs", "architecture.md")
    if not os.path.isfile(arch_path):
        return []  # already reported by check_architecture_mentions
    text = strip_fenced_code(open(arch_path, encoding="utf-8").read())
    linked = {os.path.normpath(target.split("#", 1)[0])
              for target in LINK_RE.findall(text)}
    errors = []
    docs = os.path.join(root, "docs")
    for name in sorted(os.listdir(docs)):
        if not name.endswith(".md") or name == "architecture.md":
            continue
        if name not in linked:
            errors.append(
                f"docs/architecture.md: docs/{name} is not linked from "
                "the doc index")
    return errors


def main():
    root = repo_root()
    errors = (check_links(root) + check_architecture_mentions(root)
              + check_doc_index_complete(root))
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    count = sum(1 for _ in markdown_files(root))
    print(f"check_docs: OK ({count} markdown files, all links resolve, "
          "architecture.md covers all src/ subsystems and links every doc)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
