// Live dashboard: the end-to-end StreamManager in action (paper §6,
// "developing an end-to-end system"). Three heterogeneous sources stream
// through one manager; users submit and retract precision queries while
// data flows, and the dashboard shows answers with confidence bands plus
// the uplink traffic actually spent.

#include <cmath>
#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "common/table.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "streamgen/http_traffic_generator.h"
#include "streamgen/power_load_generator.h"
#include "streamgen/trajectory_generator.h"

int main() {
  using namespace dkf;

  // --- Build the three stream feeds.
  TrajectoryOptions trajectory_options;
  trajectory_options.num_points = 3000;
  const TimeSeries vehicle =
      GenerateTrajectory(trajectory_options).value().observed;
  PowerLoadOptions load_options;
  load_options.num_points = 3000;
  const TimeSeries load = GeneratePowerLoad(load_options).value();
  HttpTrafficOptions traffic_options;
  traffic_options.num_points = 3000;
  const TimeSeries traffic = GenerateHttpTraffic(traffic_options).value();

  // --- Register the sources with their stream models.
  StreamManager manager{StreamManagerOptions{}};
  ModelNoise vehicle_noise;
  vehicle_noise.process_variance = 0.05;
  vehicle_noise.measurement_variance = 0.05;
  if (!manager.RegisterSource(1, MakeLinearModel(2, 0.1, vehicle_noise)
                                     .value())
           .ok()) {
    return 1;
  }
  ModelNoise load_noise;
  load_noise.process_variance = 25.0;
  load_noise.measurement_variance = 25.0;
  (void)manager.RegisterSource(2,
                               MakeLinearModel(1, 1.0, load_noise).value());
  ModelNoise traffic_noise;
  traffic_noise.process_variance = 1e-4;
  traffic_noise.measurement_variance = 1e-2;
  (void)manager.RegisterSource(
      3, MakeLinearModel(1, 1.0, traffic_noise).value());

  // --- Users submit queries (more arrive mid-run below).
  ContinuousQuery track;
  track.id = 1;
  track.source_id = 1;
  track.precision = 3.0;
  track.description = "vehicle within 3 units";
  (void)manager.SubmitQuery(track);
  ContinuousQuery grid;
  grid.id = 2;
  grid.source_id = 2;
  grid.precision = 100.0;
  grid.description = "load within 100 MW";
  (void)manager.SubmitQuery(grid);
  ContinuousQuery web;
  web.id = 3;
  web.source_id = 3;
  web.precision = 25.0;
  web.smoothing_factor = 1e-7;
  web.description = "smoothed traffic within 25 pkt/bin";
  (void)manager.SubmitQuery(web);

  auto dashboard = [&manager](const char* moment) {
    std::printf("\n--- dashboard %s (tick %lld) ---\n", moment,
                static_cast<long long>(manager.ticks()));
    AsciiTable table({"source", "answer", "95% band", "delta", "updates"});
    for (int id : {1, 2, 3}) {
      const auto answer_or = manager.AnswerWithConfidence(id);
      const auto& answer = answer_or.value();
      std::string value_text;
      for (size_t d = 0; d < answer.value.size(); ++d) {
        if (d > 0) value_text += ", ";
        value_text += StrFormat("%.1f", answer.value[d]);
      }
      const double band =
          answer.covariance.has_value()
              ? 1.96 * std::sqrt((*answer.covariance)(0, 0))
              : 0.0;
      table.AddRow({StrFormat("%d", id), value_text,
                    StrFormat("+/- %.2f", band),
                    StrFormat("%.1f", manager.source_delta(id).value()),
                    StrFormat("%lld", static_cast<long long>(
                                          manager.updates_sent(id).value()))});
    }
    table.Print();
  };

  // --- Drive the ticks, with query churn partway through.
  const size_t ticks = vehicle.size();
  for (size_t tick = 0; tick < ticks; ++tick) {
    std::map<int, Vector> readings;
    readings[1] = Vector(vehicle.Row(tick));
    readings[2] = Vector{load.value(tick)};
    readings[3] = Vector{traffic.value(tick)};
    if (!manager.ProcessTick(readings).ok()) return 1;

    if (tick == 1000) {
      dashboard("after 1000 ticks");
      // A control-room user needs tighter grid precision for an hour.
      ContinuousQuery urgent;
      urgent.id = 4;
      urgent.source_id = 2;
      urgent.precision = 30.0;
      (void)manager.SubmitQuery(urgent);
      std::printf("\n>> query 4 submitted: load within 30 MW\n");
    }
    if (tick == 2000) {
      dashboard("under the tighter query");
      (void)manager.RemoveQuery(4);
      std::printf("\n>> query 4 retracted\n");
    }
  }
  dashboard("at end of run");

  std::printf("\nuplink: %lld messages, %lld bytes, %lld control msgs\n",
              static_cast<long long>(manager.uplink_traffic().messages),
              static_cast<long long>(manager.uplink_traffic().bytes),
              static_cast<long long>(manager.control_messages()));
  std::printf(
      "Without suppression every tick would cost 3 messages: %lld total. "
      "The manager answered every query within its precision for %.1f%% "
      "fewer transmissions.\n",
      static_cast<long long>(3 * ticks),
      100.0 * (1.0 - static_cast<double>(
                         manager.uplink_traffic().messages) /
                         static_cast<double>(3 * ticks)));
  return 0;
}
