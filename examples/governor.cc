// Governor: a fleet-wide uplink budget that holds when the load
// doubles mid-run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/governor
//
// Thirty-two random-walk sensors stream through the suppression
// protocol under a delta governor holding the fleet to a fixed
// bytes-per-tick budget (docs/governor.md). Every query asks for far
// more precision than the budget affords, so the governor has to trade
// precision for bandwidth from the first epoch. Halfway through the
// run the fleet doubles to sixty-four sensors — the moment a static
// per-source allocation would blow the uplink — and the governor
// re-spreads the same budget across twice the demand by widening
// deltas (more suppression per sensor, same bytes on the wire).
//
// The program prints the wire rate around the expansion and exits
// nonzero unless both halves settle within 10% of the budget and the
// doubled fleet is the more suppressed one — the ctest smoke test
// leans on those checks.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"

int main() {
  using namespace dkf;

  constexpr double kBudget = 120.0;     // bytes per tick, whole fleet
  constexpr int64_t kEpochTicks = 16;
  constexpr int kInitialFleet = 32;
  constexpr int kDoubledFleet = 64;
  constexpr int kEpochsPerPhase = 45;
  constexpr int kSettledWindow = 15;    // last N epochs of each phase

  // 1. A governed sharded engine: the governor observes per-source
  //    uplink counters every epoch, Kalman-fits each stream's
  //    rate-vs-delta sensitivity, and water-fills delta so the fleet
  //    spend meets the budget.
  ShardedStreamEngineOptions options;
  options.num_shards = 2;
  options.channel.seed = 7;
  options.channel.per_source_rng = true;
  options.governor.enabled = true;
  options.governor.epoch_ticks = kEpochTicks;
  options.governor.budget_bytes_per_tick = kBudget;
  options.governor.delta_floor = 0.05;
  options.governor.delta_ceiling = 256.0;
  options.governor.max_step_ratio = 2.0;
  options.governor.dead_band = 0.10;
  ShardedStreamEngine engine(options);

  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();

  const auto add_sensor = [&](int id) {
    if (!engine.RegisterSource(id, model).ok()) return false;
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 0.5;  // far tighter than the budget affords
    return engine.SubmitQuery(query).ok();
  };
  for (int id = 1; id <= kInitialFleet; ++id) {
    if (!add_sensor(id)) return 1;
  }

  // 2. Drive the walk; at the phase boundary, double the fleet
  //    mid-stream. New sensors join with the default delta and are
  //    pulled into the next epoch's allocation like everyone else.
  Rng rng(17);
  std::vector<double> values(kDoubledFleet + 1, 0.0);
  std::map<int, Vector> readings;
  int fleet = kInitialFleet;
  int64_t last_bytes = 0;
  double phase_rate[2] = {0.0, 0.0};
  double mean_delta[2] = {0.0, 0.0};

  std::printf("epoch  sensors  bytes/tick  (budget %.0f)\n", kBudget);
  for (int phase = 0; phase < 2; ++phase) {
    if (phase == 1) {
      for (int id = kInitialFleet + 1; id <= kDoubledFleet; ++id) {
        if (!add_sensor(id)) return 1;
      }
      std::printf("-- fleet doubled to %d sensors --\n", kDoubledFleet);
      fleet = kDoubledFleet;
    }
    int64_t settled_start_bytes = 0;
    for (int epoch = 0; epoch < kEpochsPerPhase; ++epoch) {
      if (epoch == kEpochsPerPhase - kSettledWindow) {
        settled_start_bytes = engine.uplink_traffic().bytes;
      }
      for (int64_t t = 0; t < kEpochTicks; ++t) {
        for (int id = 1; id <= fleet; ++id) {
          values[id] += rng.Gaussian(0.02 * (id % 5), 0.7);
          readings[id] = Vector{values[id]};
        }
        if (!engine.ProcessTick(readings).ok()) return 1;
      }
      const int64_t bytes = engine.uplink_traffic().bytes;
      const bool near_boundary =
          epoch < 3 || epoch >= kEpochsPerPhase - 2;
      if (near_boundary) {
        std::printf("%5d  %7d  %10.1f\n",
                    phase * kEpochsPerPhase + epoch + 1, fleet,
                    static_cast<double>(bytes - last_bytes) /
                        static_cast<double>(kEpochTicks));
      } else if (epoch == 3) {
        std::printf("  ...\n");
      }
      last_bytes = bytes;
    }
    phase_rate[phase] =
        static_cast<double>(engine.uplink_traffic().bytes -
                            settled_start_bytes) /
        static_cast<double>(kSettledWindow * kEpochTicks);
    for (int id = 1; id <= fleet; ++id) {
      mean_delta[phase] += engine.source_delta(id).value();
    }
    mean_delta[phase] /= static_cast<double>(fleet);
  }

  std::printf(
      "settled: %.1f bytes/tick at %d sensors, %.1f at %d "
      "(mean delta %.2f -> %.2f)\n",
      phase_rate[0], kInitialFleet, phase_rate[1], kDoubledFleet,
      mean_delta[0], mean_delta[1]);

  // 3. Self-checks: both halves hold the budget band, and the doubled
  //    fleet paid for it with wider deltas, not more bytes.
  bool ok = true;
  for (int phase = 0; phase < 2; ++phase) {
    if (phase_rate[phase] > kBudget * 1.10) {
      std::printf("FAIL: phase %d settled %.1f bytes/tick, over budget\n",
                  phase, phase_rate[phase]);
      ok = false;
    }
  }
  if (mean_delta[1] <= mean_delta[0]) {
    std::printf("FAIL: doubling the fleet should widen deltas "
                "(%.2f -> %.2f)\n",
                mean_delta[0], mean_delta[1]);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("budget held through a mid-run fleet doubling\n");
  return 0;
}
