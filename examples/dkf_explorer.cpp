// dkf_explorer: a command-line workbench for the library. Pick a dataset,
// a state model, a precision width, and optional KF_c smoothing, and get
// the paper's two metrics for that configuration — handy for exploring
// parameter trade-offs without writing code.
//
// Usage:
//   dkf_explorer [--dataset=trajectory|power|http]
//                [--model=caching|constant|linear|poly2|poly3|sinusoidal]
//                [--delta=<d>] [--smoothing-f=<F>] [--smoothing-r=<R>]
//                [--q=<process var>] [--r=<measurement var>]
//                [--export-csv=<path>]
//
// Examples:
//   dkf_explorer --dataset=power --model=sinusoidal --delta=100
//   dkf_explorer --dataset=http --model=linear --delta=10
//                --smoothing-f=1e-7 --smoothing-r=0.01   (one line)
//   dkf_explorer --dataset=trajectory --export-csv=/tmp/trajectory.csv

#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/csv.h"
#include "common/string_util.h"
#include "core/predictor.h"
#include "core/smoothing.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"
#include "streamgen/http_traffic_generator.h"
#include "streamgen/power_load_generator.h"
#include "streamgen/trajectory_generator.h"

namespace {

using namespace dkf;

struct Args {
  std::string dataset = "trajectory";
  std::string model = "linear";
  double delta = 3.0;
  std::optional<double> smoothing_f;
  double smoothing_r = 1.0;
  std::optional<double> q;
  std::optional<double> r;
  std::optional<std::string> export_csv;
};

bool ParseArg(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    double number = 0.0;
    if (ParseArg(argv[i], "--dataset=", &value)) {
      args->dataset = value;
    } else if (ParseArg(argv[i], "--model=", &value)) {
      args->model = value;
    } else if (ParseArg(argv[i], "--delta=", &value) &&
               ParseDouble(value, &number)) {
      args->delta = number;
    } else if (ParseArg(argv[i], "--smoothing-f=", &value) &&
               ParseDouble(value, &number)) {
      args->smoothing_f = number;
    } else if (ParseArg(argv[i], "--smoothing-r=", &value) &&
               ParseDouble(value, &number)) {
      args->smoothing_r = number;
    } else if (ParseArg(argv[i], "--q=", &value) &&
               ParseDouble(value, &number)) {
      args->q = number;
    } else if (ParseArg(argv[i], "--r=", &value) &&
               ParseDouble(value, &number)) {
      args->r = number;
    } else if (ParseArg(argv[i], "--export-csv=", &value)) {
      args->export_csv = value;
    } else {
      std::fprintf(stderr, "unrecognized argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

Result<TimeSeries> LoadDataset(const std::string& name) {
  if (name == "trajectory") {
    auto data_or = GenerateTrajectory(TrajectoryOptions{});
    if (!data_or.ok()) return data_or.status();
    return data_or.value().observed;
  }
  if (name == "power") return GeneratePowerLoad(PowerLoadOptions{});
  if (name == "http") return GenerateHttpTraffic(HttpTrafficOptions{});
  return Status::InvalidArgument("unknown dataset: " + name);
}

Result<std::unique_ptr<Predictor>> BuildPredictor(const Args& args,
                                                  size_t width) {
  if (args.model == "caching") {
    auto caching_or = CachedValuePredictor::Create(width);
    if (!caching_or.ok()) return caching_or.status();
    return caching_or.value().Clone();
  }

  ModelNoise noise;
  // Sensible per-dataset defaults, overridable via --q / --r.
  if (args.dataset == "power") {
    noise.process_variance = 25.0;
    noise.measurement_variance = 25.0;
  } else if (args.dataset == "http") {
    noise.process_variance = args.smoothing_f.has_value() ? 1e-4 : 1.0;
    noise.measurement_variance =
        args.smoothing_f.has_value() ? 1e-2 : 100.0;
  } else {
    noise.process_variance = 0.05;
    noise.measurement_variance = 0.05;
  }
  if (args.q.has_value()) noise.process_variance = *args.q;
  if (args.r.has_value()) noise.measurement_variance = *args.r;

  Result<StateModel> model_or = Status::InvalidArgument("unset");
  if (args.model == "constant") {
    model_or = MakeConstantModel(width, noise);
  } else if (args.model == "linear") {
    model_or = MakeLinearModel(width, args.dataset == "trajectory" ? 0.1
                                                                   : 1.0,
                               noise);
  } else if (args.model == "poly2" || args.model == "poly3") {
    model_or = MakePolynomialModel(
        width, args.model == "poly2" ? 2 : 3,
        args.dataset == "trajectory" ? 0.1 : 1.0, noise);
  } else if (args.model == "sinusoidal") {
    if (width != 1) {
      return Status::InvalidArgument(
          "sinusoidal model needs a scalar dataset");
    }
    const double omega = 2.0 * M_PI / 24.0;
    const double theta = omega * (0.5 - 15.0) - M_PI / 2.0;
    model_or = MakeSinusoidalModel(omega, theta, 1.0, noise);
  } else {
    return Status::InvalidArgument("unknown model: " + args.model);
  }
  if (!model_or.ok()) return model_or.status();
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  if (!predictor_or.ok()) return predictor_or.status();
  return predictor_or.value().Clone();
}

int Run(const Args& args) {
  auto series_or = LoadDataset(args.dataset);
  if (!series_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 series_or.status().ToString().c_str());
    return 1;
  }
  TimeSeries series = std::move(series_or).value();

  if (args.export_csv.has_value()) {
    Status status = WriteTimeSeriesCsv(series, *args.export_csv);
    if (!status.ok()) {
      std::fprintf(stderr, "export: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu samples to %s\n", series.size(),
                args.export_csv->c_str());
  }

  if (args.smoothing_f.has_value()) {
    if (series.width() != 1) {
      std::fprintf(stderr, "smoothing requires a scalar dataset\n");
      return 1;
    }
    auto smoothed_or =
        SmoothSeriesKalman(series, *args.smoothing_f, args.smoothing_r);
    if (!smoothed_or.ok()) {
      std::fprintf(stderr, "smoothing: %s\n",
                   smoothed_or.status().ToString().c_str());
      return 1;
    }
    series = std::move(smoothed_or).value();
  }

  auto predictor_or = BuildPredictor(args, series.width());
  if (!predictor_or.ok()) {
    std::fprintf(stderr, "predictor: %s\n",
                 predictor_or.status().ToString().c_str());
    return 1;
  }

  auto row_or =
      RunSuppressionExperiment(series, *predictor_or.value(), args.delta);
  if (!row_or.ok()) {
    std::fprintf(stderr, "experiment: %s\n",
                 row_or.status().ToString().c_str());
    return 1;
  }
  const ExperimentRow& row = row_or.value();
  std::printf("dataset:    %s (%zu samples, width %zu)\n",
              args.dataset.c_str(), series.size(), series.width());
  std::printf("model:      %s\n", row.predictor.c_str());
  std::printf("delta:      %g\n", row.delta);
  if (args.smoothing_f.has_value()) {
    std::printf("smoothing:  F = %g (R = %g)\n", *args.smoothing_f,
                args.smoothing_r);
  }
  std::printf("updates:    %lld / %lld (%.2f%%)\n",
              static_cast<long long>(row.updates),
              static_cast<long long>(row.ticks), row.update_percentage);
  std::printf("avg error:  %.4f\n", row.avg_error);
  std::printf("max error:  %.4f\n", row.max_error);
  std::printf("rmse:       %.4f\n", row.rmse);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  return Run(args);
}
