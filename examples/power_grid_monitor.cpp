// Power-grid monitoring (paper Example 2, §5.2): hourly zonal load with a
// strong diurnal sinusoid. Shows how swapping the state model — the only
// application-specific piece of the DKF framework — changes communication
// cost, and how online model switching discovers the right model without
// being told.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/model_switching.h"
#include "core/predictor.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"
#include "streamgen/power_load_generator.h"

int main() {
  using namespace dkf;

  PowerLoadOptions generator_options;  // 5831 hourly samples
  auto series_or = GeneratePowerLoad(generator_options);
  if (!series_or.ok()) return 1;
  const TimeSeries& load = series_or.value();
  const double delta = 100.0;  // MW precision the control room tolerates

  ModelNoise noise;
  noise.process_variance = 25.0;
  noise.measurement_variance = 25.0;

  // The sinusoidal model of §4.2, phase-aligned with the diurnal cycle.
  const double omega = 2.0 * M_PI / 24.0;
  const double theta =
      omega * (0.5 - generator_options.peak_hour) - M_PI / 2.0;

  AsciiTable table({"strategy", "% updates", "avg error (MW)"});
  struct Candidate {
    const char* name;
    StateModel model;
  };
  const Candidate candidates[] = {
      {"linear-KF", MakeLinearModel(1, 1.0, noise).value()},
      {"sinusoidal-KF (matched)",
       MakeSinusoidalModel(omega, theta, 1.0, noise).value()},
  };
  for (const Candidate& candidate : candidates) {
    auto predictor_or = KalmanPredictor::Create(candidate.model);
    if (!predictor_or.ok()) return 1;
    auto row_or =
        RunSuppressionExperiment(load, predictor_or.value(), delta);
    if (!row_or.ok()) return 1;
    table.AddRow({candidate.name,
                  StrFormat("%.1f", row_or.value().update_percentage),
                  StrFormat("%.1f", row_or.value().avg_error)});
  }

  // Model switching: start from the (wrong) constant model with a bank of
  // candidates; the link should migrate to the sinusoidal model on its
  // own and report how many switch messages that cost.
  ModelSwitchingOptions switching_options;
  switching_options.link.delta = delta;
  switching_options.check_interval = 168;  // re-evaluate weekly
  switching_options.warmup = 168;
  ModelNoise adopt;
  adopt.process_variance = 2500.0;
  adopt.measurement_variance = 25.0;
  auto link_or = ModelSwitchingLink::Create(
      {MakeConstantModel(1, adopt).value(),
       MakeLinearModel(1, 1.0, noise).value(),
       MakeSinusoidalModel(omega, theta, 1.0, noise).value()},
      /*initial=*/0, switching_options);
  if (!link_or.ok()) return 1;
  ModelSwitchingLink link = std::move(link_or).value();
  for (size_t i = 0; i < load.size(); ++i) {
    auto step_or = link.Step(Vector{load.value(i)});
    if (!step_or.ok()) return 1;
  }
  table.AddRow(
      {StrFormat("switching (ends on model %zu)", link.active_model()),
       StrFormat("%.1f",
                 100.0 * static_cast<double>(link.stats().updates_sent) /
                     static_cast<double>(link.stats().ticks)),
       StrFormat("(+%lld switch msgs)",
                 static_cast<long long>(link.stats().switches))});

  std::printf("Zonal power-load monitoring (delta = %.0f MW)\n\n", delta);
  table.Print();
  std::printf(
      "\nThe bank indices are {0: constant, 1: linear, 2: sinusoidal}; "
      "the switching link should finish on the sinusoidal model — the "
      "framework discovered the diurnal structure online.\n");
  return 0;
}
