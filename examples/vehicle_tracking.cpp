// Vehicle tracking (paper Example 1, §5.1): a moving object reports its
// 2-D position over a simulated sensor network. A continuous query with
// a precision constraint installs the dual filters; the DSMS simulation
// measures communication and energy, comparing model choices.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "dsms/simulation.h"
#include "models/model_factory.h"
#include "query/registry.h"
#include "streamgen/trajectory_generator.h"

int main() {
  using namespace dkf;

  // The user's continuous query: "track vehicle 1's position within 3
  // units".
  QueryRegistry registry;
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = 3.0;
  query.description = "vehicle 1 position within 3 units";
  if (!registry.AddQuery(query).ok()) return 1;
  const double delta = registry.EffectiveDelta(1).value();

  // Paper-scale trajectory (4000 samples @ 100 ms).
  auto data_or = GenerateTrajectory(TrajectoryOptions{});
  if (!data_or.ok()) return 1;
  const TimeSeries& observed = data_or.value().observed;

  // Paper §4.1 noise setup for the moving-object models.
  ModelNoise linear_noise;
  linear_noise.process_variance = 0.05;
  linear_noise.measurement_variance = 0.05;
  ModelNoise constant_noise;  // adopt-the-value configuration
  constant_noise.process_variance = 10.0;
  constant_noise.measurement_variance = 0.05;

  AsciiTable table({"model", "% updates", "avg |dx|+|dy|", "bytes sent",
                    "energy (Minstr)", "vs send-all"});
  struct Candidate {
    const char* name;
    StateModel model;
  };
  const Candidate candidates[] = {
      {"constant-KF (caching-like)",
       MakeConstantModel(2, constant_noise).value()},
      {"linear-KF (paper's pick)",
       MakeLinearModel(2, 0.1, linear_noise).value()},
      {"jerk-KF (3rd order)",
       MakePolynomialModel(2, 3, 0.1, linear_noise).value()},
  };
  for (const Candidate& candidate : candidates) {
    SimulationSourceConfig config;
    config.id = 1;
    config.data = observed;
    config.model = candidate.model;
    config.delta = delta;
    auto sim_or = DsmsSimulation::Create({config});
    if (!sim_or.ok()) return 1;
    auto reports_or = std::move(sim_or).value().Run();
    if (!reports_or.ok()) return 1;
    const SourceReport& report = reports_or.value()[0];
    table.AddRow(
        {candidate.name, StrFormat("%.1f", report.update_percentage),
         StrFormat("%.2f", report.avg_error),
         StrFormat("%lld", static_cast<long long>(report.bytes_sent)),
         StrFormat("%.2f", report.energy_spent / 1e6),
         StrFormat("-%.1f%%", 100.0 * (1.0 - report.energy_spent /
                                                 report.energy_send_all))});
  }

  std::printf("Vehicle tracking under query \"%s\" (delta = %.1f)\n\n",
              query.description.c_str(), delta);
  table.Print();
  std::printf(
      "\nThe linear model rides the straight segments for free and only "
      "pays at maneuvers; higher-order models buy little here because the "
      "trajectory really is piecewise linear.\n");
  return 0;
}
