// Fusion: eight redundant temperature sensors, one fused estimate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fusion
//
// Eight thermometers watch the same room. Registered as eight plain
// dual-filter sources they stream eight correlated copies of the same
// temperature — every sensor independently breaks its trigger when the
// room drifts. Registered as one fusion group (docs/fusion.md) the
// first sensor to notice a drift corrects the shared fused posterior,
// the server re-locks every member's mirror over the instant downlink
// broadcast, and the other seven test their readings against a
// posterior that already absorbed the news — so they stay silent. One
// answer, a fraction of the uplink.
//
// The program drives both deployments over bit-identical readings,
// prints the uplink bill and answer quality side by side, and exits
// nonzero unless the fused uplink is below half the per-source
// baseline's and the fused answer tracks the true temperature — the
// ctest smoke test leans on those checks.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"

int main() {
  using namespace dkf;

  constexpr int kSensors = 8;
  constexpr int64_t kTicks = 1500;
  constexpr double kDelta = 1.5;  // degrees the reader tolerates

  // 1. One room, eight noisy thermometers: a slow random-walk truth
  //    plus independent per-sensor measurement noise. Both deployments
  //    replay exactly these readings.
  Rng rng(21);
  std::vector<double> truth;
  std::vector<std::map<int, Vector>> readings(kTicks);
  double temperature = 21.0;
  for (int64_t t = 0; t < kTicks; ++t) {
    temperature += rng.Gaussian(0.0, 0.4);
    truth.push_back(temperature);
    for (int s = 1; s <= kSensors; ++s) {
      readings[static_cast<size_t>(t)][s] =
          Vector{temperature + rng.Gaussian(0.0, 0.4)};
    }
  }

  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.2;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();

  // 2. Baseline: eight independent links, one query each at the same
  //    tolerance. The reader averages the eight answers client-side.
  StreamManagerOptions plain_options;
  plain_options.channel.seed = 5;
  plain_options.channel.per_source_rng = true;
  StreamManager plain(plain_options);
  for (int s = 1; s <= kSensors; ++s) {
    if (!plain.RegisterSource(s, model).ok()) return 1;
    ContinuousQuery query;
    query.id = s;
    query.source_id = s;
    query.precision = kDelta;
    if (!plain.SubmitQuery(query).ok()) return 1;
  }

  // 3. Fused: the same eight sensors as one group at the same delta.
  StreamManagerOptions fused_options;
  fused_options.channel.seed = 5;
  fused_options.channel.per_source_rng = true;
  StreamManager fused(fused_options);
  FusionGroupConfig group;
  group.group_id = 1;
  group.model = model;
  for (int s = 1; s <= kSensors; ++s) group.member_ids.push_back(s);
  group.delta = kDelta;
  if (!fused.RegisterFusionGroup(group).ok()) return 1;

  double plain_sq_error = 0.0;
  double fused_sq_error = 0.0;
  for (int64_t t = 0; t < kTicks; ++t) {
    const auto& tick_readings = readings[static_cast<size_t>(t)];
    if (!plain.ProcessTick(tick_readings).ok()) return 1;
    if (!fused.ProcessTick(tick_readings).ok()) return 1;
    double mean = 0.0;
    for (int s = 1; s <= kSensors; ++s) mean += plain.Answer(s).value()[0];
    mean /= static_cast<double>(kSensors);
    const double plain_error = mean - truth[static_cast<size_t>(t)];
    const double fused_error =
        fused.AnswerFused(1).value()[0] - truth[static_cast<size_t>(t)];
    plain_sq_error += plain_error * plain_error;
    fused_sq_error += fused_error * fused_error;
  }

  const auto plain_uplink = plain.uplink_traffic();
  const auto fused_uplink = fused.uplink_traffic();
  const FusionStats stats = fused.fusion_stats();
  const double plain_rmse =
      std::sqrt(plain_sq_error / static_cast<double>(kTicks));
  const double fused_rmse =
      std::sqrt(fused_sq_error / static_cast<double>(kTicks));

  std::printf("eight sensors, %lld ticks, delta %.1f degC\n",
              static_cast<long long>(kTicks), kDelta);
  std::printf("  per-source baseline: %lld msgs, %lld uplink bytes, "
              "rmse %.3f\n",
              static_cast<long long>(plain_uplink.messages),
              static_cast<long long>(plain_uplink.bytes), plain_rmse);
  std::printf("  fused group:         %lld msgs, %lld uplink bytes, "
              "rmse %.3f\n",
              static_cast<long long>(fused_uplink.messages),
              static_cast<long long>(fused_uplink.bytes), fused_rmse);
  std::printf("  fused downlink:      %lld broadcast bytes "
              "(the price of re-locking %lld mirrors)\n",
              static_cast<long long>(stats.broadcast_bytes),
              static_cast<long long>(stats.members));
  std::printf("  uplink reduction:    %.2fx\n",
              static_cast<double>(plain_uplink.bytes) /
                  static_cast<double>(fused_uplink.bytes));

  // 4. Self-check (the ctest smoke test): redundancy must buy at least
  //    half the uplink back, the group must have genuinely suppressed
  //    cross-source (not just sent less data), and the fused answer
  //    must track the room.
  if (fused_uplink.bytes * 2 >= plain_uplink.bytes) {
    std::fprintf(stderr, "FAIL: fused uplink is not below half the "
                         "per-source baseline\n");
    return 1;
  }
  if (stats.suppressed <= stats.updates_applied) {
    std::fprintf(stderr, "FAIL: cross-source suppression never won\n");
    return 1;
  }
  if (fused_rmse > 1.0) {
    std::fprintf(stderr, "FAIL: fused answer lost the room "
                         "(rmse %.3f degC)\n", fused_rmse);
    return 1;
  }
  if (!fused.VerifyFusedConsistency().ok()) {
    std::fprintf(stderr, "FAIL: mirror consistency violated\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
