// Alerts: standing band-alert subscriptions over a small sensor fleet,
// printing every fired alert as it is delivered.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/alerts
//
// Instead of polling Answer() every tick, each operator console
// registers a standing query once — "tell me when sensor 2 leaves
// [-4, 4]", "tell me when sensor 3's estimate gets too uncertain" —
// and the serving front-end pushes a notification only when the
// subscription is affected (docs/serving.md). The program drives four
// drifting sensors through the suppression protocol for 300 ticks,
// draining and printing alerts every 25 ticks the way a subscriber
// would. Exits nonzero if no band was ever exited and re-entered —
// the ctest smoke test leans on that.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "serve/subscription.h"

int main() {
  using namespace dkf;

  // 1. A four-sensor fleet on the usual dual-filter link: scalar
  //    streams, precision 1.0 (plenty of suppression).
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.1;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();

  StreamManager manager{StreamManagerOptions{}};
  for (int id = 0; id < 4; ++id) {
    if (!manager.RegisterSource(id, model).ok()) return 1;
    ContinuousQuery query;
    query.id = id + 1;
    query.source_id = id;
    query.precision = 1.0;
    if (!manager.SubmitQuery(query).ok()) return 1;
  }

  // 2. The standing queries. Each sensor oscillates in roughly
  //    [-6, 6], so a [-4, 4] band fires a handful of exit/enter pairs
  //    per run; subscription 103 also wants to know when the served
  //    answer's variance climbs past 0.5 (a long suppression streak).
  for (int id = 0; id < 4; ++id) {
    Subscription band;
    band.id = 100 + id;
    band.kind = SubscriptionKind::kBandAlert;
    band.source_id = id;
    band.lo = -4.0;
    band.hi = 4.0;
    if (id == 3) band.uncertainty_ceiling = 0.5;
    band.description = "console watching sensor " + std::to_string(id);
    if (!manager.Subscribe(band).ok()) return 1;
  }

  // 3. Drive the fleet and drain like a subscriber: every 25 ticks,
  //    collect whatever batches accumulated and print the alerts.
  Rng rng(7);
  int64_t exits = 0;
  int64_t enters = 0;
  int64_t uncertainty = 0;
  std::printf("tick  sensor  subscription  alert\n");
  for (int64_t t = 0; t < 300; ++t) {
    std::map<int, Vector> readings;
    for (int id = 0; id < 4; ++id) {
      const double value =
          6.0 * std::sin(0.05 * static_cast<double>(t) + 1.3 * id) +
          rng.Gaussian(0.0, 0.2);
      readings[id] = Vector{value};
    }
    if (!manager.ProcessTick(readings).ok()) return 1;

    if ((t + 1) % 25 != 0) continue;
    for (const NotificationBatch& batch : manager.DrainNotifications()) {
      for (const Notification& event : batch.notifications) {
        switch (event.kind) {
          case NotificationKind::kBandExit:
            ++exits;
            std::printf("%4lld  %6lld  %12lld  left [-4, 4] at %.3f "
                        "(crossed %g)\n",
                        static_cast<long long>(event.step),
                        static_cast<long long>(event.source_id),
                        static_cast<long long>(event.subscription_id),
                        event.value, event.aux);
            break;
          case NotificationKind::kBandEnter:
            ++enters;
            std::printf("%4lld  %6lld  %12lld  back inside at %.3f\n",
                        static_cast<long long>(event.step),
                        static_cast<long long>(event.source_id),
                        static_cast<long long>(event.subscription_id),
                        event.value);
            break;
          case NotificationKind::kUncertaintyHigh:
            ++uncertainty;
            std::printf("%4lld  %6lld  %12lld  variance %.3f over "
                        "ceiling\n",
                        static_cast<long long>(event.step),
                        static_cast<long long>(event.source_id),
                        static_cast<long long>(event.subscription_id),
                        event.aux);
            break;
          default:
            break;  // initials / clears: not alarms, stay quiet
        }
      }
    }
  }

  const ServeStats stats = manager.serve_stats();
  std::printf("\n%lld exits, %lld re-entries, %lld uncertainty alerts; "
              "engine touched %lld subscriptions to deliver %lld "
              "notifications\n",
              static_cast<long long>(exits), static_cast<long long>(enters),
              static_cast<long long>(uncertainty),
              static_cast<long long>(stats.touched),
              static_cast<long long>(stats.notifications));

  // Smoke-test contract: a sinusoid spanning +-6 must leave and
  // re-enter a [-4, 4] band — zero alerts means the serving layer (or
  // the protocol under it) broke.
  return (exits > 0 && enters > 0) ? 0 : 1;
}
