// Network monitoring (paper Example 3, §5.3): bursty HTTP packet counts
// with no visible trend. Demonstrates the KF_c smoothing stage and the
// user-facing sensitivity knob F: lower F means smoother query answers
// and fewer transmissions; the window-equivalent F reproduces a moving
// average without its memory cost.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/moving_average.h"
#include "core/smoothing.h"
#include "dsms/simulation.h"
#include "metrics/metrics.h"
#include "models/model_factory.h"
#include "streamgen/http_traffic_generator.h"

int main() {
  using namespace dkf;

  auto series_or = GenerateHttpTraffic(HttpTrafficOptions{});
  if (!series_or.ok()) return 1;
  const TimeSeries& traffic = series_or.value();
  const double delta = 15.0;  // packets/bin the dashboard tolerates

  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 100.0;
  const StateModel model = MakeLinearModel(1, 1.0, noise).value();

  AsciiTable table({"configuration", "% updates", "avg err vs smoothed",
                    "smoothed-vs-raw dev"});

  // No smoothing: the raw burstiness defeats prediction.
  {
    SimulationSourceConfig config;
    config.id = 1;
    config.data = traffic;
    config.model = model;
    config.delta = delta;
    auto report =
        DsmsSimulation::Create({config}).value().Run().value()[0];
    table.AddRow({"raw (no KF_c)",
                  StrFormat("%.1f", report.update_percentage),
                  StrFormat("%.2f", report.avg_error), "0.00"});
  }

  // Smoothed at several F values, including the MA(64)-equivalent.
  const double f_ma64 = SmoothingFactorForWindow(64, 100.0);
  for (double f : {1e-7, f_ma64, 1e-1}) {
    SimulationSourceConfig config;
    config.id = 1;
    config.data = traffic;
    config.model = model;
    config.delta = delta;
    config.smoothing_factor = f;
    config.smoothing_measurement_variance = 100.0;
    auto report =
        DsmsSimulation::Create({config}).value().Run().value()[0];
    const TimeSeries smoothed =
        SmoothSeriesKalman(traffic, f, 100.0).value();
    table.AddRow({StrFormat("KF_c, F = %.3g", f),
                  StrFormat("%.1f", report.update_percentage),
                  StrFormat("%.2f", report.avg_error),
                  StrFormat("%.2f",
                            SeriesMeanAbsDiff(smoothed, traffic).value())});
  }

  std::printf("HTTP traffic monitoring (delta = %.0f packets/bin)\n\n",
              delta);
  table.Print();

  std::printf(
      "\nF is the paper's fine-grain sensitivity control: F = %.3g makes "
      "KF_c equivalent to a 64-sample moving average — with O(1) state "
      "instead of a 64-entry window — and lowering F further trades "
      "fidelity to the raw spikes for bandwidth.\n",
      f_ma64);
  return 0;
}
