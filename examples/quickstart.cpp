// Quickstart: suppress transmissions of a drifting scalar stream with a
// dual Kalman filter link.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program streams a noisy ramp through the DKF protocol with a
// precision constraint of 2.0, and prints how many readings actually had
// to cross the (simulated) network.

#include <cstdio>

#include "common/rng.h"
#include "core/dual_link.h"
#include "core/predictor.h"
#include "models/model_factory.h"

int main() {
  using namespace dkf;

  // 1. Describe how the stream evolves: one attribute with a (roughly)
  //    linear trend -> the constant-velocity model of paper §4.1.
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  auto model_or = MakeLinearModel(/*axes=*/1, /*dt=*/1.0, noise);
  if (!model_or.ok()) {
    std::fprintf(stderr, "model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }

  // 2. Build the predictor and the dual link with the user's precision
  //    constraint. The link owns the server filter KF_s and the source
  //    mirror KF_m.
  auto predictor_or = KalmanPredictor::Create(model_or.value());
  if (!predictor_or.ok()) {
    std::fprintf(stderr, "predictor: %s\n",
                 predictor_or.status().ToString().c_str());
    return 1;
  }
  DualLinkOptions options;
  options.delta = 2.0;  // server answers stay within 2 units
  auto link_or = DualLink::Create(predictor_or.value(), options);
  if (!link_or.ok()) {
    std::fprintf(stderr, "link: %s\n", link_or.status().ToString().c_str());
    return 1;
  }
  DualLink link = std::move(link_or).value();

  // 3. Stream 1000 readings of a noisy ramp through the protocol.
  Rng rng(7);
  double value = 0.0;
  double worst_error = 0.0;
  for (int tick = 0; tick < 1000; ++tick) {
    value += 0.8 + rng.Gaussian(0.0, 0.1);
    auto step_or = link.Step(Vector{value});
    if (!step_or.ok()) {
      std::fprintf(stderr, "step: %s\n",
                   step_or.status().ToString().c_str());
      return 1;
    }
    const double err = step_or.value().server_value[0] - value;
    worst_error = std::max(worst_error, err < 0 ? -err : err);
  }

  std::printf("readings:            %lld\n",
              static_cast<long long>(link.stats().ticks));
  std::printf("updates transmitted: %lld (%.1f%%)\n",
              static_cast<long long>(link.stats().updates_sent),
              link.stats().UpdatePercentage());
  std::printf("worst server error:  %.3f (precision constraint %.1f)\n",
              worst_error, options.delta);
  std::printf(
      "\nThe linear model learned the ramp's slope from the first few "
      "updates; afterwards the server extrapolated on its own and the "
      "source stayed silent.\n");
  return 0;
}
