// Quickstart: suppress transmissions of a drifting scalar stream with a
// dual Kalman filter link, and watch it happen through the
// observability layer.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program streams a noisy ramp through the DKF protocol with a
// precision constraint of 2.0, reads the suppression ratio back out of
// the metrics snapshot, and prints the same numbers in Prometheus
// exposition format. Exits nonzero if the protocol failed to suppress
// anything — the ctest smoke test leans on that.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"

int main() {
  using namespace dkf;

  // 1. Describe how the stream evolves: one attribute with a (roughly)
  //    linear trend -> the constant-velocity model of paper §4.1.
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  auto model_or = MakeLinearModel(/*axes=*/1, /*dt=*/1.0, noise);
  if (!model_or.ok()) {
    std::fprintf(stderr, "model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }

  // 2. Stand up the full source/channel/server pipeline and turn on
  //    tracing before any data flows, so the trace covers the whole run.
  StreamManager manager{StreamManagerOptions{}};
  if (!manager.EnableTracing().ok()) {
    std::fprintf(stderr, "tracing failed to enable\n");
    return 1;
  }
  if (!manager.RegisterSource(/*source_id=*/1, model_or.value()).ok()) {
    std::fprintf(stderr, "source registration failed\n");
    return 1;
  }
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = 2.0;  // server answers stay within 2 units
  if (!manager.SubmitQuery(query).ok()) {
    std::fprintf(stderr, "query submission failed\n");
    return 1;
  }

  // 3. Stream 1000 readings of a noisy ramp through the protocol.
  Rng rng(7);
  double value = 0.0;
  double worst_error = 0.0;
  for (int tick = 0; tick < 1000; ++tick) {
    value += 0.8 + rng.Gaussian(0.0, 0.1);
    if (!manager.ProcessTick({{1, Vector{value}}}).ok()) {
      std::fprintf(stderr, "tick %d failed\n", tick);
      return 1;
    }
    auto answer_or = manager.Answer(1);
    if (!answer_or.ok()) {
      std::fprintf(stderr, "answer: %s\n",
                   answer_or.status().ToString().c_str());
      return 1;
    }
    worst_error =
        std::max(worst_error, std::fabs(answer_or.value()[0] - value));
  }

  // 4. Read the run back out of the metrics snapshot. Every number here
  //    is derived from the same trace events the tests pin golden.
  const MetricsRegistry metrics = manager.MetricsSnapshot();
  const long long suppressed =
      static_cast<long long>(metrics.counter("trace.suppress"));
  const long long transmitted =
      static_cast<long long>(metrics.counter("trace.transmit"));
  const double suppression_ratio = metrics.gauge("suppression_ratio");

  std::printf("readings:            %lld\n",
              static_cast<long long>(manager.ticks()));
  std::printf("updates transmitted: %lld\n", transmitted);
  std::printf("updates suppressed:  %lld (ratio %.3f)\n", suppressed,
              suppression_ratio);
  std::printf("worst server error:  %.3f (precision constraint %.1f)\n",
              worst_error, query.precision);
  std::printf("\nPrometheus exposition of the same run:\n%s",
              metrics.ToPrometheus().c_str());
  std::printf(
      "\nThe linear model learned the ramp's slope from the first few "
      "updates; afterwards the server extrapolated on its own and the "
      "source stayed silent.\n");

#if DKF_OBS_ENABLED
  // Smoke-test contract: the protocol must actually have suppressed
  // most of the stream, and the counters must account for every tick.
  if (suppression_ratio <= 0.0 || suppressed == 0 ||
      suppressed + transmitted != manager.ticks()) {
    std::fprintf(stderr,
                 "suppression did not happen: ratio %.3f, %lld + %lld "
                 "events over %lld ticks\n",
                 suppression_ratio, suppressed, transmitted,
                 static_cast<long long>(manager.ticks()));
    return 1;
  }
#endif
  return 0;
}
