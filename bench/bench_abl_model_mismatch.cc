// Ablation A3: model-mismatch robustness. The paper claims (§5.2) that
// "the system performs well even when the application cannot be modeled
// accurately". This bench runs every scalar model on every scalar
// dataset (power load, smoothed HTTP traffic, and a 1-D projection of the
// trajectory) and reports % updates — the diagonal (matched model) should
// win, and no off-diagonal cell should collapse.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/smoothing.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

TimeSeries TrajectoryX() {
  const TimeSeries trajectory = StandardTrajectory();
  TimeSeries x(1);
  x.Reserve(trajectory.size());
  for (size_t i = 0; i < trajectory.size(); ++i) {
    (void)x.Append(trajectory.timestamp(i), trajectory.value(i, 0));
  }
  return x;
}

void PrintFigure() {
  std::printf(
      "Ablation A3: %% of a stream's readings transmitted, for every "
      "(model, dataset) pair. delta is per-dataset (3 / 100 / 10).\n\n");

  struct NamedSeries {
    std::string name;
    TimeSeries series;
    double delta;
  };
  std::vector<NamedSeries> datasets;
  datasets.push_back({"trajectory-x", TrajectoryX(), 3.0});
  datasets.push_back({"power-load", StandardPowerLoad(), 100.0});
  datasets.push_back(
      {"http-smoothed",
       SmoothSeriesKalman(StandardHttpTraffic(), 1e-7, 100.0).value(),
       10.0});

  ModelNoise generic;
  generic.process_variance = 25.0;
  generic.measurement_variance = 25.0;

  struct NamedModel {
    std::string name;
    StateModel model;
  };
  std::vector<NamedModel> models;
  models.push_back({"constant", MakeConstantModel(1, generic).value()});
  models.push_back({"linear", MakeLinearModel(1, 1.0, generic).value()});
  models.push_back({"poly2", MakePolynomialModel(1, 2, 1.0, generic).value()});
  models.push_back({"sinusoidal", Example2SinusoidalModel()});
  models.push_back(
      {"mean-reverting", MakeMeanRevertingModel(0.95, generic).value()});

  std::vector<std::string> header = {"model \\ dataset"};
  for (const auto& dataset : datasets) {
    header.push_back(StrFormat("%s (d=%g)", dataset.name.c_str(),
                               dataset.delta));
  }
  AsciiTable table(header);
  for (const auto& named_model : models) {
    std::vector<std::string> row = {named_model.name};
    auto predictor = KalmanPredictor::Create(named_model.model).value();
    for (const auto& dataset : datasets) {
      const auto result = RunSuppressionExperiment(dataset.series, predictor,
                                                   dataset.delta)
                              .value();
      row.push_back(StrFormat("%.1f%%", result.update_percentage));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nReading the table: matched models (linear on trajectory, "
      "sinusoidal on power load) transmit least; mismatched models "
      "degrade but stay serviceable — the §5.2 robustness claim.\n");
}

void BM_MismatchCell(benchmark::State& state) {
  const TimeSeries load = StandardPowerLoad();
  ModelNoise generic;
  generic.process_variance = 25.0;
  generic.measurement_variance = 25.0;
  auto predictor =
      KalmanPredictor::Create(MakePolynomialModel(1, 2, 1.0, generic).value())
          .value();
  for (auto _ : state) {
    auto row = RunSuppressionExperiment(load, predictor, 100.0);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * load.size());
}
BENCHMARK(BM_MismatchCell);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
