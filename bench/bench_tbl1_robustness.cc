// Quantifies Table 1's qualitative claims: unlike the compared systems
// (STREAM's caching, AURORA's static sampling), the DKF "gracefully
// degrades when the input data is noisy" thanks to online smoothing, and
// exploits stream arrival characteristics through its prediction model.
//
// The bench corrupts the Example-1 trajectory with increasing sensor
// noise and outliers and reports updates/error for the caching baseline,
// the plain linear DKF, and the linear DKF with a smoothing front-end on
// each coordinate.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "metrics/experiment.h"
#include "streamgen/noise.h"
#include "streamgen/trajectory_generator.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

constexpr double kDelta = 3.0;

void PrintFigure() {
  PrintHeader("Table 1 (quantified)",
              "graceful degradation under sensor noise (Example 1, "
              "delta = 3)");
  TrajectoryOptions options;
  options.noise_stddev = 0.0;  // corrupt explicitly below
  const TimeSeries clean = GenerateTrajectory(options).value().observed;

  auto caching = CachedValuePredictor::Create(2).value();
  auto linear = KalmanPredictor::Create(Example1LinearModel()).value();

  AsciiTable table({"noise stddev", "outlier rate", "caching %upd",
                    "linear-KF %upd", "caching avg err",
                    "linear-KF avg err"});
  struct Level {
    double stddev;
    double outlier_probability;
  };
  const Level levels[] = {{0.0, 0.0},  {0.25, 0.0}, {0.5, 0.0},
                          {1.0, 0.0},  {1.0, 0.01}, {2.0, 0.02}};
  for (const Level& level : levels) {
    NoiseInjectionOptions noise;
    noise.gaussian_stddev = level.stddev;
    noise.outlier_probability = level.outlier_probability;
    noise.outlier_stddev = 20.0;
    const TimeSeries corrupted = InjectNoise(clean, noise).value();
    const auto cache_row =
        RunSuppressionExperiment(corrupted, caching, kDelta).value();
    const auto kf_row =
        RunSuppressionExperiment(corrupted, linear, kDelta).value();
    table.AddRow({StrFormat("%.2f", level.stddev),
                  StrFormat("%.2f", level.outlier_probability),
                  StrFormat("%.1f", cache_row.update_percentage),
                  StrFormat("%.1f", kf_row.update_percentage),
                  StrFormat("%.2f", cache_row.avg_error),
                  StrFormat("%.2f", kf_row.avg_error)});
  }
  table.Print();
  std::printf(
      "\nReading the table: as noise rises, caching's update rate climbs "
      "steeply (every noisy excursion refreshes the cache) while the "
      "filtering DKF degrades gradually — Table 1's 'on-line data "
      "smoothing helps provide query answers even for noisy data'.\n");
}

void BM_NoisySuppression(benchmark::State& state) {
  TrajectoryOptions options;
  options.noise_stddev = 1.0;
  const TimeSeries noisy = GenerateTrajectory(options).value().observed;
  auto linear = KalmanPredictor::Create(Example1LinearModel()).value();
  for (auto _ : state) {
    auto row = RunSuppressionExperiment(noisy, linear, kDelta);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * noisy.size());
}
BENCHMARK(BM_NoisySuppression);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
