// Reproduces Figure 9: the Example-3 network monitoring dataset (§5.3) —
// HTTP packet counts per 10-timestamp bin. The DEC trace from the
// Internet Traffic Archive [31] is substituted by a heavy-tailed on/off
// superposition with the same qualitative properties: bursty,
// overdispersed, no visible trend (see DESIGN.md).

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "streamgen/http_traffic_generator.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

void PrintFigure() {
  PrintHeader("Figure 9",
              "HTTP traffic dataset (synthetic substitute for the DEC "
              "trace)");
  HttpTrafficOptions options;  // 5000 bins
  const TimeSeries series = GenerateHttpTraffic(options).value();
  const SeriesStats stats = series.Stats().value();

  const double variance = stats.stddev * stats.stddev;
  // Trend check: half-means relative to stddev.
  const double m1 =
      series.Slice(0, series.size() / 2).value().Stats().value().mean;
  const double m2 = series.Slice(series.size() / 2, series.size())
                        .value()
                        .Stats()
                        .value()
                        .mean;

  AsciiTable table({"property", "value"});
  table.AddRow({"samples (bins)", StrFormat("%zu", series.size())});
  table.AddRow({"mean packets/bin", StrFormat("%.1f", stats.mean)});
  table.AddRow({"stddev", StrFormat("%.1f", stats.stddev)});
  table.AddRow({"max", StrFormat("%.0f", stats.max)});
  table.AddRow({"overdispersion (var/mean)",
                StrFormat("%.1f (Poisson = 1.0)", variance / stats.mean)});
  table.AddRow({"half-mean drift / stddev",
                StrFormat("%.2f (no visible trend when << 1)",
                          std::fabs(m1 - m2) / stats.stddev)});
  table.Print();
}

void BM_GenerateHttpTraffic(benchmark::State& state) {
  HttpTrafficOptions options;
  options.num_points = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto series = GenerateHttpTraffic(options);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateHttpTraffic)->Arg(5000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
