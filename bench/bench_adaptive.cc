// Adaptive noise servo vs fixed-noise DKF on the three streamgen
// scenario workloads (regime shift, degrading sensor, quantized
// readings; docs/adaptive.md).
//
// For each scenario the same observed stream is driven through the full
// protocol twice — servo on and servo off — and the report carries:
//   - adaptive_updates / fixed_updates: transmissions under each mode,
//   - suppression_gain: 1 - adaptive/fixed (the servo's payoff),
//   - delta_violations: suppressed, non-degraded ticks whose served
//     answer missed the reading by more than delta (must be 0 — the
//     servo may never weaken the paper's precision contract),
//   - equivalent: the adaptive run repeated on the 2-shard engine
//     answers bit-identically to the sequential manager.
//
// Prints one machine-readable JSON object on stdout; scripts/check.sh
// writes it to BENCH_adaptive.json and scripts/bench_compare.py gates
// the gain floor, the precision contract, and the equivalence bit.
//
// Flags: --ticks=2000

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"
#include "streamgen/scenario_generator.h"

namespace dkf::bench {
namespace {

struct Config {
  size_t ticks = 2000;
};

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ticks=", 0) == 0) {
      config.ticks = static_cast<size_t>(
          std::max(1, std::atoi(arg.c_str() + 8)));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

AdaptiveNoiseConfig ServoConfig() {
  AdaptiveNoiseConfig config;
  config.enabled = true;
  config.warmup_corrections = 4;
  config.widen_rate = 0.15;
  config.shrink_rate = 0.05;
  config.holdover_gap = 256;
  return config;
}

StateModel Model(double measurement_variance, double process_variance) {
  ModelNoise noise;
  noise.process_variance = process_variance;
  noise.measurement_variance = measurement_variance;
  auto model_or = MakeLinearModel(1, 1.0, noise);
  if (!model_or.ok()) std::abort();
  return std::move(model_or).value();
}

struct Scenario {
  std::string name;
  TimeSeries observed{1};
  StateModel model;
  double delta = 2.0;
};

std::vector<Scenario> BuildScenarios(size_t ticks) {
  std::vector<Scenario> scenarios;
  {
    RegimeShiftOptions options;
    options.num_points = ticks;
    options.shift_point = ticks / 2;
    auto data_or = GenerateRegimeShift(options);
    if (!data_or.ok()) std::abort();
    scenarios.push_back(Scenario{"regime_shift",
                                 std::move(data_or).value().observed,
                                 Model(0.0025, 0.05), 2.0});
  }
  {
    DegradingSensorOptions options;
    options.num_points = ticks;
    auto data_or = GenerateDegradingSensor(options);
    if (!data_or.ok()) std::abort();
    scenarios.push_back(Scenario{"degrading_sensor",
                                 std::move(data_or).value().observed,
                                 Model(0.0025, 0.05), 2.0});
  }
  {
    QuantizedReadingsOptions options;
    options.num_points = ticks;
    auto data_or = GenerateQuantizedReadings(options);
    if (!data_or.ok()) std::abort();
    scenarios.push_back(Scenario{"quantized_readings",
                                 std::move(data_or).value().observed,
                                 Model(1e-4, 1e-4), 0.4});
  }
  return scenarios;
}

struct RunStats {
  int64_t updates = 0;
  int64_t delta_violations = 0;
  std::vector<double> answers;  // per-tick served value
};

RunStats DriveManager(const Scenario& scenario, bool adaptive) {
  StreamManagerOptions options;
  options.channel.seed = 5;
  if (adaptive) options.protocol.adaptive = ServoConfig();
  StreamManager manager(options);
  if (!manager.RegisterSource(1, scenario.model).ok()) std::abort();
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = scenario.delta;
  if (!manager.SubmitQuery(query).ok()) std::abort();

  RunStats stats;
  stats.answers.reserve(scenario.observed.size());
  int64_t updates_before = 0;
  for (size_t k = 0; k < scenario.observed.size(); ++k) {
    std::map<int, Vector> readings;
    readings[1] = Vector{scenario.observed.value(k)};
    if (!manager.ProcessTick(readings).ok()) std::abort();
    auto answer_or = manager.Answer(1);
    if (!answer_or.ok()) std::abort();
    stats.answers.push_back(answer_or.value()[0]);
    const int64_t updates_now = manager.updates_sent(1).value();
    const bool suppressed = updates_now == updates_before;
    updates_before = updates_now;
    if (suppressed && !manager.answer_degraded(1).value() &&
        std::fabs(answer_or.value()[0] - scenario.observed.value(k)) >
            scenario.delta) {
      ++stats.delta_violations;
    }
  }
  stats.updates = updates_before;
  return stats;
}

/// Repeats the adaptive run on the 2-shard engine and reports whether
/// every per-tick answer is bit-identical to the manager's.
bool EngineEquivalent(const Scenario& scenario, const RunStats& reference) {
  ShardedStreamEngineOptions options;
  options.num_shards = 2;
  options.channel.seed = 5;
  options.protocol.adaptive = ServoConfig();
  ShardedStreamEngine engine(options);
  if (!engine.RegisterSource(1, scenario.model).ok()) std::abort();
  ContinuousQuery query;
  query.id = 1;
  query.source_id = 1;
  query.precision = scenario.delta;
  if (!engine.SubmitQuery(query).ok()) std::abort();

  for (size_t k = 0; k < scenario.observed.size(); ++k) {
    std::map<int, Vector> readings;
    readings[1] = Vector{scenario.observed.value(k)};
    if (!engine.ProcessTick(readings).ok()) std::abort();
    auto answer_or = engine.Answer(1);
    if (!answer_or.ok()) std::abort();
    if (answer_or.value()[0] != reference.answers[k]) return false;
  }
  return engine.updates_sent(1).value() == reference.updates;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);
  const std::vector<Scenario> scenarios = BuildScenarios(config.ticks);

  std::printf("{\n  \"benchmark\": \"adaptive\",\n");
  std::printf("  \"ticks\": %zu,\n  \"results\": [", config.ticks);
  bool first = true;
  for (const Scenario& scenario : scenarios) {
    const RunStats adaptive = DriveManager(scenario, /*adaptive=*/true);
    const RunStats fixed = DriveManager(scenario, /*adaptive=*/false);
    const bool equivalent = EngineEquivalent(scenario, adaptive);
    const double gain =
        fixed.updates > 0
            ? 1.0 - static_cast<double>(adaptive.updates) /
                        static_cast<double>(fixed.updates)
            : 0.0;
    std::printf(
        "%s\n    {\"scenario\": \"%s\", \"delta\": %.2f, "
        "\"adaptive_updates\": %lld, \"fixed_updates\": %lld, "
        "\"suppression_gain\": %.4f, \"delta_violations\": %lld, "
        "\"equivalent\": %s}",
        first ? "" : ",", scenario.name.c_str(), scenario.delta,
        static_cast<long long>(adaptive.updates),
        static_cast<long long>(fixed.updates), gain,
        static_cast<long long>(adaptive.delta_violations +
                               fixed.delta_violations),
        equivalent ? "true" : "false");
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
