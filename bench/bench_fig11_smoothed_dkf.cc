// Reproduces Figure 11: performance of the DKF on smoothed network data
// with F = 1e-7, vs precision width (Example 3, §5.3).
//
// Expected shape (paper): after KF_c smoothing the stream becomes
// predictable; the linear KF model achieves the best reduction in
// communication overhead.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/smoothing.h"
#include "metrics/experiment.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

constexpr double kSmoothingFactor = 1e-7;  // the figure's F
const std::vector<double> kDeltas = {1.0, 2.0,  5.0,  10.0,
                                     15.0, 20.0, 30.0, 50.0};

void PrintFigure() {
  PrintHeader("Figure 11",
              "DKF on smoothed data with F = 1e-7 (Example 3)");
  const TimeSeries raw = StandardHttpTraffic();
  const TimeSeries smoothed =
      SmoothSeriesKalman(raw, kSmoothingFactor,
                         Example3SmoothingMeasurementVariance())
          .value();

  auto caching = CachedValuePredictor::Create(1).value();
  auto constant = KalmanPredictor::Create(Example3ConstantModel()).value();
  auto linear = KalmanPredictor::Create(Example3LinearModel()).value();
  const std::vector<const Predictor*> prototypes = {&caching, &constant,
                                                    &linear};
  const auto rows = RunSweep(smoothed, prototypes, kDeltas).value();
  MaybeExportRows("fig11_smoothed_dkf", rows);
  PrintSweepTable(
      "Figure 11: % updates vs precision width (smoothed stream)",
      "% updates", rows, kDeltas,
      {"caching", "constant-KF", "linear-KF"}, ExtractUpdatePercentage);
}

void BM_SmoothThenSuppress(benchmark::State& state) {
  const TimeSeries raw = StandardHttpTraffic();
  auto linear = KalmanPredictor::Create(Example3LinearModel()).value();
  for (auto _ : state) {
    const TimeSeries smoothed =
        SmoothSeriesKalman(raw, kSmoothingFactor,
                           Example3SmoothingMeasurementVariance())
            .value();
    auto row = RunSuppressionExperiment(smoothed, linear, 10.0);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_SmoothThenSuppress);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
