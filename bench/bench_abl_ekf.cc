// Ablation A10: the nonlinear DKF (§6 future-work item "developing models
// for non-linear systems", enabled by §3.2's EKF discussion). A platform
// moving on circular arcs defeats the linear constant-velocity model —
// its straight-line extrapolation keeps leaving the arc — while the
// coordinated-turn EKF coasts along it.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/dual_link.h"
#include "core/ekf_predictor.h"
#include "models/model_factory.h"
#include "models/nonlinear_models.h"

namespace {

using namespace dkf;

constexpr double kDt = 0.1;

/// Piecewise-coordinated-turn trajectory: the platform alternates turn
/// rates (including straight stretches) at random intervals.
std::vector<Vector> TurningTrajectory(size_t n) {
  Rng rng(777);
  std::vector<Vector> points;
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  double speed = 10.0;
  double turn_rate = 0.3;
  size_t remaining = 0;
  for (size_t i = 0; i < n; ++i) {
    if (remaining == 0) {
      turn_rate = rng.Uniform(-0.5, 0.5);
      speed = rng.Uniform(5.0, 15.0);
      remaining = static_cast<size_t>(rng.UniformInt(300, 900));
    }
    x += speed * std::cos(heading) * kDt;
    y += speed * std::sin(heading) * kDt;
    heading += turn_rate * kDt;
    --remaining;
    points.push_back(Vector{x, y});
  }
  return points;
}

void PrintFigure() {
  std::printf(
      "Ablation A10: linear DKF vs coordinated-turn EKF DKF on turning "
      "motion (6000 ticks at 100 ms).\n\n");
  const std::vector<Vector> trajectory = TurningTrajectory(6000);

  AsciiTable table({"delta", "linear-KF % updates", "turn-EKF % updates",
                    "turn-UKF % updates"});
  for (double delta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    DualLinkOptions options;
    options.delta = delta;

    ModelNoise noise;
    auto linear = KalmanPredictor::Create(
                      MakeLinearModel(2, kDt, noise).value())
                      .value();
    auto linear_link = DualLink::Create(linear, options).value();

    // Honest process noise for both nonlinear filters (the trajectory's
    // turn-rate changes are what Q must absorb; see the UKF model note).
    NonlinearModelNoise turn_noise;
    turn_noise.process_variance = 1e-3;
    auto ekf_options = MakeCoordinatedTurnModel(kDt, turn_noise).value();
    auto ekf = EkfPredictor::Create("turn-ekf", ekf_options, 2).value();
    auto ekf_link = DualLink::Create(ekf, options).value();

    auto ukf_options = MakeCoordinatedTurnUkf(kDt, turn_noise).value();
    auto ukf = UkfPredictor::Create("turn-ukf", ukf_options, 2).value();
    auto ukf_link = DualLink::Create(ukf, options).value();

    for (const Vector& point : trajectory) {
      (void)linear_link.Step(point);
      (void)ekf_link.Step(point);
      (void)ukf_link.Step(point);
    }
    table.AddNumericRow({delta, linear_link.stats().UpdatePercentage(),
                         ekf_link.stats().UpdatePercentage(),
                         ukf_link.stats().UpdatePercentage()});
  }
  table.Print();
  std::printf(
      "\nReading the table: the EKF's and UKF's state carries the turn "
      "rate, so sustained arcs coast for free; the linear model pays an "
      "update every time the arc bends away from its tangent by delta. "
      "The derivative-free UKF matches the EKF here (mild nonlinearity) "
      "while needing no Jacobians.\n");
}

void BM_EkfLinkStep(benchmark::State& state) {
  const std::vector<Vector> trajectory = TurningTrajectory(6000);
  auto ekf_options =
      MakeCoordinatedTurnModel(kDt, NonlinearModelNoise{}).value();
  auto ekf = EkfPredictor::Create("turn-ekf", ekf_options, 2).value();
  DualLinkOptions options;
  options.delta = 2.0;
  for (auto _ : state) {
    auto link = DualLink::Create(ekf, options).value();
    for (const Vector& point : trajectory) {
      benchmark::DoNotOptimize(link.Step(point));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trajectory.size()));
}
BENCHMARK(BM_EkfLinkStep);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
