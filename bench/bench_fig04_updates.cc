// Reproduces Figure 4: number of updates received at the central server
// vs precision width (Example 1, §5.1) for the caching scheme, the
// constant KF model, and the linear KF model.
//
// Expected shape (paper): constant KF == caching; linear KF cuts updates
// by roughly 75% at delta = 3; all models converge as delta grows.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dual_link.h"
#include "metrics/experiment.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

const std::vector<double> kDeltas = {0.5, 1.0, 2.0, 3.0, 4.0,
                                     5.0, 6.0, 8.0, 10.0};

void PrintFigure() {
  PrintHeader("Figure 4",
              "updates at the server vs precision width (Example 1)");

  const TimeSeries trajectory = StandardTrajectory();
  auto caching = CachedValuePredictor::Create(2).value();
  auto constant = KalmanPredictor::Create(Example1ConstantModel()).value();
  auto linear = KalmanPredictor::Create(Example1LinearModel()).value();
  const std::vector<const Predictor*> prototypes = {&caching, &constant,
                                                    &linear};
  const auto rows = RunSweep(trajectory, prototypes, kDeltas).value();
  MaybeExportRows("fig04_updates", rows);
  PrintSweepTable("Figure 4: % updates vs precision width", "% updates",
                  rows, kDeltas, {"caching", "constant-KF", "linear-KF"},
                  ExtractUpdatePercentage);

  // The paper's headline number: reduction of the linear model vs caching
  // at delta = 3.
  for (size_t i = 0; i < kDeltas.size(); ++i) {
    if (kDeltas[i] == 3.0) {
      const double caching_pct = rows[i * 3 + 0].update_percentage;
      const double linear_pct = rows[i * 3 + 2].update_percentage;
      std::printf(
          "\nlinear-KF update reduction vs caching at delta=3: %.1f%% "
          "(paper: ~75%%)\n",
          100.0 * (1.0 - linear_pct / caching_pct));
    }
  }
}

void BM_LinearKfSweepPoint(benchmark::State& state) {
  const TimeSeries trajectory = StandardTrajectory();
  auto linear = KalmanPredictor::Create(Example1LinearModel()).value();
  for (auto _ : state) {
    auto row = RunSuppressionExperiment(trajectory, linear, 3.0);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * trajectory.size());
}
BENCHMARK(BM_LinearKfSweepPoint);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
