// Reproduces Figure 10: adherence of KF_c-smoothed traffic to the raw
// data and to the moving-average baseline, as the smoothing factor F
// varies (§5.3).
//
// Expected shape (paper): with a sufficiently low F the KF-smoothed
// values match the moving-average output; larger F tracks the raw stream
// more closely (fine-grain sensitivity control).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/moving_average.h"
#include "core/smoothing.h"
#include "metrics/metrics.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

constexpr double kMeasurementVariance = 100.0;
constexpr size_t kMaWindow = 64;

void PrintFigure() {
  PrintHeader("Figure 10",
              "KF smoothing vs moving average adherence (Example 3)");
  const TimeSeries raw = StandardHttpTraffic();
  const TimeSeries ma =
      SmoothSeriesMovingAverage(raw, kMaWindow).value();

  const double f_equiv =
      SmoothingFactorForWindow(kMaWindow, kMeasurementVariance);
  std::printf("MA window: %zu samples; window-equivalent F = %.4g\n",
              kMaWindow, f_equiv);

  AsciiTable table(
      {"F", "mean|KF - raw|", "mean|KF - MA(64)|", "output stddev"});
  const std::vector<double> factors = {1e-9, 1e-7, 1e-5, 1e-3,  f_equiv,
                                       1e-1, 1.0,  10.0, 1000.0};
  // Compare after both smoothers have warmed up.
  const size_t warmup = 500;
  const TimeSeries ma_tail = ma.Slice(warmup, ma.size()).value();
  const TimeSeries raw_tail = raw.Slice(warmup, raw.size()).value();
  for (double f : factors) {
    const TimeSeries smoothed =
        SmoothSeriesKalman(raw, f, kMeasurementVariance).value();
    const TimeSeries tail = smoothed.Slice(warmup, smoothed.size()).value();
    table.AddRow({StrFormat("%.3g", f),
                  StrFormat("%.2f", SeriesMeanAbsDiff(tail, raw_tail).value()),
                  StrFormat("%.2f", SeriesMeanAbsDiff(tail, ma_tail).value()),
                  StrFormat("%.2f", tail.Stats().value().stddev)});
  }
  table.Print();
  std::printf(
      "\nReading the table: at the window-equivalent F the KF output "
      "matches MA(64); lower F smooths harder (toward the global mean), "
      "higher F adheres to the raw data.\n");
}

void BM_KalmanSmoothing(benchmark::State& state) {
  const TimeSeries raw = StandardHttpTraffic();
  for (auto _ : state) {
    auto smoothed = SmoothSeriesKalman(raw, 1e-7, kMeasurementVariance);
    benchmark::DoNotOptimize(smoothed);
  }
  state.SetItemsProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_KalmanSmoothing);

void BM_MovingAverageSmoothing(benchmark::State& state) {
  const TimeSeries raw = StandardHttpTraffic();
  for (auto _ : state) {
    auto smoothed = SmoothSeriesMovingAverage(raw, kMaWindow);
    benchmark::DoNotOptimize(smoothed);
  }
  state.SetItemsProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_MovingAverageSmoothing);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
