// Ablation A2: sensitivity of the DKF to misspecified measurement-noise
// covariance R, and the recovery delivered by innovation-based adaptive
// estimation (§6 future-work item: "robustness of the KF when the
// statistics of the noise are not known").

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "filter/kalman_filter.h"
#include "filter/noise_estimation.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;

constexpr double kTrueNoiseStddev = 1.0;

/// Runs a constant-signal tracking task with the filter's R set to
/// `assumed_r`; optionally adapts R online. Returns steady-state mean
/// absolute estimation error.
double RunTracking(double assumed_r, bool adapt) {
  ModelNoise noise;
  noise.process_variance = 1e-4;
  noise.measurement_variance = assumed_r;
  auto filter = MakeConstantModel(1, noise).value().MakeFilter().value();

  AdaptiveNoiseOptions adaptive_options;
  adaptive_options.window = 128;
  adaptive_options.min_samples = 64;
  auto estimator = AdaptiveNoiseEstimator::Create(adaptive_options).value();

  Rng rng(77);
  double err = 0.0;
  int count = 0;
  for (int i = 0; i < 4000; ++i) {
    (void)filter.Predict();
    const Matrix hph =
        filter.InnovationCovariance() - filter.measurement_noise();
    const Vector z{5.0 + rng.Gaussian(0.0, kTrueNoiseStddev)};
    estimator.Observe(z - filter.PredictedMeasurement(), hph);
    (void)filter.Correct(z);
    if (adapt && i % 64 == 63 && estimator.samples() >= 64) {
      (void)estimator.Apply(&filter);
    }
    if (i > 2000) {
      err += std::fabs(filter.state()[0] - 5.0);
      ++count;
    }
  }
  return err / count;
}

void PrintFigure() {
  std::printf(
      "Ablation A2: effect of a misspecified R (true noise variance = "
      "1.0) and of innovation-based adaptation.\n\n");
  AsciiTable table({"assumed R", "fixed-R avg err", "adaptive avg err"});
  for (double r : {1e-4, 1e-2, 1.0, 1e2, 1e4}) {
    table.AddRow({StrFormat("%.0e", r),
                  StrFormat("%.4f", RunTracking(r, false)),
                  StrFormat("%.4f", RunTracking(r, true))});
  }
  table.Print();
  std::printf(
      "\nReading the table: with a fixed, badly wrong R the estimate is "
      "either noise-chasing (R too small) or sluggish (R too large); the "
      "adaptive column stays near the correctly-specified error across "
      "the whole sweep.\n");
}

void BM_AdaptiveEstimation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunTracking(1e-4, true));
  }
}
BENCHMARK(BM_AdaptiveEstimation);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
