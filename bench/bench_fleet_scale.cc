// Million-source scaling of the batched fleet engine.
//
// Sweeps fleet size (default 10k -> 1M) over a suppression-heavy
// workload on a single shard with the batched SoA fast path enabled,
// driving ticks through the ReadingBatch overload, and reports
// ns/tick/source, sources/sec, and peak RSS as machine-readable JSON
// on stdout (one object; see docs/fleet.md for the schema).
//
// Flags: --sources=10000,100000,1000000 --ticks=100 --warmup=32
//        --delta=4.0
//
// The smallest fleet size in the sweep is additionally cross-checked
// against the per-source engine on the identical workload: sampled
// answers, uplink message counts, and resync counters must match
// bit-for-bit, so a scaling win can never silently come from diverging
// behavior. Larger sizes skip the twin run (the per-source baseline at
// 1M would dominate the bench) and omit the "equivalent" field.
//
// Every row reports resident_ratio — the fraction of the fleet living
// on the batched lanes after warmup. bench_compare.py gates it at 0.90
// and gates ns_per_tick_per_source at the absolute dim-1 per-source
// baseline of 75 ns: the bench is meaningless if the fleet quietly
// spills back to the scalar path.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "models/model_factory.h"
#include "runtime/sharded_engine.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> fleet_sizes = {10000, 100000, 1000000};
  int ticks = 100;
  int warmup = 32;
  double delta = 4.0;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sources=", 0) == 0) {
      config.fleet_sizes = ParseIntList(arg.c_str() + 10);
    } else if (arg.rfind("--ticks=", 0) == 0) {
      config.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--warmup=", 0) == 0) {
      config.warmup = std::max(0, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--delta=", 0) == 0) {
      config.delta = std::atof(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

StateModel FleetModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Deterministic per-source signal: a slowly drifting sinusoid whose
/// phase and rate vary by source. The peak-to-peak swing (3.0) stays
/// inside delta = 4.0, so once the filters converge the static model's
/// prediction holds within the precision bound indefinitely and nearly
/// every tick is suppressed — the regime the batched lanes exist for.
double SourceValue(int source_id, int tick) {
  const double phase = 0.37 * source_id;
  const double rate = 0.02 + 0.00001 * (source_id % 97);
  return 1.5 * std::sin(rate * tick + phase) + 0.001 * tick;
}

/// Peak resident set size of the whole process, in bytes. Linux
/// reports ru_maxrss in kilobytes. High-water, not current: rows in a
/// sweep are monotonically non-decreasing, so only the largest fleet's
/// row reflects its own footprint — which is the one the gate reads.
int64_t PeakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

template <typename System>
void SetUpFleet(System& system, int fleet, double delta) {
  const StateModel model = FleetModel();
  for (int id = 0; id < fleet; ++id) {
    if (!system.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id + 1;
    query.source_id = id;
    query.precision = delta;
    if (!system.SubmitQuery(query).ok()) std::abort();
  }
}

/// Rewrites the batch values in place for `tick` and runs it.
void DriveTick(ShardedStreamEngine& engine, ReadingBatch& batch, int tick) {
  for (size_t i = 0; i < batch.ids.size(); ++i) {
    batch.values[i][0] = SourceValue(batch.ids[i], tick);
  }
  if (!engine.ProcessTick(batch).ok()) std::abort();
}

/// Timed chunks per run: the headline cost is the fastest chunk's
/// mean tick, because on a shared machine contention only ever adds
/// time — a quiet chunk is the robust estimate of the engine's own
/// cost (same reasoning as the runtime bench's overhead measurement).
constexpr int kChunks = 8;

struct RunResult {
  double seconds = 0.0;            // summed ProcessTick time, all ticks
  double best_tick_seconds = 0.0;  // fastest chunk's mean tick
  size_t residents = 0;
  std::vector<double> sample_answers;
  int64_t uplink_messages = 0;
  ProtocolFaultStats faults;
};

/// Progress marker on stderr (stdout carries only the JSON): phase
/// boundaries with wall-clock, so a stalled sweep shows where it sits.
void Note(const char* phase, bool batched, int fleet) {
  static const auto t0 = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  std::fprintf(stderr, "[%8.1fs] %s fleet=%d %s\n", elapsed,
               batched ? "batched" : "per-source", fleet, phase);
}

RunResult RunWorkload(bool batched, int fleet, int warmup, int ticks,
                      double delta) {
  ShardedStreamEngineOptions options;
  options.num_shards = 1;
  options.batched_fleet = batched;
  options.channel.per_source_rng = true;
  ShardedStreamEngine engine(options);
  Note("setup", batched, fleet);
  SetUpFleet(engine, fleet, delta);

  ReadingBatch batch;
  batch.ids.reserve(static_cast<size_t>(fleet));
  batch.values.reserve(static_cast<size_t>(fleet));
  for (int id = 0; id < fleet; ++id) {
    batch.ids.push_back(id);
    batch.values.push_back(Vector{0.0});
  }

  // Warmup: converge the filters, arm the steady-state fast paths, and
  // let the fleet absorb its lanes before the timed window opens.
  Note("warmup", batched, fleet);
  for (int t = 0; t < warmup; ++t) DriveTick(engine, batch, t);
  Note("timed", batched, fleet);

  // Timed window. The signal rewrite (one sin() per source) is the
  // workload generator, not the engine, so only ProcessTick is on the
  // clock; rewriting happens between stopwatch laps.
  RunResult result;
  const int chunk_ticks = std::max(1, ticks / kChunks);
  double chunk_seconds = 0.0;
  int in_chunk = 0;
  double best_chunk = std::numeric_limits<double>::infinity();
  for (int t = warmup; t < warmup + ticks; ++t) {
    for (size_t i = 0; i < batch.ids.size(); ++i) {
      batch.values[i][0] = SourceValue(batch.ids[i], t);
    }
    const auto start = std::chrono::steady_clock::now();
    if (!engine.ProcessTick(batch).ok()) std::abort();
    const auto end = std::chrono::steady_clock::now();
    const double tick_seconds =
        std::chrono::duration<double>(end - start).count();
    result.seconds += tick_seconds;
    chunk_seconds += tick_seconds;
    if (++in_chunk == chunk_ticks) {
      best_chunk = std::min(best_chunk, chunk_seconds / in_chunk);
      chunk_seconds = 0.0;
      in_chunk = 0;
    }
  }
  result.best_tick_seconds =
      std::isfinite(best_chunk) ? best_chunk : result.seconds / ticks;
  Note("done", batched, fleet);
  result.residents = engine.fleet_resident_count();
  for (int id = 0; id < fleet; id += std::max(1, fleet / 64)) {
    result.sample_answers.push_back(engine.Answer(id).value()[0]);
  }
  result.uplink_messages = engine.uplink_traffic().messages;
  result.faults = engine.fault_stats();
  return result;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"fleet_scale\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"ticks\": %d,\n  \"warmup_ticks\": %d,\n"
              "  \"delta\": %g,\n  \"shards\": 1,\n  \"results\": [",
              config.ticks, config.warmup, config.delta);

  const int check_fleet =
      *std::min_element(config.fleet_sizes.begin(), config.fleet_sizes.end());
  bool first = true;
  for (int fleet : config.fleet_sizes) {
    const RunResult run = RunWorkload(/*batched=*/true, fleet, config.warmup,
                                      config.ticks, config.delta);
    const double ns_per_tick_per_source =
        run.best_tick_seconds * 1e9 / static_cast<double>(fleet);
    const double sources_per_sec =
        static_cast<double>(fleet) / run.best_tick_seconds;
    const double resident_ratio =
        static_cast<double>(run.residents) / static_cast<double>(fleet);

    std::printf(
        "%s\n    {\"sources\": %d, \"seconds\": %.6f, "
        "\"ns_per_tick_per_source\": %.2f, \"sources_per_sec\": %.0f, "
        "\"resident_ratio\": %.4f, \"peak_rss_bytes\": %lld, "
        "\"uplink_messages\": %lld",
        first ? "" : ",", fleet, run.seconds, ns_per_tick_per_source,
        sources_per_sec, resident_ratio,
        static_cast<long long>(PeakRssBytes()),
        static_cast<long long>(run.uplink_messages));
    if (fleet == check_fleet) {
      // Per-source twin on the identical workload: the batched engine
      // must be an optimization, not a different system.
      const RunResult twin = RunWorkload(/*batched=*/false, fleet,
                                         config.warmup, config.ticks,
                                         config.delta);
      bool equivalent =
          run.uplink_messages == twin.uplink_messages &&
          run.faults.resyncs_sent == twin.faults.resyncs_sent &&
          run.faults.resyncs_applied == twin.faults.resyncs_applied &&
          run.sample_answers == twin.sample_answers;
      const double twin_ns =
          twin.best_tick_seconds * 1e9 / static_cast<double>(fleet);
      std::printf(", \"equivalent\": %s, "
                  "\"per_source_ns_per_tick_per_source\": %.2f",
                  equivalent ? "true" : "false", twin_ns);
    }
    std::printf("}");
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
