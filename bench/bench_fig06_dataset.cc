// Reproduces Figure 6: the Example-2 zonal electric power load dataset
// (§5.2). The original BGS data room [22] is defunct; this is the
// documented synthetic substitute (diurnal sinusoid + weekday modulation
// + AR(1) noise, 5831 hourly points — see DESIGN.md).

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "streamgen/power_load_generator.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

void PrintFigure() {
  PrintHeader("Figure 6",
              "zonal electric power load dataset (synthetic substitute)");
  PowerLoadOptions options;  // paper-scale defaults: 5831 hourly samples
  const TimeSeries series = GeneratePowerLoad(options).value();
  const SeriesStats stats = series.Stats().value();

  // Hour-of-day profile: the sinusoidal trend §4.2 models.
  double peak_value = -1e18;
  double trough_value = 1e18;
  int peak_hour = 0;
  int trough_hour = 0;
  for (int hod = 0; hod < 24; ++hod) {
    double sum = 0.0;
    int count = 0;
    for (size_t k = hod; k < series.size(); k += 24) {
      sum += series.value(k);
      ++count;
    }
    const double mean = sum / count;
    if (mean > peak_value) {
      peak_value = mean;
      peak_hour = hod;
    }
    if (mean < trough_value) {
      trough_value = mean;
      trough_hour = hod;
    }
  }

  AsciiTable table({"property", "value"});
  table.AddRow({"samples (hourly)", StrFormat("%zu", series.size())});
  table.AddRow({"mean load", StrFormat("%.1f", stats.mean)});
  table.AddRow({"stddev", StrFormat("%.1f", stats.stddev)});
  table.AddRow({"range", StrFormat("[%.1f, %.1f]", stats.min, stats.max)});
  table.AddRow({"peak hour-of-day",
                StrFormat("%d (avg %.1f)", peak_hour, peak_value)});
  table.AddRow({"trough hour-of-day",
                StrFormat("%d (avg %.1f)", trough_hour, trough_value)});
  table.AddRow({"diurnal swing",
                StrFormat("%.1f", peak_value - trough_value)});
  table.Print();
}

void BM_GeneratePowerLoad(benchmark::State& state) {
  PowerLoadOptions options;
  options.num_points = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto series = GeneratePowerLoad(options);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GeneratePowerLoad)->Arg(5831);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
