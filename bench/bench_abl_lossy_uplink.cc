// Ablation A12: DKF behaviour on a lossy wireless uplink. The paper's
// testbed was a reliable LAN; real sensor radios drop frames. With
// link-layer delivery feedback the source corrects its mirror only on
// confirmed deliveries, so KF_m never diverges from KF_s — drops cost
// retransmissions (the deviation persists and re-triggers), never
// correctness.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dsms/simulation.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

SourceReport RunWithDropRate(double drop_probability) {
  SimulationSourceConfig config;
  config.id = 1;
  config.data = StandardTrajectory();
  config.model = Example1LinearModel();
  config.delta = 3.0;
  ChannelOptions channel;
  channel.drop_probability = drop_probability;
  auto sim =
      DsmsSimulation::Create({config}, EnergyModelOptions(), channel).value();
  return sim.Run().value()[0];
}

void PrintFigure() {
  std::printf(
      "Ablation A12: Example-1 DKF (delta = 3) across uplink drop "
      "rates.\n\n");
  AsciiTable table({"drop rate", "% transmissions", "avg error",
                    "max error", "energy (Minstr)"});
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    const SourceReport report = RunWithDropRate(drop);
    table.AddRow({StrFormat("%.1f", drop),
                  StrFormat("%.2f", report.update_percentage),
                  StrFormat("%.3f", report.avg_error),
                  StrFormat("%.3f", report.max_error),
                  StrFormat("%.2f", report.energy_spent / 1e6)});
  }
  table.Print();
  std::printf(
      "\nReading the table: drops inflate transmissions (each lost update "
      "is retried while the deviation persists) and leave a short error "
      "transient per loss, but the protocol degrades gracefully — no "
      "divergence, no resync storm — because the mirror tracks exactly "
      "what the server actually received.\n");
}

void BM_LossyRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWithDropRate(0.3));
  }
}
BENCHMARK(BM_LossyRun);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
