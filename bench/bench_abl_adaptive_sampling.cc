// Ablation A5: innovation-driven adaptive sampling (§3.1 advantage 5 and
// §6). On a piecewise-linear stream the adaptive sampler should cut the
// number of sensor readings sharply — a second energy lever on top of
// transmission suppression — while keeping the server answer accurate.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/time_series.h"
#include "core/adaptive_sampling.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;

TimeSeries PiecewiseLinearStream() {
  Rng rng(555);
  TimeSeries series(1);
  double value = 0.0;
  double slope = 1.0;
  for (size_t i = 0; i < 6000; ++i) {
    if (i % 600 == 0) slope = rng.Uniform(-2.0, 2.0);
    value += slope + rng.Gaussian(0.0, 0.05);
    (void)series.Append(static_cast<double>(i), value);
  }
  return series;
}

struct RunResult {
  int64_t samples = 0;
  int64_t updates = 0;
  double avg_error = 0.0;
};

RunResult RunWithMaxStride(const TimeSeries& stream, size_t max_stride) {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  auto predictor =
      KalmanPredictor::Create(MakeLinearModel(1, 1.0, noise).value())
          .value();
  AdaptiveSamplingOptions options;
  options.link.delta = 2.0;
  options.max_stride = max_stride;
  auto link = AdaptiveSamplingLink::Create(predictor, options).value();

  double err = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    auto step = link.Step(Vector{stream.value(i)}).value();
    err += std::fabs(step.server_value[0] - stream.value(i));
  }
  RunResult result;
  result.samples = link.stats().samples_taken;
  result.updates = link.stats().updates_sent;
  result.avg_error = err / static_cast<double>(stream.size());
  return result;
}

void PrintFigure() {
  std::printf(
      "Ablation A5: adaptive sampling back-off (delta = 2.0, piecewise-"
      "linear stream, 6000 ticks).\n\n");
  const TimeSeries stream = PiecewiseLinearStream();
  AsciiTable table(
      {"max stride", "sensor readings", "updates sent", "avg error"});
  for (size_t max_stride : {1, 4, 16, 64}) {
    const RunResult result = RunWithMaxStride(stream, max_stride);
    table.AddRow(
        {StrFormat("%zu", max_stride),
         StrFormat("%lld", static_cast<long long>(result.samples)),
         StrFormat("%lld", static_cast<long long>(result.updates)),
         StrFormat("%.3f", result.avg_error)});
  }
  table.Print();
  std::printf(
      "\nReading the table: raising the back-off cap slashes sensor "
      "readings (sensing energy) with only a gradual error increase; "
      "updates stay low because the innovation snaps the rate back at "
      "maneuvers.\n");
}

void BM_AdaptiveSampling(benchmark::State& state) {
  const TimeSeries stream = PiecewiseLinearStream();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWithMaxStride(stream, 32));
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_AdaptiveSampling);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
