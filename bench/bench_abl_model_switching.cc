// Ablation A4: online model switching (§6 future-work item "updating the
// state transition matrices online as the streaming data trend changes").
// A composite stream alternates between a steep linear ramp and a flat
// noisy plateau; static single-model links are compared against the
// switching link with a {constant, linear} bank.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/model_switching.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;

TimeSeries CompositeStream() {
  Rng rng(2024);
  TimeSeries series(1);
  double value = 0.0;
  for (int block = 0; block < 6; ++block) {
    const bool ramp = block % 2 == 0;
    for (int i = 0; i < 500; ++i) {
      if (ramp) {
        value += 3.0;
      } else {
        value += rng.Gaussian(0.0, 0.3);  // flat noisy plateau
      }
      (void)series.Append(static_cast<double>(block * 500 + i), value);
    }
  }
  return series;
}

constexpr double kDelta = 2.0;

ModelNoise Noise() {
  ModelNoise noise;
  noise.process_variance = 1.0;
  noise.measurement_variance = 1.0;
  return noise;
}

void PrintFigure() {
  std::printf(
      "Ablation A4: static models vs online model switching on a "
      "composite ramp/plateau stream (delta = %.1f).\n\n",
      kDelta);
  const TimeSeries stream = CompositeStream();

  AsciiTable table({"strategy", "updates", "% updates", "switches"});

  for (const char* which : {"constant", "linear"}) {
    StateModel model = std::string(which) == "constant"
                           ? MakeConstantModel(1, Noise()).value()
                           : MakeLinearModel(1, 1.0, Noise()).value();
    auto predictor = KalmanPredictor::Create(model).value();
    const auto row =
        RunSuppressionExperiment(stream, predictor, kDelta).value();
    table.AddRow({StrFormat("static %s", which),
                  StrFormat("%lld", static_cast<long long>(row.updates)),
                  StrFormat("%.1f", row.update_percentage), "-"});
  }

  ModelSwitchingOptions options;
  options.link.delta = kDelta;
  options.check_interval = 50;
  options.warmup = 50;
  auto link = ModelSwitchingLink::Create(
                  {MakeConstantModel(1, Noise()).value(),
                   MakeLinearModel(1, 1.0, Noise()).value()},
                  0, options)
                  .value();
  for (size_t i = 0; i < stream.size(); ++i) {
    (void)link.Step(Vector{stream.value(i)});
  }
  table.AddRow(
      {"switching {constant, linear}",
       StrFormat("%lld", static_cast<long long>(link.stats().updates_sent)),
       StrFormat("%.1f", 100.0 *
                             static_cast<double>(link.stats().updates_sent) /
                             static_cast<double>(link.stats().ticks)),
       StrFormat("%lld", static_cast<long long>(link.stats().switches))});
  table.Print();
  std::printf(
      "\nReading the table: the switching link approaches the better "
      "static model on each regime and beats both single static choices "
      "overall; each regime change costs one switch message.\n");
}

void BM_SwitchingLink(benchmark::State& state) {
  const TimeSeries stream = CompositeStream();
  for (auto _ : state) {
    ModelSwitchingOptions options;
    options.link.delta = kDelta;
    auto link = ModelSwitchingLink::Create(
                    {MakeConstantModel(1, Noise()).value(),
                     MakeLinearModel(1, 1.0, Noise()).value()},
                    0, options)
                    .value();
    for (size_t i = 0; i < stream.size(); ++i) {
      (void)link.Step(Vector{stream.value(i)});
    }
    benchmark::DoNotOptimize(link.stats());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_SwitchingLink);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
