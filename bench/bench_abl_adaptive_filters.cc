// Ablation A11: the STREAM-project baseline with its adaptivity restored.
// The paper's evaluation disables [23]'s dynamic bound growing/shrinking;
// this bench quantifies (a) what that adaptivity is worth on
// heterogeneous sources, and (b) how much further prediction-based
// suppression goes at the same error guarantee.
//
// Two scalar sources share a bound-width budget: a drifting power-load
// stream and a quasi-static reference channel. Compared strategies:
//   static    — even split of the budget, never reallocated
//   adaptive  — Olston-style periodic shrink + burden-driven regrant
//   DKF       — per-source dual Kalman links with delta = w_i / 2 (the
//               deviation guarantee equivalent to a width-w bound)

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/dual_link.h"
#include "metrics/experiment.h"
#include "models/model_factory.h"
#include "query/adaptive_filters.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

struct Streams {
  std::vector<double> drifting;  // zonal power load
  std::vector<double> quiet;     // near-constant reference
};

Streams MakeStreams() {
  Streams streams;
  const TimeSeries load = StandardPowerLoad();
  Rng rng(99);
  for (size_t i = 0; i < load.size(); ++i) {
    streams.drifting.push_back(load.value(i));
    streams.quiet.push_back(42.0 + rng.Gaussian(0.0, 0.8));
  }
  return streams;
}

int64_t RunBank(const Streams& streams, bool adaptive, double total_width) {
  AdaptiveFiltersOptions options;
  options.total_width = total_width;
  options.period = adaptive ? 50 : (1 << 30);
  auto bank = AdaptiveFilterBank::Create(2, options).value();
  for (size_t i = 0; i < streams.drifting.size(); ++i) {
    (void)bank.Step({streams.drifting[i], streams.quiet[i]});
  }
  return bank.stats(0).updates_sent + bank.stats(1).updates_sent;
}

/// DKF with per-source widths {w0, w1}; delta_i = w_i / 2 gives the
/// deviation guarantee equivalent to a width-w_i bound.
int64_t RunDkf(const Streams& streams, double w0, double w1) {
  DualLinkOptions load_options;
  load_options.delta = w0 / 2.0;
  auto load_link =
      DualLink::Create(
          KalmanPredictor::Create(Example2LinearModel()).value(),
          load_options)
          .value();
  ModelNoise quiet_noise;
  quiet_noise.process_variance = 0.1;
  quiet_noise.measurement_variance = 1.0;
  DualLinkOptions quiet_options;
  quiet_options.delta = w1 / 2.0;
  auto quiet_link =
      DualLink::Create(KalmanPredictor::Create(
                           MakeConstantModel(1, quiet_noise).value())
                           .value(),
                       quiet_options)
          .value();
  for (size_t i = 0; i < streams.drifting.size(); ++i) {
    (void)load_link.Step(Vector{streams.drifting[i]});
    (void)quiet_link.Step(Vector{streams.quiet[i]});
  }
  return load_link.stats().updates_sent + quiet_link.stats().updates_sent;
}

/// Final widths the adaptive bank converges to (used to give the DKF the
/// same cross-source split).
std::pair<double, double> AdaptiveWidths(const Streams& streams,
                                         double total_width) {
  AdaptiveFiltersOptions options;
  options.total_width = total_width;
  options.period = 50;
  auto bank = AdaptiveFilterBank::Create(2, options).value();
  for (size_t i = 0; i < streams.drifting.size(); ++i) {
    (void)bank.Step({streams.drifting[i], streams.quiet[i]});
  }
  return {bank.width(0), bank.width(1)};
}

void PrintFigure() {
  std::printf(
      "Ablation A11: static vs adaptive bound allocation vs DKF, two "
      "sources (drifting power load + quiet reference) sharing a width "
      "budget.\n\n");
  const Streams streams = MakeStreams();
  AsciiTable table({"width budget", "static bounds", "adaptive bounds",
                    "DKF even split", "DKF adaptive split"});
  for (double budget : {100.0, 200.0, 400.0, 800.0}) {
    const auto [w0, w1] = AdaptiveWidths(streams, budget);
    table.AddNumericRow(
        {budget, static_cast<double>(RunBank(streams, false, budget)),
         static_cast<double>(RunBank(streams, true, budget)),
         static_cast<double>(RunDkf(streams, budget / 2.0, budget / 2.0)),
         static_cast<double>(RunDkf(streams, w0, w1))});
  }
  table.Print();
  std::printf(
      "\nReading the table: the two mechanisms are complementary. "
      "Restoring [23]'s adaptivity lets the quiet source donate width to "
      "the drifting one; prediction-based suppression removes the "
      "trend-following updates; combining them (DKF links under the "
      "adaptive width split) is the strongest configuration across the "
      "tight-to-moderate budgets where saving matters most. (At very "
      "generous budgets the donated bound alone is already wider than "
      "the stream's whole swing, so allocation dominates.)\n");
}

void BM_AdaptiveBank(benchmark::State& state) {
  const Streams streams = MakeStreams();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBank(streams, true, 200.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(streams.drifting.size()));
}
BENCHMARK(BM_AdaptiveBank);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
