// Serving-layer fan-out throughput: how many standing queries the
// subscription engine sustains on a suppression-heavy fleet, and what
// one tick's delivery costs as the registration count grows 1k -> 1M.
//
// The fleet is deliberately quiet (wide precision bands, so most ticks
// suppress and answers move only on transmitted updates): the point of
// the query index is that per-tick work tracks the *affected*
// subscription count, not the registered count, so the sweep's
// p99 batch latency should stay near-flat while registrations grow
// three orders of magnitude. Every row reports the engine's touched /
// affected counters so scripts/bench_compare.py can gate exactly that
// proportionality, plus notifications/sec as the delivery-throughput
// floor.
//
// Flags: --subs=1000,10000,100000,1000000 --sources=256 --shards=4
//        --ticks=120
// Output: one JSON object on stdout (kind "serve_fanout"); the
// committed reference lives at BENCH_serve_fanout.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> subscription_counts = {1000, 10000, 100000, 1000000};
  int sources = 256;
  int shards = 4;
  int ticks = 120;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--subs=", 0) == 0) {
      config.subscription_counts = ParseIntList(arg.c_str() + 7);
    } else if (arg.rfind("--sources=", 0) == 0) {
      config.sources = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = std::max(1, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--ticks=", 0) == 0) {
      config.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

StateModel FleetModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Deterministic per-source signal: a drifting sinusoid, same family as
/// bench_runtime_throughput, spanning roughly [-26, 26].
double SourceValue(int source_id, int tick) {
  const double phase = 0.37 * source_id;
  const double rate = 0.02 + 0.00001 * (source_id % 97);
  return 25.0 * std::sin(rate * tick + phase) + 0.01 * tick;
}

/// Wide precision: the suppression-heavy regime. Most ticks transmit
/// nothing, so a source's served answer is frozen except on the
/// occasional update — the workload where indexed fan-out must beat
/// scanning every registration.
constexpr double kDelta = 4.0;

std::map<int, Vector> SetUpFleet(ShardedStreamEngine& engine, int sources) {
  std::map<int, Vector> readings;
  const StateModel model = FleetModel();
  for (int id = 0; id < sources; ++id) {
    if (!engine.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id + 1;
    query.source_id = id;
    query.precision = kDelta;
    if (!engine.SubmitQuery(query).ok()) std::abort();
    readings[id] = Vector{SourceValue(id, 0)};
  }
  return readings;
}

/// Registers `count` standing queries: overwhelmingly band alerts
/// (uniform centers over the signal range, one in 64 with an
/// uncertainty ceiling), a sprinkle of range predicates, a handful of
/// point subscriptions, and one aggregate watcher — the shape of an
/// alerting fleet, where almost every subscriber is quiet almost
/// always.
void InstallSubscriptions(ShardedStreamEngine& engine, int count,
                          int sources) {
  Rng rng(4242);
  AggregateQuery aggregate;
  aggregate.id = 1;
  for (int id = 0; id < std::min(8, sources); ++id) {
    aggregate.source_ids.push_back(id);
  }
  aggregate.precision = 8.0;
  if (!engine.SubmitAggregateQuery(aggregate).ok()) std::abort();

  for (int64_t id = 0; id < count; ++id) {
    Subscription sub;
    sub.id = id;
    const int roll = static_cast<int>(id % 256);
    if (roll == 0) {
      sub.kind = SubscriptionKind::kPoint;
      sub.source_id = static_cast<int>(id / 256) % sources;
    } else if (roll == 1) {
      sub.kind = SubscriptionKind::kAggregate;
      sub.aggregate_id = 1;
    } else if (roll < 16) {
      sub.kind = SubscriptionKind::kRangePredicate;
      sub.source_id = static_cast<int>(rng.Uniform() * sources) % sources;
      const double center = -26.0 + 52.0 * rng.Uniform();
      const double half = 0.1 + 0.9 * rng.Uniform();
      sub.lo = center - half;
      sub.hi = center + half;
    } else {
      sub.kind = SubscriptionKind::kBandAlert;
      sub.source_id = static_cast<int>(rng.Uniform() * sources) % sources;
      const double center = -26.0 + 52.0 * rng.Uniform();
      const double half = 0.1 + 0.9 * rng.Uniform();
      sub.lo = center - half;
      sub.hi = center + half;
      if (id % 64 == 0) sub.uncertainty_ceiling = 0.5 + rng.Uniform();
    }
    if (!engine.Subscribe(sub).ok()) std::abort();
  }
}

struct RunRow {
  int subscriptions = 0;
  double seconds = 0.0;
  double p99_batch_latency_us = 0.0;
  int64_t notifications = 0;
  ServeStats stats;
};

RunRow RunSweep(const Config& config, int subscriptions) {
  ShardedStreamEngineOptions options;
  options.num_shards = config.shards;
  ShardedStreamEngine engine(options);
  std::map<int, Vector> readings = SetUpFleet(engine, config.sources);
  InstallSubscriptions(engine, subscriptions, config.sources);
  // The attach-time initial notifications are subscriber-bound setup
  // traffic, not steady-state delivery: drain them before timing.
  (void)engine.DrainNotifications();

  RunRow row;
  row.subscriptions = subscriptions;
  // Warmup: converge the filters so the timed window is steady-state
  // suppression, the regime the fan-out claim is about.
  for (int t = 0; t < 8; ++t) {
    for (auto& [id, value] : readings) value[0] = SourceValue(id, t);
    if (!engine.ProcessTick(readings).ok()) std::abort();
  }
  (void)engine.DrainNotifications();
  const ServeStats before = engine.serve_stats();

  // The timed loop models a subscriber draining every tick: per-tick
  // latency covers the protocol tick, the serve fan-out, and the batch
  // handoff — the full path from reading to notification-in-hand.
  std::vector<double> tick_seconds;
  tick_seconds.reserve(static_cast<size_t>(config.ticks));
  const auto sweep_start = std::chrono::steady_clock::now();
  for (int t = 8; t < 8 + config.ticks; ++t) {
    const auto start = std::chrono::steady_clock::now();
    for (auto& [id, value] : readings) value[0] = SourceValue(id, t);
    if (!engine.ProcessTick(readings).ok()) std::abort();
    for (const NotificationBatch& batch : engine.DrainNotifications()) {
      row.notifications += static_cast<int64_t>(batch.notifications.size());
    }
    const auto end = std::chrono::steady_clock::now();
    tick_seconds.push_back(
        std::chrono::duration<double>(end - start).count());
  }
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - sweep_start)
                    .count();

  std::sort(tick_seconds.begin(), tick_seconds.end());
  const size_t p99_index =
      (tick_seconds.size() * 99 + 99) / 100 - 1;  // ceil(0.99 n) - 1
  row.p99_batch_latency_us =
      tick_seconds[std::min(p99_index, tick_seconds.size() - 1)] * 1e6;

  // Counters for the timed window only (attach + warmup subtracted).
  const ServeStats after = engine.serve_stats();
  row.stats.subscriptions = after.subscriptions;
  row.stats.notifications = after.notifications - before.notifications;
  row.stats.dropped = after.dropped - before.dropped;
  row.stats.touched = after.touched - before.touched;
  row.stats.affected = after.affected - before.affected;
  return row;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"serve_fanout\",\n");
  std::printf("  \"sources\": %d,\n  \"shards\": %d,\n  \"ticks\": %d,\n"
              "  \"delta\": %g,\n  \"results\": [",
              config.sources, config.shards, config.ticks, kDelta);
  bool first = true;
  for (int subscriptions : config.subscription_counts) {
    const RunRow row = RunSweep(config, subscriptions);
    const double notifications_per_sec =
        row.seconds > 0.0 ? static_cast<double>(row.notifications) /
                                row.seconds
                          : 0.0;
    std::printf(
        "%s\n    {\"subscriptions\": %d, \"sources\": %d, \"shards\": %d, "
        "\"ticks\": %d, \"seconds\": %.6f, \"notifications\": %lld, "
        "\"notifications_per_sec\": %.1f, \"p99_batch_latency_us\": %.1f, "
        "\"touched\": %lld, \"affected\": %lld, \"dropped\": %lld}",
        first ? "" : ",", row.subscriptions, config.sources, config.shards,
        config.ticks, row.seconds, static_cast<long long>(row.notifications),
        notifications_per_sec, row.p99_batch_latency_us,
        static_cast<long long>(row.stats.touched),
        static_cast<long long>(row.stats.affected),
        static_cast<long long>(row.stats.dropped));
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
