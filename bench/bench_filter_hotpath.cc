// Per-tick cost of the Kalman filter hot loop (Predict + Correct).
//
// Measures, for each standard model at state dims 1-6:
//   - ns/tick of the current allocation-free kernel + steady-state
//     fast-path implementation (after the fast path has armed),
//   - ns/tick of a reference implementation replicating the pre-kernel
//     operator-chain arithmetic (temporaries per product, explicit
//     Inverse(S)) — the "before" of the optimization,
//   - heap allocations per steady-state Predict+Correct cycle, counted by
//     global operator new/delete hooks (must be 0 for dims <= 6),
//   - heap allocations per cycle with the adaptive noise servo wired
//     (OnCorrection + Correct + InstallInto; must also be 0 — the servo
//     is scalar-state and may not put allocations back into the hot path),
//   - ns/tick with a trace sink wired (the filter's only emission sites
//     are fast-path arm/disarm transitions, so a wired sink must cost
//     nothing in steady state; bench_compare.py gates the overhead at 5%).
//
// Prints one machine-readable JSON object on stdout (see docs/perf.md for
// the schema); scripts/check.sh writes it to BENCH_filter_hotpath.json and
// scripts/bench_compare.py gates regressions across PRs.
//
// Flags: --ticks=100000 --warmup=2000

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "filter/adaptive_noise.h"
#include "filter/kalman_filter.h"
#include "linalg/decompose.h"
#include "linalg/matrix.h"
#include "models/model_factory.h"
#include "obs/trace_sink.h"

// ---------------------------------------------------------------------------
// Global allocation counting. Every heap allocation in the process passes
// through these hooks, so a zero delta across the measured loop is a hard
// proof the hot path never touches the allocator.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dkf::bench {
namespace {

struct Config {
  int ticks = 100000;
  int warmup = 2000;
};

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ticks=", 0) == 0) {
      config.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--warmup=", 0) == 0) {
      config.warmup = std::max(0, std::atoi(arg.c_str() + 9));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

/// The pre-optimization filter arithmetic, kept verbatim as the benchmark
/// baseline: one temporary per operator, transposes materialized, and the
/// gain via an explicit S^{-1}. Numerically equivalent to KalmanFilter but
/// allocation- and copy-heavy.
class ReferenceFilter {
 public:
  explicit ReferenceFilter(const KalmanFilterOptions& options)
      : options_(options),
        x_(options.initial_state),
        p_(options.initial_covariance) {}

  void Predict() {
    const Matrix& phi = options_.transition;
    x_ = phi * x_;
    p_ = phi * p_ * phi.Transpose() + options_.process_noise;
    p_.Symmetrize();
  }

  bool Correct(const Vector& z) {
    const Matrix& h = options_.measurement;
    const Matrix h_t = h.Transpose();
    const Matrix s = h * p_ * h_t + options_.measurement_noise;
    auto s_inv_or = Inverse(s);
    if (!s_inv_or.ok()) return false;
    const Matrix gain = p_ * h_t * s_inv_or.value();
    const Vector innovation = z - h * x_;
    x_ = x_ + gain * innovation;
    const Matrix identity = Matrix::Identity(x_.size());
    const Matrix i_kh = identity - gain * h;
    p_ = i_kh * p_ * i_kh.Transpose() +
         gain * options_.measurement_noise * gain.Transpose();
    p_.Symmetrize();
    return true;
  }

  const Vector& state() const { return x_; }

 private:
  KalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
};

double MeasurementValue(int tick, size_t axis) {
  return 20.0 * std::sin(0.1 * tick + static_cast<double>(axis));
}

/// CPU time consumed by this thread, in nanoseconds. Unlike the wall
/// clock, it does not advance while the thread is descheduled, so the
/// measured loops stay comparable on a contended shared machine.
double ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

struct CaseResult {
  std::string model;
  size_t state_dim = 0;
  size_t measurement_dim = 0;
  double ns_per_tick = 0.0;
  double ref_ns_per_tick = 0.0;
  double traced_ns_per_tick = 0.0;
  double allocs_per_tick = 0.0;
  double adaptive_allocs_per_tick = 0.0;
  bool armed = false;
  double checksum = 0.0;  // defeats dead-code elimination; also a canary
};

CaseResult RunCase(const std::string& name, const StateModel& model,
                   const Config& config) {
  const KalmanFilterOptions& options = model.options;
  const size_t measurement_dim = model.measurement_dim;
  CaseResult result;
  result.model = name;
  result.state_dim = options.initial_state.size();
  result.measurement_dim = measurement_dim;

  auto filter_or = KalmanFilter::Create(options);
  if (!filter_or.ok()) std::abort();
  KalmanFilter filter = std::move(filter_or).value();
  Vector z(measurement_dim);

  // Warmup: converge the covariance and arm the steady-state fast path.
  for (int t = 0; t < config.warmup; ++t) {
    for (size_t i = 0; i < measurement_dim; ++i) z[i] = MeasurementValue(t, i);
    if (!filter.Predict().ok() || !filter.Correct(z).ok()) std::abort();
  }
  result.armed = filter.steady_state_armed();

  // Allocation count across a steady-state window.
  constexpr int kAllocWindow = 1000;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int t = 0; t < kAllocWindow; ++t) {
    for (size_t i = 0; i < measurement_dim; ++i) z[i] = MeasurementValue(t, i);
    if (!filter.Predict().ok() || !filter.Correct(z).ok()) std::abort();
  }
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  result.allocs_per_tick =
      static_cast<double>(allocs_after - allocs_before) / kAllocWindow;

  // Allocation count with the adaptive noise servo in the loop. The
  // servo's state is scalars plus two measurement-width vectors sized at
  // construction, so a settled OnCorrection + InstallInto cycle must be
  // as allocation-free as the bare filter.
  {
    AdaptiveNoiseConfig adaptive_config;
    adaptive_config.enabled = true;
    adaptive_config.warmup_corrections = 4;
    auto adapter_or = NoiseAdapter::Create(adaptive_config, model);
    if (!adapter_or.ok()) std::abort();
    NoiseAdapter adapter = std::move(adapter_or).value();
    auto adaptive_filter_or = KalmanFilter::Create(options);
    if (!adaptive_filter_or.ok()) std::abort();
    KalmanFilter adaptive_filter = std::move(adaptive_filter_or).value();
    auto adaptive_tick = [&](int t) {
      for (size_t i = 0; i < measurement_dim; ++i) {
        z[i] = MeasurementValue(t, i);
      }
      if (!adaptive_filter.Predict().ok()) std::abort();
      if (!adapter.OnCorrection(adaptive_filter, z, t).ok()) std::abort();
      if (!adaptive_filter.Correct(z).ok()) std::abort();
      if (!adapter.InstallInto(&adaptive_filter).ok()) std::abort();
    };
    for (int t = 0; t < config.warmup; ++t) adaptive_tick(t);
    const std::uint64_t adaptive_before =
        g_alloc_count.load(std::memory_order_relaxed);
    for (int t = 0; t < kAllocWindow; ++t) {
      adaptive_tick(config.warmup + t);
    }
    const std::uint64_t adaptive_after =
        g_alloc_count.load(std::memory_order_relaxed);
    result.adaptive_allocs_per_tick =
        static_cast<double>(adaptive_after - adaptive_before) / kAllocWindow;
  }

  // Timed loops, current implementation, untraced and with a trace sink
  // wired. The steady-state hot loop has no emission sites (only
  // arm/disarm transitions emit), so the traced loop measures the pure
  // cost of carrying a wired sink pointer through the tick. The two
  // variants run as alternating chunks, and each side reports its
  // fastest chunk: contention spikes and frequency scaling only ever add
  // time, so the per-variant minimum is the robust estimate of the true
  // per-tick cost on a busy machine (a fixed ordering or a plain mean
  // skews the overhead ratio well past its real value).
  ObsOptions obs;
  obs.ring_capacity = 1 << 8;
  TraceSink sink(obs);
  double checksum = 0.0;
  double plain_ns = std::numeric_limits<double>::infinity();
  double traced_ns = std::numeric_limits<double>::infinity();
  // 32 minimum-samples per variant: on a contended box single chunks
  // jitter by several percent, and the overhead ratio divides two of
  // them — more samples pull both minima onto the true floor. The
  // variants run in ABBA order (plain, traced, traced, plain, ...)
  // rather than strict alternation: periodic contention on a shared
  // machine can phase-lock with a period-2 schedule and starve one
  // variant of every quiet slot.
  constexpr int kChunks = 32;
  const int chunk_ticks = std::max(1, config.ticks / kChunks);
  for (int chunk = 0; chunk < 2 * kChunks; ++chunk) {
    const bool traced = chunk % 4 == 1 || chunk % 4 == 2;
    filter.set_trace(traced ? &sink : nullptr, /*source_id=*/1,
                     TraceActor::kSourceFilter);
    const double start = ThreadCpuNs();
    for (int t = 0; t < chunk_ticks; ++t) {
      for (size_t i = 0; i < measurement_dim; ++i) {
        z[i] = MeasurementValue(t, i);
      }
      if (!filter.Predict().ok() || !filter.Correct(z).ok()) std::abort();
      checksum += filter.state()[0];
    }
    const double ns = ThreadCpuNs() - start;
    double& best = traced ? traced_ns : plain_ns;
    best = std::min(best, ns);
  }
  filter.set_trace(nullptr, 1, TraceActor::kSourceFilter);
  result.ns_per_tick = plain_ns / chunk_ticks;
  result.traced_ns_per_tick = traced_ns / chunk_ticks;

  // Timed loop, reference (pre-optimization) implementation. It is several
  // times slower, so run a quarter of the ticks.
  ReferenceFilter reference(options);
  const int ref_ticks = std::max(1, config.ticks / 4);
  for (int t = 0; t < std::min(config.warmup, 200); ++t) {
    for (size_t i = 0; i < measurement_dim; ++i) z[i] = MeasurementValue(t, i);
    reference.Predict();
    if (!reference.Correct(z)) std::abort();
  }
  const auto ref_start = std::chrono::steady_clock::now();
  for (int t = 0; t < ref_ticks; ++t) {
    for (size_t i = 0; i < measurement_dim; ++i) z[i] = MeasurementValue(t, i);
    reference.Predict();
    if (!reference.Correct(z)) std::abort();
    checksum += reference.state()[0];
  }
  const auto ref_end = std::chrono::steady_clock::now();
  result.ref_ns_per_tick =
      std::chrono::duration<double, std::nano>(ref_end - ref_start).count() /
      ref_ticks;
  result.checksum = checksum;
  return result;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  // Standard models covering every inline state dimension 1-6: constant
  // models (n = m = d) and constant-velocity linear models (n = 2a,
  // m = a).
  ModelNoise noise;
  std::vector<CaseResult> results;
  for (size_t d = 1; d <= 6; ++d) {
    auto model = MakeConstantModel(d, noise).value();
    results.push_back(RunCase("constant", model, config));
  }
  for (size_t axes = 1; axes <= 3; ++axes) {
    auto model = MakeLinearModel(axes, 1.0, noise).value();
    results.push_back(RunCase("linear", model, config));
  }

  std::printf("{\n  \"benchmark\": \"filter_hotpath\",\n");
  std::printf("  \"ticks\": %d,\n  \"warmup\": %d,\n  \"results\": [",
              config.ticks, config.warmup);
  bool first = true;
  for (const CaseResult& r : results) {
    std::printf(
        "%s\n    {\"model\": \"%s\", \"state_dim\": %zu, "
        "\"measurement_dim\": %zu, \"ns_per_tick\": %.1f, "
        "\"ref_ns_per_tick\": %.1f, \"speedup_vs_reference\": %.2f, "
        "\"traced_ns_per_tick\": %.1f, \"obs_overhead_pct\": %.2f, "
        "\"allocs_per_tick\": %.4f, \"adaptive_allocs_per_tick\": %.4f, "
        "\"steady_state_armed\": %s}",
        first ? "" : ",", r.model.c_str(), r.state_dim, r.measurement_dim,
        r.ns_per_tick, r.ref_ns_per_tick, r.ref_ns_per_tick / r.ns_per_tick,
        r.traced_ns_per_tick,
        (r.traced_ns_per_tick / r.ns_per_tick - 1.0) * 100.0,
        r.allocs_per_tick, r.adaptive_allocs_per_tick,
        r.armed ? "true" : "false");
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
