// Ablation A8: multiple queries and bandwidth-constrained precision
// allocation (§6 future-work item "tuning system parameters for multiple
// queries"). Three sources with different required precisions share an
// update budget; the allocator inflates precisions proportionally when
// the budget is tight, and the realized rates are validated by re-running
// the simulation at the allocated precisions.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dsms/simulation.h"
#include "query/precision_allocation.h"
#include "query/registry.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

struct SourceSetup {
  int id;
  TimeSeries data;
  StateModel model;
  double required_precision;
  double reference_precision;
};

std::vector<SourceSetup> Sources() {
  std::vector<SourceSetup> sources;
  sources.push_back({1, StandardPowerLoad(), Example2LinearModel(), 40.0,
                     100.0});
  sources.push_back({2, StandardPowerLoad(), Example2SinusoidalModel(), 60.0,
                     100.0});
  sources.push_back({3, StandardHttpTraffic(), Example3LinearModel(), 40.0,
                     100.0});
  return sources;
}

double MeasuredRate(const SourceSetup& source, double delta) {
  SimulationSourceConfig config;
  config.id = source.id;
  config.data = source.data;
  config.model = source.model;
  config.delta = delta;
  auto sim = DsmsSimulation::Create({config}).value();
  return sim.Run().value()[0].update_percentage / 100.0;
}

void PrintFigure() {
  std::printf(
      "Ablation A8: precision allocation for 3 sources under a shared "
      "update budget.\n\n");
  auto sources = Sources();

  // Calibrate each source at its reference precision.
  std::vector<SourceLoadEstimate> estimates;
  for (const auto& source : sources) {
    SourceLoadEstimate estimate;
    estimate.source_id = source.id;
    estimate.required_precision = source.required_precision;
    estimate.reference_precision = source.reference_precision;
    estimate.reference_rate =
        MeasuredRate(source, source.reference_precision);
    estimates.push_back(estimate);
  }

  AsciiTable table({"budget (upd/tick)", "inflation",
                    "allocated precisions", "predicted total",
                    "measured total"});
  for (double budget : {2.0, 0.6, 0.3, 0.15}) {
    const AllocationPlan plan = AllocatePrecision(estimates, budget).value();
    std::string precisions;
    double measured_total = 0.0;
    for (size_t i = 0; i < plan.allocations.size(); ++i) {
      if (i > 0) precisions += " / ";
      precisions +=
          StrFormat("%.0f", plan.allocations[i].allocated_precision);
      measured_total +=
          MeasuredRate(sources[i], plan.allocations[i].allocated_precision);
    }
    table.AddRow({StrFormat("%.2f", budget),
                  StrFormat("%.2f", plan.inflation), precisions,
                  StrFormat("%.3f", plan.predicted_total_rate),
                  StrFormat("%.3f", measured_total)});
  }
  table.Print();
  std::printf(
      "\nReading the table: a generous budget leaves the query-required "
      "precisions untouched (inflation 1.0); tight budgets degrade all "
      "queries proportionally, and the realized total rate tracks the "
      "allocator's 1/delta prediction.\n");
}

void BM_AllocationRound(benchmark::State& state) {
  std::vector<SourceLoadEstimate> estimates;
  for (int i = 0; i < 100; ++i) {
    SourceLoadEstimate estimate;
    estimate.source_id = i;
    estimate.required_precision = 1.0 + i;
    estimate.reference_rate = 0.2;
    estimate.reference_precision = 10.0;
    estimates.push_back(estimate);
  }
  for (auto _ : state) {
    auto plan = AllocatePrecision(estimates, 1.0);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_AllocationRound);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
