// Ablation A7: sensor energy accounting across the paper's cited range of
// transmit-bit-to-instruction cost ratios (220-2900, §1 [26, 27]). Runs
// the Example-1 trajectory through the DSMS simulation at delta = 3 and
// compares the DKF node's energy (sensing + filtering + transmission)
// against a filterless send-every-reading node.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dsms/simulation.h"
#include "streamgen/trajectory_generator.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

SourceReport RunWithRatio(double instructions_per_bit) {
  SimulationSourceConfig config;
  config.id = 1;
  config.data = StandardTrajectory();
  config.model = Example1LinearModel();
  config.delta = 3.0;
  EnergyModelOptions energy;
  energy.instructions_per_bit = instructions_per_bit;
  auto sim = DsmsSimulation::Create({config}, energy).value();
  return sim.Run().value()[0];
}

void PrintFigure() {
  std::printf(
      "Ablation A7: sensor energy, DKF vs send-all, across the paper's "
      "tx-bit/instruction cost ratios (Example 1, delta = 3).\n\n");
  AsciiTable table({"instr/bit ratio", "DKF energy (Minstr)",
                    "send-all energy (Minstr)", "saving"});
  for (double ratio : {220.0, 1000.0, 2900.0}) {
    const SourceReport report = RunWithRatio(ratio);
    table.AddRow(
        {StrFormat("%.0f", ratio),
         StrFormat("%.2f", report.energy_spent / 1e6),
         StrFormat("%.2f", report.energy_send_all / 1e6),
         StrFormat("%.1f%%", 100.0 * (1.0 - report.energy_spent /
                                                report.energy_send_all))});
  }
  table.Print();
  std::printf(
      "\nReading the table: the energy saving tracks the update "
      "suppression ratio almost exactly, because transmission dominates "
      "at every cited ratio — the filter's compute cost is noise (§1's "
      "premise).\n");
}

void BM_SimulatedSource(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWithRatio(1000.0));
  }
}
BENCHMARK(BM_SimulatedSource);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
