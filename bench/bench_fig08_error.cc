// Reproduces Figure 8: average error value vs precision width (Example 2,
// §5.2).
//
// Expected shape (paper): comparable errors at low precision widths;
// caching slightly better at high widths; all errors grow with delta
// while communication drops.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metrics/experiment.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

const std::vector<double> kDeltas = {25.0,  50.0,  75.0,  100.0,
                                     150.0, 200.0, 300.0, 400.0};

void PrintFigure() {
  PrintHeader("Figure 8",
              "average error vs precision width (Example 2)");
  const TimeSeries load = StandardPowerLoad();
  auto caching = CachedValuePredictor::Create(1).value();
  auto linear = KalmanPredictor::Create(Example2LinearModel()).value();
  auto sinusoidal =
      KalmanPredictor::Create(Example2SinusoidalModel()).value();
  const std::vector<const Predictor*> prototypes = {&caching, &linear,
                                                    &sinusoidal};
  const auto rows = RunSweep(load, prototypes, kDeltas).value();
  MaybeExportRows("fig08_error", rows);
  PrintSweepTable("Figure 8: average error value vs precision width",
                  "avg error", rows, kDeltas,
                  {"caching", "linear-KF", "sinusoidal-KF"},
                  ExtractAvgError);
}

void BM_FullSweep(benchmark::State& state) {
  const TimeSeries load = StandardPowerLoad();
  auto linear = KalmanPredictor::Create(Example2LinearModel()).value();
  for (auto _ : state) {
    auto rows = RunSweep(load, {&linear}, kDeltas);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * load.size() *
                          kDeltas.size());
}
BENCHMARK(BM_FullSweep);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
