// Reproduces Figure 7: updates received at the central server vs
// precision width (Example 2, §5.2) for caching, the linear KF model, and
// the sinusoidal KF model (eq. 17-18).
//
// Expected shape (paper): both KF models beat caching; the correct
// (sinusoidal) model gives a further ~10% boost; robustness — the wrong
// (linear) model still does not lose to caching.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metrics/experiment.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

const std::vector<double> kDeltas = {25.0,  50.0,  75.0,  100.0,
                                     150.0, 200.0, 300.0, 400.0};

void PrintFigure() {
  PrintHeader("Figure 7",
              "updates at the server vs precision width (Example 2)");
  const TimeSeries load = StandardPowerLoad();
  auto caching = CachedValuePredictor::Create(1).value();
  auto linear = KalmanPredictor::Create(Example2LinearModel()).value();
  auto sinusoidal =
      KalmanPredictor::Create(Example2SinusoidalModel()).value();
  const std::vector<const Predictor*> prototypes = {&caching, &linear,
                                                    &sinusoidal};
  const auto rows = RunSweep(load, prototypes, kDeltas).value();
  MaybeExportRows("fig07_updates", rows);
  PrintSweepTable("Figure 7: % updates vs precision width", "% updates",
                  rows, kDeltas, {"caching", "linear-KF", "sinusoidal-KF"},
                  ExtractUpdatePercentage);

  for (size_t i = 0; i < kDeltas.size(); ++i) {
    if (kDeltas[i] == 100.0) {
      std::printf(
          "\nsinusoidal-KF boost vs caching at delta=100: %.1f%% fewer "
          "updates (paper: ~10%% boost for the correct model)\n",
          100.0 * (1.0 - rows[i * 3 + 2].update_percentage /
                             rows[i * 3 + 0].update_percentage));
    }
  }
}

void BM_SinusoidalSweepPoint(benchmark::State& state) {
  const TimeSeries load = StandardPowerLoad();
  auto sinusoidal =
      KalmanPredictor::Create(Example2SinusoidalModel()).value();
  for (auto _ : state) {
    auto row = RunSuppressionExperiment(load, sinusoidal, 100.0);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * load.size());
}
BENCHMARK(BM_SinusoidalSweepPoint);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
