// Ablation A9: innovation-based outlier rejection (§3.1 advantage 5, "the
// innovation sequence helps in detecting outliers"). A trending stream is
// corrupted with isolated spikes; the plain DKF transmits every spike AND
// lets it corrupt both filters, while the guarded link absorbs lone
// spikes and only concedes to sustained changes.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/dual_link.h"
#include "core/outlier_guard.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;

constexpr double kDelta = 2.0;

KalmanPredictor LinearPredictor() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return KalmanPredictor::Create(MakeLinearModel(1, 1.0, noise).value())
      .value();
}

struct StreamPair {
  std::vector<double> clean;
  std::vector<double> spiky;
};

StreamPair MakeStream(double spike_probability) {
  Rng rng(404);
  StreamPair stream;
  double value = 0.0;
  double slope = 1.0;
  for (int i = 0; i < 6000; ++i) {
    if (i % 800 == 0) slope = rng.Uniform(-1.5, 1.5);
    value += slope;
    stream.clean.push_back(value);
    stream.spiky.push_back(
        rng.Bernoulli(spike_probability) ? value + rng.Uniform(100.0, 500.0)
                                         : value);
  }
  return stream;
}

void PrintFigure() {
  std::printf(
      "Ablation A9: outlier guard vs plain DKF on a trending stream with "
      "isolated spikes (delta = %.1f).\n\n",
      kDelta);
  AsciiTable table({"spike rate", "strategy", "updates", "dropped",
                    "avg err vs clean"});
  for (double spike_rate : {0.0, 0.005, 0.02, 0.05}) {
    const StreamPair stream = MakeStream(spike_rate);

    DualLinkOptions plain_options;
    plain_options.delta = kDelta;
    DualLink plain =
        DualLink::Create(LinearPredictor(), plain_options).value();
    OutlierGuardOptions guard_options;
    guard_options.delta = kDelta;
    OutlierFilteredLink guarded =
        OutlierFilteredLink::Create(LinearPredictor(), guard_options)
            .value();

    double plain_err = 0.0;
    double guarded_err = 0.0;
    for (size_t i = 0; i < stream.spiky.size(); ++i) {
      const Vector reading{stream.spiky[i]};
      auto p = plain.Step(reading).value();
      auto g = guarded.Step(reading).value();
      plain_err += std::fabs(p.server_value[0] - stream.clean[i]);
      guarded_err += std::fabs(g.server_value[0] - stream.clean[i]);
    }
    const double n = static_cast<double>(stream.spiky.size());
    table.AddRow({StrFormat("%.3f", spike_rate), "plain DKF",
                  StrFormat("%lld",
                            static_cast<long long>(plain.stats().updates_sent)),
                  "-", StrFormat("%.3f", plain_err / n)});
    table.AddRow(
        {"", "guarded DKF",
         StrFormat("%lld",
                   static_cast<long long>(guarded.stats().updates_sent)),
         StrFormat("%lld",
                   static_cast<long long>(guarded.stats().outliers_dropped)),
         StrFormat("%.3f", guarded_err / n)});
  }
  table.Print();
  std::printf(
      "\nReading the table: with no spikes the guard costs only a "
      "one-tick confirmation delay at each maneuver; as the spike rate "
      "rises it drops the spikes instead of transmitting them, sending "
      "far fewer updates and answering much closer to the clean "
      "signal.\n");
}

void BM_GuardedLink(benchmark::State& state) {
  const StreamPair stream = MakeStream(0.02);
  for (auto _ : state) {
    OutlierGuardOptions options;
    options.delta = kDelta;
    OutlierFilteredLink link =
        OutlierFilteredLink::Create(LinearPredictor(), options).value();
    for (double v : stream.spiky) {
      benchmark::DoNotOptimize(link.Step(Vector{v}));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.spiky.size()));
}
BENCHMARK(BM_GuardedLink);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
