#ifndef DKF_BENCH_BENCH_UTIL_H_
#define DKF_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/time_series.h"
#include "core/predictor.h"
#include "metrics/experiment.h"
#include "models/state_model.h"

namespace dkf::bench {

/// Paper-scale datasets (Figures 3, 6, 9). Deterministic.
TimeSeries StandardTrajectory();   // 4000 pts @ 100 ms, width 2 (§5.1)
TimeSeries StandardPowerLoad();    // 5831 hourly pts, width 1 (§5.2)
TimeSeries StandardHttpTraffic();  // 5000 bins, width 1 (§5.3)

/// Example 1 predictors (§5.1): Q = R = 0.05 for the linear model per
/// §4.1; the constant model uses a near-unity gain configuration so it
/// reproduces the paper's "constant KF == caching" observation (see
/// EXPERIMENTS.md for the discussion).
StateModel Example1LinearModel();
StateModel Example1ConstantModel();

/// Example 2 predictors (§5.2): the sinusoidal model's phase is aligned
/// with the power-load generator's diurnal cosine.
StateModel Example2LinearModel();
StateModel Example2SinusoidalModel();
StateModel Example2ConstantModel();

/// Example 3 (§5.3) stream models used on smoothed traffic.
StateModel Example3LinearModel();
StateModel Example3ConstantModel();

/// Measurement variance assumed by the KF_c smoothing stage in Example 3.
/// The paper quotes F values (1e-9..1e-1) without fixing the R they are
/// relative to; this R makes F = 1e-7 a smoother that removes the burst
/// noise while preserving the traffic's slow diurnal trend — the regime
/// Figure 11 operates in.
double Example3SmoothingMeasurementVariance();

/// Prints a figure reproduction: one row per delta, one column per
/// predictor, cells via `extract` (e.g. update percentage or avg error).
void PrintSweepTable(const std::string& title,
                     const std::string& value_name,
                     const std::vector<ExperimentRow>& rows,
                     const std::vector<double>& deltas,
                     const std::vector<std::string>& predictor_names,
                     double (*extract)(const ExperimentRow&));

double ExtractUpdatePercentage(const ExperimentRow& row);
double ExtractAvgError(const ExperimentRow& row);

/// Prints a "source: ... -> built: ..." banner for a figure.
void PrintHeader(const std::string& figure, const std::string& description);

/// When the DKF_BENCH_CSV_DIR environment variable is set, writes the
/// sweep rows to <dir>/<name>.csv (metrics/report.h format) so the
/// reproduced figures can be plotted outside the repo. No-op otherwise.
void MaybeExportRows(const std::string& name,
                     const std::vector<ExperimentRow>& rows);

}  // namespace dkf::bench

#endif  // DKF_BENCH_BENCH_UTIL_H_
