// Multi-sensor fusion uplink reduction on a redundant fleet.
//
// Sweeps group sizes (default 2 -> 8) of sensors observing ONE shared
// random-walk state through identical measurement models, and compares
// two deployments fed bit-identical readings:
//
//   baseline  N independent plain dual-filter links, each with its own
//             per-source continuous query at trigger delta — the only
//             option before src/fusion/ existed;
//   fused     one N-member fusion group at the same delta — the first
//             member to break the trigger corrects the fused posterior
//             and the re-lock broadcast silences the rest of the group
//             for that tick (docs/fusion.md section 3).
//
// Reports uplink messages/bytes for both, the headline uplink_reduction
// (baseline bytes / fused bytes), and — honestly — the out-of-band
// downlink broadcast bytes the fused win costs, plus each deployment's
// answer RMSE against the shared truth, as machine-readable JSON on
// stdout (one object; see docs/fusion.md section 7 for the schema).
//
// Flags: --members=2,4,8 --ticks=2000 --delta=1.5
//
// bench_compare.py gates uplink_reduction >= 2.0 on the largest group
// as an absolute floor: redundancy must buy at least a 2x uplink cut.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> group_sizes = {2, 4, 8};
  int64_t ticks = 2000;
  double delta = 1.5;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--members=", 0) == 0) {
      config.group_sizes = ParseIntList(arg.c_str() + 10);
    } else if (arg.rfind("--ticks=", 0) == 0) {
      config.ticks = std::max<int64_t>(64, std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--delta=", 0) == 0) {
      config.delta = std::atof(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

StateModel SharedModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.2;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Deterministic redundant workload: one shared truth walk, one fixed
/// per-sensor noise stream. Both deployments replay the exact same
/// readings, so every uplink delta is the protocol's, not the data's.
struct Workload {
  std::vector<double> truth;                 // [tick]
  std::vector<std::vector<Vector>> reading;  // [tick][sensor]
};

Workload MakeWorkload(int members, int64_t ticks) {
  Workload workload;
  workload.truth.reserve(static_cast<size_t>(ticks));
  workload.reading.reserve(static_cast<size_t>(ticks));
  Rng truth_rng(7);
  Rng sensor_rng(11);
  double value = 20.0;
  for (int64_t t = 0; t < ticks; ++t) {
    value += truth_rng.Gaussian(0.0, 0.45);
    workload.truth.push_back(value);
    std::vector<Vector> row;
    row.reserve(static_cast<size_t>(members));
    for (int m = 0; m < members; ++m) {
      row.push_back(Vector{value + sensor_rng.Gaussian(0.0, 0.4)});
    }
    workload.reading.push_back(std::move(row));
  }
  return workload;
}

struct RunResult {
  double seconds = 0.0;
  int64_t uplink_messages = 0;
  int64_t uplink_bytes = 0;
  int64_t broadcast_bytes = 0;  // fused runs only; 0 for baseline
  double rmse = 0.0;
};

StreamManagerOptions CleanOptions() {
  StreamManagerOptions options;
  options.channel.seed = 9;
  options.channel.per_source_rng = true;
  return options;
}

/// N independent plain links, one per sensor, each answering its own
/// per-source query at trigger delta. The deployment's answer is the
/// client-side mean of the N per-source answers — the best a reader can
/// do without server-side fusion.
RunResult RunBaseline(int members, const Workload& workload,
                      const Config& config) {
  StreamManager manager(CleanOptions());
  const StateModel model = SharedModel();
  for (int m = 0; m < members; ++m) {
    if (!manager.RegisterSource(m + 1, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = m + 1;
    query.source_id = m + 1;
    query.precision = config.delta;
    if (!manager.SubmitQuery(query).ok()) std::abort();
  }

  RunResult result;
  double squared_error = 0.0;
  std::map<int, Vector> readings;
  for (int64_t t = 0; t < config.ticks; ++t) {
    for (int m = 0; m < members; ++m) {
      readings[m + 1] = workload.reading[static_cast<size_t>(t)]
                                        [static_cast<size_t>(m)];
    }
    const auto start = std::chrono::steady_clock::now();
    if (!manager.ProcessTick(readings).ok()) std::abort();
    const auto end = std::chrono::steady_clock::now();
    result.seconds += std::chrono::duration<double>(end - start).count();
    double mean = 0.0;
    for (int m = 0; m < members; ++m) {
      mean += manager.Answer(m + 1).value()[0];
    }
    mean /= static_cast<double>(members);
    const double error = mean - workload.truth[static_cast<size_t>(t)];
    squared_error += error * error;
  }
  result.uplink_messages = manager.uplink_traffic().messages;
  result.uplink_bytes = manager.uplink_traffic().bytes;
  result.rmse = std::sqrt(squared_error / static_cast<double>(config.ticks));
  return result;
}

/// One N-member fusion group at the same delta; the deployment's answer
/// is the fused posterior's predicted measurement.
RunResult RunFused(int members, const Workload& workload,
                   const Config& config) {
  StreamManager manager(CleanOptions());
  FusionGroupConfig group;
  group.group_id = 1;
  group.model = SharedModel();
  for (int m = 0; m < members; ++m) group.member_ids.push_back(m + 1);
  group.delta = config.delta;
  if (!manager.RegisterFusionGroup(group).ok()) std::abort();

  RunResult result;
  double squared_error = 0.0;
  std::map<int, Vector> readings;
  for (int64_t t = 0; t < config.ticks; ++t) {
    for (int m = 0; m < members; ++m) {
      readings[m + 1] = workload.reading[static_cast<size_t>(t)]
                                        [static_cast<size_t>(m)];
    }
    const auto start = std::chrono::steady_clock::now();
    if (!manager.ProcessTick(readings).ok()) std::abort();
    const auto end = std::chrono::steady_clock::now();
    result.seconds += std::chrono::duration<double>(end - start).count();
    const double error = manager.AnswerFused(1).value()[0] -
                         workload.truth[static_cast<size_t>(t)];
    squared_error += error * error;
  }
  result.uplink_messages = manager.uplink_traffic().messages;
  result.uplink_bytes = manager.uplink_traffic().bytes;
  result.broadcast_bytes = manager.fusion_stats().broadcast_bytes;
  result.rmse = std::sqrt(squared_error / static_cast<double>(config.ticks));
  return result;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"fusion\",\n");
  std::printf("  \"ticks\": %lld,\n  \"delta\": %g,\n  \"results\": [",
              static_cast<long long>(config.ticks), config.delta);

  bool first = true;
  for (int members : config.group_sizes) {
    const Workload workload = MakeWorkload(members, config.ticks);
    const RunResult baseline = RunBaseline(members, workload, config);
    const RunResult fused = RunFused(members, workload, config);
    const double reduction =
        static_cast<double>(baseline.uplink_bytes) /
        static_cast<double>(std::max<int64_t>(1, fused.uplink_bytes));

    std::printf(
        "%s\n    {\"members\": %d, "
        "\"baseline_uplink_messages\": %lld, "
        "\"baseline_uplink_bytes\": %lld, "
        "\"fused_uplink_messages\": %lld, "
        "\"fused_uplink_bytes\": %lld, "
        "\"uplink_reduction\": %.3f, "
        "\"fused_broadcast_bytes\": %lld, "
        "\"baseline_rmse\": %.4f, \"fused_rmse\": %.4f, "
        "\"baseline_seconds\": %.6f, \"fused_seconds\": %.6f}",
        first ? "" : ",", members,
        static_cast<long long>(baseline.uplink_messages),
        static_cast<long long>(baseline.uplink_bytes),
        static_cast<long long>(fused.uplink_messages),
        static_cast<long long>(fused.uplink_bytes), reduction,
        static_cast<long long>(fused.broadcast_bytes), baseline.rmse,
        fused.rmse, baseline.seconds, fused.seconds);
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
