// Ablation A1: per-tick cost of the Kalman filter vs state dimension, and
// the steady-state (precomputed Riccati gain) variant. Validates the
// paper's §1 premise that "the computational cost incurred by KF is
// insignificant in many practical sensing scenarios" against the
// energy-per-bit numbers it cites.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "filter/kalman_filter.h"
#include "filter/steady_state.h"
#include "linalg/matrix.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;

KalmanFilterOptions OptionsForDim(size_t axes, size_t order) {
  ModelNoise noise;
  return MakePolynomialModel(axes, order, 0.1, noise).value().options;
}

void BM_KalmanPredictCorrect(benchmark::State& state) {
  const size_t axes = static_cast<size_t>(state.range(0));
  const size_t order = static_cast<size_t>(state.range(1));
  auto filter = KalmanFilter::Create(OptionsForDim(axes, order)).value();
  const Vector z(axes);
  for (auto _ : state) {
    (void)filter.Predict();
    (void)filter.Correct(z);
    benchmark::DoNotOptimize(filter.state());
  }
  state.SetLabel("state_dim=" +
                 std::to_string(axes * (order + 1)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KalmanPredictCorrect)
    ->Args({1, 1})   // n = 2 (scalar stream, linear model)
    ->Args({2, 1})   // n = 4 (the paper's moving-object model)
    ->Args({2, 2})   // n = 6
    ->Args({2, 3});  // n = 8 (jerk model)

void BM_KalmanPredictOnly(benchmark::State& state) {
  auto filter = KalmanFilter::Create(OptionsForDim(2, 1)).value();
  for (auto _ : state) {
    (void)filter.Predict();
    benchmark::DoNotOptimize(filter.state());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KalmanPredictOnly);

void BM_SteadyStatePredictCorrect(benchmark::State& state) {
  auto filter =
      SteadyStateKalmanFilter::Create(OptionsForDim(2, 1)).value();
  const Vector z(2);
  for (auto _ : state) {
    filter.Predict();
    (void)filter.Correct(z);
    benchmark::DoNotOptimize(filter.state());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SteadyStatePredictCorrect);

void BM_RiccatiSolve(benchmark::State& state) {
  const KalmanFilterOptions options = OptionsForDim(2, 1);
  for (auto _ : state) {
    auto solution = SolveRiccati(options.transition, options.measurement,
                                 options.process_noise,
                                 options.measurement_noise);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_RiccatiSolve);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation A1: filter step cost vs state dimension.\n"
      "Context (paper §1): transmitting ONE bit costs 220-2900 "
      "instructions; a ~21-byte measurement message is therefore worth "
      "~37k-490k instructions. The numbers below show a full 4-state "
      "predict+correct costs on the order of a microsecond (a few "
      "thousand instructions) — two orders of magnitude below one "
      "suppressed message, and the steady-state variant is cheaper "
      "still.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
