// Fleet-wide delta-governor budget holding as load doubles.
//
// Sweeps doubling source counts (default 64 -> 256) under one fixed
// uplink budget, drives a random-walk workload whose tight initial
// precision would massively overspend, and reports the settled
// bytes-on-wire, sustained overshoot, settle time, and the precision
// the governor traded away, as machine-readable JSON on stdout (one
// object; see docs/governor.md for the schema).
//
// Flags: --sources=64,128,256 --epochs=60 --settle=30 --budget=150
//
// The headline claim is the robustness one: the settled wire rate must
// sit at the budget (within tolerance) for every fleet size in the
// sweep — doubling the load doubles suppression, not bytes.
// bench_compare.py gates the overshoot (<= 5% sustained), the
// flatness across rows (+-10%), settle-time regressions, and the
// tracing overhead of a governed run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> fleet_sizes = {64, 128, 256};
  int epochs = 60;
  int settle = 30;
  double budget = 150.0;
};

constexpr int64_t kEpochTicks = 16;
constexpr int kShards = 2;

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sources=", 0) == 0) {
      config.fleet_sizes = ParseIntList(arg.c_str() + 10);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      config.epochs = std::max(2, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--settle=", 0) == 0) {
      config.settle = std::max(1, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--budget=", 0) == 0) {
      config.budget = std::atof(arg.c_str() + 9);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  config.settle = std::min(config.settle, config.epochs - 1);
  return config;
}

StateModel WalkModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Timed chunks per run: the headline cost is the fastest chunk's mean
/// tick — on a shared machine contention only ever adds time (same
/// reasoning as the fleet and runtime benches).
constexpr int kChunks = 8;

struct RunResult {
  double seconds = 0.0;            // summed ProcessTick time, all ticks
  double best_tick_seconds = 0.0;  // fastest chunk's mean tick
  std::vector<double> epoch_rates;  // bytes/tick, per governor epoch
  int64_t settled_bytes = 0;        // wire bytes inside the settle window
  int64_t total_updates = 0;
  double mean_delta = 0.0;
};

ShardedStreamEngineOptions GovernedOptions(const Config& config) {
  ShardedStreamEngineOptions options;
  options.num_shards = kShards;
  options.channel.seed = 9;
  options.channel.per_source_rng = true;
  options.governor.enabled = true;
  options.governor.epoch_ticks = kEpochTicks;
  options.governor.budget_bytes_per_tick = config.budget;
  options.governor.delta_floor = 0.05;
  options.governor.delta_ceiling = 256.0;
  options.governor.max_step_ratio = 2.0;
  options.governor.dead_band = 0.10;
  return options;
}

RunResult RunWorkload(int fleet, const Config& config) {
  ShardedStreamEngine engine(GovernedOptions(config));

  const StateModel model = WalkModel();
  for (int id = 1; id <= fleet; ++id) {
    if (!engine.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    // Deliberately tighter than the budget affords: the ungoverned
    // spend scales with the fleet, the governed spend must not.
    query.precision = 0.5;
    if (!engine.SubmitQuery(query).ok()) std::abort();
  }

  const int64_t ticks = static_cast<int64_t>(config.epochs) * kEpochTicks;
  const int64_t settle_tick = static_cast<int64_t>(config.settle) *
                              kEpochTicks;
  const int64_t chunk_ticks = std::max<int64_t>(1, ticks / kChunks);

  RunResult result;
  Rng rng(91);
  std::vector<double> values(static_cast<size_t>(fleet) + 1, 0.0);
  std::map<int, Vector> readings;
  int64_t epoch_start_bytes = 0;
  int64_t settle_start_bytes = 0;
  double chunk_seconds = 0.0;
  int64_t in_chunk = 0;
  double best_chunk = std::numeric_limits<double>::infinity();
  for (int64_t t = 0; t < ticks; ++t) {
    for (int id = 1; id <= fleet; ++id) {
      values[static_cast<size_t>(id)] +=
          rng.Gaussian(0.02 * (id % 5), 0.7);
      readings[id] = Vector{values[static_cast<size_t>(id)]};
    }
    if (t == settle_tick) settle_start_bytes = engine.uplink_traffic().bytes;
    const auto start = std::chrono::steady_clock::now();
    if (!engine.ProcessTick(readings).ok()) std::abort();
    const auto end = std::chrono::steady_clock::now();
    const double tick_seconds =
        std::chrono::duration<double>(end - start).count();
    result.seconds += tick_seconds;
    chunk_seconds += tick_seconds;
    if (++in_chunk == chunk_ticks) {
      best_chunk = std::min(
          best_chunk, chunk_seconds / static_cast<double>(in_chunk));
      chunk_seconds = 0.0;
      in_chunk = 0;
    }
    if ((t + 1) % kEpochTicks == 0) {
      const int64_t bytes = engine.uplink_traffic().bytes;
      result.epoch_rates.push_back(
          static_cast<double>(bytes - epoch_start_bytes) /
          static_cast<double>(kEpochTicks));
      epoch_start_bytes = bytes;
    }
  }
  result.best_tick_seconds =
      std::isfinite(best_chunk)
          ? best_chunk
          : result.seconds / static_cast<double>(ticks);
  result.settled_bytes = engine.uplink_traffic().bytes - settle_start_bytes;
  for (int id = 1; id <= fleet; ++id) {
    result.total_updates += engine.updates_sent(id).value();
    result.mean_delta += engine.source_delta(id).value();
  }
  result.mean_delta /= static_cast<double>(fleet);
  return result;
}

/// Tracing overhead of a governed run, measured within one process by
/// interleaving traced and untraced chunks on the same warmed-up
/// engine. Each group runs plain-traced-traced-plain (drift hits both
/// variants equally), yields one traced/plain ratio, and the reported
/// overhead is the median group ratio — robust both to slow frequency
/// drift (each group is local in time) and to outlier groups. A
/// separate traced twin run is far too noisy here: governed ticks are
/// microseconds, so run-to-run scheduler drift swamps the signal.
double MeasureObsOverheadPct(int fleet, const Config& config) {
  ShardedStreamEngine engine(GovernedOptions(config));
  const StateModel model = WalkModel();
  for (int id = 1; id <= fleet; ++id) {
    if (!engine.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id;
    query.source_id = id;
    query.precision = 0.5;
    if (!engine.SubmitQuery(query).ok()) std::abort();
  }
  // Small ring, as in bench_runtime_throughput: the overhead of
  // interest is the per-event write cost on the hot path, not the cache
  // footprint of a capture-everything ring.
  ObsOptions obs;
  obs.ring_capacity = 1 << 8;

  Rng rng(91);
  std::vector<double> values(static_cast<size_t>(fleet) + 1, 0.0);
  std::map<int, Vector> readings;
  const auto run_chunk = [&](int64_t chunk_ticks) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t t = 0; t < chunk_ticks; ++t) {
      for (int id = 1; id <= fleet; ++id) {
        values[static_cast<size_t>(id)] +=
            rng.Gaussian(0.02 * (id % 5), 0.7);
        readings[id] = Vector{values[static_cast<size_t>(id)]};
      }
      if (!engine.ProcessTick(readings).ok()) std::abort();
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  };

  constexpr int kGroups = 15;
  const int64_t chunk_ticks = 2 * kEpochTicks;
  run_chunk(chunk_ticks);  // warmup: settle filters and the governor
  std::vector<double> ratios;
  ratios.reserve(kGroups);
  for (int group = 0; group < kGroups; ++group) {
    double plain = 0.0;
    double traced = 0.0;
    for (int chunk = 0; chunk < 4; ++chunk) {
      const bool trace_on = chunk == 1 || chunk == 2;
      if (trace_on) {
        if (!engine.EnableTracing(obs).ok()) std::abort();
      } else {
        engine.DisableTracing();
      }
      (trace_on ? traced : plain) += run_chunk(chunk_ticks);
    }
    ratios.push_back(traced / plain);
  }
  std::nth_element(ratios.begin(), ratios.begin() + kGroups / 2,
                   ratios.end());
  return (ratios[kGroups / 2] - 1.0) * 100.0;
}

/// First epoch from which the trailing 8-epoch mean wire rate stays
/// within 10% of the budget through the end of the run; the sweep
/// length when the budget never holds. Raw per-epoch rates are
/// quantized (an update either lands in an epoch or it doesn't) and
/// wobble ~20% around a held budget, so the windowed mean is the
/// signal that actually reflects settling.
int SettleEpoch(const std::vector<double>& rates, double budget) {
  constexpr int kWindow = 8;
  const int n = static_cast<int>(rates.size());
  int settled_from = n;
  for (int e = n - 1; e >= 0; --e) {
    const int begin = std::max(0, e - kWindow + 1);
    double sum = 0.0;
    for (int i = begin; i <= e; ++i) sum += rates[static_cast<size_t>(i)];
    if (sum / static_cast<double>(e - begin + 1) > budget * 1.10) break;
    settled_from = e;
  }
  return settled_from;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"governor\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"budget_bytes_per_tick\": %g,\n  \"epoch_ticks\": %lld,\n"
              "  \"epochs\": %d,\n  \"settle_epochs\": %d,\n"
              "  \"shards\": %d,\n  \"results\": [",
              config.budget, static_cast<long long>(kEpochTicks),
              config.epochs, config.settle, kShards);

  const int64_t settled_ticks =
      static_cast<int64_t>(config.epochs - config.settle) * kEpochTicks;
  bool first = true;
  for (int fleet : config.fleet_sizes) {
    const RunResult run = RunWorkload(fleet, config);
    const double bytes_per_tick =
        static_cast<double>(run.settled_bytes) /
        static_cast<double>(settled_ticks);
    const double overshoot =
        std::max(0.0, bytes_per_tick / config.budget - 1.0);
    const int settle = SettleEpoch(run.epoch_rates, config.budget);
    const double total_readings =
        static_cast<double>(fleet) *
        static_cast<double>(config.epochs) *
        static_cast<double>(kEpochTicks);
    const double suppression =
        1.0 - static_cast<double>(run.total_updates) / total_readings;

    const double obs_overhead_pct = MeasureObsOverheadPct(fleet, config);

    std::printf(
        "%s\n    {\"sources\": %d, \"seconds\": %.6f, "
        "\"bytes_per_tick\": %.2f, \"overshoot\": %.4f, "
        "\"settle_epochs\": %d, \"mean_delta\": %.3f, "
        "\"suppression_ratio\": %.4f, \"uplink_updates\": %lld, "
        "\"obs_overhead_pct\": %.2f}",
        first ? "" : ",", fleet, run.seconds, bytes_per_tick, overshoot,
        settle, run.mean_delta, suppression,
        static_cast<long long>(run.total_updates), obs_overhead_pct);
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
