// Reproduces Figure 12: performance of the DKF vs the smoothing factor F
// at fixed precision width delta = 10 (Example 3, §5.3).
//
// Expected shape (paper): lowering F improves performance (fewer updates)
// because the smoothed stream varies less; F is the user's sensitivity
// knob trading fidelity for savings.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/smoothing.h"
#include "metrics/experiment.h"
#include "metrics/metrics.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

constexpr double kDelta = 10.0;  // the figure's operating point

void PrintFigure() {
  PrintHeader("Figure 12",
              "DKF performance vs smoothing factor F at delta = 10");
  const TimeSeries raw = StandardHttpTraffic();
  auto linear = KalmanPredictor::Create(Example3LinearModel()).value();
  auto constant = KalmanPredictor::Create(Example3ConstantModel()).value();

  AsciiTable table({"F", "linear-KF % updates", "constant-KF % updates",
                    "smoothed-vs-raw mean dev"});
  for (double f : {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const TimeSeries smoothed =
        SmoothSeriesKalman(raw, f, Example3SmoothingMeasurementVariance())
            .value();
    const auto linear_row =
        RunSuppressionExperiment(smoothed, linear, kDelta).value();
    const auto constant_row =
        RunSuppressionExperiment(smoothed, constant, kDelta).value();
    table.AddRow({StrFormat("%.0e", f),
                  StrFormat("%.2f", linear_row.update_percentage),
                  StrFormat("%.2f", constant_row.update_percentage),
                  StrFormat("%.2f", SeriesMeanAbsDiff(smoothed, raw).value())});
  }
  table.Print();
  std::printf(
      "\nReading the table: lower F -> smoother protocol stream -> fewer "
      "updates, at the cost of larger deviation from the raw data.\n");
}

void BM_FSweepPoint(benchmark::State& state) {
  const TimeSeries raw = StandardHttpTraffic();
  auto linear = KalmanPredictor::Create(Example3LinearModel()).value();
  for (auto _ : state) {
    const TimeSeries smoothed =
        SmoothSeriesKalman(raw, 1e-7,
                           Example3SmoothingMeasurementVariance())
            .value();
    auto row = RunSuppressionExperiment(smoothed, linear, kDelta);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_FSweepPoint);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
