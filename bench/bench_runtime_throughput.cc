// Throughput of the sharded runtime vs the sequential StreamManager.
//
// Sweeps shard count x fleet size, driving identical workloads through
// both systems, and reports ticks/sec plus speedup as machine-readable
// JSON on stdout (one object; see docs/runtime.md for the schema) so
// the perf trajectory can be tracked across PRs.
//
// Flags: --sources=1000,10000 --shards=1,2,4,8,16 --ticks=200
//        --delta=2.0 --faults
// Each run also cross-checks a sample of per-source answers against the
// sequential baseline (the runtime's determinism contract), so a perf
// win can never silently come from diverging behavior.
//
// --faults injects the deterministic chaos cocktail (bursty loss, ACK
// loss, delay, corruption) through the hardened protocol; per-source
// fault schedules keep the equivalence check bit-exact even then. Every
// row reports the protocol fault/recovery counters so bench_compare.py
// can gate on resync storms as well as on throughput.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "runtime/sharded_engine.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> fleet_sizes = {1000, 10000};
  std::vector<int> shard_counts = {1, 2, 4, 8, 16};
  int ticks = 200;
  double delta = 2.0;
  bool faults = false;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sources=", 0) == 0) {
      config.fleet_sizes = ParseIntList(arg.c_str() + 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shard_counts = ParseIntList(arg.c_str() + 9);
    } else if (arg.rfind("--ticks=", 0) == 0) {
      // Clamp to >= 1: zero ticks would make every rate 0/0 -> NaN,
      // which is not valid JSON.
      config.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--delta=", 0) == 0) {
      config.delta = std::atof(arg.c_str() + 8);
    } else if (arg == "--faults") {
      config.faults = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

/// The deterministic chaos cocktail for --faults runs: bursty loss, ACK
/// loss, one-tick delays, and corruption, drawn from per-source RNG
/// streams so the sequential/sharded equivalence check stays bit-exact.
ChannelOptions FaultChannel() {
  ChannelOptions channel;
  channel.seed = 77;
  channel.per_source_rng = true;
  channel.fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  channel.fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  channel.fault.ack_loss_probability = 0.05;
  channel.fault.corruption_probability = 0.02;
  return channel;
}

ProtocolOptions FaultProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 8;
  protocol.staleness_budget = 16;
  return protocol;
}

StateModel FleetModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Deterministic per-source signal: a drifting sinusoid whose phase and
/// rate vary by source, so each tick produces a realistic mix of
/// suppressed and transmitted readings.
double SourceValue(int source_id, int tick) {
  const double phase = 0.37 * source_id;
  const double rate = 0.02 + 0.00001 * (source_id % 97);
  return 25.0 * std::sin(rate * tick + phase) + 0.01 * tick;
}

/// Registers `fleet` sources with one point query each and returns the
/// reusable readings map (values rewritten in place every tick).
template <typename System>
std::map<int, Vector> SetUpFleet(System& system, int fleet, double delta) {
  std::map<int, Vector> readings;
  const StateModel model = FleetModel();
  for (int id = 0; id < fleet; ++id) {
    if (!system.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id + 1;
    query.source_id = id;
    query.precision = delta;
    if (!system.SubmitQuery(query).ok()) std::abort();
    readings[id] = Vector{SourceValue(id, 0)};
  }
  return readings;
}

template <typename System>
double TimeTicks(System& system, std::map<int, Vector>& readings,
                 int ticks) {
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < ticks; ++t) {
    for (auto& [id, value] : readings) value[0] = SourceValue(id, t);
    if (!system.ProcessTick(readings).ok()) std::abort();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RunResult {
  double seconds = 0.0;
  /// Sampled per-source answers for the equivalence cross-check.
  std::vector<double> sample_answers;
  int64_t uplink_messages = 0;
  ProtocolFaultStats faults;
};

template <typename System>
RunResult RunWorkload(System& system, int fleet, int ticks, double delta) {
  std::map<int, Vector> readings = SetUpFleet(system, fleet, delta);
  RunResult result;
  result.seconds = TimeTicks(system, readings, ticks);
  for (int id = 0; id < fleet; id += std::max(1, fleet / 64)) {
    result.sample_answers.push_back(system.Answer(id).value()[0]);
  }
  result.uplink_messages = system.uplink_traffic().messages;
  result.faults = system.fault_stats();
  return result;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"runtime_throughput\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"ticks\": %d,\n  \"delta\": %g,\n  \"faults\": %s,\n"
              "  \"results\": [",
              config.ticks, config.delta, config.faults ? "true" : "false");

  bool first = true;
  for (int fleet : config.fleet_sizes) {
    // Sequential baseline for this fleet size.
    StreamManagerOptions seq_options;
    if (config.faults) {
      seq_options.channel = FaultChannel();
      seq_options.protocol = FaultProtocol();
    }
    StreamManager manager(seq_options);
    const RunResult baseline =
        RunWorkload(manager, fleet, config.ticks, config.delta);
    const double seq_tps = config.ticks / baseline.seconds;

    for (int shards : config.shard_counts) {
      ShardedStreamEngineOptions options;
      options.num_shards = shards;
      if (config.faults) {
        options.channel = FaultChannel();
        options.protocol = FaultProtocol();
      }
      ShardedStreamEngine engine(options);
      const RunResult run =
          RunWorkload(engine, fleet, config.ticks, config.delta);

      bool equivalent = run.uplink_messages == baseline.uplink_messages &&
                        run.faults.resyncs_sent ==
                            baseline.faults.resyncs_sent &&
                        run.faults.resyncs_applied ==
                            baseline.faults.resyncs_applied;
      for (size_t i = 0; i < run.sample_answers.size(); ++i) {
        if (run.sample_answers[i] != baseline.sample_answers[i]) {
          equivalent = false;
        }
      }
      const double tps = config.ticks / run.seconds;
      std::printf(
          "%s\n    {\"sources\": %d, \"shards\": %d, \"seconds\": %.6f, "
          "\"ticks_per_sec\": %.2f, \"source_ticks_per_sec\": %.0f, "
          "\"sequential_ticks_per_sec\": %.2f, "
          "\"speedup_vs_sequential\": %.3f, \"equivalent\": %s, "
          "\"divergence_events\": %lld, \"resyncs_sent\": %lld, "
          "\"resyncs_applied\": %lld, \"degraded_ticks\": %lld, "
          "\"max_recovery_ticks\": %lld, \"rejected_corrupt\": %lld}",
          first ? "" : ",", fleet, engine.num_shards(), run.seconds, tps,
          tps * fleet, seq_tps, tps / seq_tps, equivalent ? "true" : "false",
          static_cast<long long>(run.faults.divergence_events),
          static_cast<long long>(run.faults.resyncs_sent),
          static_cast<long long>(run.faults.resyncs_applied),
          static_cast<long long>(run.faults.degraded_ticks),
          static_cast<long long>(run.faults.max_recovery_ticks),
          static_cast<long long>(run.faults.rejected_corrupt));
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
