// Throughput of the sharded runtime vs the sequential StreamManager.
//
// Sweeps shard count x fleet size, driving identical workloads through
// both systems, and reports ticks/sec plus speedup as machine-readable
// JSON on stdout (one object; see docs/runtime.md for the schema) so
// the perf trajectory can be tracked across PRs.
//
// Flags: --sources=1000,10000 --shards=1,2,4,8,16 --ticks=200
//        --delta=2.0 --faults --trace
// Each run also cross-checks a sample of per-source answers against the
// sequential baseline (the runtime's determinism contract), so a perf
// win can never silently come from diverging behavior.
//
// --faults injects the deterministic chaos cocktail (bursty loss, ACK
// loss, delay, corruption) through the hardened protocol; per-source
// fault schedules keep the equivalence check bit-exact even then. Every
// row reports the protocol fault/recovery counters so bench_compare.py
// can gate on resync storms as well as on throughput.
//
// --trace re-runs every workload with the observability sinks enabled
// (including wall-clock tick-latency timing) and reports the overhead
// plus a metrics digest per row; bench_compare.py gates the overhead at
// 5%. The primary throughput numbers always come from the untraced run.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dsms/stream_manager.h"
#include "models/model_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace_sink.h"
#include "runtime/sharded_engine.h"

namespace dkf::bench {
namespace {

struct Config {
  std::vector<int> fleet_sizes = {1000, 10000};
  std::vector<int> shard_counts = {1, 2, 4, 8, 16};
  int ticks = 200;
  double delta = 2.0;
  bool faults = false;
  bool trace = false;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> values;
  for (const char* p = text; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sources=", 0) == 0) {
      config.fleet_sizes = ParseIntList(arg.c_str() + 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shard_counts = ParseIntList(arg.c_str() + 9);
    } else if (arg.rfind("--ticks=", 0) == 0) {
      // Clamp to >= 1: zero ticks would make every rate 0/0 -> NaN,
      // which is not valid JSON.
      config.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--delta=", 0) == 0) {
      config.delta = std::atof(arg.c_str() + 8);
    } else if (arg == "--faults") {
      config.faults = true;
    } else if (arg == "--trace") {
      config.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return config;
}

/// The deterministic chaos cocktail for --faults runs: bursty loss, ACK
/// loss, one-tick delays, and corruption, drawn from per-source RNG
/// streams so the sequential/sharded equivalence check stays bit-exact.
ChannelOptions FaultChannel() {
  ChannelOptions channel;
  channel.seed = 77;
  channel.per_source_rng = true;
  channel.fault.gilbert_elliott = GilbertElliottLoss{
      /*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.3,
      /*good_loss=*/0.0, /*bad_loss=*/1.0};
  channel.fault.delay = DelayModel{/*min_ticks=*/0, /*max_ticks=*/1};
  channel.fault.ack_loss_probability = 0.05;
  channel.fault.corruption_probability = 0.02;
  return channel;
}

ProtocolOptions FaultProtocol() {
  ProtocolOptions protocol;
  protocol.heartbeat_interval = 8;
  protocol.staleness_budget = 16;
  return protocol;
}

StateModel FleetModel() {
  ModelNoise noise;
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(1, 1.0, noise).value();
}

/// Deterministic per-source signal: a drifting sinusoid whose phase and
/// rate vary by source, so each tick produces a realistic mix of
/// suppressed and transmitted readings.
double SourceValue(int source_id, int tick) {
  const double phase = 0.37 * source_id;
  const double rate = 0.02 + 0.00001 * (source_id % 97);
  return 25.0 * std::sin(rate * tick + phase) + 0.01 * tick;
}

/// Registers `fleet` sources with one point query each and returns the
/// reusable readings map (values rewritten in place every tick).
template <typename System>
std::map<int, Vector> SetUpFleet(System& system, int fleet, double delta) {
  std::map<int, Vector> readings;
  const StateModel model = FleetModel();
  for (int id = 0; id < fleet; ++id) {
    if (!system.RegisterSource(id, model).ok()) std::abort();
    ContinuousQuery query;
    query.id = id + 1;
    query.source_id = id;
    query.precision = delta;
    if (!system.SubmitQuery(query).ok()) std::abort();
    readings[id] = Vector{SourceValue(id, 0)};
  }
  return readings;
}

/// Peak resident set size of the whole process, in bytes. Linux
/// reports ru_maxrss in kilobytes. High-water, not current: within a
/// sweep only the largest workload's row reflects its own footprint.
int64_t PeakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

/// CPU time consumed by the whole process, in seconds. Does not advance
/// while threads are descheduled, so traced-vs-untraced overhead ratios
/// stay meaningful on a contended shared machine where wall-clock
/// comparisons of two back-to-back runs are mostly scheduler noise.
double ProcessCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename System>
double TimeTicks(System& system, std::map<int, Vector>& readings,
                 int ticks, double* cpu_seconds) {
  const double cpu_start = ProcessCpuSeconds();
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < ticks; ++t) {
    for (auto& [id, value] : readings) value[0] = SourceValue(id, t);
    if (!system.ProcessTick(readings).ok()) std::abort();
  }
  const auto end = std::chrono::steady_clock::now();
  *cpu_seconds = ProcessCpuSeconds() - cpu_start;
  return std::chrono::duration<double>(end - start).count();
}

struct RunResult {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Sampled per-source answers for the equivalence cross-check.
  std::vector<double> sample_answers;
  int64_t uplink_messages = 0;
  ProtocolFaultStats faults;
};

template <typename System>
RunResult RunWorkload(System& system, int fleet, int ticks, double delta) {
  std::map<int, Vector> readings = SetUpFleet(system, fleet, delta);
  RunResult result;
  result.seconds = TimeTicks(system, readings, ticks, &result.cpu_seconds);
  for (int id = 0; id < fleet; id += std::max(1, fleet / 64)) {
    result.sample_answers.push_back(system.Answer(id).value()[0]);
  }
  result.uplink_messages = system.uplink_traffic().messages;
  result.faults = system.fault_stats();
  return result;
}

/// The --trace digest: one extra run of the same workload with sinks
/// (and wall-clock timing) enabled, summarized via the merged metrics
/// snapshot. The ring is kept small — the per-kind counters behind the
/// digest stay exact no matter how often it wraps.
struct TraceDigest {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  double suppression_ratio = 0.0;
  int64_t suppress = 0;
  int64_t transmit = 0;
};

/// Sink configuration for --trace runs: timing on, and a small ring —
/// the digest reads only the (always-exact) counters, and a ring that
/// fits in L1 keeps the event writes from fighting the filter state for
/// cache on small machines.
ObsOptions BenchObsOptions() {
  ObsOptions obs;
  obs.ring_capacity = 1 << 8;
  obs.record_timing = true;
  return obs;
}

template <typename System>
TraceDigest RunTracedWorkload(System& system, int fleet, int ticks,
                              double delta) {
  if (!system.EnableTracing(BenchObsOptions()).ok()) std::abort();
  TraceDigest digest;
  const RunResult run = RunWorkload(system, fleet, ticks, delta);
  digest.seconds = run.seconds;
  digest.cpu_seconds = run.cpu_seconds;
  const MetricsRegistry metrics = system.MetricsSnapshot();
  digest.suppression_ratio = metrics.gauge("suppression_ratio");
  digest.suppress = metrics.counter("trace.suppress");
  digest.transmit = metrics.counter("trace.transmit");
  return digest;
}

/// Measures tracing overhead by interleaving untraced and traced chunks
/// of one continuous run on one system and comparing each variant's
/// fastest chunk on the process-CPU clock. Same process, same warmed
/// fleet, same caches — the only difference between chunks is whether
/// the sinks are wired, which isolates the instrumentation cost from
/// the scheduler and cache luck that dominates comparisons of whole
/// back-to-back runs on a shared machine (contention only ever adds
/// time, so each variant's minimum is its robust estimate). Chunks run
/// in ABBA order, not strict alternation: periodic contention can
/// phase-lock with a period-2 schedule and starve one variant of every
/// quiet slot.
template <typename System>
double MeasureObsOverheadPct(System& system, int fleet, int ticks,
                             double delta) {
  std::map<int, Vector> readings = SetUpFleet(system, fleet, delta);
  constexpr int kChunksPerVariant = 16;
  const int chunk_ticks = std::max(1, ticks / (2 * kChunksPerVariant));
  double cpu = 0.0;
  // Warmup: converge the filters and arm fast paths before measuring.
  TimeTicks(system, readings, chunk_ticks, &cpu);
  double plain_cpu = std::numeric_limits<double>::infinity();
  double traced_cpu = std::numeric_limits<double>::infinity();
  for (int chunk = 0; chunk < 2 * kChunksPerVariant; ++chunk) {
    const bool traced = chunk % 4 == 1 || chunk % 4 == 2;
    if (traced) {
      if (!system.EnableTracing(BenchObsOptions()).ok()) std::abort();
    } else {
      system.DisableTracing();
    }
    TimeTicks(system, readings, chunk_ticks, &cpu);
    double& best = traced ? traced_cpu : plain_cpu;
    best = std::min(best, cpu);
  }
  system.DisableTracing();
  return (traced_cpu / plain_cpu - 1.0) * 100.0;
}

}  // namespace
}  // namespace dkf::bench

int main(int argc, char** argv) {
  using namespace dkf;
  using namespace dkf::bench;
  const Config config = ParseArgs(argc, argv);

  std::printf("{\n  \"benchmark\": \"runtime_throughput\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"ticks\": %d,\n  \"delta\": %g,\n  \"faults\": %s,\n"
              "  \"trace\": %s,\n  \"obs_enabled\": %s,\n  \"results\": [",
              config.ticks, config.delta, config.faults ? "true" : "false",
              config.trace ? "true" : "false",
              DKF_OBS_ENABLED ? "true" : "false");

  bool first = true;
  for (int fleet : config.fleet_sizes) {
    // Sequential baseline for this fleet size.
    StreamManagerOptions seq_options;
    if (config.faults) {
      seq_options.channel = FaultChannel();
      seq_options.protocol = FaultProtocol();
    }
    StreamManager manager(seq_options);
    const RunResult baseline =
        RunWorkload(manager, fleet, config.ticks, config.delta);
    const double seq_tps = config.ticks / baseline.seconds;

    for (int shards : config.shard_counts) {
      ShardedStreamEngineOptions options;
      options.num_shards = shards;
      if (config.faults) {
        options.channel = FaultChannel();
        options.protocol = FaultProtocol();
      }
      ShardedStreamEngine engine(options);
      const RunResult run =
          RunWorkload(engine, fleet, config.ticks, config.delta);

      TraceDigest traced;
      double obs_overhead_pct = 0.0;
      if (config.trace) {
        // One full traced run for the metrics digest, then the chunked
        // within-run overhead measurement on a fresh engine.
        ShardedStreamEngine traced_engine(options);
        traced = RunTracedWorkload(traced_engine, fleet, config.ticks,
                                   config.delta);
        ShardedStreamEngine chunk_engine(options);
        obs_overhead_pct = MeasureObsOverheadPct(chunk_engine, fleet,
                                                 config.ticks, config.delta);
      }

      bool equivalent = run.uplink_messages == baseline.uplink_messages &&
                        run.faults.resyncs_sent ==
                            baseline.faults.resyncs_sent &&
                        run.faults.resyncs_applied ==
                            baseline.faults.resyncs_applied;
      for (size_t i = 0; i < run.sample_answers.size(); ++i) {
        if (run.sample_answers[i] != baseline.sample_answers[i]) {
          equivalent = false;
        }
      }
      const double tps = config.ticks / run.seconds;
      std::printf(
          "%s\n    {\"sources\": %d, \"shards\": %d, \"seconds\": %.6f, "
          "\"ticks_per_sec\": %.2f, \"source_ticks_per_sec\": %.0f, "
          "\"sources_per_sec\": %.0f, \"peak_rss_bytes\": %lld, "
          "\"sequential_ticks_per_sec\": %.2f, "
          "\"speedup_vs_sequential\": %.3f, \"equivalent\": %s, "
          "\"divergence_events\": %lld, \"resyncs_sent\": %lld, "
          "\"resyncs_applied\": %lld, \"degraded_ticks\": %lld, "
          "\"max_recovery_ticks\": %lld, \"rejected_corrupt\": %lld",
          first ? "" : ",", fleet, engine.num_shards(), run.seconds, tps,
          tps * fleet, tps * fleet,
          static_cast<long long>(PeakRssBytes()), seq_tps, tps / seq_tps,
          equivalent ? "true" : "false",
          static_cast<long long>(run.faults.divergence_events),
          static_cast<long long>(run.faults.resyncs_sent),
          static_cast<long long>(run.faults.resyncs_applied),
          static_cast<long long>(run.faults.degraded_ticks),
          static_cast<long long>(run.faults.max_recovery_ticks),
          static_cast<long long>(run.faults.rejected_corrupt));
      if (config.trace) {
        std::printf(
            ",\n     \"traced_seconds\": %.6f, \"obs_overhead_pct\": %.2f, "
            "\"suppression_ratio\": %.4f, \"trace_suppress\": %lld, "
            "\"trace_transmit\": %lld",
            traced.seconds, obs_overhead_pct, traced.suppression_ratio,
            static_cast<long long>(traced.suppress),
            static_cast<long long>(traced.transmit));
      }
      std::printf("}");
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
