#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "metrics/report.h"
#include "models/model_factory.h"
#include "streamgen/http_traffic_generator.h"
#include "streamgen/power_load_generator.h"
#include "streamgen/trajectory_generator.h"

namespace dkf::bench {

TimeSeries StandardTrajectory() {
  TrajectoryOptions options;  // paper defaults: 4000 pts, 100 ms
  return GenerateTrajectory(options).value().observed;
}

TimeSeries StandardPowerLoad() {
  return GeneratePowerLoad(PowerLoadOptions{}).value();  // 5831 pts
}

TimeSeries StandardHttpTraffic() {
  return GenerateHttpTraffic(HttpTrafficOptions{}).value();  // 5000 bins
}

StateModel Example1LinearModel() {
  ModelNoise noise;  // §4.1: diagonal 0.05
  noise.process_variance = 0.05;
  noise.measurement_variance = 0.05;
  return MakeLinearModel(2, 0.1, noise).value();
}

StateModel Example1ConstantModel() {
  // Near-unity gain: the constant filter adopts each transmitted value,
  // which is what makes it behave exactly like the caching scheme.
  ModelNoise noise;
  noise.process_variance = 10.0;
  noise.measurement_variance = 0.05;
  return MakeConstantModel(2, noise).value();
}

namespace {

ModelNoise LoadNoise() {
  ModelNoise noise;
  noise.process_variance = 25.0;
  noise.measurement_variance = 25.0;
  return noise;
}

ModelNoise TrafficNoise() {
  // Applied to the KF_c-smoothed stream, which is nearly noise-free, so
  // measurements are trusted strongly and the velocity locks onto the
  // smoothed trend.
  ModelNoise noise;
  noise.process_variance = 1e-4;
  noise.measurement_variance = 1e-2;
  return noise;
}

}  // namespace

StateModel Example2LinearModel() {
  return MakeLinearModel(1, 1.0, LoadNoise()).value();
}

StateModel Example2SinusoidalModel() {
  // Align with the generator: diurnal cosine peaking at hour 15; the
  // model's regressor carries the phase of the *increment* of that cosine
  // (omega (k + 1/2 - peak) - pi/2).
  const double omega = 2.0 * M_PI / 24.0;
  const double theta = omega * (0.5 - 15.0) - M_PI / 2.0;
  return MakeSinusoidalModel(omega, theta, 1.0, LoadNoise()).value();
}

StateModel Example2ConstantModel() {
  ModelNoise noise;
  noise.process_variance = 2500.0;  // adopt-the-value configuration
  noise.measurement_variance = 25.0;
  return MakeConstantModel(1, noise).value();
}

StateModel Example3LinearModel() {
  return MakeLinearModel(1, 1.0, TrafficNoise()).value();
}

StateModel Example3ConstantModel() {
  ModelNoise noise;  // adopt-the-value configuration (== caching)
  noise.process_variance = 1000.0;
  noise.measurement_variance = 1.0;
  return MakeConstantModel(1, noise).value();
}

double Example3SmoothingMeasurementVariance() { return 0.01; }

void PrintSweepTable(const std::string& title,
                     const std::string& value_name,
                     const std::vector<ExperimentRow>& rows,
                     const std::vector<double>& deltas,
                     const std::vector<std::string>& predictor_names,
                     double (*extract)(const ExperimentRow&)) {
  std::printf("\n%s\n(cell value: %s)\n", title.c_str(), value_name.c_str());
  std::vector<std::string> header = {"delta"};
  header.insert(header.end(), predictor_names.begin(),
                predictor_names.end());
  AsciiTable table(header);
  size_t row_index = 0;
  for (double delta : deltas) {
    std::vector<double> cells = {delta};
    for (size_t p = 0; p < predictor_names.size(); ++p) {
      cells.push_back(extract(rows[row_index++]));
    }
    table.AddNumericRow(cells);
  }
  table.Print();
}

double ExtractUpdatePercentage(const ExperimentRow& row) {
  return row.update_percentage;
}

double ExtractAvgError(const ExperimentRow& row) { return row.avg_error; }

void MaybeExportRows(const std::string& name,
                     const std::vector<ExperimentRow>& rows) {
  const char* dir = std::getenv("DKF_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status status = WriteExperimentRowsCsv(rows, path);
  if (status.ok()) {
    std::printf("(rows exported to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "csv export failed: %s\n",
                 status.ToString().c_str());
  }
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

}  // namespace dkf::bench
