// Reproduces Figure 3: the Example-1 moving-object dataset (§5.1) — 4000
// samples at 100 ms of piecewise-linear 2-D motion — and benchmarks the
// generator.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "streamgen/trajectory_generator.h"

namespace {

void PrintFigure() {
  using namespace dkf;
  using namespace dkf::bench;
  PrintHeader("Figure 3", "moving-object dataset (synthetic, paper §5.1)");

  TrajectoryOptions options;  // paper defaults
  const TrajectoryData data = GenerateTrajectory(options).value();

  const SeriesStats x_stats = data.observed.Stats(0).value();
  const SeriesStats y_stats = data.observed.Stats(1).value();

  // Per-sample displacement statistics (what the precision sweep competes
  // against).
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  int segments = 1;
  double prev_dx = 0.0;
  double prev_dy = 0.0;
  for (size_t i = 1; i < data.truth.size(); ++i) {
    const double dx = data.truth.value(i, 0) - data.truth.value(i - 1, 0);
    const double dy = data.truth.value(i, 1) - data.truth.value(i - 1, 1);
    const double displacement = std::hypot(dx, dy);
    total_displacement += displacement;
    max_displacement = std::max(max_displacement, displacement);
    if (i > 1 && (std::fabs(dx - prev_dx) > 1e-9 ||
                  std::fabs(dy - prev_dy) > 1e-9)) {
      ++segments;
    }
    prev_dx = dx;
    prev_dy = dy;
  }

  AsciiTable table({"property", "value"});
  table.AddRow({"samples", StrFormat("%zu", data.observed.size())});
  table.AddRow({"sampling interval (s)", StrFormat("%.3f", options.dt)});
  table.AddRow({"x range", StrFormat("[%.1f, %.1f]", x_stats.min,
                                     x_stats.max)});
  table.AddRow({"y range", StrFormat("[%.1f, %.1f]", y_stats.min,
                                     y_stats.max)});
  table.AddRow({"linear segments", StrFormat("%d", segments)});
  table.AddRow({"mean displacement / sample",
                StrFormat("%.3f", total_displacement /
                                      static_cast<double>(
                                          data.truth.size() - 1))});
  table.AddRow({"max displacement / sample",
                StrFormat("%.3f", max_displacement)});
  table.AddRow(
      {"observation noise stddev", StrFormat("%.3f", options.noise_stddev)});
  table.Print();
}

void BM_GenerateTrajectory(benchmark::State& state) {
  dkf::TrajectoryOptions options;
  options.num_points = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto data = dkf::GenerateTrajectory(options);
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTrajectory)->Arg(4000)->Arg(40000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
