// Ablation A6: KF stream synopsis (§6 future-work item "storing stream
// summaries under a specified reconstruction error tolerance"). Sweeps
// the tolerance and reports compression ratio, storage, and realized
// reconstruction error for the linear and constant models on the
// power-load stream.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/synopsis.h"
#include "models/model_factory.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

double MaxReconstructionError(const TimeSeries& original,
                              const TimeSeries& reconstructed) {
  double worst = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(original.value(i) - reconstructed.value(i)));
  }
  return worst;
}

void PrintFigure() {
  std::printf(
      "Ablation A6: KF synopsis of the power-load stream (5831 samples, "
      "8 B/sample raw = %zu B).\n\n",
      size_t{5831} * sizeof(double));
  const TimeSeries load = StandardPowerLoad();

  AsciiTable table({"tolerance", "model", "stored samples", "ratio",
                    "storage bytes", "max recon err"});
  for (double tolerance : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    for (const char* which : {"linear", "constant"}) {
      const StateModel model = std::string(which) == "linear"
                                   ? Example2LinearModel()
                                   : Example2ConstantModel();
      SynopsisOptions options;
      options.tolerance = tolerance;
      const KfSynopsis synopsis =
          KfSynopsis::Build(load, model, options).value();
      const TimeSeries reconstructed = synopsis.Reconstruct().value();
      table.AddRow(
          {StrFormat("%.0f", tolerance), which,
           StrFormat("%zu", synopsis.entries().size()),
           StrFormat("%.3f", synopsis.CompressionRatio()),
           StrFormat("%zu", synopsis.StorageBytes()),
           StrFormat("%.1f", MaxReconstructionError(load, reconstructed))});
    }
  }
  table.Print();
  std::printf(
      "\nReading the table: max reconstruction error never exceeds the "
      "tolerance (guaranteed by construction); the better-matched linear "
      "model stores fewer samples at every tolerance.\n");
}

void BM_SynopsisBuild(benchmark::State& state) {
  const TimeSeries load = StandardPowerLoad();
  const StateModel model = Example2LinearModel();
  SynopsisOptions options;
  options.tolerance = 100.0;
  for (auto _ : state) {
    auto synopsis = KfSynopsis::Build(load, model, options);
    benchmark::DoNotOptimize(synopsis);
  }
  state.SetItemsProcessed(state.iterations() * load.size());
}
BENCHMARK(BM_SynopsisBuild);

void BM_SynopsisReconstruct(benchmark::State& state) {
  const TimeSeries load = StandardPowerLoad();
  SynopsisOptions options;
  options.tolerance = 100.0;
  const KfSynopsis synopsis =
      KfSynopsis::Build(load, Example2LinearModel(), options).value();
  for (auto _ : state) {
    auto reconstructed = synopsis.Reconstruct();
    benchmark::DoNotOptimize(reconstructed);
  }
  state.SetItemsProcessed(state.iterations() * load.size());
}
BENCHMARK(BM_SynopsisReconstruct);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
