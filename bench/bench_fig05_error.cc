// Reproduces Figure 5: average error value vs precision width (Example 1,
// §5.1). Error metric: |dx| + |dy| averaged over all readings.
//
// Expected shape (paper): constant KF and caching nearly identical; the
// linear KF slightly worse at low precision widths, better at high ones;
// all errors grow with delta.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metrics/experiment.h"

namespace {

using namespace dkf;
using namespace dkf::bench;

const std::vector<double> kDeltas = {0.5, 1.0, 2.0, 3.0, 4.0,
                                     5.0, 6.0, 8.0, 10.0};

void PrintFigure() {
  PrintHeader("Figure 5",
              "average error vs precision width (Example 1)");
  const TimeSeries trajectory = StandardTrajectory();
  auto caching = CachedValuePredictor::Create(2).value();
  auto constant = KalmanPredictor::Create(Example1ConstantModel()).value();
  auto linear = KalmanPredictor::Create(Example1LinearModel()).value();
  const std::vector<const Predictor*> prototypes = {&caching, &constant,
                                                    &linear};
  const auto rows = RunSweep(trajectory, prototypes, kDeltas).value();
  MaybeExportRows("fig05_error", rows);
  PrintSweepTable("Figure 5: average error value vs precision width",
                  "avg |dx|+|dy|", rows, kDeltas,
                  {"caching", "constant-KF", "linear-KF"}, ExtractAvgError);
}

void BM_ErrorAccountingOverhead(benchmark::State& state) {
  const TimeSeries trajectory = StandardTrajectory();
  auto caching = CachedValuePredictor::Create(2).value();
  for (auto _ : state) {
    auto row = RunSuppressionExperiment(trajectory, caching, 3.0);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * trajectory.size());
}
BENCHMARK(BM_ErrorAccountingOverhead);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
