# Empty dependencies file for dkf_explorer.
# This may be replaced when dependencies are built.
