file(REMOVE_RECURSE
  "CMakeFiles/dkf_explorer.dir/dkf_explorer.cpp.o"
  "CMakeFiles/dkf_explorer.dir/dkf_explorer.cpp.o.d"
  "dkf_explorer"
  "dkf_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
