file(REMOVE_RECURSE
  "CMakeFiles/power_grid_monitor.dir/power_grid_monitor.cpp.o"
  "CMakeFiles/power_grid_monitor.dir/power_grid_monitor.cpp.o.d"
  "power_grid_monitor"
  "power_grid_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
