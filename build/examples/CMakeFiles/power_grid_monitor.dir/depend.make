# Empty dependencies file for power_grid_monitor.
# This may be replaced when dependencies are built.
