
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/model_factory.cc" "src/models/CMakeFiles/dkf_models.dir/model_factory.cc.o" "gcc" "src/models/CMakeFiles/dkf_models.dir/model_factory.cc.o.d"
  "/root/repo/src/models/nonlinear_models.cc" "src/models/CMakeFiles/dkf_models.dir/nonlinear_models.cc.o" "gcc" "src/models/CMakeFiles/dkf_models.dir/nonlinear_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/filter/CMakeFiles/dkf_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dkf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
