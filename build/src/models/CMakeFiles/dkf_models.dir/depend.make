# Empty dependencies file for dkf_models.
# This may be replaced when dependencies are built.
