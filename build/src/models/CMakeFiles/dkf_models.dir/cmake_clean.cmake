file(REMOVE_RECURSE
  "CMakeFiles/dkf_models.dir/model_factory.cc.o"
  "CMakeFiles/dkf_models.dir/model_factory.cc.o.d"
  "CMakeFiles/dkf_models.dir/nonlinear_models.cc.o"
  "CMakeFiles/dkf_models.dir/nonlinear_models.cc.o.d"
  "libdkf_models.a"
  "libdkf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
