file(REMOVE_RECURSE
  "libdkf_models.a"
)
