file(REMOVE_RECURSE
  "CMakeFiles/dkf_core.dir/adaptive_sampling.cc.o"
  "CMakeFiles/dkf_core.dir/adaptive_sampling.cc.o.d"
  "CMakeFiles/dkf_core.dir/dual_link.cc.o"
  "CMakeFiles/dkf_core.dir/dual_link.cc.o.d"
  "CMakeFiles/dkf_core.dir/ekf_predictor.cc.o"
  "CMakeFiles/dkf_core.dir/ekf_predictor.cc.o.d"
  "CMakeFiles/dkf_core.dir/model_switching.cc.o"
  "CMakeFiles/dkf_core.dir/model_switching.cc.o.d"
  "CMakeFiles/dkf_core.dir/moving_average.cc.o"
  "CMakeFiles/dkf_core.dir/moving_average.cc.o.d"
  "CMakeFiles/dkf_core.dir/outlier_guard.cc.o"
  "CMakeFiles/dkf_core.dir/outlier_guard.cc.o.d"
  "CMakeFiles/dkf_core.dir/predictor.cc.o"
  "CMakeFiles/dkf_core.dir/predictor.cc.o.d"
  "CMakeFiles/dkf_core.dir/smoothing.cc.o"
  "CMakeFiles/dkf_core.dir/smoothing.cc.o.d"
  "CMakeFiles/dkf_core.dir/suppression.cc.o"
  "CMakeFiles/dkf_core.dir/suppression.cc.o.d"
  "CMakeFiles/dkf_core.dir/synopsis.cc.o"
  "CMakeFiles/dkf_core.dir/synopsis.cc.o.d"
  "CMakeFiles/dkf_core.dir/synopsis_io.cc.o"
  "CMakeFiles/dkf_core.dir/synopsis_io.cc.o.d"
  "libdkf_core.a"
  "libdkf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
