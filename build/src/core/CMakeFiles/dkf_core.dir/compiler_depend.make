# Empty compiler generated dependencies file for dkf_core.
# This may be replaced when dependencies are built.
