file(REMOVE_RECURSE
  "libdkf_core.a"
)
