
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_sampling.cc" "src/core/CMakeFiles/dkf_core.dir/adaptive_sampling.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/adaptive_sampling.cc.o.d"
  "/root/repo/src/core/dual_link.cc" "src/core/CMakeFiles/dkf_core.dir/dual_link.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/dual_link.cc.o.d"
  "/root/repo/src/core/ekf_predictor.cc" "src/core/CMakeFiles/dkf_core.dir/ekf_predictor.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/ekf_predictor.cc.o.d"
  "/root/repo/src/core/model_switching.cc" "src/core/CMakeFiles/dkf_core.dir/model_switching.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/model_switching.cc.o.d"
  "/root/repo/src/core/moving_average.cc" "src/core/CMakeFiles/dkf_core.dir/moving_average.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/moving_average.cc.o.d"
  "/root/repo/src/core/outlier_guard.cc" "src/core/CMakeFiles/dkf_core.dir/outlier_guard.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/outlier_guard.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/dkf_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/smoothing.cc" "src/core/CMakeFiles/dkf_core.dir/smoothing.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/smoothing.cc.o.d"
  "/root/repo/src/core/suppression.cc" "src/core/CMakeFiles/dkf_core.dir/suppression.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/suppression.cc.o.d"
  "/root/repo/src/core/synopsis.cc" "src/core/CMakeFiles/dkf_core.dir/synopsis.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/synopsis.cc.o.d"
  "/root/repo/src/core/synopsis_io.cc" "src/core/CMakeFiles/dkf_core.dir/synopsis_io.cc.o" "gcc" "src/core/CMakeFiles/dkf_core.dir/synopsis_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/dkf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/dkf_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dkf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
