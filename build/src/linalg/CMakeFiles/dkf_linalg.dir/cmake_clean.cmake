file(REMOVE_RECURSE
  "CMakeFiles/dkf_linalg.dir/decompose.cc.o"
  "CMakeFiles/dkf_linalg.dir/decompose.cc.o.d"
  "CMakeFiles/dkf_linalg.dir/matrix.cc.o"
  "CMakeFiles/dkf_linalg.dir/matrix.cc.o.d"
  "libdkf_linalg.a"
  "libdkf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
