# Empty dependencies file for dkf_linalg.
# This may be replaced when dependencies are built.
