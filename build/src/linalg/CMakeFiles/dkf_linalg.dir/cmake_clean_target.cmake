file(REMOVE_RECURSE
  "libdkf_linalg.a"
)
