# Empty compiler generated dependencies file for dkf_linalg.
# This may be replaced when dependencies are built.
