file(REMOVE_RECURSE
  "CMakeFiles/dkf_query.dir/adaptive_filters.cc.o"
  "CMakeFiles/dkf_query.dir/adaptive_filters.cc.o.d"
  "CMakeFiles/dkf_query.dir/aggregate.cc.o"
  "CMakeFiles/dkf_query.dir/aggregate.cc.o.d"
  "CMakeFiles/dkf_query.dir/precision_allocation.cc.o"
  "CMakeFiles/dkf_query.dir/precision_allocation.cc.o.d"
  "CMakeFiles/dkf_query.dir/registry.cc.o"
  "CMakeFiles/dkf_query.dir/registry.cc.o.d"
  "libdkf_query.a"
  "libdkf_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
