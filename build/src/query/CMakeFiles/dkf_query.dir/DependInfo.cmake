
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/adaptive_filters.cc" "src/query/CMakeFiles/dkf_query.dir/adaptive_filters.cc.o" "gcc" "src/query/CMakeFiles/dkf_query.dir/adaptive_filters.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/dkf_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/dkf_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/precision_allocation.cc" "src/query/CMakeFiles/dkf_query.dir/precision_allocation.cc.o" "gcc" "src/query/CMakeFiles/dkf_query.dir/precision_allocation.cc.o.d"
  "/root/repo/src/query/registry.cc" "src/query/CMakeFiles/dkf_query.dir/registry.cc.o" "gcc" "src/query/CMakeFiles/dkf_query.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
