file(REMOVE_RECURSE
  "libdkf_query.a"
)
