# Empty dependencies file for dkf_query.
# This may be replaced when dependencies are built.
