
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsms/channel.cc" "src/dsms/CMakeFiles/dkf_dsms.dir/channel.cc.o" "gcc" "src/dsms/CMakeFiles/dkf_dsms.dir/channel.cc.o.d"
  "/root/repo/src/dsms/server_node.cc" "src/dsms/CMakeFiles/dkf_dsms.dir/server_node.cc.o" "gcc" "src/dsms/CMakeFiles/dkf_dsms.dir/server_node.cc.o.d"
  "/root/repo/src/dsms/simulation.cc" "src/dsms/CMakeFiles/dkf_dsms.dir/simulation.cc.o" "gcc" "src/dsms/CMakeFiles/dkf_dsms.dir/simulation.cc.o.d"
  "/root/repo/src/dsms/source_node.cc" "src/dsms/CMakeFiles/dkf_dsms.dir/source_node.cc.o" "gcc" "src/dsms/CMakeFiles/dkf_dsms.dir/source_node.cc.o.d"
  "/root/repo/src/dsms/stream_manager.cc" "src/dsms/CMakeFiles/dkf_dsms.dir/stream_manager.cc.o" "gcc" "src/dsms/CMakeFiles/dkf_dsms.dir/stream_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dkf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dkf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dkf_query.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/dkf_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dkf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
