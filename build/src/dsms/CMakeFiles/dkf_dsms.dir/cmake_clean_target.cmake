file(REMOVE_RECURSE
  "libdkf_dsms.a"
)
