# Empty compiler generated dependencies file for dkf_dsms.
# This may be replaced when dependencies are built.
