file(REMOVE_RECURSE
  "CMakeFiles/dkf_dsms.dir/channel.cc.o"
  "CMakeFiles/dkf_dsms.dir/channel.cc.o.d"
  "CMakeFiles/dkf_dsms.dir/server_node.cc.o"
  "CMakeFiles/dkf_dsms.dir/server_node.cc.o.d"
  "CMakeFiles/dkf_dsms.dir/simulation.cc.o"
  "CMakeFiles/dkf_dsms.dir/simulation.cc.o.d"
  "CMakeFiles/dkf_dsms.dir/source_node.cc.o"
  "CMakeFiles/dkf_dsms.dir/source_node.cc.o.d"
  "CMakeFiles/dkf_dsms.dir/stream_manager.cc.o"
  "CMakeFiles/dkf_dsms.dir/stream_manager.cc.o.d"
  "libdkf_dsms.a"
  "libdkf_dsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_dsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
