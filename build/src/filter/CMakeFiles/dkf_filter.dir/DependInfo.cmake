
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/extended_kalman_filter.cc" "src/filter/CMakeFiles/dkf_filter.dir/extended_kalman_filter.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/extended_kalman_filter.cc.o.d"
  "/root/repo/src/filter/kalman_filter.cc" "src/filter/CMakeFiles/dkf_filter.dir/kalman_filter.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/kalman_filter.cc.o.d"
  "/root/repo/src/filter/noise_estimation.cc" "src/filter/CMakeFiles/dkf_filter.dir/noise_estimation.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/noise_estimation.cc.o.d"
  "/root/repo/src/filter/recursive_least_squares.cc" "src/filter/CMakeFiles/dkf_filter.dir/recursive_least_squares.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/recursive_least_squares.cc.o.d"
  "/root/repo/src/filter/rts_smoother.cc" "src/filter/CMakeFiles/dkf_filter.dir/rts_smoother.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/rts_smoother.cc.o.d"
  "/root/repo/src/filter/steady_state.cc" "src/filter/CMakeFiles/dkf_filter.dir/steady_state.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/steady_state.cc.o.d"
  "/root/repo/src/filter/unscented_kalman_filter.cc" "src/filter/CMakeFiles/dkf_filter.dir/unscented_kalman_filter.cc.o" "gcc" "src/filter/CMakeFiles/dkf_filter.dir/unscented_kalman_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/dkf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
