file(REMOVE_RECURSE
  "CMakeFiles/dkf_filter.dir/extended_kalman_filter.cc.o"
  "CMakeFiles/dkf_filter.dir/extended_kalman_filter.cc.o.d"
  "CMakeFiles/dkf_filter.dir/kalman_filter.cc.o"
  "CMakeFiles/dkf_filter.dir/kalman_filter.cc.o.d"
  "CMakeFiles/dkf_filter.dir/noise_estimation.cc.o"
  "CMakeFiles/dkf_filter.dir/noise_estimation.cc.o.d"
  "CMakeFiles/dkf_filter.dir/recursive_least_squares.cc.o"
  "CMakeFiles/dkf_filter.dir/recursive_least_squares.cc.o.d"
  "CMakeFiles/dkf_filter.dir/rts_smoother.cc.o"
  "CMakeFiles/dkf_filter.dir/rts_smoother.cc.o.d"
  "CMakeFiles/dkf_filter.dir/steady_state.cc.o"
  "CMakeFiles/dkf_filter.dir/steady_state.cc.o.d"
  "CMakeFiles/dkf_filter.dir/unscented_kalman_filter.cc.o"
  "CMakeFiles/dkf_filter.dir/unscented_kalman_filter.cc.o.d"
  "libdkf_filter.a"
  "libdkf_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
