# Empty dependencies file for dkf_filter.
# This may be replaced when dependencies are built.
