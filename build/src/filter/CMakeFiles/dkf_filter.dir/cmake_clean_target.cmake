file(REMOVE_RECURSE
  "libdkf_filter.a"
)
