file(REMOVE_RECURSE
  "CMakeFiles/dkf_common.dir/csv.cc.o"
  "CMakeFiles/dkf_common.dir/csv.cc.o.d"
  "CMakeFiles/dkf_common.dir/logging.cc.o"
  "CMakeFiles/dkf_common.dir/logging.cc.o.d"
  "CMakeFiles/dkf_common.dir/rng.cc.o"
  "CMakeFiles/dkf_common.dir/rng.cc.o.d"
  "CMakeFiles/dkf_common.dir/status.cc.o"
  "CMakeFiles/dkf_common.dir/status.cc.o.d"
  "CMakeFiles/dkf_common.dir/string_util.cc.o"
  "CMakeFiles/dkf_common.dir/string_util.cc.o.d"
  "CMakeFiles/dkf_common.dir/table.cc.o"
  "CMakeFiles/dkf_common.dir/table.cc.o.d"
  "CMakeFiles/dkf_common.dir/time_series.cc.o"
  "CMakeFiles/dkf_common.dir/time_series.cc.o.d"
  "libdkf_common.a"
  "libdkf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
