file(REMOVE_RECURSE
  "libdkf_common.a"
)
