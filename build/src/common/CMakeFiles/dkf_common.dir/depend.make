# Empty dependencies file for dkf_common.
# This may be replaced when dependencies are built.
