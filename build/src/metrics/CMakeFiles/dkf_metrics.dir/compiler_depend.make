# Empty compiler generated dependencies file for dkf_metrics.
# This may be replaced when dependencies are built.
