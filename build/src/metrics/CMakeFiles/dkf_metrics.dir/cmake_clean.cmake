file(REMOVE_RECURSE
  "CMakeFiles/dkf_metrics.dir/consistency.cc.o"
  "CMakeFiles/dkf_metrics.dir/consistency.cc.o.d"
  "CMakeFiles/dkf_metrics.dir/experiment.cc.o"
  "CMakeFiles/dkf_metrics.dir/experiment.cc.o.d"
  "CMakeFiles/dkf_metrics.dir/metrics.cc.o"
  "CMakeFiles/dkf_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/dkf_metrics.dir/report.cc.o"
  "CMakeFiles/dkf_metrics.dir/report.cc.o.d"
  "libdkf_metrics.a"
  "libdkf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
