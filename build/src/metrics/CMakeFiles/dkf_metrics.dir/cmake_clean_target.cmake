file(REMOVE_RECURSE
  "libdkf_metrics.a"
)
