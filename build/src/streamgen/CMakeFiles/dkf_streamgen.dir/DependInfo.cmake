
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streamgen/http_traffic_generator.cc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/http_traffic_generator.cc.o" "gcc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/http_traffic_generator.cc.o.d"
  "/root/repo/src/streamgen/noise.cc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/noise.cc.o" "gcc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/noise.cc.o.d"
  "/root/repo/src/streamgen/power_load_generator.cc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/power_load_generator.cc.o" "gcc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/power_load_generator.cc.o.d"
  "/root/repo/src/streamgen/trajectory_generator.cc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/trajectory_generator.cc.o" "gcc" "src/streamgen/CMakeFiles/dkf_streamgen.dir/trajectory_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
