# Empty dependencies file for dkf_streamgen.
# This may be replaced when dependencies are built.
