# Empty compiler generated dependencies file for dkf_streamgen.
# This may be replaced when dependencies are built.
