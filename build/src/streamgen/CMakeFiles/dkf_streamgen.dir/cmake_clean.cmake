file(REMOVE_RECURSE
  "CMakeFiles/dkf_streamgen.dir/http_traffic_generator.cc.o"
  "CMakeFiles/dkf_streamgen.dir/http_traffic_generator.cc.o.d"
  "CMakeFiles/dkf_streamgen.dir/noise.cc.o"
  "CMakeFiles/dkf_streamgen.dir/noise.cc.o.d"
  "CMakeFiles/dkf_streamgen.dir/power_load_generator.cc.o"
  "CMakeFiles/dkf_streamgen.dir/power_load_generator.cc.o.d"
  "CMakeFiles/dkf_streamgen.dir/trajectory_generator.cc.o"
  "CMakeFiles/dkf_streamgen.dir/trajectory_generator.cc.o.d"
  "libdkf_streamgen.a"
  "libdkf_streamgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_streamgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
