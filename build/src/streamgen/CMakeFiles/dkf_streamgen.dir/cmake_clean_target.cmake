file(REMOVE_RECURSE
  "libdkf_streamgen.a"
)
