# Empty dependencies file for bench_abl_ekf.
# This may be replaced when dependencies are built.
