file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ekf.dir/bench_abl_ekf.cc.o"
  "CMakeFiles/bench_abl_ekf.dir/bench_abl_ekf.cc.o.d"
  "bench_abl_ekf"
  "bench_abl_ekf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ekf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
