# Empty dependencies file for bench_fig11_smoothed_dkf.
# This may be replaced when dependencies are built.
