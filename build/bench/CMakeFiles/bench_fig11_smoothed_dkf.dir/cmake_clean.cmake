file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_smoothed_dkf.dir/bench_fig11_smoothed_dkf.cc.o"
  "CMakeFiles/bench_fig11_smoothed_dkf.dir/bench_fig11_smoothed_dkf.cc.o.d"
  "bench_fig11_smoothed_dkf"
  "bench_fig11_smoothed_dkf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_smoothed_dkf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
