# Empty compiler generated dependencies file for bench_abl_model_switching.
# This may be replaced when dependencies are built.
