file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_model_switching.dir/bench_abl_model_switching.cc.o"
  "CMakeFiles/bench_abl_model_switching.dir/bench_abl_model_switching.cc.o.d"
  "bench_abl_model_switching"
  "bench_abl_model_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_model_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
