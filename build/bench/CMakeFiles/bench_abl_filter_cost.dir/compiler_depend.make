# Empty compiler generated dependencies file for bench_abl_filter_cost.
# This may be replaced when dependencies are built.
