file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_filter_cost.dir/bench_abl_filter_cost.cc.o"
  "CMakeFiles/bench_abl_filter_cost.dir/bench_abl_filter_cost.cc.o.d"
  "bench_abl_filter_cost"
  "bench_abl_filter_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_filter_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
