# Empty dependencies file for bench_abl_outlier_guard.
# This may be replaced when dependencies are built.
