file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_outlier_guard.dir/bench_abl_outlier_guard.cc.o"
  "CMakeFiles/bench_abl_outlier_guard.dir/bench_abl_outlier_guard.cc.o.d"
  "bench_abl_outlier_guard"
  "bench_abl_outlier_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_outlier_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
