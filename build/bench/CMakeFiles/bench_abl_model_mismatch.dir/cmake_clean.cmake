file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_model_mismatch.dir/bench_abl_model_mismatch.cc.o"
  "CMakeFiles/bench_abl_model_mismatch.dir/bench_abl_model_mismatch.cc.o.d"
  "bench_abl_model_mismatch"
  "bench_abl_model_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_model_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
