# Empty dependencies file for bench_abl_model_mismatch.
# This may be replaced when dependencies are built.
