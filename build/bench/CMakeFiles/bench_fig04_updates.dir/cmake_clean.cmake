file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_updates.dir/bench_fig04_updates.cc.o"
  "CMakeFiles/bench_fig04_updates.dir/bench_fig04_updates.cc.o.d"
  "bench_fig04_updates"
  "bench_fig04_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
