# Empty dependencies file for bench_abl_noise_adaptation.
# This may be replaced when dependencies are built.
