# Empty compiler generated dependencies file for bench_abl_adaptive_filters.
# This may be replaced when dependencies are built.
