file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_adaptive_filters.dir/bench_abl_adaptive_filters.cc.o"
  "CMakeFiles/bench_abl_adaptive_filters.dir/bench_abl_adaptive_filters.cc.o.d"
  "bench_abl_adaptive_filters"
  "bench_abl_adaptive_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_adaptive_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
