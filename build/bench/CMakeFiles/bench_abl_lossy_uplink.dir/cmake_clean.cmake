file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_lossy_uplink.dir/bench_abl_lossy_uplink.cc.o"
  "CMakeFiles/bench_abl_lossy_uplink.dir/bench_abl_lossy_uplink.cc.o.d"
  "bench_abl_lossy_uplink"
  "bench_abl_lossy_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lossy_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
