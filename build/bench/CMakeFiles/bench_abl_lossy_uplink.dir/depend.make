# Empty dependencies file for bench_abl_lossy_uplink.
# This may be replaced when dependencies are built.
