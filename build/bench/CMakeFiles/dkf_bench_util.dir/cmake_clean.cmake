file(REMOVE_RECURSE
  "CMakeFiles/dkf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dkf_bench_util.dir/bench_util.cc.o.d"
  "libdkf_bench_util.a"
  "libdkf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
