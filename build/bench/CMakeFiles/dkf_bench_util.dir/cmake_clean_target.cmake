file(REMOVE_RECURSE
  "libdkf_bench_util.a"
)
