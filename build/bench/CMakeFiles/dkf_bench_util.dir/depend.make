# Empty dependencies file for dkf_bench_util.
# This may be replaced when dependencies are built.
