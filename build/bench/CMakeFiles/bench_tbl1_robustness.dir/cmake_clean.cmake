file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl1_robustness.dir/bench_tbl1_robustness.cc.o"
  "CMakeFiles/bench_tbl1_robustness.dir/bench_tbl1_robustness.cc.o.d"
  "bench_tbl1_robustness"
  "bench_tbl1_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl1_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
