# Empty dependencies file for bench_tbl1_robustness.
# This may be replaced when dependencies are built.
