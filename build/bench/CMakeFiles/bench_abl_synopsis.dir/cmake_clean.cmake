file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_synopsis.dir/bench_abl_synopsis.cc.o"
  "CMakeFiles/bench_abl_synopsis.dir/bench_abl_synopsis.cc.o.d"
  "bench_abl_synopsis"
  "bench_abl_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
