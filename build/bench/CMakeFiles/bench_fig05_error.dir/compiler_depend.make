# Empty compiler generated dependencies file for bench_fig05_error.
# This may be replaced when dependencies are built.
