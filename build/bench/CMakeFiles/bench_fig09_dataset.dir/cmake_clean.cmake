file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_dataset.dir/bench_fig09_dataset.cc.o"
  "CMakeFiles/bench_fig09_dataset.dir/bench_fig09_dataset.cc.o.d"
  "bench_fig09_dataset"
  "bench_fig09_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
