file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_smoothing.dir/bench_fig10_smoothing.cc.o"
  "CMakeFiles/bench_fig10_smoothing.dir/bench_fig10_smoothing.cc.o.d"
  "bench_fig10_smoothing"
  "bench_fig10_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
