# Empty dependencies file for bench_fig10_smoothing.
# This may be replaced when dependencies are built.
