file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_adaptive_sampling.dir/bench_abl_adaptive_sampling.cc.o"
  "CMakeFiles/bench_abl_adaptive_sampling.dir/bench_abl_adaptive_sampling.cc.o.d"
  "bench_abl_adaptive_sampling"
  "bench_abl_adaptive_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_adaptive_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
