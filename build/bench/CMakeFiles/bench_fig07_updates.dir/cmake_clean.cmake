file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_updates.dir/bench_fig07_updates.cc.o"
  "CMakeFiles/bench_fig07_updates.dir/bench_fig07_updates.cc.o.d"
  "bench_fig07_updates"
  "bench_fig07_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
