# Empty dependencies file for bench_fig07_updates.
# This may be replaced when dependencies are built.
