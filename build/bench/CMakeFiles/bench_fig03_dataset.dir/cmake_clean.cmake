file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_dataset.dir/bench_fig03_dataset.cc.o"
  "CMakeFiles/bench_fig03_dataset.dir/bench_fig03_dataset.cc.o.d"
  "bench_fig03_dataset"
  "bench_fig03_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
