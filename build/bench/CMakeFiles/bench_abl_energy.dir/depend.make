# Empty dependencies file for bench_abl_energy.
# This may be replaced when dependencies are built.
