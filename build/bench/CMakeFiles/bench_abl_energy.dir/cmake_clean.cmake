file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_energy.dir/bench_abl_energy.cc.o"
  "CMakeFiles/bench_abl_energy.dir/bench_abl_energy.cc.o.d"
  "bench_abl_energy"
  "bench_abl_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
