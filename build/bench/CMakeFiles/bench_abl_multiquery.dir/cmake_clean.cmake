file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_multiquery.dir/bench_abl_multiquery.cc.o"
  "CMakeFiles/bench_abl_multiquery.dir/bench_abl_multiquery.cc.o.d"
  "bench_abl_multiquery"
  "bench_abl_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
