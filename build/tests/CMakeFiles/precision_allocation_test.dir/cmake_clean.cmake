file(REMOVE_RECURSE
  "CMakeFiles/precision_allocation_test.dir/query/precision_allocation_test.cc.o"
  "CMakeFiles/precision_allocation_test.dir/query/precision_allocation_test.cc.o.d"
  "precision_allocation_test"
  "precision_allocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
