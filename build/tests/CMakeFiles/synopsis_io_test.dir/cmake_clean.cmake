file(REMOVE_RECURSE
  "CMakeFiles/synopsis_io_test.dir/core/synopsis_io_test.cc.o"
  "CMakeFiles/synopsis_io_test.dir/core/synopsis_io_test.cc.o.d"
  "synopsis_io_test"
  "synopsis_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synopsis_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
