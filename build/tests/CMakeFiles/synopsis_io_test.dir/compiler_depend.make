# Empty compiler generated dependencies file for synopsis_io_test.
# This may be replaced when dependencies are built.
