file(REMOVE_RECURSE
  "CMakeFiles/rts_smoother_test.dir/filter/rts_smoother_test.cc.o"
  "CMakeFiles/rts_smoother_test.dir/filter/rts_smoother_test.cc.o.d"
  "rts_smoother_test"
  "rts_smoother_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_smoother_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
