# Empty dependencies file for rts_smoother_test.
# This may be replaced when dependencies are built.
