file(REMOVE_RECURSE
  "CMakeFiles/model_factory_test.dir/models/model_factory_test.cc.o"
  "CMakeFiles/model_factory_test.dir/models/model_factory_test.cc.o.d"
  "model_factory_test"
  "model_factory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
