# Empty dependencies file for model_factory_test.
# This may be replaced when dependencies are built.
