file(REMOVE_RECURSE
  "CMakeFiles/noise_estimation_test.dir/filter/noise_estimation_test.cc.o"
  "CMakeFiles/noise_estimation_test.dir/filter/noise_estimation_test.cc.o.d"
  "noise_estimation_test"
  "noise_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
