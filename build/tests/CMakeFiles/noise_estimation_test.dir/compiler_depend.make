# Empty compiler generated dependencies file for noise_estimation_test.
# This may be replaced when dependencies are built.
