file(REMOVE_RECURSE
  "CMakeFiles/outlier_guard_test.dir/core/outlier_guard_test.cc.o"
  "CMakeFiles/outlier_guard_test.dir/core/outlier_guard_test.cc.o.d"
  "outlier_guard_test"
  "outlier_guard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
