file(REMOVE_RECURSE
  "CMakeFiles/model_switching_test.dir/core/model_switching_test.cc.o"
  "CMakeFiles/model_switching_test.dir/core/model_switching_test.cc.o.d"
  "model_switching_test"
  "model_switching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_switching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
