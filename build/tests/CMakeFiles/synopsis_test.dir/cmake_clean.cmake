file(REMOVE_RECURSE
  "CMakeFiles/synopsis_test.dir/core/synopsis_test.cc.o"
  "CMakeFiles/synopsis_test.dir/core/synopsis_test.cc.o.d"
  "synopsis_test"
  "synopsis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synopsis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
