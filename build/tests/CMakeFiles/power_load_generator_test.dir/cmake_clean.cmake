file(REMOVE_RECURSE
  "CMakeFiles/power_load_generator_test.dir/streamgen/power_load_generator_test.cc.o"
  "CMakeFiles/power_load_generator_test.dir/streamgen/power_load_generator_test.cc.o.d"
  "power_load_generator_test"
  "power_load_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_load_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
