# Empty compiler generated dependencies file for power_load_generator_test.
# This may be replaced when dependencies are built.
