file(REMOVE_RECURSE
  "CMakeFiles/ekf_predictor_test.dir/core/ekf_predictor_test.cc.o"
  "CMakeFiles/ekf_predictor_test.dir/core/ekf_predictor_test.cc.o.d"
  "ekf_predictor_test"
  "ekf_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekf_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
