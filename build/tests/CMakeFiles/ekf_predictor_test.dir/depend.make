# Empty dependencies file for ekf_predictor_test.
# This may be replaced when dependencies are built.
