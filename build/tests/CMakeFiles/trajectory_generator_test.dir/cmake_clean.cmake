file(REMOVE_RECURSE
  "CMakeFiles/trajectory_generator_test.dir/streamgen/trajectory_generator_test.cc.o"
  "CMakeFiles/trajectory_generator_test.dir/streamgen/trajectory_generator_test.cc.o.d"
  "trajectory_generator_test"
  "trajectory_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
