file(REMOVE_RECURSE
  "CMakeFiles/energy_model_test.dir/dsms/energy_model_test.cc.o"
  "CMakeFiles/energy_model_test.dir/dsms/energy_model_test.cc.o.d"
  "energy_model_test"
  "energy_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
