file(REMOVE_RECURSE
  "CMakeFiles/kalman_filter_test.dir/filter/kalman_filter_test.cc.o"
  "CMakeFiles/kalman_filter_test.dir/filter/kalman_filter_test.cc.o.d"
  "kalman_filter_test"
  "kalman_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kalman_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
