# Empty dependencies file for example3_integration_test.
# This may be replaced when dependencies are built.
