file(REMOVE_RECURSE
  "CMakeFiles/example3_integration_test.dir/integration/example3_integration_test.cc.o"
  "CMakeFiles/example3_integration_test.dir/integration/example3_integration_test.cc.o.d"
  "example3_integration_test"
  "example3_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example3_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
