# Empty dependencies file for example2_integration_test.
# This may be replaced when dependencies are built.
