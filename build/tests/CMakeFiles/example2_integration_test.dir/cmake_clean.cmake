file(REMOVE_RECURSE
  "CMakeFiles/example2_integration_test.dir/integration/example2_integration_test.cc.o"
  "CMakeFiles/example2_integration_test.dir/integration/example2_integration_test.cc.o.d"
  "example2_integration_test"
  "example2_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example2_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
