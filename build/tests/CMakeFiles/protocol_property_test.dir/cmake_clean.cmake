file(REMOVE_RECURSE
  "CMakeFiles/protocol_property_test.dir/integration/protocol_property_test.cc.o"
  "CMakeFiles/protocol_property_test.dir/integration/protocol_property_test.cc.o.d"
  "protocol_property_test"
  "protocol_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
