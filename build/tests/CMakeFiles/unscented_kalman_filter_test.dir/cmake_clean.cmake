file(REMOVE_RECURSE
  "CMakeFiles/unscented_kalman_filter_test.dir/filter/unscented_kalman_filter_test.cc.o"
  "CMakeFiles/unscented_kalman_filter_test.dir/filter/unscented_kalman_filter_test.cc.o.d"
  "unscented_kalman_filter_test"
  "unscented_kalman_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unscented_kalman_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
