# Empty dependencies file for unscented_kalman_filter_test.
# This may be replaced when dependencies are built.
