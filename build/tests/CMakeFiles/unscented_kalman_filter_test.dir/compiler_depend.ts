# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unscented_kalman_filter_test.
