file(REMOVE_RECURSE
  "CMakeFiles/confidence_test.dir/dsms/confidence_test.cc.o"
  "CMakeFiles/confidence_test.dir/dsms/confidence_test.cc.o.d"
  "confidence_test"
  "confidence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
