# Empty compiler generated dependencies file for confidence_test.
# This may be replaced when dependencies are built.
