# Empty compiler generated dependencies file for path_equivalence_test.
# This may be replaced when dependencies are built.
