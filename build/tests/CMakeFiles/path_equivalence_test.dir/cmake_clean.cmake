file(REMOVE_RECURSE
  "CMakeFiles/path_equivalence_test.dir/integration/path_equivalence_test.cc.o"
  "CMakeFiles/path_equivalence_test.dir/integration/path_equivalence_test.cc.o.d"
  "path_equivalence_test"
  "path_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
