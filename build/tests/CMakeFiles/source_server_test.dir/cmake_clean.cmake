file(REMOVE_RECURSE
  "CMakeFiles/source_server_test.dir/dsms/source_server_test.cc.o"
  "CMakeFiles/source_server_test.dir/dsms/source_server_test.cc.o.d"
  "source_server_test"
  "source_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
