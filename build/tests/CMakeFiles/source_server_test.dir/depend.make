# Empty dependencies file for source_server_test.
# This may be replaced when dependencies are built.
