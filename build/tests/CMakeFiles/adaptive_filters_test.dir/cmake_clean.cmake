file(REMOVE_RECURSE
  "CMakeFiles/adaptive_filters_test.dir/query/adaptive_filters_test.cc.o"
  "CMakeFiles/adaptive_filters_test.dir/query/adaptive_filters_test.cc.o.d"
  "adaptive_filters_test"
  "adaptive_filters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
