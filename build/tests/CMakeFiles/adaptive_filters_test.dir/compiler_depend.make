# Empty compiler generated dependencies file for adaptive_filters_test.
# This may be replaced when dependencies are built.
