file(REMOVE_RECURSE
  "CMakeFiles/dual_link_test.dir/core/dual_link_test.cc.o"
  "CMakeFiles/dual_link_test.dir/core/dual_link_test.cc.o.d"
  "dual_link_test"
  "dual_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
