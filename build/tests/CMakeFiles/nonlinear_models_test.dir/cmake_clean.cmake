file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_models_test.dir/models/nonlinear_models_test.cc.o"
  "CMakeFiles/nonlinear_models_test.dir/models/nonlinear_models_test.cc.o.d"
  "nonlinear_models_test"
  "nonlinear_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
