# Empty dependencies file for nonlinear_models_test.
# This may be replaced when dependencies are built.
