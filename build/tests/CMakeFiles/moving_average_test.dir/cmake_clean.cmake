file(REMOVE_RECURSE
  "CMakeFiles/moving_average_test.dir/core/moving_average_test.cc.o"
  "CMakeFiles/moving_average_test.dir/core/moving_average_test.cc.o.d"
  "moving_average_test"
  "moving_average_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_average_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
