# Empty dependencies file for http_traffic_generator_test.
# This may be replaced when dependencies are built.
