file(REMOVE_RECURSE
  "CMakeFiles/http_traffic_generator_test.dir/streamgen/http_traffic_generator_test.cc.o"
  "CMakeFiles/http_traffic_generator_test.dir/streamgen/http_traffic_generator_test.cc.o.d"
  "http_traffic_generator_test"
  "http_traffic_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_traffic_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
