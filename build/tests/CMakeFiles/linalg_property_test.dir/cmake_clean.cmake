file(REMOVE_RECURSE
  "CMakeFiles/linalg_property_test.dir/linalg/linalg_property_test.cc.o"
  "CMakeFiles/linalg_property_test.dir/linalg/linalg_property_test.cc.o.d"
  "linalg_property_test"
  "linalg_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
