file(REMOVE_RECURSE
  "CMakeFiles/recursive_least_squares_test.dir/filter/recursive_least_squares_test.cc.o"
  "CMakeFiles/recursive_least_squares_test.dir/filter/recursive_least_squares_test.cc.o.d"
  "recursive_least_squares_test"
  "recursive_least_squares_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_least_squares_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
