# Empty compiler generated dependencies file for example1_integration_test.
# This may be replaced when dependencies are built.
