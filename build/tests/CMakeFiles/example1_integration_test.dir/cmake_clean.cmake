file(REMOVE_RECURSE
  "CMakeFiles/example1_integration_test.dir/integration/example1_integration_test.cc.o"
  "CMakeFiles/example1_integration_test.dir/integration/example1_integration_test.cc.o.d"
  "example1_integration_test"
  "example1_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example1_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
