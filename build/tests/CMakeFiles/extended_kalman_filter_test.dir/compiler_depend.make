# Empty compiler generated dependencies file for extended_kalman_filter_test.
# This may be replaced when dependencies are built.
