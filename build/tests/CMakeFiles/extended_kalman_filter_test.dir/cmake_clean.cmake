file(REMOVE_RECURSE
  "CMakeFiles/extended_kalman_filter_test.dir/filter/extended_kalman_filter_test.cc.o"
  "CMakeFiles/extended_kalman_filter_test.dir/filter/extended_kalman_filter_test.cc.o.d"
  "extended_kalman_filter_test"
  "extended_kalman_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_kalman_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
