
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/smoothing_test.cc" "tests/CMakeFiles/smoothing_test.dir/core/smoothing_test.cc.o" "gcc" "tests/CMakeFiles/smoothing_test.dir/core/smoothing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/streamgen/CMakeFiles/dkf_streamgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dsms/CMakeFiles/dkf_dsms.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dkf_query.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dkf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dkf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dkf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/dkf_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dkf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dkf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
