#include "governor/delta_governor.h"

#include <algorithm>
#include <cmath>

namespace dkf {
namespace {

/// Guards the relative-noise products when a state or measurement sits
/// at zero, so a quiet source keeps a live (if tiny) variance and can
/// re-acquire once it starts sending.
constexpr double kNoiseEps = 1e-12;

double Clamp(double value, double lo, double hi) {
  return std::min(hi, std::max(lo, value));
}

}  // namespace

Status DeltaGovernor::Validate(const GovernorOptions& options) {
  if (options.epoch_ticks < 1) {
    return Status::InvalidArgument("governor epoch_ticks must be >= 1");
  }
  if (!(options.budget_bytes_per_tick > 0.0)) {
    return Status::InvalidArgument(
        "governor budget_bytes_per_tick must be positive");
  }
  if (!(options.delta_floor > 0.0)) {
    return Status::InvalidArgument("governor delta_floor must be positive");
  }
  if (!(options.delta_ceiling >= options.delta_floor)) {
    return Status::InvalidArgument(
        "governor delta_ceiling must be >= delta_floor");
  }
  if (!(options.max_step_ratio > 1.0)) {
    return Status::InvalidArgument("governor max_step_ratio must exceed 1");
  }
  if (!(options.dead_band >= 0.0) || !(options.dead_band < 1.0)) {
    return Status::InvalidArgument("governor dead_band must be in [0, 1)");
  }
  if (!(options.ewma_alpha > 0.0) || !(options.ewma_alpha <= 1.0)) {
    return Status::InvalidArgument("governor ewma_alpha must be in (0, 1]");
  }
  if (!(options.process_noise > 0.0)) {
    return Status::InvalidArgument("governor process_noise must be positive");
  }
  if (!(options.measurement_noise > 0.0)) {
    return Status::InvalidArgument(
        "governor measurement_noise must be positive");
  }
  return Status::OK();
}

Result<GovernorEpochResult> DeltaGovernor::PlanEpoch(
    const std::vector<GovernorSourceSample>& samples) {
  DKF_RETURN_IF_ERROR(Validate(options_));

  GovernorEpochResult result;
  result.epoch = epochs_;
  result.budget = options_.budget_bytes_per_tick;

  // ---- phase 1: measurement — rates, freezes, sensitivity fit -------
  //
  // Single ascending pass. Unhealthy sources are frozen: counters
  // still advance (so the first healthy epoch measures only healthy
  // traffic — anti-windup), but neither the EWMA nor the Kalman fit
  // sees the storm, and the source is held at its installed delta.
  const double ticks = static_cast<double>(options_.epoch_ticks);
  int last_id = 0;
  bool first = true;
  for (const GovernorSourceSample& sample : samples) {
    if (!first && sample.source_id <= last_id) {
      return Status::InvalidArgument(
          "governor samples must ascend strictly by source id");
    }
    first = false;
    last_id = sample.source_id;

    SourceState& st = states_[sample.source_id];
    if (sample.unhealthy) {
      if (!st.frozen) {
        st.frozen = true;
        result.newly_frozen.push_back(sample.source_id);
      }
      st.held_delta = sample.delta;
      st.last_bytes = sample.bytes;
      st.last_updates = sample.updates;
      continue;
    }
    st.frozen = false;

    const double bytes_rate =
        static_cast<double>(sample.bytes - st.last_bytes) / ticks;
    const double updates_rate =
        static_cast<double>(sample.updates - st.last_updates) / ticks;
    st.last_bytes = sample.bytes;
    st.last_updates = sample.updates;

    // Self-correcting sensitivity measurement: the event-triggered
    // send rate scales as x / delta^2, so z = rate * delta^2 reads the
    // intensity x regardless of which delta produced the traffic. The
    // rate entering z is the EWMA, not the raw epoch count: at wide
    // deltas a healthy source legitimately sits silent for a whole
    // epoch, and a raw zero would zero the relative measurement noise
    // (r * z^2), snap the fit to zero, and send the allocator probing
    // down — a permanent burst/probe limit cycle at fleet scale. With
    // the EWMA, silence decays the estimate at the configured alpha
    // instead, and the dead band absorbs the wobble.
    if (!st.measured) {
      st.measured = true;
      st.ewma_bytes = std::max(0.0, bytes_rate);
      st.ewma_updates = std::max(0.0, updates_rate);
      const double z = st.ewma_bytes * sample.delta * sample.delta;
      st.intensity = z;
      st.variance = z * z + kNoiseEps;
    } else {
      const double a = options_.ewma_alpha;
      st.ewma_bytes = a * std::max(0.0, bytes_rate) + (1.0 - a) * st.ewma_bytes;
      st.ewma_updates =
          a * std::max(0.0, updates_rate) + (1.0 - a) * st.ewma_updates;
      const double z = st.ewma_bytes * sample.delta * sample.delta;
      // Relative-noise scalar Kalman step. Process noise scales with
      // the larger of state and measurement so a quiet stream that
      // wakes up re-acquires within a few epochs instead of being
      // pinned by its own tiny variance. Measurement noise scales with
      // the STATE, not the measurement: r ~ z^2 would shrink the
      // noise (and inflate the gain) exactly when z reads low, biasing
      // the fit downward and parking the settled spend above budget.
      // With r ~ x^2 the gain is the same for high and low reads, and
      // a near-zero state still re-acquires in one step.
      const double level = std::max(std::abs(st.intensity), std::abs(z));
      st.variance += options_.process_noise * (level * level + kNoiseEps);
      const double r_eff = options_.measurement_noise *
                           (st.intensity * st.intensity + kNoiseEps);
      const double gain = st.variance / (st.variance + r_eff);
      st.intensity = std::max(0.0, st.intensity + gain * (z - st.intensity));
      st.variance *= (1.0 - gain);
    }
  }

  // ---- phase 2: budget accounting -----------------------------------
  //
  // Frozen sources reserve their held EWMA spend off the top; the
  // water-filling below allocates only what remains to healthy ones.
  double spend = 0.0;
  double frozen_spend = 0.0;
  for (const auto& [id, st] : states_) {
    spend += st.ewma_bytes;
    if (st.frozen) {
      ++result.frozen;
      frozen_spend += st.ewma_bytes;
    }
  }
  result.spend = spend;
  result.overshoot = std::max(0.0, spend / result.budget - 1.0);

  // ---- phase 3: water-filling over the healthy set ------------------
  //
  // Minimize sum(delta_i) subject to sum(x_i / delta_i^2) <= C with
  // per-source bounds. Unconstrained optimum: delta_i = cbrt(x_i) *
  // sqrt(S / C), S = sum(cbrt(x_j)). Bounds are resolved by clamp
  // iteration: pin violators to their bound, charge their pinned spend
  // against C, re-solve the rest. Each round pins at least one source,
  // so the loop is bounded by the fleet size.
  struct Allocation {
    const GovernorSourceSample* sample;
    double lo, hi;   // floor/ceiling intersected with the slew window
    double root;     // cbrt(intensity)
    double target = 0.0;
    bool pinned = false;
  };
  std::vector<Allocation> allocs;
  allocs.reserve(samples.size());
  for (const GovernorSourceSample& sample : samples) {
    const SourceState& st = states_.at(sample.source_id);
    if (st.frozen) continue;
    Allocation alloc;
    alloc.sample = &sample;
    // Slew window around the installed delta, kept inside the hard
    // bounds. Clamping both ends into [floor, ceiling] preserves
    // lo <= hi even when the installed delta sits outside the bounds —
    // the source then walks toward the band at the slew rate.
    alloc.lo = Clamp(sample.delta / options_.max_step_ratio,
                     options_.delta_floor, options_.delta_ceiling);
    alloc.hi = Clamp(sample.delta * options_.max_step_ratio,
                     options_.delta_floor, options_.delta_ceiling);
    alloc.root = std::cbrt(st.intensity);
    allocs.push_back(alloc);
  }

  double budget_left = result.budget - frozen_spend;
  size_t unpinned = allocs.size();
  while (unpinned > 0) {
    double root_sum = 0.0;
    for (const Allocation& alloc : allocs) {
      if (!alloc.pinned) root_sum += alloc.root;
    }
    if (!(budget_left > 0.0)) {
      // Sustained overload (or frozen spend alone exceeds the budget):
      // everything left inflates to its slew-limited ceiling. The next
      // epochs keep widening until the budget holds — proportional
      // degradation, never oscillation.
      for (Allocation& alloc : allocs) {
        if (!alloc.pinned) {
          alloc.target = alloc.hi;
          alloc.pinned = true;
        }
      }
      break;
    }
    if (root_sum <= 0.0) {
      // Every remaining source is quiet (zero estimated intensity):
      // probe toward the floor at the slew rate, spending nothing.
      for (Allocation& alloc : allocs) {
        if (!alloc.pinned) {
          alloc.target = alloc.lo;
          alloc.pinned = true;
        }
      }
      break;
    }
    const double scale = std::sqrt(root_sum / budget_left);
    bool clamped = false;
    for (Allocation& alloc : allocs) {
      if (alloc.pinned) continue;
      const double ideal = alloc.root * scale;
      if (ideal < alloc.lo || ideal > alloc.hi) {
        alloc.target = ideal < alloc.lo ? alloc.lo : alloc.hi;
        alloc.pinned = true;
        clamped = true;
        --unpinned;
        const double x = alloc.root * alloc.root * alloc.root;
        budget_left -= x / (alloc.target * alloc.target);
      }
    }
    if (!clamped) {
      for (Allocation& alloc : allocs) {
        if (!alloc.pinned) alloc.target = alloc.root * scale;
      }
      break;
    }
  }

  // ---- phase 4: dead band + change list -----------------------------
  //
  // The dead band suppresses reconfigure churn near equilibrium, but a
  // widening move is never held while the fleet overspends: the budget
  // is a ceiling, not a setpoint, and holding small widening steps
  // would let the spend camp a band-width above it (and, with a slew
  // ratio inside the band, stall overload degradation outright).
  // Tightening moves stay banded, so the settled spend sits at or just
  // under the budget rather than oscillating around it.
  const bool overspent = spend > result.budget;
  for (const Allocation& alloc : allocs) {
    const GovernorSourceSample& sample = *alloc.sample;
    SourceState& st = states_.at(sample.source_id);
    const double target = Clamp(alloc.target, options_.delta_floor,
                                options_.delta_ceiling);
    const bool widening = target > sample.delta;
    if (!(overspent && widening) &&
        std::abs(target - sample.delta) <=
            options_.dead_band * sample.delta) {
      st.held_delta = sample.delta;  // hold: no reconfigure, no spill
      continue;
    }
    st.held_delta = target;
    result.changes.push_back({sample.source_id, target, sample.delta});
  }

  ++epochs_;
  return result;
}

}  // namespace dkf
