#ifndef DKF_GOVERNOR_DELTA_GOVERNOR_H_
#define DKF_GOVERNOR_DELTA_GOVERNOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dkf {

/// Tuning knobs for the fleet-wide delta governor (docs/governor.md).
///
/// The governor's contract is a bytes-on-wire budget: every
/// `epoch_ticks` ticks it re-allocates per-source precision widths so
/// the fleet's uplink spend tracks `budget_bytes_per_tick`, preferring
/// the tightest deltas the budget affords. Every knob below exists for
/// robustness, not performance: floors/ceilings bound the allocation,
/// the slew ratio bounds per-epoch movement, and the dead band keeps
/// the controller from thrashing lanes over noise.
struct GovernorOptions {
  /// Master switch. When false the engine never constructs a governor.
  bool enabled = false;

  /// Allocation period, in engine ticks. Longer epochs average more
  /// traffic per measurement (smoother) but react slower.
  int64_t epoch_ticks = 16;

  /// The fleet-wide uplink budget, in message bytes per tick, that the
  /// governor steers total spend toward. Must be positive when enabled.
  double budget_bytes_per_tick = 0.0;

  /// Hard bounds on any installed delta. The floor caps how much
  /// traffic a tight allocation may invite; the ceiling caps how much
  /// precision an overloaded fleet may shed.
  double delta_floor = 1e-4;
  double delta_ceiling = 1e9;

  /// Per-epoch multiplicative slew limit: a source's delta moves at
  /// most by this factor (up or down) per epoch. Must exceed 1.
  double max_step_ratio = 2.0;

  /// Relative dead band: a proposed delta within this fraction of the
  /// installed one is held as-is — no reconfigure, no lane spill.
  double dead_band = 0.10;

  /// EWMA smoothing weight on per-epoch byte/update rates (0, 1].
  /// 1.0 means "latest epoch only".
  double ewma_alpha = 0.30;

  /// Kalman noise intensities for the per-source sensitivity fit, both
  /// relative (scale-free): process noise grows the state variance by
  /// `process_noise * level^2` per epoch, and a measurement weighs in
  /// with variance `measurement_noise * x^2` (state-relative, so high
  /// and low reads get the same gain and the fit stays unbiased).
  double process_noise = 0.05;
  double measurement_noise = 0.25;
};

/// One source's observed activity over an epoch, as sampled by the
/// engine: cumulative uplink counters (the governor differences them
/// itself), the currently installed delta, and the health bit that
/// triggers the freeze rule.
struct GovernorSourceSample {
  int source_id = 0;
  int64_t bytes = 0;    // cumulative uplink bytes for this source
  int64_t updates = 0;  // cumulative updates sent by this source
  double delta = 0.0;   // installed precision width
  bool unhealthy = false;  // resync pending or serving degraded
};

/// One installed-delta change the governor wants applied.
struct DeltaChange {
  int source_id = 0;
  double delta = 0.0;     // new value to install
  double previous = 0.0;  // what was installed when planned
};

/// Everything one allocation epoch decided, in deterministic order
/// (changes and freezes ascend by source id).
struct GovernorEpochResult {
  int64_t epoch = 0;       // 0-based epoch index
  double budget = 0.0;     // bytes/tick budget in force
  double spend = 0.0;      // EWMA-estimated fleet bytes/tick
  double overshoot = 0.0;  // max(0, spend/budget - 1)
  int64_t frozen = 0;      // sources excluded + held this epoch
  std::vector<DeltaChange> changes;
  std::vector<int> newly_frozen;  // entered the frozen state this epoch
};

/// Fleet-wide bandwidth/precision controller (docs/governor.md).
///
/// Pure and deterministic: `PlanEpoch` maps sampled per-source uplink
/// counters to a delta schedule with no dependence on shard layout,
/// wall clock, or iteration races — the engine owns sampling and
/// installation. Per epoch it (1) differences cumulative counters into
/// EWMA rates, (2) Kalman-updates each healthy stream's send intensity
/// x (estimated bytes/tick at delta = 1, from the event-triggered
/// scaling rate ~ x / delta^2) using the self-correcting measurement
/// z = ewma_bytes * delta^2, (3) water-fills deltas to minimize their
/// sum subject to sum(x_i / delta_i^2) <= budget with per-source
/// floor/ceiling/slew clamps resolved iteratively, and (4) applies the
/// dead band so near-noise moves install nothing. Unhealthy sources
/// are frozen: excluded from the fit, held at their last delta, their
/// held spend reserved off the top of the budget (anti-windup).
class DeltaGovernor {
 public:
  /// Per-source controller state. Public so checkpoints can move it
  /// verbatim (snapshot v3) and metrics can read the EWMA rates.
  struct SourceState {
    double ewma_bytes = 0.0;    // bytes/tick, EWMA over epochs
    double ewma_updates = 0.0;  // updates/tick, EWMA over epochs
    int64_t last_bytes = 0;     // cumulative counters at last sample
    int64_t last_updates = 0;
    double intensity = 0.0;  // KF state x: est. bytes/tick at delta=1
    double variance = 1.0;   // KF covariance on x
    bool measured = false;   // saw at least one healthy epoch
    bool frozen = false;     // excluded + held (unhealthy)
    double held_delta = 0.0;  // installed delta after the last epoch

    friend bool operator==(const SourceState&, const SourceState&) = default;
  };

  explicit DeltaGovernor(const GovernorOptions& options)
      : options_(options) {}

  /// Rejects out-of-range knobs. Run lazily by PlanEpoch so a
  /// misconfigured governor fails the tick, not the constructor.
  static Status Validate(const GovernorOptions& options);

  const GovernorOptions& options() const { return options_; }
  int64_t epochs() const { return epochs_; }

  /// Runs one allocation epoch. `samples` must ascend strictly by
  /// source id (the engine iterates its ordered registry) and should
  /// cover every registered source — a source absent from one epoch's
  /// samples simply keeps its state untouched.
  Result<GovernorEpochResult> PlanEpoch(
      const std::vector<GovernorSourceSample>& samples);

  /// Controller state keyed by source id, for metrics + checkpointing.
  const std::map<int, SourceState>& states() const { return states_; }

  /// Restores controller state captured by `states()` (snapshot v3).
  void ImportState(int64_t epochs, std::map<int, SourceState> states) {
    epochs_ = epochs;
    states_ = std::move(states);
  }

 private:
  GovernorOptions options_;
  int64_t epochs_ = 0;
  std::map<int, SourceState> states_;
};

}  // namespace dkf

#endif  // DKF_GOVERNOR_DELTA_GOVERNOR_H_
