#ifndef DKF_COMMON_TIME_SERIES_H_
#define DKF_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dkf {

/// Summary statistics of a scalar sequence.
struct SeriesStats {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// A fixed-width multivariate time series: `n` samples, each a timestamp
/// plus `width` double-valued attributes. This is the interchange type
/// between workload generators, the DSMS simulator, and the experiment
/// harness.
class TimeSeries {
 public:
  /// Creates an empty series whose samples carry `width` values each.
  explicit TimeSeries(size_t width = 1);

  size_t width() const { return width_; }
  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Appends one sample. `values` must contain exactly width() entries and
  /// `timestamp` must be strictly greater than the previous timestamp.
  Status Append(double timestamp, const std::vector<double>& values);

  /// Convenience for width-1 series.
  Status Append(double timestamp, double value);

  double timestamp(size_t i) const { return timestamps_[i]; }

  /// Value of attribute `dim` at sample `i`.
  double value(size_t i, size_t dim = 0) const {
    return values_[i * width_ + dim];
  }

  /// All width() values of sample `i`.
  std::vector<double> Row(size_t i) const;

  /// The full column for attribute `dim`.
  std::vector<double> Column(size_t dim) const;

  /// Statistics of attribute `dim`; errors on an empty series or bad dim.
  Result<SeriesStats> Stats(size_t dim = 0) const;

  /// The sub-series of samples [begin, end).
  Result<TimeSeries> Slice(size_t begin, size_t end) const;

  /// Keeps every `stride`-th sample starting at index 0 (stride >= 1).
  Result<TimeSeries> Downsample(size_t stride) const;

  void Clear();
  void Reserve(size_t n);

 private:
  size_t width_;
  std::vector<double> timestamps_;
  std::vector<double> values_;  // row-major, size() * width_ entries
};

}  // namespace dkf

#endif  // DKF_COMMON_TIME_SERIES_H_
