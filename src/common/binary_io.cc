#include "common/binary_io.h"

#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace dkf {

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void BinaryWriter::WriteU8(uint8_t value) {
  bytes_.push_back(static_cast<char>(value));
}

void BinaryWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void BinaryWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void BinaryWriter::WriteI64(int64_t value) {
  WriteU64(static_cast<uint64_t>(value));
}

void BinaryWriter::WriteF64(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  bytes_.append(value);
}

Status BinaryReader::Require(size_t count) const {
  if (offset_ + count > bytes_.size() || offset_ + count < offset_) {
    return Status::OutOfRange(
        StrFormat("truncated snapshot: need %zu bytes at offset %zu of %zu",
                  count, offset_, bytes_.size()));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  DKF_RETURN_IF_ERROR(Require(1));
  return static_cast<uint8_t>(bytes_[offset_++]);
}

Result<uint32_t> BinaryReader::ReadU32() {
  DKF_RETURN_IF_ERROR(Require(4));
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[offset_++]))
             << shift;
  }
  return value;
}

Result<uint64_t> BinaryReader::ReadU64() {
  DKF_RETURN_IF_ERROR(Require(8));
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[offset_++]))
             << shift;
  }
  return value;
}

Result<int64_t> BinaryReader::ReadI64() {
  DKF_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  return static_cast<int64_t>(bits);
}

Result<double> BinaryReader::ReadF64() {
  DKF_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<bool> BinaryReader::ReadBool() {
  DKF_ASSIGN_OR_RETURN(uint8_t byte, ReadU8());
  if (byte > 1) {
    return Status::InvalidArgument(
        StrFormat("invalid bool byte %u in snapshot", byte));
  }
  return byte == 1;
}

Result<std::string> BinaryReader::ReadString() {
  DKF_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  DKF_RETURN_IF_ERROR(Require(static_cast<size_t>(size)));
  std::string value = bytes_.substr(offset_, static_cast<size_t>(size));
  offset_ += static_cast<size_t>(size);
  return value;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal(StrFormat("cannot open %s for writing", tmp.c_str()));
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("cannot rename %s to %s", tmp.c_str(), path.c_str()));
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal(StrFormat("error reading %s", path.c_str()));
  }
  return bytes;
}

}  // namespace dkf
