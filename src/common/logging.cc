#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dkf {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes sink writes so messages from concurrent runtime workers
/// never interleave mid-line.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

}  // namespace dkf
