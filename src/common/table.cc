#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace dkf {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddNumericRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(StrFormat("%.4g", v));
  AddRow(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.emplace_back(widths[c], '-');
  }
  out += render_row(rule);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void AsciiTable::Print() const {
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace dkf
