#include "common/csv.h"

#include <cstdio>

#include "common/string_util.h"

namespace dkf {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  return CsvWriter(file);
}

CsvWriter& CsvWriter::operator=(CsvWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += QuoteCell(cells[i]);
  }
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("already closed");
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("fclose failed");
  return Status::OK();
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  int c;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      rows.push_back(ParseCsvLine(line));
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (!line.empty()) rows.push_back(ParseCsvLine(line));
  std::fclose(file);
  return rows;
}

Status WriteTimeSeriesCsv(const TimeSeries& series, const std::string& path) {
  auto writer_or = CsvWriter::Open(path);
  if (!writer_or.ok()) return writer_or.status();
  CsvWriter writer = std::move(writer_or).value();

  std::vector<std::string> header = {"timestamp"};
  for (size_t d = 0; d < series.width(); ++d) {
    header.push_back(StrFormat("v%zu", d));
  }
  DKF_RETURN_IF_ERROR(writer.WriteRow(header));

  for (size_t i = 0; i < series.size(); ++i) {
    std::vector<std::string> row = {DoubleToString(series.timestamp(i))};
    for (size_t d = 0; d < series.width(); ++d) {
      row.push_back(DoubleToString(series.value(i, d)));
    }
    DKF_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

Result<TimeSeries> ReadTimeSeriesCsv(const std::string& path) {
  auto rows_or = ReadCsvFile(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty()) return Status::InvalidArgument("empty csv file");
  const size_t width = rows[0].size() - 1;
  if (rows[0].empty() || rows[0][0] != "timestamp" || width == 0) {
    return Status::InvalidArgument("missing timeseries header");
  }
  TimeSeries series(width);
  series.Reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != width + 1) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu cells, expected %zu", i, rows[i].size(),
                    width + 1));
    }
    double ts = 0.0;
    if (!ParseDouble(rows[i][0], &ts)) {
      return Status::InvalidArgument(StrFormat("bad timestamp in row %zu", i));
    }
    std::vector<double> values(width);
    for (size_t d = 0; d < width; ++d) {
      if (!ParseDouble(rows[i][d + 1], &values[d])) {
        return Status::InvalidArgument(StrFormat("bad value in row %zu", i));
      }
    }
    DKF_RETURN_IF_ERROR(series.Append(ts, values));
  }
  return series;
}

}  // namespace dkf
