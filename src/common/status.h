#ifndef DKF_COMMON_STATUS_H_
#define DKF_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace dkf {

/// Error categories used across the library. Modeled on the RocksDB /
/// Abseil status idiom: library code never throws; fallible operations
/// return a `Status` (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// A `Status` is either OK or carries an error code plus a human-readable
/// message. It is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Empty for an OK status.
  const std::string& message() const { return message_; }

  /// "OK" or "<CategoryName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status`.
#define DKF_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::dkf::Status _dkf_status = (expr);         \
    if (!_dkf_status.ok()) return _dkf_status;  \
  } while (false)

}  // namespace dkf

#endif  // DKF_COMMON_STATUS_H_
