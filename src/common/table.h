#ifndef DKF_COMMON_TABLE_H_
#define DKF_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dkf {

/// Column-aligned ASCII table used by the bench harness to print the
/// rows/series corresponding to each figure and table of the paper.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells, longer rows
  /// are truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.4g.
  void AddNumericRow(const std::vector<double>& values);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header rule, e.g.
  ///   delta  caching  linear
  ///   -----  -------  ------
  ///   1      96.2     22.1
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dkf

#endif  // DKF_COMMON_TABLE_H_
