#ifndef DKF_COMMON_STRING_UTIL_H_
#define DKF_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dkf {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrStrip(std::string_view input);

/// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Parses a double; returns false on malformed or trailing-garbage input.
bool ParseDouble(std::string_view input, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view input, long long* out);

/// Formats a double with enough digits to round-trip (shortest %.17g style,
/// trimmed).
std::string DoubleToString(double value);

}  // namespace dkf

#endif  // DKF_COMMON_STRING_UTIL_H_
