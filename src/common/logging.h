#ifndef DKF_COMMON_LOGGING_H_
#define DKF_COMMON_LOGGING_H_

#include <string>

namespace dkf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Thread-safe: the level
/// check is a lock-free atomic load (so suppressed messages cost
/// nothing extra on the sharded runtime's hot path) and the sink write
/// is serialized under a mutex, so concurrent messages never interleave
/// within a line.
void Log(LogLevel level, const std::string& message);

/// Messages below this level are dropped. Default: kInfo. Safe to call
/// concurrently with Log.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

}  // namespace dkf

#endif  // DKF_COMMON_LOGGING_H_
