#ifndef DKF_COMMON_LOGGING_H_
#define DKF_COMMON_LOGGING_H_

#include <string>

namespace dkf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Not thread-safe beyond the
/// atomicity of a single fprintf; the simulator is single-threaded.
void Log(LogLevel level, const std::string& message);

/// Messages below this level are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

}  // namespace dkf

#endif  // DKF_COMMON_LOGGING_H_
