#include "common/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dkf {

TimeSeries::TimeSeries(size_t width) : width_(width == 0 ? 1 : width) {}

Status TimeSeries::Append(double timestamp, const std::vector<double>& values) {
  if (values.size() != width_) {
    return Status::InvalidArgument(
        StrFormat("sample has %zu values, series width is %zu", values.size(),
                  width_));
  }
  if (!timestamps_.empty() && timestamp <= timestamps_.back()) {
    return Status::InvalidArgument(
        StrFormat("timestamp %g not after previous %g", timestamp,
                  timestamps_.back()));
  }
  timestamps_.push_back(timestamp);
  values_.insert(values_.end(), values.begin(), values.end());
  return Status::OK();
}

Status TimeSeries::Append(double timestamp, double value) {
  if (width_ != 1) {
    return Status::InvalidArgument("scalar append on multivariate series");
  }
  if (!timestamps_.empty() && timestamp <= timestamps_.back()) {
    return Status::InvalidArgument(
        StrFormat("timestamp %g not after previous %g", timestamp,
                  timestamps_.back()));
  }
  timestamps_.push_back(timestamp);
  values_.push_back(value);
  return Status::OK();
}

std::vector<double> TimeSeries::Row(size_t i) const {
  return std::vector<double>(values_.begin() + i * width_,
                             values_.begin() + (i + 1) * width_);
}

std::vector<double> TimeSeries::Column(size_t dim) const {
  std::vector<double> column;
  column.reserve(size());
  for (size_t i = 0; i < size(); ++i) column.push_back(value(i, dim));
  return column;
}

Result<SeriesStats> TimeSeries::Stats(size_t dim) const {
  if (dim >= width_) {
    return Status::OutOfRange(
        StrFormat("dim %zu out of range for width %zu", dim, width_));
  }
  if (empty()) return Status::FailedPrecondition("stats of empty series");
  SeriesStats stats;
  stats.count = size();
  stats.min = value(0, dim);
  stats.max = value(0, dim);
  double sum = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    const double v = value(i, dim);
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    sum += v;
  }
  stats.mean = sum / static_cast<double>(size());
  double sq = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    const double d = value(i, dim) - stats.mean;
    sq += d * d;
  }
  stats.stddev = std::sqrt(sq / static_cast<double>(size()));
  return stats;
}

Result<TimeSeries> TimeSeries::Slice(size_t begin, size_t end) const {
  if (begin > end || end > size()) {
    return Status::OutOfRange(
        StrFormat("slice [%zu, %zu) of series of size %zu", begin, end,
                  size()));
  }
  TimeSeries out(width_);
  out.Reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    Status s = out.Append(timestamp(i), Row(i));
    if (!s.ok()) return s;
  }
  return out;
}

Result<TimeSeries> TimeSeries::Downsample(size_t stride) const {
  if (stride == 0) return Status::InvalidArgument("stride must be >= 1");
  TimeSeries out(width_);
  out.Reserve(size() / stride + 1);
  for (size_t i = 0; i < size(); i += stride) {
    Status s = out.Append(timestamp(i), Row(i));
    if (!s.ok()) return s;
  }
  return out;
}

void TimeSeries::Clear() {
  timestamps_.clear();
  values_.clear();
}

void TimeSeries::Reserve(size_t n) {
  timestamps_.reserve(n);
  values_.reserve(n * width_);
}

}  // namespace dkf
